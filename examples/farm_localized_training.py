#!/usr/bin/env python
"""Farm-localized model training, end to end (the HARVEST-2.0 story).

"HARVEST-2.0 provides farmers with an end-to-end AI training and
deployment platform, enabling landholders to easily train localized AI
models with their own data" using "semi-supervised learning techniques
[to mitigate] labeling challenges."

This example walks that lifecycle on a synthetic farm task:

1. collect imagery (synthetic class-conditional field photos);
2. the farmer labels only a handful;
3. extract frozen-backbone features (the fast adaptation path);
4. train a localized head; improve it with pseudo-labeling;
5. deploy: check the result against the Jetson's real-time budget.

Run:  python examples/farm_localized_training.py   (~1 minute on CPU)
"""

import numpy as np

from repro.core.guidance import TuningAdvisor
from repro.data.synthetic import synth_labeled_images
from repro.hardware.platform import JETSON
from repro.models.zoo import get_model
from repro.training.features import FeatureExtractor
from repro.training.linear_probe import LinearProbe, train_test_split
from repro.training.pseudo_label import self_training

CLASSES = 3          # e.g. healthy / aphid damage / drought stress
LABELED = 12         # photos the farmer annotated
CAPTURES = 110       # photos collected in total


def main() -> None:
    rng = np.random.default_rng(2026)
    print(f"collecting {CAPTURES} field photos "
          f"({CLASSES} conditions, {LABELED} labeled) ...")
    images, labels = synth_labeled_images(CAPTURES, CLASSES, 40, rng,
                                          signal_strength=0.12)

    print("extracting frozen ViT-Tiny features (the fast-training "
          "path) ...")
    extractor = FeatureExtractor("vit_tiny")
    features = extractor.extract(list(images))

    # Split: labeled / unlabeled pool / held-out test.
    x_l, y_l = features[:LABELED], labels[:LABELED]
    x_u, y_u = features[LABELED:80], labels[LABELED:80]
    x_t, y_t = features[80:], labels[80:]

    # ------------------------------------------------------------------
    supervised = LinearProbe(extractor.feature_dim, CLASSES)
    supervised.fit(x_l, y_l)
    print(f"\nsupervised-only head ({LABELED} labels): "
          f"{supervised.accuracy(x_t, y_t):.1%} test accuracy")

    result = self_training(x_l, y_l, x_u, x_t, y_t, classes=CLASSES,
                           y_unlabeled_true=y_u, confidence=0.8)
    print(f"with pseudo-labeling: {result.final_accuracy:.1%} "
          f"({result.pseudo_labels_used} pseudo-labels recruited at "
          f"{result.pseudo_label_precision:.0%} precision, "
          f"{result.rounds_run} rounds)")

    # ------------------------------------------------------------------
    # Deployment check: does the adapted model meet the vehicle's
    # real-time budget on the Jetson?
    print("\ndeployment check on the Jetson (60 QPS target):")
    advisor = TuningAdvisor(JETSON)
    rec = advisor.recommend_batch(get_model("vit_tiny").graph)
    status = "meets" if rec.meets_target else "misses"
    print(f"  vit_tiny @BS{rec.batch_size}: "
          f"{rec.expected_throughput:.0f} img/s, "
          f"{rec.expected_latency_seconds * 1e3:.1f} ms -> {status} "
          "the target")
    print("\nthe localized model ships as (backbone checkpoint + "
          f"{extractor.feature_dim}x{CLASSES} head) — "
          f"{(extractor.feature_dim + 1) * CLASSES} trainable "
          "parameters, trained in seconds on the farm's own data.")


if __name__ == "__main__":
    main()
