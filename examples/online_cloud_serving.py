#!/usr/bin/env python
"""Online cloud inference (Section 2.2.1): farm → network → A100 Triton.

A farm uploads Plant Village-sized disease photos over its Wi-Fi backhaul
to the A100 cluster, which serves them through the Triton-like scheduler.
The example sizes the deployment: network ceiling, dynamic-batching
configuration from the tuning advisor, and an open-loop load test at
increasing request rates until the SLO breaks.

Run:  python examples/online_cloud_serving.py
"""

from repro.continuum.network import get_link
from repro.continuum.scenarios import OnlineScenario
from repro.core.guidance import TuningAdvisor
from repro.data.datasets import get_dataset
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def main() -> None:
    scenario = OnlineScenario(link=get_link("farm_wifi"),
                              slo_seconds=0.25)
    dataset = get_dataset("plant_village")
    model = get_model("vit_small").graph

    # ------------------------------------------------------------------
    # 1. Network ceiling: how many photos/s can the uplink carry?
    image_bytes = dataset.encoded_bytes_at_mode()
    ceiling = scenario.link.sustainable_images_per_second(image_bytes)
    upload = scenario.upload_seconds(image_bytes)
    print(f"uplink: {scenario.link.name}, "
          f"{image_bytes / 1e3:.0f} kB/photo -> "
          f"{ceiling:.0f} photos/s ceiling per farm, "
          f"{upload * 1e3:.1f} ms upload each")
    print("(the cluster aggregates many farms; the load test below "
          "sweeps the aggregate rate)")

    # ------------------------------------------------------------------
    # 2. Advisor picks the serving batch size for the latency budget
    #    left after the network hop.
    compute_budget = scenario.slo_seconds - upload
    advisor = TuningAdvisor(A100, latency_target_seconds=compute_budget)
    rec = advisor.recommend_batch(model)
    print(f"advisor: batch {rec.batch_size} "
          f"({rec.expected_throughput:.0f} img/s, "
          f"{rec.expected_latency_seconds * 1e3:.1f} ms/batch, "
          f"MFU {rec.mfu_at_batch:.1%}"
          + (", add a second instance" if rec.multi_instance_suggested
             else "") + ")")

    # ------------------------------------------------------------------
    # 3. Load test: open-loop arrivals at rising rates; report the SLO.
    latency = LatencyModel(model, A100)
    print(f"\n{'rate':>8} {'thr':>9} {'p95 e2e':>9} {'SLO':>5}")
    for rate in (500, 2000, 5000, 8000):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "vit_small", lambda n: latency.latency(max(1, n)),
            batcher=BatcherConfig(max_batch_size=rec.batch_size or 64,
                                  max_queue_delay=0.003),
            instances=2 if rec.multi_instance_suggested else 1))
        client = OpenLoopClient(server, "vit_small",
                               rate_per_second=rate,
                               num_requests=min(4000, rate * 2), seed=5)
        client.start()
        server.run()
        stats = summarize_responses(server.responses,
                                    warmup_fraction=0.1)
        p95_e2e = stats.p95_latency + upload
        ok = "ok" if p95_e2e <= scenario.slo_seconds else "MISS"
        print(f"{rate:>7}/s {stats.throughput_ips:>8.0f}/s "
              f"{p95_e2e * 1e3:>7.1f}ms {ok:>5}")

    print("\nonline serving holds the SLO up to the engine's saturated "
          "throughput; past it, queues grow without bound.")


if __name__ == "__main__":
    main()
