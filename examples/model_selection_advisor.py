#!/usr/bin/env python
"""Model selection across the compute continuum (Sections 3.3 / 5).

For every (platform, dataset) deployment, rank the zoo by the paper's
rule: the most capable model that still meets the latency target, with
the end-to-end bottleneck called out — the "multi-level guidance, from
model selection to end-to-end pipeline optimization" of the conclusion.

Run:  python examples/model_selection_advisor.py [latency_ms]
"""

import sys

from repro.core.guidance import TuningAdvisor
from repro.data.datasets import list_datasets
from repro.hardware.platform import list_platforms


def main() -> None:
    latency_ms = float(sys.argv[1]) if len(sys.argv) > 1 else 1000 / 60
    print(f"latency target: {latency_ms:.1f} ms per request\n")

    for platform in list_platforms():
        advisor = TuningAdvisor(platform,
                                latency_target_seconds=latency_ms / 1e3)
        print(f"== {platform.name} "
              f"({platform.practical_tflops:.1f} practical TFLOPS, "
              f"{platform.gpu_memory_gb:.0f} GB"
              f"{', unified' if platform.unified_memory else ''}) ==")
        for dataset in list_datasets():
            if dataset.dataset_specific_preprocessing:
                continue  # CRSA handled by the real-time example
            recs = advisor.recommend_model(dataset)
            best = recs[0]
            verdict = ("deploy " + best.model if best.meets_target
                       else "no model meets the target; fastest is "
                       + best.model)
            print(f"  {dataset.display_name:26s} -> {verdict:38s} "
                  f"@BS{best.batch_size:<3d} "
                  f"{best.throughput:7.0f} img/s "
                  f"{best.latency_seconds * 1e3:7.1f} ms "
                  f"({best.bottleneck}-bound)")
        print()

    print("rule: prefer the most capable (largest) model that meets the "
          "deadline;\nwhen nothing does, report the fastest option and "
          "its bottleneck so the\noperator knows whether to shrink the "
          "model or accelerate preprocessing.")


if __name__ == "__main__":
    main()
