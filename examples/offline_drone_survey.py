#!/usr/bin/env python
"""Offline drone survey (Fig. 3a): stitch → tile → classify → heatmap.

The Northwest Agricultural Research Station workflow from the paper:
drone captures are stitched into an orthomosaic (OpenDroneMap's role),
the mosaic is tiled into model inputs, the HARVEST pipeline classifies
every tile (corn growth stage), and the result renders as a field
heatmap.  The offline scenario then budgets the full-scale run on the
A100 cluster.

Everything below actually executes: real stitching, real tiling, real
NumPy ViT inference on each tile.  The field is scaled down so the demo
runs in seconds on a laptop.

Run:  python examples/offline_drone_survey.py
"""

import numpy as np

from repro.continuum.pipeline import EndToEndPipeline
from repro.continuum.scenarios import OfflineScenario
from repro.continuum.stitching import (
    StitchCostModel,
    TilePlacement,
    plan_survey,
    stitch_mosaic,
    tile_mosaic,
)
from repro.data.datasets import get_dataset
from repro.data.synthetic import synth_image
from repro.hardware.platform import A100
from repro.models.functional import build_functional
from repro.models.zoo import get_model
from repro.preprocessing.pipelines import model_pipeline

FIELD_W, FIELD_H = 320, 192      # demo field (canvas pixels)
CAPTURE_W, CAPTURE_H = 96, 64    # demo drone frame
TILE = 32                        # model input tile (ViT Tiny/Small size)


def main() -> None:
    scenario = OfflineScenario(tile_size=TILE)
    scenario.validate_platform(A100)
    rng = np.random.default_rng(7)

    # 1. Fly the survey: overlapping captures over the field.
    origins = plan_survey(FIELD_W, FIELD_H, CAPTURE_W, CAPTURE_H,
                          overlap=0.3)
    placements = [
        TilePlacement(synth_image(CAPTURE_W, CAPTURE_H, rng), x, y)
        for x, y in origins
    ]
    print(f"survey: {len(placements)} captures over a "
          f"{FIELD_W}x{FIELD_H} field")

    # 2. Stitch the orthomosaic (the OpenDroneMap stage).
    mosaic = stitch_mosaic(placements, FIELD_W, FIELD_H)
    coverage = (mosaic.sum(axis=2) > 0).mean()
    print(f"stitched mosaic: {mosaic.shape[1]}x{mosaic.shape[0]}, "
          f"{coverage:.0%} covered")

    # 3. Tile and classify with a real ViT Tiny forward pass.
    tiles = tile_mosaic(mosaic, TILE, drop_partial=True)
    model = build_functional("vit_tiny", num_classes=23)  # growth stages
    preprocess = model_pipeline(TILE)
    batch = np.stack([preprocess(tile) for _, _, tile in tiles])
    logits = model(batch)
    stages = logits.argmax(axis=1)
    print(f"classified {len(tiles)} tiles into "
          f"{len(np.unique(stages))} distinct growth stages")

    # 4. Render the heatmap ("fine-grained heatmaps and other visual
    #    outputs").
    grid_w = FIELD_W // TILE
    grid_h = FIELD_H // TILE
    heat = np.full((grid_h, grid_w), -1, dtype=int)
    for (x, y, _), stage in zip(tiles, stages):
        heat[y // TILE, x // TILE] = stage
    glyphs = "0123456789abcdefghijklmn"
    print("growth-stage heatmap (one glyph per tile):")
    for row in heat:
        print("  " + "".join(glyphs[s] if s >= 0 else "." for s in row))

    # 5. Budget the full-scale run: a real 40-hectare survey on the A100.
    print("\n== full-scale budget (A100 offline scenario) ==")
    captures = 1800                       # 4K drone frames per field
    frame_px = 3840 * 2160
    stitch = StitchCostModel()
    stitch_s = stitch.stitch_seconds(captures * frame_px,
                                     cpu_cores=A100.cpu_cores)
    mosaic_px = captures * frame_px * 0.45  # post-overlap area
    n_tiles = int(mosaic_px // (224 * 224))
    pipeline = EndToEndPipeline(get_model("vit_base").graph, A100)
    result = pipeline.evaluate(get_dataset("corn_growth"))
    infer_s = n_tiles / result.throughput
    print(f"stitching {captures} 4K frames: {stitch_s / 60:.1f} min "
          f"on {A100.cpu_cores} cores")
    print(f"inference on {n_tiles:,} tiles @ {result.throughput:.0f} "
          f"img/s: {infer_s / 60:.1f} min ({result.bottleneck}-bound)")
    print(f"total field turnaround: {(stitch_s + infer_s) / 60:.1f} min")


if __name__ == "__main__":
    main()
