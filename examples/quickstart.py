#!/usr/bin/env python
"""Quickstart: reproduce the paper's headline results in one run.

Regenerates Tables 1-3, sweeps one engine curve, prices one preprocessing
matrix, evaluates one end-to-end pipeline, and asks the tuning advisor
for a deployment recommendation.

Run:  python examples/quickstart.py
"""

from repro import (
    A100,
    JETSON,
    CharacterizationStudy,
    EndToEndPipeline,
    InferenceEngine,
    TuningAdvisor,
    get_dataset,
    get_model,
)
from repro.analysis.compare import render_comparison


def main() -> None:
    study = CharacterizationStudy()

    # ------------------------------------------------------------------
    print(study.table1().render())
    print(study.table3().render())

    # ------------------------------------------------------------------
    # One engine curve (Fig. 5/6): ViT Small on the A100.
    print("== ViT Small on A100: engine scaling (Fig. 5/6) ==")
    engine = InferenceEngine(get_model("vit_small").graph, A100)
    print(f"{'batch':>6} {'MFU':>7} {'TFLOPS':>8} {'img/s':>9} "
          f"{'latency':>9}")
    for batch in (1, 8, 64, 256, 1024):
        point = engine.predict_point(batch)
        print(f"{batch:>6} {point.mfu:>7.2%} "
              f"{point.achieved_tflops:>8.1f} {point.throughput:>9.0f} "
              f"{point.latency_seconds * 1e3:>7.2f}ms")
    print()

    # ------------------------------------------------------------------
    # One end-to-end cell (Fig. 8): ResNet50 + Plant Village on Jetson.
    print("== ResNet50 + Plant Village on Jetson: end-to-end (Fig. 8) ==")
    pipeline = EndToEndPipeline(get_model("resnet50").graph, JETSON)
    result = pipeline.evaluate(get_dataset("plant_village"))
    print(f"batch {result.batch_size}: "
          f"{result.throughput:.0f} img/s, "
          f"{result.latency_seconds * 1e3:.1f} ms/request, "
          f"bottleneck: {result.bottleneck}\n")

    # ------------------------------------------------------------------
    # Tuning advice (the paper's Section 3.3/5 guidance, automated).
    print("== Tuning advisor: 60 QPS deployment on the Jetson ==")
    advisor = TuningAdvisor(JETSON)
    for rec in advisor.recommend_model(get_dataset("plant_village")):
        flag = "ok " if rec.meets_target else "MISS"
        print(f"  [{flag}] {rec.model:10s} @BS{rec.batch_size:<3d} "
              f"{rec.throughput:7.0f} img/s  "
              f"{rec.latency_seconds * 1e3:6.1f} ms  "
              f"({rec.bottleneck}-bound)")
    print()

    # ------------------------------------------------------------------
    # Paper-vs-model anchor comparison (the EXPERIMENTS.md data).
    print(render_comparison())


if __name__ == "__main__":
    main()
