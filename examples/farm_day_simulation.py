#!/usr/bin/env python
"""A full farm day at the research station, end to end.

Combines the extension subsystems into one operational narrative:

1. a **deployment manifest** (the reviewable document an operator edits)
   builds the A100 serving stack — two ViT-Small instances behind
   dynamic batching, fed by a DALI preprocessing backend;
2. a **diurnal arrival trace** (dawn-to-dusk demand with a survey-upload
   burst at mid-morning) replays against the stack on the
   discrete-event simulator, with a 1% instance fault rate injected;
3. the run exports **Prometheus metrics** and bootstrap
   **confidence intervals**, the way an operations review would read it;
4. the **energy model** prices the day, cloud vs edge.

Run:  python examples/farm_day_simulation.py
"""

from collections import Counter

from repro.analysis.stats import latency_cis
from repro.continuum.deployment import build_stack, load_manifest
from repro.hardware.platform import A100, JETSON
from repro.hardware.power import EnergyModel
from repro.models.zoo import get_model
from repro.serving.exporter import export_metrics
from repro.serving.faults import FaultModel
from repro.serving.metrics import summarize_responses
from repro.serving.traces import (
    TraceReplayer,
    burst_trace,
    diurnal_trace,
)

MANIFEST = {
    "name": "station-day",
    "platform": "a100",
    "scenario": "online",
    "models": [
        {"model": "vit_small", "dataset": "plant_village",
         "max_batch_size": 64, "max_queue_delay_ms": 3.0,
         "instances": 2},
    ],
}


def main() -> None:
    manifest = load_manifest(MANIFEST)
    server = build_stack(manifest)
    # Field-grade realism: 1% of engine executions fail and retry.
    server.inject_faults("vit_small",
                         FaultModel(0.01, detect_seconds=0.02, seed=11))

    # ------------------------------------------------------------------
    # The day's demand: diurnal scouting + one burst of survey uploads.
    day = diurnal_trace(duration=86400, peak_rate=1.2, base_rate=0.02,
                        seed=42)
    uploads = burst_trace(duration=86400, background_rate=0.0001,
                          bursts=1, burst_rate=60.0, burst_seconds=600,
                          seed=43)
    scale = 0.01  # compress the day 100x (rates scale up 100x)
    TraceReplayer(server, "vit_small", time_scale=scale).schedule(day)
    TraceReplayer(server, "vit_small", images_per_request=8,
                  time_scale=scale).schedule(uploads)
    print(f"replaying {len(day)} scouting requests + {len(uploads)} "
          "survey uploads (8 images each), compressed 100x ...")
    server.run()

    # ------------------------------------------------------------------
    statuses = Counter(r.status for r in server.responses)
    ok = [r for r in server.responses if r.ok]
    stats = summarize_responses(ok)
    cis = latency_cis([r.latency for r in ok][:5000])
    print(f"\nserved {stats.count} requests / {stats.images} images")
    print(f"statuses: {dict(statuses)}")
    print(f"latency: mean {cis['mean'].estimate * 1e3:.1f} ms "
          f"[{cis['mean'].low * 1e3:.1f}, {cis['mean'].high * 1e3:.1f}]"
          f"  p95 {cis['p95'].estimate * 1e3:.1f} ms "
          f"[{cis['p95'].low * 1e3:.1f}, {cis['p95'].high * 1e3:.1f}]")

    print("\n-- metrics excerpt (Prometheus exposition) --")
    for line in export_metrics(server).splitlines():
        if line.startswith("harvest_request_total") or \
                line.startswith("harvest_throughput"):
            print("  " + line)

    # ------------------------------------------------------------------
    # What did the day cost, and what would the edge have cost?
    graph = get_model("vit_small").graph
    images = stats.images
    cloud = EnergyModel(graph, A100).point(64)
    edge = EnergyModel(graph, JETSON).point(32)
    print("\n-- energy ledger for the day's images --")
    print(f"  A100 : {images * cloud.joules_per_image / 3600:8.1f} Wh "
          f"({cloud.joules_per_image * 1e3:.1f} mJ/img)")
    print(f"  Jetson:{images * edge.joules_per_image / 3600:8.1f} Wh "
          f"({edge.joules_per_image * 1e3:.1f} mJ/img) — but at "
          f"{edge.throughput:.0f} img/s the burst would take "
          f"{8 * len(uploads) / edge.throughput / 60:.0f} min to drain")


if __name__ == "__main__":
    main()
