#!/usr/bin/env python
"""Real-time ground vehicle (Fig. 3b): camera → rectify → classify on
the Jetson, against the 60 QPS deadline.

The CRSA use case: a GoPro on a ground vehicle streams raw frames; each
frame is perspective-corrected (the dataset-specific preprocessing),
resized to the model input, and classified on the Jetson Orin Nano under
the real-time scenario's 16.7 ms budget.  The serving simulator then
replays a camera stream to measure sustained frame deadlines.

The functional stage runs on scaled-down frames so the demo is quick;
the performance numbers use the calibrated Jetson models at full 4K.

Run:  python examples/realtime_ground_vehicle.py
"""

import numpy as np

from repro.continuum.scenarios import RealTimeScenario
from repro.data.datasets import get_dataset
from repro.data.synthetic import synth_crsa_frame
from repro.engine.latency import LatencyModel
from repro.hardware.platform import JETSON
from repro.models.functional import build_functional
from repro.models.zoo import get_model
from repro.preprocessing.frameworks import OpenCVCPU
from repro.preprocessing.pipelines import crsa_pipeline
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def main() -> None:
    scenario = RealTimeScenario(camera_fps=30.0)
    scenario.validate_platform(JETSON)
    crsa = get_dataset("crsa")

    # ------------------------------------------------------------------
    # 1. Functional path: rectify + classify one (scaled) camera frame.
    frame = synth_crsa_frame(480, 270)  # 1/8-scale GoPro frame
    pipeline = crsa_pipeline(32, frame_hw=(270, 480))
    model_input = pipeline(frame)
    model = build_functional("vit_tiny", num_classes=4)  # residue classes
    logits = model(model_input[None])
    print(f"frame {frame.shape[1]}x{frame.shape[0]} -> rectified -> "
          f"model input {tuple(model_input.shape)} -> "
          f"class {int(logits.argmax())}")

    # ------------------------------------------------------------------
    # 2. Budget check at full 4K: which stages fit the frame interval?
    print(f"\n== per-frame budget at {scenario.camera_fps:.0f} fps "
          f"({scenario.frame_interval_seconds * 1e3:.1f} ms) ==")
    preproc = OpenCVCPU(32).estimate(crsa, JETSON)
    engine = LatencyModel(get_model("vit_tiny").graph, JETSON)
    infer_ms = engine.latency(1) * 1e3
    print(f"CPU perspective+resize (CV2): "
          f"{preproc.per_image_seconds * 1e3:8.1f} ms "
          f"{'MISS' if preproc.per_image_seconds > scenario.frame_interval_seconds else 'ok'}")
    print(f"ViT Tiny inference @BS1:      {infer_ms:8.1f} ms "
          f"{'MISS' if infer_ms / 1e3 > scenario.frame_interval_seconds else 'ok'}")
    print("-> the paper's conclusion: the CPU-bound CRSA preprocessing "
          "is unsuitable for real time;")
    print("   GPU-accelerating it is listed as future work.")

    # ------------------------------------------------------------------
    # 3. What *does* fit: pre-rectified region-of-interest crops at the
    #    camera rate, served through the Triton-like scheduler.
    print(f"\n== serving a {scenario.camera_fps:.0f} fps ROI stream on "
          "the Jetson ==")
    server = TritonLikeServer()
    server.register(ModelConfig(
        "vit_tiny",
        lambda n: engine.latency(max(1, n)),
        batcher=BatcherConfig(max_batch_size=8, max_queue_delay=0.004)))
    client = OpenLoopClient(server, "vit_tiny",
                           rate_per_second=scenario.camera_fps,
                           num_requests=300, seed=1)
    client.start()
    server.run()
    stats = summarize_responses(server.responses, warmup_fraction=0.1)
    deadline = scenario.frame_interval_seconds
    misses = sum(r.latency > deadline for r in server.responses)
    print(f"served {stats.count} frames at "
          f"{stats.throughput_rps:.1f} fps, p95 "
          f"{stats.p95_latency * 1e3:.1f} ms, "
          f"{misses} deadline misses")


if __name__ == "__main__":
    main()
