"""Integration tests: every qualitative claim in the paper's evaluation.

Each test quotes the claim it checks.  These are the reproduction's
"shape" guarantees — who wins, by roughly what factor, where crossovers
fall — independent of the calibrated absolute numbers.
"""

import pytest

from repro.continuum.pipeline import EndToEndPipeline
from repro.core.sweeps import engine_sweep, preprocessing_sweep
from repro.data.datasets import get_dataset
from repro.engine.calibration import LATENCY_TARGET_SECONDS
from repro.engine.latency import LatencyModel
from repro.engine.mfu import MFUModel
from repro.hardware.platform import A100, JETSON, V100
from repro.models.layers import LayerCategory


class TestSection4Models:
    def test_vit_small_more_flops_but_fewer_params_than_resnet(
            self, vit_small, resnet50):
        """'comparing ViT Small with the CNN-based ResNet50 model, we
        observe that despite having a smaller parameter count, ViT
        exhibits higher computational demand.'"""
        assert vit_small.total_params() < resnet50.total_params()
        assert vit_small.reported_gflops() > resnet50.reported_gflops()

    def test_vit_tiny_mlp_attention_split(self, vit_tiny):
        """'the majority of computation is consumed by MLP layers,
        accounting for 81.73% in ViT Tiny, while attention layers account
        for 18.23%.'"""
        mlp, attn = vit_tiny.mlp_attention_split()
        assert mlp * 100 == pytest.approx(81.73, abs=0.3)
        assert attn * 100 == pytest.approx(18.23, abs=0.3)

    def test_resnet_conv_dominance(self, resnet50):
        """'convolution operations account for 99.5% of ResNet50's
        overall computational intensity.'"""
        share = resnet50.compute_breakdown()[LayerCategory.CONV]
        assert share * 100 == pytest.approx(99.5, abs=1.0)


class TestSection41EnginePerformance:
    def test_mfu_gap_to_practical_bound(self, all_models, platforms):
        """'a substantial gap exists between the MFU and the practical
        upper bound during real-world inference.'"""
        for platform in platforms:
            for graph in all_models:
                sweep = engine_sweep(graph, platform)
                assert sweep[-1].achieved_tflops < \
                    0.5 * platform.practical_tflops

    def test_batch_size_narrows_the_gap(self, vit_small, platforms):
        """'This gap can be narrowed through ... increasing batch size.'"""
        for platform in platforms:
            sweep = engine_sweep(vit_small, platform)
            assert sweep[-1].mfu > 2 * sweep[0].mfu

    def test_larger_models_narrow_the_gap(self, vit_tiny, vit_base):
        """'... and deploying larger models, which similarly improves
        MFU.'"""
        for platform in (A100, V100):
            tiny = MFUModel(vit_tiny, platform)
            base = MFUModel(vit_base, platform)
            assert base.mfu(64) > tiny.mfu(64)

    def test_resnet_superior_mfu(self, vit_small, resnet50, platforms):
        """'ResNet achieves superior MFU ... CNN-based architectures like
        ResNet may be better optimized for the tested platform.'"""
        for platform in platforms:
            batch = 64
            assert MFUModel(resnet50, platform).mfu(batch) > \
                MFUModel(vit_small, platform).mfu(batch)

    def test_diminishing_returns_on_batch_size(self, all_models):
        """'increasing batch size demonstrates diminishing returns: MFU
        improves gradually before eventually plateauing.'"""
        for graph in all_models:
            model = MFUModel(graph, A100)
            early = model.mfu(16) - model.mfu(8)
            late = model.mfu(1024) - model.mfu(512)
            assert late < early

    def test_jetson_oom_conditions(self, vit_base):
        """'... or triggering out-of-memory (OOM) conditions,
        particularly on resource-constrained devices such as the Jetson
        platform.'"""
        sweep = engine_sweep(vit_base, JETSON)
        assert sweep[-1].batch_size == 8  # stops well short of the grid


class TestSection41Latency:
    def test_a100_operating_region_beyond_16(self, vit_tiny):
        """'On A100 hardware, this requires batch sizes exceeding 16.'"""
        model = LatencyModel(vit_tiny, A100)
        b = model.mfu_model.near_saturation_batch(0.8)
        assert b > 16

    def test_v100_batch_8_suffices(self, vit_small):
        """'on V100, batch size 8 suffices.'"""
        model = LatencyModel(vit_small, V100)
        b = model.mfu_model.near_saturation_batch(0.8)
        assert b <= 16

    def test_jetson_narrower_operating_margins(self, vit_tiny):
        """'Jetson platforms offer considerably narrower operating
        margins.'"""
        # The gap between the latency-feasible batch and the saturation
        # batch is much smaller on the Jetson than the A100.
        from repro.engine.calibration import batch_grid

        def margin(platform):
            model = LatencyModel(vit_tiny, platform)
            feasible = model.max_batch_within_latency(
                batch_grid(platform.name))
            needed = model.mfu_model.near_saturation_batch(0.9)
            return feasible / needed

        assert margin(JETSON) < margin(A100)

    def test_60qps_threshold_binds_somewhere(self, vit_base):
        """'the red line demarcates the 16.7ms threshold necessary to
        sustain 60 queries per second.'"""
        points = engine_sweep(vit_base, A100)
        assert any(p.latency_seconds > LATENCY_TARGET_SECONDS
                   for p in points)
        assert any(p.latency_seconds <= LATENCY_TARGET_SECONDS
                   for p in points)


class TestSection42Preprocessing:
    def test_dali_output_size_ordering(self):
        """'smaller output images (e.g., DALI 32) achieve faster
        preprocessing speeds.'"""
        for platform in (A100, V100, JETSON):
            cells = preprocessing_sweep(platform)
            pv = {c.framework: c.per_image_seconds for c in cells
                  if c.dataset == "plant_village"}
            assert pv["DALI 32"] < pv["DALI 96"] < pv["DALI 224"]

    def test_dataset_convergence_at_high_resolution(self):
        """'As transformation complexity dominates at higher resolutions
        (DALI 96, 224), performance differences across datasets
        converge.'"""
        cells = preprocessing_sweep(A100)

        def spread(framework):
            times = [c.per_image_seconds for c in cells
                     if c.framework == framework and c.dataset != "crsa"]
            return (max(times) - min(times)) / min(times)

        assert spread("DALI 224") < spread("DALI 32")

    def test_pytorch_varies_by_dataset(self):
        """'PyTorch serves as the CPU-based baseline, exhibiting varying
        performance across datasets.'"""
        cells = [c for c in preprocessing_sweep(A100)
                 if c.framework == "PyTorch"]
        times = [c.per_image_seconds for c in cells]
        assert max(times) > 1.3 * min(times)
        # The TIFF dataset prices differently from a similar-sized JPEG
        # dataset (the encoding-format attribution).
        by_dataset = {c.dataset: c.per_image_seconds for c in cells}
        assert by_dataset["weed_soybean"] != pytest.approx(
            by_dataset["corn_growth"], rel=0.02)

    def test_cv2_unsuitable_for_real_time(self):
        """'OpenCV ... demonstrates poor performance in real-time
        scenarios and is therefore excluded from further evaluation.'"""
        cells = [c for c in preprocessing_sweep(JETSON)
                 if c.framework == "CV2"]
        for cell in cells:
            assert cell.per_image_seconds > 10 * LATENCY_TARGET_SECONDS


class TestSection43EndToEnd:
    def test_a100_large_models_reach_engine_bound(self, vit_small,
                                                  vit_base):
        """'larger models such as ViT-Base and ViT-Small benefit from
        effective preprocessing-inference latency overlap, achieving
        performance approaching the model engine's theoretical upper
        bound.'"""
        for graph in (vit_small, vit_base):
            result = EndToEndPipeline(graph, A100).evaluate(
                get_dataset("corn_growth"))
            assert result.throughput >= 0.95 * result.engine_throughput

    def test_v100_preprocessing_bottleneck(self, vit_tiny, resnet50):
        """'smaller models remain preprocessing-bottlenecked,
        particularly on platforms with limited preprocessing capabilities
        like the V100.'"""
        for graph in (vit_tiny, resnet50):
            result = EndToEndPipeline(graph, V100).evaluate(
                get_dataset("plant_village"))
            assert result.bottleneck == "preprocess"

    def test_jetson_inverted_dynamics(self, all_models):
        """'The resource-constrained Jetson platform exhibits inverted
        performance dynamics ... ViT-Base ... demonstrates the most
        severe performance degradation.'"""
        from repro.continuum.pipeline import e2e_batch_size
        from repro.engine.oom import max_batch_size

        shrink = {}
        for graph in all_models:
            shrink[graph.name] = (e2e_batch_size(JETSON, graph)
                                  / max_batch_size(graph, JETSON))
        assert shrink["vit_base"] == min(shrink.values())

    def test_cloud_outperforms_edge_end_to_end(self, vit_tiny):
        """The continuum premise: cloud serves far higher throughput;
        the edge exists for latency/locality, not speed."""
        cloud = EndToEndPipeline(vit_tiny, A100).evaluate(
            get_dataset("plant_village"))
        edge = EndToEndPipeline(vit_tiny, JETSON).evaluate(
            get_dataset("plant_village"))
        assert cloud.throughput > 5 * edge.throughput


class TestConclusionGuidance:
    def test_moderate_batches_suffice_for_small_models(self, vit_tiny):
        """'For smaller models, moderate batch sizes often suffice to
        utilize most platform capability and meet inference
        requirements.'"""
        model = MFUModel(vit_tiny, V100)
        assert model.mfu(64) > 0.9 * model.mfu_peak

    def test_multi_instance_recommended_beyond_saturation(self, vit_tiny):
        """'Beyond this threshold, increasing batch size yields
        diminishing returns, making multi-instance strategies more
        effective for improving responsiveness.'"""
        from repro.core.guidance import TuningAdvisor

        rec = TuningAdvisor(A100).recommend_batch(vit_tiny)
        assert rec.multi_instance_suggested

    def test_multi_instance_improves_responsiveness_in_simulation(self):
        """Verify the recommendation holds in the serving simulator:
        two instances at batch B beat one instance at batch 2B on tail
        latency at equal load."""
        from repro.engine.latency import LatencyModel
        from repro.models.vit import build_vit
        from repro.serving.batcher import BatcherConfig
        from repro.serving.client import OpenLoopClient
        from repro.serving.metrics import summarize_responses
        from repro.serving.server import ModelConfig, TritonLikeServer

        graph = build_vit("vit_tiny")
        latency = LatencyModel(graph, A100)

        def run(instances, max_batch):
            server = TritonLikeServer()
            server.register(ModelConfig(
                "m", lambda n: latency.latency(max(1, n)),
                batcher=BatcherConfig(max_batch_size=max_batch,
                                      max_queue_delay=0.002),
                instances=instances))
            client = OpenLoopClient(server, "m", rate_per_second=15000,
                                   num_requests=6000, seed=11)
            client.start()
            server.run()
            return summarize_responses(server.responses,
                                       warmup_fraction=0.1)

        single = run(instances=1, max_batch=256)
        multi = run(instances=2, max_batch=128)
        assert multi.p95_latency < single.p95_latency
