"""Serverless execution model: cold starts, reaping, and the bill."""

import numpy as np
import pytest

from repro.faas import (
    CostLedger,
    CostModel,
    FaaSBackend,
    FaaSFunctionConfig,
    FaaSPlatformModel,
    get_faas_platform,
    list_faas_platforms,
)
from repro.serving.events import Simulator
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request
from repro.serving.tracectx import TraceContext


def make_platform(**overrides) -> FaaSPlatformModel:
    params = dict(name="test", cold_start_base_seconds=0.5,
                  cold_start_jitter_seconds=0.2, artifact_bytes=125e6,
                  artifact_bandwidth_bps=1e9, memory_gb=2.0)
    params.update(overrides)
    return FaaSPlatformModel(**params)


def make_backend(seed=0, registry=None, **config_overrides):
    sim = Simulator()
    backend = FaaSBackend(sim, registry=registry, seed=seed)
    params = dict(name="fn", service_time=lambda n: 0.01 * n,
                  platform=make_platform(), concurrency_limit=2,
                  keep_alive_seconds=10.0)
    params.update(config_overrides)
    backend.register(FaaSFunctionConfig(**params))
    return sim, backend


class TestPlatformModel:
    def test_expected_cold_start_is_sandbox_plus_init(self):
        platform = make_platform()
        assert platform.init_seconds == pytest.approx(1.0)
        assert platform.expected_cold_start_seconds == pytest.approx(
            1.5)

    def test_sample_without_rng_degrades_to_expected(self):
        platform = make_platform()
        sandbox, init = platform.sample_cold_start(None)
        assert sandbox == pytest.approx(0.5)
        assert init == pytest.approx(1.0)

    def test_zero_jitter_consumes_no_randomness(self):
        platform = make_platform(cold_start_jitter_seconds=0.0)
        rng = np.random.default_rng(5)
        witness = np.random.default_rng(5)
        platform.sample_cold_start(rng)
        assert rng.random() == witness.random()

    def test_jitter_draws_stay_within_the_half_width(self):
        platform = make_platform()
        rng = np.random.default_rng(1)
        for _ in range(50):
            sandbox, _ = platform.sample_cold_start(rng)
            assert 0.3 <= sandbox <= 0.7

    def test_validation(self):
        with pytest.raises(ValueError, match="jitter"):
            make_platform(cold_start_jitter_seconds=0.6)
        with pytest.raises(ValueError, match="bandwidth"):
            make_platform(artifact_bandwidth_bps=0.0)
        with pytest.raises(ValueError, match="memory"):
            make_platform(memory_gb=0.0)

    def test_preset_lookup(self):
        assert "lambda_like" in list_faas_platforms()
        assert get_faas_platform("LAMBDA_LIKE").name == "lambda_like"
        with pytest.raises(KeyError, match="available"):
            get_faas_platform("nope")


class TestCostModel:
    def test_billed_seconds_rounds_up_to_the_quantum(self):
        model = CostModel()
        assert model.billed_seconds(0.0101) == pytest.approx(0.011)
        assert model.billed_seconds(0.0) == pytest.approx(0.001)

    def test_invocation_cost_is_request_plus_compute(self):
        model = CostModel(gb_second_price=1e-5, invocation_price=2e-7)
        cost = model.invocation_cost(0.1, memory_gb=2.0)
        assert cost == pytest.approx(2e-7 + 0.1 * 2.0 * 1e-5)

    def test_cost_rates(self):
        model = CostModel(gb_second_price=1e-5, invocation_price=0.0,
                          provisioned_gb_second_price=2e-6)
        rate = model.serverless_cost_per_second(10.0, 0.1, 2.0)
        assert rate == pytest.approx(10.0 * 0.1 * 2.0 * 1e-5)
        pool = model.provisioned_pool_cost_per_second(3, 2.0)
        assert pool == pytest.approx(3 * 2.0 * 2e-6)

    def test_ledger_accumulates_and_summarizes(self):
        ledger = CostLedger(CostModel(gb_second_price=1e-5,
                                      invocation_price=1e-7))
        ledger.charge_invocation(0.1, 2.0)
        ledger.charge_init(1.0, 2.0)
        ledger.charge_provisioned(100.0, 2.0)
        summary = ledger.summary()
        assert summary["invocations"] == 1
        assert summary["gb_seconds"] == pytest.approx(0.2 + 2.0)
        assert summary["provisioned_gb_seconds"] == pytest.approx(200.0)
        assert summary["total_usd"] == pytest.approx(
            ledger.compute_cost + ledger.invocation_cost +
            ledger.provisioned_cost)

    def test_validation(self):
        with pytest.raises(ValueError, match="quantum"):
            CostModel(billing_quantum_seconds=0.0)
        with pytest.raises(ValueError, match="prices"):
            CostModel(gb_second_price=-1.0)


class TestColdAndWarmStarts:
    def test_first_request_pays_the_cold_start(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.run()
        response = backend.responses[0]
        # Expected-value regime: sandbox 0.5 + init 1.0 + execute 0.01.
        assert response.latency == pytest.approx(1.51)
        assert "faas:cold_start_seconds" in response.request.stage_times

    def test_second_request_within_keep_alive_runs_warm(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.schedule(5.0, lambda: backend.submit(Request("fn")))
        sim.run()
        warm = backend.responses[1]
        assert warm.latency == pytest.approx(0.01)
        assert "faas:cold_start_seconds" not in warm.request.stage_times
        stats = backend.function_stats("fn")
        assert stats.cold_starts == 1
        assert stats.warm_starts == 1

    def test_keep_alive_expiry_forces_a_second_cold_start(self):
        sim, backend = make_backend(seed=None, keep_alive_seconds=3.0)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.schedule(30.0, lambda: backend.submit(Request("fn")))
        sim.run()
        stats = backend.function_stats("fn")
        assert stats.cold_starts == 2
        assert stats.reaps == 2
        assert backend.total_instances() == 0

    def test_scale_to_zero_after_run_drains(self):
        sim, backend = make_backend(seed=None)
        for t in (0.0, 0.1, 0.2):
            sim.schedule(t, lambda: backend.submit(Request("fn")))
        sim.run()
        # run() drains daemon reap timers too: the pool is empty and
        # every spawn has a matching reap.
        assert backend.total_instances() == 0
        stats = backend.function_stats("fn")
        assert stats.reaps == stats.cold_starts

    def test_concurrency_limit_queues_fifo(self):
        sim, backend = make_backend(
            seed=None, concurrency_limit=1,
            service_time=lambda n: 1.0)
        order = []
        backend.on_response(
            lambda r: order.append(r.request.request_id))
        ids = []
        for t in (0.0, 0.1, 0.2):
            def submit():
                request = Request("fn")
                ids.append(request.request_id)
                backend.submit(request)
            sim.schedule(t, submit)
        sim.run()
        assert order == ids
        stats = backend.function_stats("fn")
        assert stats.cold_starts == 1 and stats.warm_starts == 2

    def test_bounded_queue_rejects_overflow(self):
        sim, backend = make_backend(
            seed=None, concurrency_limit=1, max_queue_depth=1,
            service_time=lambda n: 10.0)
        for t in (0.0, 0.1, 0.2, 0.3):
            sim.schedule(t, lambda: backend.submit(Request("fn")))
        sim.run()
        statuses = sorted(r.status for r in backend.responses)
        assert statuses.count("rejected") == 2
        assert backend.function_stats("fn").rejected == 2


class TestDeterminism:
    def run_latencies(self, seed):
        sim, backend = make_backend(seed=seed)
        for t in (0.0, 0.05, 30.0, 31.0, 60.0):
            sim.schedule(t, lambda: backend.submit(Request("fn")))
        sim.run()
        return [r.latency for r in backend.responses]

    def test_seeded_replays_are_identical(self):
        assert self.run_latencies(3) == self.run_latencies(3)

    def test_different_seeds_draw_different_jitter(self):
        assert self.run_latencies(3) != self.run_latencies(4)

    def test_expected_regime_uses_no_randomness(self):
        latencies = self.run_latencies(None)
        assert latencies == self.run_latencies(None)
        # Every cold start lands exactly on the expected value.
        platform = make_platform()
        cold = platform.expected_cold_start_seconds + 0.01
        assert latencies[0] == pytest.approx(cold)


class TestSpansAndMetrics:
    def test_cold_request_carries_cold_start_init_execute_spans(self):
        sim, backend = make_backend(seed=None)
        trace = TraceContext(trace_id=1, start=0.0)
        request = Request("fn", trace=trace)
        sim.schedule(0.0, lambda: backend.submit(request))
        sim.run()
        names = [s.name for s in trace.spans if s.name != "request"]
        assert names == ["cold_start", "init", "execute"]
        by_name = {s.name: s for s in trace.spans}
        assert by_name["cold_start"].end == pytest.approx(0.5)
        assert by_name["init"].end == pytest.approx(1.5)
        assert by_name["execute"].category == "execute"

    def test_warm_request_has_only_the_execute_span(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        trace = TraceContext(trace_id=2, start=5.0)
        sim.schedule(5.0, lambda: backend.submit(
            Request("fn", trace=trace)))
        sim.run()
        names = [s.name for s in trace.spans if s.name != "request"]
        assert names == ["execute"]

    def test_queued_request_records_queue_wait(self):
        sim, backend = make_backend(
            seed=None, concurrency_limit=1,
            service_time=lambda n: 1.0)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        trace = TraceContext(trace_id=3, start=0.1)
        sim.schedule(0.1, lambda: backend.submit(
            Request("fn", trace=trace)))
        sim.run()
        queue_span = next(s for s in trace.spans
                          if s.name == "queue_wait")
        assert queue_span.end > queue_span.start

    def test_reap_instants_land_on_the_lifecycle_trace(self):
        sim, backend = make_backend(seed=None, keep_alive_seconds=2.0)
        lifecycle = TraceContext(trace_id=99, start=0.0)
        backend.attach_lifecycle_trace(lifecycle)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.run()
        reaps = [s for s in lifecycle.spans if s.name == "reap"]
        assert len(reaps) == 1
        assert reaps[0].args["function"] == "fn"

    def test_prometheus_families(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        sim2, backend = sim, FaaSBackend(sim, registry=registry,
                                         seed=None)
        backend.register(FaaSFunctionConfig(
            "fn", lambda n: 0.01, platform=make_platform(),
            keep_alive_seconds=2.0))
        for t in (0.0, 1.6, 30.0):
            sim.schedule(t, lambda: backend.submit(Request("fn")))
        sim.run()
        assert registry.get("faas_cold_starts_total").value(
            function="fn") == 2
        assert registry.get("faas_reaps_total").value(
            function="fn") == 2
        assert registry.get("faas_gb_seconds_total").value(
            function="fn") > 0
        assert registry.get("faas_warm_instances").value(
            function="fn") == 0
        histogram = registry.get("request_latency_seconds")
        assert histogram is not None

    def test_gb_second_meter_bills_init_and_execute(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.run()
        model = backend.cost.model
        expected = (model.gb_seconds(1.5, 2.0) +
                    model.gb_seconds(0.01, 2.0))
        assert backend.cost.gb_seconds == pytest.approx(expected)
        assert backend.cost.invocations == 1


class TestDrain:
    def test_drain_rejects_new_work_and_empties_the_pool(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.schedule(2.0, backend.begin_drain)
        sim.schedule(2.5, lambda: backend.submit(Request("fn")))
        sim.run()
        statuses = [r.status for r in backend.responses]
        assert statuses == ["ok", "rejected"]
        assert backend.is_drained
        assert backend.total_instances() == 0

    def test_drain_finishes_queued_work_first(self):
        sim, backend = make_backend(
            seed=None, concurrency_limit=1,
            service_time=lambda n: 1.0)
        for t in (0.0, 0.1, 0.2):
            sim.schedule(t, lambda: backend.submit(Request("fn")))
        sim.schedule(0.3, backend.begin_drain)
        assert not backend.is_drained
        sim.run()
        ok = [r for r in backend.responses if r.status == "ok"]
        assert len(ok) == 3
        assert backend.is_drained

    def test_drain_settles_pinned_cost_on_the_ledger(self):
        sim, backend = make_backend(seed=None)
        backend.set_provisioned_concurrency("fn", 1)
        sim.schedule(100.0, backend.begin_drain)
        sim.run()
        assert backend.is_drained
        # 100 s pinned x 2 GB accrued *on the ledger itself*, not
        # just in the open-pin projection of cost_summary().
        assert backend.cost.provisioned_gb_seconds == pytest.approx(
            100.0 * 2.0)
        summary = backend.cost_summary()
        assert summary["provisioned_gb_seconds"] == pytest.approx(
            100.0 * 2.0)

    def test_raising_the_floor_while_draining_is_a_noop(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        sim.schedule(2.0, backend.begin_drain)
        # A still-armed policy tick after begin_drain must not spawn
        # pinned instances that would stall the drain forever.
        sim.schedule(2.1, lambda: backend.set_provisioned_concurrency(
            "fn", 2))
        sim.run()
        assert backend.function_stats("fn").prewarms == 0
        assert backend.total_instances() == 0
        assert backend.is_drained

    def test_prewarm_in_flight_at_drain_is_reaped_once_warm(self):
        sim, backend = make_backend(seed=None)
        backend.set_provisioned_concurrency("fn", 1)
        # Drain lands mid-cold-start: the pinned prewarm must still
        # settle its pin and reap when initialization completes.
        sim.schedule(0.2, backend.begin_drain)
        sim.run()
        assert backend.total_instances() == 0
        assert backend.function_stats("fn").reaps == 1
        assert backend.is_drained
        assert backend.cost.provisioned_gb_seconds == pytest.approx(
            0.2 * 2.0)


class TestProvisionedConcurrency:
    def test_prewarmed_instances_absorb_cold_starts(self):
        sim, backend = make_backend(seed=None)
        backend.set_provisioned_concurrency("fn", 2)
        sim.schedule(5.0, lambda: backend.submit(Request("fn")))
        sim.schedule(5.01, lambda: backend.submit(Request("fn")))
        sim.run()
        stats = backend.function_stats("fn")
        assert stats.prewarms == 2
        assert stats.cold_starts == 0
        assert stats.warm_starts == 2

    def test_pinned_instances_survive_keep_alive(self):
        sim, backend = make_backend(seed=None, keep_alive_seconds=1.0)
        backend.set_provisioned_concurrency("fn", 1)
        sim.schedule(50.0, lambda: backend.submit(Request("fn")))
        sim.run()
        stats = backend.function_stats("fn")
        assert stats.cold_starts == 0
        assert backend.total_instances() == 1

    def test_pinned_time_accrues_at_the_provisioned_rate(self):
        sim, backend = make_backend(seed=None)
        backend.set_provisioned_concurrency("fn", 1)
        sim.schedule(100.0, lambda: None)
        sim.run()
        summary = backend.cost_summary()
        assert summary["provisioned_gb_seconds"] == pytest.approx(
            100.0 * 2.0)
        assert summary["provisioned_usd"] > 0

    def test_lowering_the_floor_lets_instances_age_out(self):
        sim, backend = make_backend(seed=None, keep_alive_seconds=5.0)
        backend.set_provisioned_concurrency("fn", 1)

        def lower():
            backend.set_provisioned_concurrency("fn", 0)

        sim.schedule(10.0, lower)
        sim.run()
        assert backend.total_instances() == 0
        assert backend.function_stats("fn").reaps == 1

    def test_initializing_prewarms_are_not_busy(self):
        sim, backend = make_backend(seed=None)
        backend.set_provisioned_concurrency("fn", 1)
        probes = []
        # t=0.1 is mid-sandbox (cold start takes 1.5 s): the prewarm
        # is live but serves nobody, so it is neither busy nor warm.
        sim.schedule(0.1, lambda: probes.append(
            (backend.busy_instances(), backend.total_instances(),
             backend.warm_instances("fn"))))
        sim.run()
        assert probes == [(0, 1, 0)]

    def test_cold_starting_request_counts_as_busy(self):
        sim, backend = make_backend(seed=None)
        sim.schedule(0.0, lambda: backend.submit(Request("fn")))
        probes = []
        sim.schedule(0.1, lambda: probes.append(
            backend.busy_instances()))
        sim.run()
        assert probes == [1]

    def test_floor_cannot_exceed_the_concurrency_limit(self):
        sim, backend = make_backend(seed=None, concurrency_limit=2)
        with pytest.raises(ValueError, match="concurrency limit"):
            backend.set_provisioned_concurrency("fn", 3)


class TestDuckTypeSurface:
    def test_scaling_layer_surface(self):
        sim, backend = make_backend(seed=None)
        assert backend.model_names() == ["fn"]
        assert backend.queue_depth() == 0
        assert backend.queued_images() == 0
        assert backend.busy_instances() == 0
        assert backend.total_instances() == 0
        stats = backend.instance_stats("fn")
        assert len(stats) == 1
        assert stats[0].busy_seconds == 0.0
        assert stats[0].fault_seconds == 0.0

    def test_mixed_fleet_behind_one_balancer(self):
        from repro.scale.balancer import (
            JoinShortestQueuePolicy,
            LoadBalancer,
        )
        from repro.serving.server import ModelConfig, TritonLikeServer

        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig("fn", lambda n: 0.01 * n))
        faas = FaaSBackend(sim, registry=registry, seed=None)
        faas.register(FaaSFunctionConfig(
            "fn", lambda n: 0.01 * n, platform=make_platform(),
            keep_alive_seconds=5.0))
        balancer = LoadBalancer([server, faas],
                                policy=JoinShortestQueuePolicy(),
                                registry=registry)
        for t in (0.0, 0.01, 0.02, 0.03):
            sim.schedule(t, lambda: balancer.submit(Request("fn")))
        sim.run()
        responses = balancer.collect()
        assert len(responses) == 4
        assert all(r.status == "ok" for r in responses)
        # Both execution models actually served traffic.
        assert len(server.responses) > 0
        assert len(faas.responses) > 0

    def test_autoscaler_reads_faas_utilization(self):
        from repro.scale.autoscaler import Autoscaler, AutoscalerConfig
        from repro.scale.balancer import LoadBalancer

        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        faas = FaaSBackend(sim, registry=registry, seed=None)
        faas.register(FaaSFunctionConfig(
            "fn", lambda n: 0.5, platform=make_platform(),
            keep_alive_seconds=60.0))
        balancer = LoadBalancer([faas], registry=registry)
        autoscaler = Autoscaler(
            balancer, replica_factory=lambda: None,
            config=AutoscalerConfig(slo_p95_seconds=10.0,
                                    max_replicas=1))
        for t in (0.0, 0.1, 0.2):
            sim.schedule(t, lambda: balancer.submit(Request("fn")))
        autoscaler.start()
        sim.run()
        # Windowed utilization folded the FaaS aggregate stats in
        # without crashing, and the latency window saw completions.
        assert autoscaler.utilization() >= 0.0
