"""Tests for repro.viz — the SVG chart renderer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz.charts import (
    render_figure_svg,
    render_heatmap_svg,
    save_all_figures,
)
from repro.viz.svg import Axis, BarChart, LineChart, SvgCanvas

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSvgCanvas:
    def test_document_structure(self):
        canvas = SvgCanvas(100, 50)
        canvas.line(0, 0, 10, 10)
        canvas.text(5, 5, "hello")
        root = parse(canvas.to_svg())
        assert root.tag == f"{SVG_NS}svg"
        assert root.get("width") == "100"
        tags = [child.tag for child in root]
        assert f"{SVG_NS}line" in tags
        assert f"{SVG_NS}text" in tags

    def test_text_is_escaped(self):
        canvas = SvgCanvas()
        canvas.text(0, 0, "a < b & c")
        root = parse(canvas.to_svg())  # parse fails if unescaped

    def test_polyline_needs_points(self):
        with pytest.raises(ValueError):
            SvgCanvas().polyline([(0, 0)])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)


class TestAxis:
    def test_linear_transform(self):
        axis = Axis("x")
        assert axis.transform(5, 0, 10) == 0.5

    def test_log_transform(self):
        axis = Axis("x", log=True)
        assert axis.transform(10, 1, 100) == pytest.approx(0.5)

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Axis("x", log=True).transform(0, 1, 10)


class TestLineChart:
    def test_renders_series_and_legend(self):
        chart = LineChart("t", Axis("x", log=True), Axis("y"))
        chart.add("a", [1, 10, 100], [1, 2, 3])
        chart.add("b", [1, 10, 100], [3, 2, 1], dashed=True)
        root = parse(chart.render())
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        assert any(p.get("stroke-dasharray") for p in polylines)
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "a" in texts and "b" in texts

    def test_empty_chart_rejected(self):
        chart = LineChart("t", Axis("x"), Axis("y"))
        with pytest.raises(ValueError):
            chart.render()

    def test_mismatched_series_rejected(self):
        chart = LineChart("t", Axis("x"), Axis("y"))
        with pytest.raises(ValueError):
            chart.add("a", [1, 2], [1])


class TestBarChart:
    def test_renders_bars_per_group(self):
        chart = BarChart("t", "img/s")
        chart.set_categories(["d1", "d2", "d3"])
        chart.add_group("g1", [1, 2, 3])
        chart.add_group("g2", [3, 2, 1])
        root = parse(chart.render())
        rects = root.findall(f"{SVG_NS}rect")
        # background + 6 bars + 2 legend swatches
        assert len(rects) == 1 + 6 + 2

    def test_group_length_validated(self):
        chart = BarChart("t", "y")
        chart.set_categories(["a", "b"])
        with pytest.raises(ValueError, match="values"):
            chart.add_group("g", [1.0])


class TestFigureRendering:
    @pytest.mark.parametrize("figure", ["fig5", "fig6", "fig7", "fig8"])
    def test_every_figure_parses(self, figure):
        root = parse(render_figure_svg(figure, "A100"))
        assert len(list(root)) > 5

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            render_figure_svg("fig9", "A100")

    def test_heatmap_skips_uncovered_cells(self):
        grid = np.array([[0, 1], [-1, 2]])
        root = parse(render_heatmap_svg(grid))
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 1 + 3  # background + covered cells

    def test_heatmap_validates_rank(self):
        with pytest.raises(ValueError):
            render_heatmap_svg(np.zeros(3))

    def test_save_all_figures(self, tmp_path):
        paths = save_all_figures(tmp_path)
        assert len(paths) == 12
        for path in paths:
            parse(path.read_text())
