"""Tests for repro.serving.tracectx — contexts and layer instrumentation."""

import pytest

from repro.continuum.network import get_link
from repro.continuum.pipeline import ContinuumReplayer
from repro.scale.admission import AdmissionConfig, AdmissionController
from repro.scale.balancer import LoadBalancer, RoundRobinPolicy
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.faults import FaultModel
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request
from repro.serving.server import EnsembleConfig, ModelConfig, \
    TritonLikeServer
from repro.serving.tracectx import SpanRecord, TraceContext, attach, \
    span_of


class TestTraceContext:
    def test_root_opens_at_start(self):
        ctx = TraceContext(7, start=1.5)
        assert ctx.trace_id == 7
        assert ctx.start == 1.5
        assert ctx.root.name == "request"
        assert not ctx.closed

    def test_children_parent_on_root_by_default(self):
        ctx = TraceContext(1)
        a = ctx.begin("a", 0.1)
        b = ctx.begin("b", 0.2, parent=a)
        assert ctx.root.parent_id is None
        assert a.parent_id == ctx.root.span_id
        assert b.parent_id == a.span_id
        assert ctx.children() == [a, b]

    def test_span_ids_sequential(self):
        ctx = TraceContext(1)
        spans = [ctx.begin(f"s{i}", 0.0) for i in range(3)]
        assert [s.span_id for s in spans] == [1, 2, 3]

    def test_end_validations(self):
        ctx = TraceContext(1)
        span = ctx.begin("a", 1.0)
        with pytest.raises(ValueError, match="before it starts"):
            ctx.end(span, 0.5)
        ctx.end(span, 2.0)
        assert span.duration == 1.0
        with pytest.raises(ValueError, match="already closed"):
            ctx.end(span, 3.0)

    def test_instant_has_zero_duration(self):
        ctx = TraceContext(1)
        mark = ctx.instant("decision", 0.4, verdict="admit")
        assert mark.closed and mark.duration == 0.0
        assert mark.args == {"verdict": "admit"}

    def test_close_is_monotonically_reclosable(self):
        # The server closes at respond time; the continuum replayer
        # re-closes after the downlink leg lands — last close wins.
        ctx = TraceContext(1, start=0.0)
        ctx.close(1.0, status="ok")
        ctx.close(1.5, status="ok")
        assert ctx.latency == 1.5
        with pytest.raises(ValueError, match="earlier"):
            ctx.close(1.2)

    def test_find(self):
        ctx = TraceContext(1)
        ctx.begin("execute", 0.0)
        ctx.begin("queue_wait", 0.0)
        ctx.begin("execute", 0.1)
        assert [s.start for s in ctx.find("execute")] == [0.0, 0.1]

    def test_attach_and_span_of(self):
        request = Request("m")
        assert span_of(request) is None
        ctx = attach(request, TraceContext(1))
        assert span_of(request) is ctx


def _traced_request(server, model="m"):
    request = Request(model)
    request.trace = TraceContext(1, start=server.sim.now)
    return request


class TestServerInstrumentation:
    def _server(self, **model_kw):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.01,
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.005),
            **model_kw))
        return server

    def test_queue_wait_and_execute_spans(self):
        server = self._server()
        request = _traced_request(server)
        server.submit(request)
        [response] = server.run()
        ctx = request.trace
        assert response.ok and ctx.closed and ctx.status == "ok"
        [wait] = ctx.find("queue_wait")
        [execute] = ctx.find("execute")
        [dispatch] = ctx.find("batch_dispatch")
        assert wait.closed and wait.end == dispatch.start
        assert execute.start >= wait.end
        assert execute.args["attempt"] == 0
        assert execute.end == ctx.root.end
        # Spans partition the request: no untracked gap at the seams.
        assert wait.start == ctx.start

    def test_retry_spans_carry_attempt_index(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.01,
            batcher=BatcherConfig(enabled=False),
            fault_model=FaultModel(1.0, detect_seconds=0.02),
            max_retries=1))
        request = _traced_request(server)
        server.submit(request)
        [response] = server.run()
        assert response.status == "failed"
        attempts = ctx_attempts = [s.args["attempt"]
                                   for s in request.trace.find("execute")]
        assert attempts == [0, 1]
        assert all(s.args["outcome"] == "fault"
                   for s in request.trace.find("execute"))
        assert ctx_attempts == [0, 1]
        assert request.trace.status == "failed"

    def test_queue_reject_closes_trace(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 1.0,
            batcher=BatcherConfig(enabled=False, max_queue_size=1)))
        server.submit(Request("m"))  # occupies the instance
        server.submit(Request("m"))  # fills the queue
        shed = _traced_request(server)
        server.submit(shed)
        ctx = shed.trace
        assert ctx.closed and ctx.status == "rejected"
        assert ctx.find("queue_reject")
        assert ctx.latency == 0.0
        server.run()

    def test_drain_reject_marks_trace(self):
        server = self._server()
        server.begin_drain()
        request = _traced_request(server)
        server.submit(request)
        assert request.trace.status == "rejected"
        assert request.trace.find("drain_reject")

    def test_untraced_requests_unaffected(self):
        server = self._server()
        server.submit(Request("m"))
        [response] = server.run()
        assert response.ok and response.request.trace is None


class TestBalancerInstrumentation:
    def test_route_instant_and_admission_shed(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)

        def backend():
            server = TritonLikeServer(sim, registry=registry)
            server.register(ModelConfig(
                "m", lambda n: 0.01,
                batcher=BatcherConfig(enabled=False)))
            return server

        admission = AdmissionController(AdmissionConfig(
            rate_per_second=1.0, burst=1))
        balancer = LoadBalancer([backend()], policy=RoundRobinPolicy(),
                                registry=registry, admission=admission)
        routed = Request("m")
        routed.trace = TraceContext(1, start=sim.now)
        balancer.submit(routed)
        shed = Request("m")
        shed.trace = TraceContext(2, start=sim.now)
        balancer.submit(shed)  # token bucket exhausted
        balancer.run()

        assert routed.trace.find("route")
        [admit] = [s for s in routed.trace.find("admission")]
        assert admit.args["admitted"] is True
        assert routed.trace.status == "ok"

        assert shed.trace.closed and shed.trace.status == "rejected"
        [denied] = shed.trace.find("admission")
        assert denied.args["admitted"] is False
        assert denied.args["reason"] == "rate"


class TestEnsembleRetryTracing:
    """Degraded ensemble + a retried branch, both views consistent."""

    def _flaky_seed(self):
        # First draw fails, second succeeds: exactly one retry.
        for seed in range(100):
            model = FaultModel(0.5, seed=seed)
            draws = [model.draw_failure() for _ in range(2)]
            if draws == [True, False]:
                return seed
        raise AssertionError("no seed gives fail-then-recover")

    def test_degraded_plus_retry_spans_and_stage_stamps(self):
        from repro.serving.tracing import stage_breakdown, trace_of

        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", lambda n: 0.001,
            batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "good", lambda n: 0.01,
            batcher=BatcherConfig(enabled=False),
            fault_model=FaultModel(0.5, detect_seconds=0.02,
                                   seed=self._flaky_seed()),
            max_retries=2))
        server.register(ModelConfig(
            "bad", lambda n: 1.0,
            batcher=BatcherConfig(enabled=False, max_queue_size=1)))
        server.register_ensemble(EnsembleConfig("e", "pre",
                                                ("good", "bad")))
        # Saturate "bad": one executing, one queued.
        server.submit(Request("bad"))
        server.submit(Request("bad"))
        request = _traced_request(server, model="e")
        server.submit(request)
        responses = server.run()
        [result] = [r for r in responses
                    if r.request.request_id == request.request_id]
        assert result.status == "degraded"

        # Forward view: execute spans carry the retry attempt index.
        ctx = request.trace
        good_spans = [s for s in ctx.find("execute")
                      if s.args["stage"].startswith("good")]
        assert [s.args["attempt"] for s in good_spans] == [0, 1]
        assert good_spans[0].args["outcome"] == "fault"
        assert ctx.status == "degraded"

        # Post-hoc view: the @1 stamp round-trips trace_of/breakdown.
        trace = trace_of(result)
        retried = [s for s in trace.spans if s.attempt == 1]
        assert [s.model for s in retried] == ["good"]
        breakdown = stage_breakdown([result])
        assert breakdown["good"]["retried_attempts"] == 1
        assert breakdown["good"]["count"] == 2


class TestContinuumInstrumentation:
    def _replayer(self, registry=None):
        sim = Simulator()
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig(
            "m", lambda n: 0.01,
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.002)))
        replayer = ContinuumReplayer(
            server, get_link("station_ethernet"),
            edge_preprocess_time=lambda n: 0.002 * n,
            image_bytes=100_000.0, registry=registry)
        return sim, server, replayer

    def test_full_cloud_path_spans(self):
        sim, server, replayer = self._replayer()
        replayer.submit(Request("m"))
        sim.run()
        [ctx] = replayer.completed_traces()
        assert ctx.status == "ok"
        names = [s.name for s in ctx.children()]
        for leg in ("edge_preprocess", "uplink", "queue_wait",
                    "execute", "downlink"):
            assert leg in names, f"missing {leg}"
        # The legs tile the timeline in order.
        pre, up = ctx.find("edge_preprocess")[0], ctx.find("uplink")[0]
        down = ctx.find("downlink")[0]
        assert pre.start == ctx.start and pre.end == up.start
        assert down.end == ctx.root.end
        assert ctx.baggage["placement"] == "cloud"
        assert "awaiting_downlink" not in ctx.baggage

    def test_latency_histogram_covers_downlink(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        sim2, server, replayer = self._replayer(registry=registry)
        replayer.submit(Request("m"))
        server.sim.run()
        [ctx] = replayer.completed_traces()
        histogram = registry.get("continuum_latency_seconds")
        assert histogram.count(model="m") == 1
        assert histogram.sum(model="m") == pytest.approx(ctx.latency)
        counter = registry.get("continuum_requests_total")
        assert counter.value(placement="cloud", status="ok") == 1

    def test_trace_ids_are_replayer_local(self):
        _, _, first = self._replayer()
        first.submit(Request("m"))
        _, _, second = self._replayer()
        second.submit(Request("m"))
        assert first.traces[0].trace_id == 1
        assert second.traces[0].trace_id == 1


class TestContinuumExemplarsAndProfile:
    def _run(self, sample_rate=1.0, exemplars=True, profiler=False,
             requests=60):
        from repro.serving.exporter import export_registry
        from repro.serving.profiler import SimProfiler

        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig(
            "m", lambda n: 0.01,
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.002)))
        prof = SimProfiler(clock=lambda: sim.now) if profiler else None
        replayer = ContinuumReplayer(
            server, get_link("station_ethernet"),
            edge_preprocess_time=lambda n: 0.002 * n,
            image_bytes=100_000.0, registry=registry,
            trace_sample_rate=sample_rate, exemplars=exemplars,
            profiler=prof)
        for i in range(requests):
            sim.schedule_at(0.01 * i,
                            lambda: replayer.submit(Request("m")))
        sim.run()
        return replayer, export_registry(registry), prof

    def test_exemplars_deterministic_under_sampling(self):
        from repro.serving.exporter import parse_exemplars

        _, first, _ = self._run(sample_rate=0.3)
        _, second, _ = self._run(sample_rate=0.3)
        assert first == second
        exemplars = parse_exemplars(first)
        assert exemplars  # latency buckets carry trace witnesses
        for (name, _), info in exemplars.items():
            assert name == "harvest_continuum_latency_seconds_bucket"
            assert info["labels"]["trace_id"].isdigit()

    def test_exemplar_witnesses_survive_trace_sampling(self):
        # Sampling drops span retention, not exemplar coverage: every
        # finalized request records an exemplar, and last-wins leaves
        # the final trace as the bucket witness.
        from repro.serving.exporter import parse_exemplars

        replayer, scrape, _ = self._run(sample_rate=0.3)
        assert len(replayer.traces) < 60
        ids = {int(info["labels"]["trace_id"])
               for info in parse_exemplars(scrape).values()}
        assert ids == {60}

    def test_exemplars_off_by_default_keeps_scrape_clean(self):
        _, scrape, _ = self._run(exemplars=False)
        assert " # {" not in scrape

    def test_profiler_attributes_continuum_legs(self):
        replayer, _, prof = self._run(profiler=True)
        nodes = prof.nodes()
        [ctx] = [replayer.traces[0]]
        for leg in ("edge_preprocess", "uplink", "downlink"):
            sim_s, _, count = nodes[("continuum", leg)]
            assert count == 60
            span = ctx.find(leg)[0]
            assert sim_s > 0
            # Per-request leg cost matches the first trace's span.
            assert sim_s / count == pytest.approx(span.duration)
