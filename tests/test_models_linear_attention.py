"""Tests for the RWKV-motivated linear-attention extension."""

import numpy as np
import pytest

from repro.models.functional import init_vit_weights, vit_forward
from repro.models.linear_attention import (
    LinearAttentionMatmul,
    attention_cost_crossover,
    build_linear_vit,
    linear_attention,
    linear_vit_forward,
)
from repro.models.layers import AttentionMatmul, LayerCategory
from repro.models.vit import VIT_CONFIGS, ViTConfig, build_vit


class TestLinearAttentionLayer:
    def test_macs_linear_in_tokens(self):
        # The Section 3.1 motivation: no quadratic term.
        small = LinearAttentionMatmul("l", tokens=64, dim=96, heads=3)
        large = LinearAttentionMatmul("l", tokens=128, dim=96, heads=3)
        assert large.macs() == 2 * small.macs()

    def test_cheaper_than_softmax_beyond_head_dim(self):
        softmax = AttentionMatmul("s", tokens=257, dim=192, heads=3)
        linear = LinearAttentionMatmul("l", tokens=257, dim=192, heads=3)
        assert linear.macs() < softmax.macs()

    def test_softmax_wins_at_short_sequences(self):
        # Crossover at T = head_dim: below it the state update costs
        # more than the score matrix.
        softmax = AttentionMatmul("s", tokens=33, dim=192, heads=3)
        linear = LinearAttentionMatmul("l", tokens=33, dim=192, heads=3)
        assert softmax.macs() < linear.macs()

    def test_parameter_free_attention_category(self):
        layer = LinearAttentionMatmul("l", tokens=16, dim=8, heads=2)
        assert layer.params() == 0
        assert layer.category is LayerCategory.ATTENTION

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            LinearAttentionMatmul("l", tokens=16, dim=9, heads=2)


class TestBuilder:
    def test_same_parameters_as_softmax_vit(self, vit_tiny):
        linear = build_linear_vit("vit_tiny")
        assert linear.total_params() == vit_tiny.total_params()

    def test_fewer_macs_than_softmax_vit(self, vit_tiny):
        linear = build_linear_vit("vit_tiny")
        assert linear.total_macs() < vit_tiny.total_macs()

    def test_no_softmax_layers(self):
        linear = build_linear_vit("vit_tiny")
        names = [l.name for l in linear.layers]
        assert not any("softmax" in n for n in names)
        attn = [l for l in linear.layers
                if isinstance(l, LinearAttentionMatmul)]
        assert len(attn) == 12

    def test_unknown_variant_raises(self):
        with pytest.raises(KeyError):
            build_linear_vit("vit_huge")

    def test_ir_roundtrip(self):
        from repro.models.ir import dumps, loads

        graph = build_linear_vit("vit_tiny")
        restored = loads(dumps(graph))
        assert restored.total_macs() == graph.total_macs()


class TestFunctional:
    @pytest.fixture(scope="class")
    def mini_cfg(self):
        return ViTConfig("mini", img_size=16, patch_size=4, dim=24,
                         depth=2, heads=2, num_classes=5)

    def test_linear_attention_shapes(self, rng):
        qkv = rng.standard_normal((2, 7, 24)).astype(np.float32)
        out = linear_attention(qkv, heads=2)
        assert out.shape == (2, 7, 8)
        assert np.isfinite(out).all()

    def test_output_is_convex_combination_of_values(self, rng):
        # With positive kernel weights, outputs lie within the value
        # range per feature.
        qkv = rng.standard_normal((1, 9, 12)).astype(np.float64)
        v = qkv[..., 8:]
        out = linear_attention(qkv, heads=1)
        assert (out <= v.max(axis=1, keepdims=True) + 1e-9).all()
        assert (out >= v.min(axis=1, keepdims=True) - 1e-9).all()

    def test_forward_pass(self, mini_cfg, rng):
        weights = init_vit_weights(mini_cfg)
        x = rng.standard_normal((2, 3, 16, 16)).astype(np.float32)
        out = linear_vit_forward(mini_cfg, weights, x)
        assert out.shape == (2, 5)
        assert np.isfinite(out).all()

    def test_same_weights_different_mixing(self, mini_cfg, rng):
        # Shared weights with a different mixing op: outputs differ but
        # both are finite and similarly scaled.
        weights = init_vit_weights(mini_cfg)
        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        soft = vit_forward(mini_cfg, weights, x)
        lin = linear_vit_forward(mini_cfg, weights, x)
        assert not np.allclose(soft, lin)
        assert np.abs(lin).max() < 100 * max(np.abs(soft).max(), 1.0)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            linear_attention(rng.standard_normal((1, 4, 10)), heads=2)
        cfg = VIT_CONFIGS["vit_tiny"]
        with pytest.raises(ValueError, match="expected input"):
            linear_vit_forward(cfg, init_vit_weights(cfg),
                               np.zeros((1, 3, 8, 8), np.float32))


class TestCrossover:
    def test_crossover_table(self):
        rows = attention_cost_crossover()
        assert rows[0]["linear_wins"] is False  # T=33 < head_dim
        assert all(r["linear_wins"] for r in rows[1:])

    def test_quadratic_vs_linear_growth(self):
        rows = attention_cost_crossover(token_counts=(256, 1024))
        softmax_ratio = rows[1]["softmax_gmacs"] / rows[0]["softmax_gmacs"]
        linear_ratio = rows[1]["linear_gmacs"] / rows[0]["linear_gmacs"]
        assert softmax_ratio == pytest.approx(16, rel=0.01)
        assert linear_ratio == pytest.approx(4, rel=0.01)
