"""End-to-end tests for the cache hierarchy wired into serving layers."""

import pytest

from repro.cache.keys import FrameFingerprint
from repro.cache.store import CacheStore
from repro.cache.tiers import (
    CLOUD_TENSOR,
    EDGE_RESULT,
    CacheHierarchy,
    CacheTier,
)
from repro.continuum.network import get_link
from repro.continuum.pipeline import ContinuumReplayer
from repro.scale.admission import AdmissionConfig, AdmissionController
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request
from repro.serving.server import (
    EnsembleConfig,
    ModelConfig,
    TritonLikeServer,
)


def fp(bits: int) -> FrameFingerprint:
    return FrameFingerprint(dhash=bits, blocks=0)


def make_hierarchy(sim, registry=None, ttl=None):
    clock = lambda: sim.now  # noqa: E731
    edge = CacheStore(1 << 20, clock, match_threshold=2,
                      ttl_seconds=ttl, name=EDGE_RESULT)
    cloud = CacheStore(1 << 24, clock, match_threshold=2,
                       name=CLOUD_TENSOR)
    return CacheHierarchy(
        edge=CacheTier(EDGE_RESULT, edge, stage="uplink",
                       registry=registry),
        cloud=CacheTier(CLOUD_TENSOR, cloud, stage="preprocess",
                        registry=registry))


def make_server(sim, registry=None):
    server = TritonLikeServer(sim, registry=registry)
    server.register(ModelConfig(
        "preprocess", lambda n: 0.010 * n,
        batcher=BatcherConfig(max_batch_size=8,
                              max_queue_delay=0.001)))
    server.register(ModelConfig(
        "infer", lambda n: 0.004 + 0.001 * n,
        batcher=BatcherConfig(max_batch_size=8,
                              max_queue_delay=0.001),
        preprocess_model="preprocess"))
    return server


def make_replayer(sim, server, cache=None, registry=None):
    return ContinuumReplayer(
        server, get_link("station_ethernet"),
        edge_preprocess_time=lambda n: 0.002 * n,
        image_bytes=128 * 1024.0, registry=registry, cache=cache)


class TestReplayerEdgeCache:
    def test_miss_populates_then_hit_bypasses_uplink(self):
        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        replayer = make_replayer(sim, server, cache=cache)

        first = Request("infer", cache_key=fp(1))
        replayer.submit(first)
        server.run()
        assert first.trace.status == "ok"
        assert cache.edge.hit_ratio == 0.0  # the seed request missed
        assert replayer.uplink_bytes_saved == 0.0

        second = Request("infer", cache_key=fp(1))
        replayer.submit(second)
        server.run()
        ctx = second.trace
        assert ctx.status == "ok"
        assert not ctx.find("uplink")
        assert not ctx.find("edge_preprocess")
        assert len(ctx.find("cache_hit")) == 1
        assert ctx.find("cache_lookup")[0].args["outcome"] == "hit"
        assert ctx.baggage["placement"] == "edge_cache"
        assert replayer.uplink_bytes_saved == 128 * 1024.0
        assert len(replayer.cache_responses) == 1

    def test_hit_is_answered_in_lookup_time(self):
        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        replayer = make_replayer(sim, server, cache=cache)
        cache.insert(EDGE_RESULT, fp(1), "seeded", 64)

        request = Request("infer", cache_key=fp(1))
        replayer.submit(request)
        server.run()
        assert request.trace.latency == pytest.approx(
            replayer.cache_lookup_time)

    def test_near_duplicate_frame_hits_within_threshold(self):
        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        replayer = make_replayer(sim, server, cache=cache)
        cache.insert(EDGE_RESULT, fp(0b1100), "seeded", 64)

        request = Request("infer", cache_key=fp(0b1101))  # distance 1
        replayer.submit(request)
        server.run()
        assert request.trace.baggage["placement"] == "edge_cache"

    def test_unfingerprinted_request_ignores_cache(self):
        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        replayer = make_replayer(sim, server, cache=cache)
        cache.insert(EDGE_RESULT, fp(1), "seeded", 64)

        request = Request("infer")
        replayer.submit(request)
        server.run()
        assert request.trace.status == "ok"
        assert not request.trace.find("cache_lookup")
        assert request.trace.find("uplink")

    def test_cacheless_replayer_unchanged(self):
        # A fingerprinted request through a cache-less replayer takes
        # exactly the uncached path: no cache spans, full uplink.
        sim = Simulator()
        server = make_server(sim)
        replayer = make_replayer(sim, server, cache=None)
        request = Request("infer", cache_key=fp(1))
        replayer.submit(request)
        server.run()
        assert request.trace.status == "ok"
        assert not request.trace.find("cache_lookup")
        assert request.trace.find("uplink")
        assert replayer.uplink_bytes_saved == 0.0

    def test_invalid_lookup_time_rejected(self):
        sim = Simulator()
        server = make_server(sim)
        with pytest.raises(ValueError, match="cache_lookup_time"):
            ContinuumReplayer(server, get_link("station_ethernet"),
                              edge_preprocess_time=lambda n: 0.0,
                              image_bytes=1.0, cache_lookup_time=-1.0)


class TestServerTensorCache:
    def test_tensor_hit_skips_preprocess_stage(self):
        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        server.attach_cache(cache, tensor_bytes=1024.0)

        first = Request("infer", cache_key=fp(1))
        server.submit(first)
        server.run()
        assert any(k.startswith("preprocess") for k in first.stage_times)
        assert cache.cloud.store.stats.insertions == 1

        second = Request("infer", cache_key=fp(1))
        server.submit(second)
        server.run()
        assert not any(k.startswith("preprocess")
                       for k in second.stage_times)
        assert any(k.startswith("infer") for k in second.stage_times)
        assert server.responses[-1].ok
        assert cache.cloud.hit_ratio == 0.5

    def test_ensemble_tensor_hit_fans_out_directly(self):
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "preprocess", lambda n: 0.010 * n,
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.001)))
        for name in ("detect", "classify"):
            server.register(ModelConfig(
                name, lambda n: 0.004,
                batcher=BatcherConfig(max_batch_size=8,
                                      max_queue_delay=0.001)))
        server.register_ensemble(EnsembleConfig(
            "field_scan", "preprocess", ("detect", "classify")))
        cache = make_hierarchy(sim)
        server.attach_cache(cache, tensor_bytes=1024.0)

        first = Request("field_scan", cache_key=fp(1))
        server.submit(first)
        server.run()
        assert any(k.startswith("preprocess") for k in first.stage_times)

        second = Request("field_scan", cache_key=fp(1))
        server.submit(second)
        server.run()
        assert not any(k.startswith("preprocess")
                       for k in second.stage_times)
        assert any(k.startswith("detect") for k in second.stage_times)
        assert any(k.startswith("classify") for k in second.stage_times)
        assert server.responses[-1].ok

    def test_attach_cache_validates_tensor_bytes(self):
        server = make_server(Simulator())
        with pytest.raises(ValueError, match="tensor_bytes"):
            server.attach_cache(CacheHierarchy(), tensor_bytes=0.0)

    def test_cacheless_server_unchanged(self):
        sim = Simulator()
        server = make_server(sim)
        request = Request("infer", cache_key=fp(1))
        server.submit(request)
        server.run()
        assert any(k.startswith("preprocess") for k in request.stage_times)
        assert server.responses[-1].ok


class TestAdmissionCacheExemption:
    def test_cache_hits_bypass_the_token_bucket(self):
        controller = AdmissionController(AdmissionConfig(
            rate_per_second=0.001, burst=1, exempt_cache_hits=True))
        assert controller.admit(0.0, 0).admitted  # takes the one token
        refused = controller.admit(0.0, 0)
        assert not refused.admitted and refused.reason == "rate"
        exempt = controller.admit(0.0, 0, cache_hit=True)
        assert exempt.admitted

    def test_exemption_off_by_default(self):
        controller = AdmissionController(AdmissionConfig(
            rate_per_second=0.001, burst=1))
        assert controller.admit(0.0, 0).admitted
        assert not controller.admit(0.0, 0, cache_hit=True).admitted

    def test_queue_shedding_still_applies_to_hits(self):
        controller = AdmissionController(AdmissionConfig(
            max_queued_requests=2, exempt_cache_hits=True))
        decision = controller.admit(0.0, 5, cache_hit=True)
        assert not decision.admitted and decision.reason == "queue"

    def test_balancer_peeks_tensor_tier_for_exemption(self):
        from repro.scale.balancer import (
            JoinShortestQueuePolicy,
            LoadBalancer,
        )

        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        cache.insert(CLOUD_TENSOR, fp(1), "tensor", 64)
        admission = AdmissionController(AdmissionConfig(
            rate_per_second=0.001, burst=1, exempt_cache_hits=True))
        balancer = LoadBalancer([server],
                                policy=JoinShortestQueuePolicy(),
                                admission=admission, cache=cache)
        # Burn the only token with an uncached request, then show a
        # cached frame still gets in.
        balancer.submit(Request("infer"))
        hit = Request("infer", cache_key=fp(1))
        balancer.submit(hit)
        miss = Request("infer", cache_key=fp(0xFF))  # far from fp(1)
        balancer.submit(miss)
        responses = balancer.run()
        by_id = {r.request.request_id: r for r in responses}
        assert by_id[hit.request_id].ok
        assert by_id[miss.request_id].status == "rejected"


class TestWhatifCacheModel:
    def test_effective_qps_formula(self):
        from repro.predict.whatif import cache_effective_qps

        assert cache_effective_qps(100.0, 0.8, 1.0) == \
            pytest.approx(500.0)
        assert cache_effective_qps(100.0, 0.5, 0.5) == \
            pytest.approx(100.0 / 0.75)
        assert cache_effective_qps(100.0, 0.0, 1.0) == 100.0

    def test_fully_absorbed_workload_is_unbounded(self):
        from repro.predict.whatif import cache_effective_qps

        assert cache_effective_qps(10.0, 1.0, 1.0) == float("inf")

    def test_validation(self):
        from repro.predict.whatif import cache_effective_qps

        with pytest.raises(ValueError, match="base_qps"):
            cache_effective_qps(0.0, 0.5, 0.5)
        with pytest.raises(ValueError, match="hit_ratio"):
            cache_effective_qps(10.0, 1.5, 0.5)
        with pytest.raises(ValueError, match="stage_fraction"):
            cache_effective_qps(10.0, 0.5, -0.1)

    def test_preview_rows_are_monotone(self):
        from repro.predict.whatif import preview_cache_capacity

        rows = preview_cache_capacity(60.0, 0.6)
        multipliers = [row["capacity_multiplier"] for row in rows]
        assert multipliers == sorted(multipliers)
        assert multipliers[0] == pytest.approx(1.0)


class TestFullHitTraceRegression:
    """A 100% hit run must stay observable end to end."""

    def run_full_hit(self, n=10):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = make_server(sim, registry=registry)
        cache = make_hierarchy(sim, registry=registry)
        replayer = make_replayer(sim, server, cache=cache,
                                 registry=registry)
        cache.insert(EDGE_RESULT, fp(1), "seeded", 64)
        for index in range(n):
            request = Request("infer", cache_key=fp(1))
            sim.schedule(0.01 * index,
                         lambda r=request: replayer.submit(r))
        server.run()
        return replayer, registry

    def test_every_hit_closes_its_trace(self):
        replayer, _ = self.run_full_hit()
        closed = replayer.completed_traces()
        assert len(closed) == 10
        assert all(t.status == "ok" for t in closed)
        assert all(t.find("cache_hit") for t in closed)

    def test_hit_run_exports_a_valid_chrome_trace(self):
        from repro.serving.trace_export import (
            export_chrome_trace,
            validate_chrome_trace,
        )

        replayer, _ = self.run_full_hit()
        text = export_chrome_trace(replayer.completed_traces())
        payload = validate_chrome_trace(text)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "cache_hit" in names and "cache_lookup" in names

    def test_hit_spans_render_as_intervals_even_at_zero_width(self):
        from repro.serving.trace_export import chrome_trace_events

        sim = Simulator()
        server = make_server(sim)
        cache = make_hierarchy(sim)
        replayer = ContinuumReplayer(
            server, get_link("station_ethernet"),
            edge_preprocess_time=lambda n: 0.0, image_bytes=1.0,
            cache=cache, cache_lookup_time=0.0)
        cache.insert(EDGE_RESULT, fp(1), "seeded", 64)
        request = Request("infer", cache_key=fp(1))
        replayer.submit(request)
        server.run()
        events = chrome_trace_events(replayer.completed_traces())
        hit = [e for e in events if e["name"] == "cache_hit"]
        assert hit and hit[0]["ph"] == "X"

    def test_critical_path_attributes_hits(self):
        from repro.serving.trace_export import critical_path_summary

        replayer, _ = self.run_full_hit()
        summary = critical_path_summary(replayer.completed_traces())
        assert summary["p95"]["stages"].get("cache_hit", 0.0) > 0.0
        assert summary["p95"]["tracked_fraction"] == pytest.approx(1.0)

    def test_registry_keeps_latency_samples_for_hits(self):
        _, registry = self.run_full_hit()
        histogram = registry.get("continuum_latency_seconds")
        count = sum(s.count for _, s in histogram.items())
        assert count == 10
        requests = registry.get("continuum_requests_total")
        assert requests.value(placement="edge_cache", status="ok") == 10
