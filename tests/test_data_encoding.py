"""Tests for repro.data.encoding — size models and the real RLE codec."""

import numpy as np
import pytest

from repro.data.datasets import ImageFormat
from repro.data.encoding import (
    encoded_bytes,
    rle_decode,
    rle_encode,
)
from repro.data.synthetic import synth_image


class TestEncodedBytes:
    def test_jpeg_size_model(self):
        assert encoded_bytes(100, 100, ImageFormat.JPEG) == \
            pytest.approx(100 * 100 * 0.45)

    def test_raw_is_uncompressed(self):
        assert encoded_bytes(10, 10, ImageFormat.RAW) == 300.0

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            encoded_bytes(0, 10, ImageFormat.JPEG)


class TestRLECodec:
    def test_roundtrip_random_image(self, rng):
        img = synth_image(37, 23, rng)
        decoded = rle_decode(rle_encode(img))
        np.testing.assert_array_equal(img, decoded)

    def test_roundtrip_grayscale(self, rng):
        img = (rng.random((9, 11)) * 255).astype(np.uint8)
        decoded = rle_decode(rle_encode(img))
        np.testing.assert_array_equal(img[..., None], decoded)

    def test_constant_image_compresses_well(self):
        img = np.full((64, 64, 3), 7, np.uint8)
        enc = rle_encode(img)
        assert enc.nbytes < img.size / 50

    def test_long_runs_split_correctly(self):
        # A run longer than 255 must chunk and still round-trip.
        img = np.zeros((1, 1000, 1), np.uint8)
        img[0, 600:] = 9
        decoded = rle_decode(rle_encode(img))
        np.testing.assert_array_equal(img, decoded)

    def test_run_of_exactly_255(self):
        img = np.zeros((1, 255, 1), np.uint8)
        decoded = rle_decode(rle_encode(img))
        np.testing.assert_array_equal(img, decoded)

    def test_run_of_exactly_510(self):
        img = np.zeros((1, 510, 1), np.uint8)
        decoded = rle_decode(rle_encode(img))
        np.testing.assert_array_equal(img, decoded)

    def test_metadata_on_encoded(self, rng):
        img = synth_image(20, 10, rng)
        enc = rle_encode(img)
        assert (enc.width, enc.height, enc.channels) == (20, 10, 3)

    def test_non_uint8_rejected(self):
        with pytest.raises(ValueError, match="uint8"):
            rle_encode(np.zeros((4, 4), np.float32))

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            rle_encode(np.zeros((2, 2, 2, 2), np.uint8))

    def test_empty_image_rejected(self):
        with pytest.raises(ValueError):
            rle_encode(np.zeros((0, 4), np.uint8))

    def test_truncated_payload_rejected(self, rng):
        import dataclasses

        enc = rle_encode(synth_image(8, 8, rng))
        broken = dataclasses.replace(enc, payload=enc.payload[:-3])
        with pytest.raises(ValueError):
            rle_decode(broken)

    def test_bad_magic_rejected(self, rng):
        import dataclasses

        enc = rle_encode(synth_image(8, 8, rng))
        broken = dataclasses.replace(
            enc, payload=b"X" + enc.payload[1:])
        with pytest.raises(ValueError, match="magic"):
            rle_decode(broken)

    def test_header_too_short_rejected(self, rng):
        import dataclasses

        enc = rle_encode(synth_image(8, 8, rng))
        broken = dataclasses.replace(enc, payload=enc.payload[:4])
        with pytest.raises(ValueError, match="header"):
            rle_decode(broken)
