"""Tests for repro.models.trt — the TensorRT-like engine builder."""

import pytest

from repro.hardware.platform import A100, JETSON, V100
from repro.hardware.precision import Precision
from repro.models.trt import TRTEngineBuilder


class TestPrecisionSelection:
    def test_defaults_to_platform_benchmark_precision(self):
        assert TRTEngineBuilder(A100).precision is Precision.BF16
        assert TRTEngineBuilder(V100).precision is Precision.FP16

    def test_unsupported_precision_rejected_at_build(self):
        # Like trtexec: requesting BF16 on a V100 fails.
        with pytest.raises(ValueError, match="lacks hardware support"):
            TRTEngineBuilder(V100, "bf16")

    def test_explicit_precision_accepted(self):
        builder = TRTEngineBuilder(A100, "int8")
        assert builder.precision is Precision.INT8


class TestFusion:
    def test_conv_bn_relu_fuses_to_one_layer(self, resnet50):
        fused = TRTEngineBuilder(A100).fuse(resnet50)
        # The stem's conv+bn+relu become one layer.
        stem = fused[0]
        assert stem.source_layers == ("stem.conv", "stem.bn", "stem.relu")

    def test_fusion_reduces_layer_count(self, resnet50):
        fused = TRTEngineBuilder(A100).fuse(resnet50)
        assert len(fused) < len(resnet50.layers)

    def test_fusion_preserves_total_macs(self, resnet50):
        fused = TRTEngineBuilder(A100).fuse(resnet50)
        assert sum(f.macs for f in fused) == pytest.approx(
            resnet50.total_macs())

    def test_bn_folding_removes_norm_flops(self, resnet50):
        # Folded BN disappears; fused ReLU flops survive.
        fused = TRTEngineBuilder(A100).fuse(resnet50)
        stem = fused[0]
        relu_flops = 64 * 112 * 112  # one flop per stem output element
        assert stem.elementwise_flops == pytest.approx(relu_flops)

    def test_linear_gelu_fuses_in_vit(self, vit_tiny):
        fused = TRTEngineBuilder(A100).fuse(vit_tiny)
        fc1 = next(f for f in fused if "fc1" in f.name)
        assert any("gelu" in s for s in fc1.source_layers)

    def test_attention_matmuls_not_fused(self, vit_tiny):
        fused = TRTEngineBuilder(A100).fuse(vit_tiny)
        attn = [f for f in fused if f.category.value == "attention"]
        assert len(attn) == 12


class TestBuild:
    def test_spec_fields(self, vit_tiny):
        spec = TRTEngineBuilder(A100).build(vit_tiny, max_batch_size=256)
        assert spec.model_name == "vit_tiny"
        assert spec.platform_name == "A100"
        assert spec.max_batch_size == 256
        assert spec.flops_per_image == pytest.approx(
            vit_tiny.flops_per_image())

    def test_weight_bytes_scale_with_precision(self, vit_tiny):
        fp16 = TRTEngineBuilder(A100, "fp16").build(vit_tiny)
        int8 = TRTEngineBuilder(A100, "int8").build(vit_tiny)
        assert fp16.weight_bytes == pytest.approx(2 * int8.weight_bytes)

    def test_memory_grows_linearly_with_batch(self, vit_tiny):
        spec = TRTEngineBuilder(A100).build(vit_tiny)
        m1 = spec.memory_bytes(1)
        m64 = spec.memory_bytes(64)
        act = spec.activation_bytes_per_image
        assert m64 - m1 == pytest.approx(63 * act)

    def test_memory_outside_profile_rejected(self, vit_tiny):
        spec = TRTEngineBuilder(A100).build(vit_tiny, max_batch_size=8)
        with pytest.raises(ValueError, match="profile"):
            spec.memory_bytes(16)

    def test_build_with_memory_cap_can_fail(self, vit_base):
        with pytest.raises(ValueError, match="does not fit"):
            TRTEngineBuilder(JETSON).build(
                vit_base, available_memory_bytes=1e6)

    def test_invalid_max_batch_rejected(self, vit_tiny):
        with pytest.raises(ValueError):
            TRTEngineBuilder(A100).build(vit_tiny, max_batch_size=0)

    def test_num_layers_property(self, vit_tiny):
        spec = TRTEngineBuilder(A100).build(vit_tiny)
        assert spec.num_layers == len(spec.fused_layers)
