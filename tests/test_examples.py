"""Smoke tests: the fast examples run end to end as scripts.

The slower examples (training, farm day, drone survey) are exercised by
the benchmark suite; these keep the quickstart-class scripts honest.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Table 1: evaluated platforms" in out
        assert "Paper vs model" in out
        assert "Tuning advisor" in out

    def test_model_selection_advisor(self):
        out = run_example("model_selection_advisor.py")
        assert "A100" in out and "Jetson" in out
        assert "deploy" in out

    def test_online_cloud_serving(self):
        out = run_example("online_cloud_serving.py")
        assert "uplink" in out
        assert "SLO" in out

    def test_examples_directory_complete(self):
        names = sorted(p.name for p in EXAMPLES.glob("*.py"))
        assert names == [
            "farm_day_simulation.py",
            "farm_localized_training.py",
            "model_selection_advisor.py",
            "offline_drone_survey.py",
            "online_cloud_serving.py",
            "quickstart.py",
            "realtime_ground_vehicle.py",
        ]
