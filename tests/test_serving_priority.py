"""Tests for request priorities — online vs offline on one cluster."""

import pytest

from repro.serving.batcher import BatcherConfig, DynamicBatcher
from repro.serving.metrics import summarize_responses
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


class TestBatcherPriorities:
    def test_high_priority_dequeues_first(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=1))
        low = Request("m", priority=0)
        high = Request("m", priority=5)
        batcher.enqueue(low, now=0.0)
        batcher.enqueue(high, now=0.0)
        assert batcher.form_batch() == [high]
        assert batcher.form_batch() == [low]

    def test_fifo_within_a_priority_level(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=2))
        first = Request("m", priority=1)
        second = Request("m", priority=1)
        batcher.enqueue(first, now=0.0)
        batcher.enqueue(second, now=0.0)
        assert batcher.form_batch() == [first, second]

    def test_mixed_batch_orders_by_priority(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=3))
        a = Request("m", priority=0)
        b = Request("m", priority=2)
        c = Request("m", priority=1)
        for r in (a, b, c):
            batcher.enqueue(r, now=0.0)
        assert batcher.form_batch() == [b, c, a]

    def test_priority_respects_batch_capacity(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=2))
        bulk = Request("m", num_images=2, priority=0)
        urgent = Request("m", num_images=1, priority=9)
        batcher.enqueue(bulk, now=0.0)
        batcher.enqueue(urgent, now=0.0)
        batch = batcher.form_batch()
        assert batch[0] is urgent

    def test_disabled_batching_still_prioritizes(self):
        batcher = DynamicBatcher(BatcherConfig(enabled=False))
        low = Request("m", priority=0)
        high = Request("m", priority=3)
        batcher.enqueue(low, now=0.0)
        batcher.enqueue(high, now=0.0)
        assert batcher.form_batch() == [high]


class TestServerScenarioMixing:
    def test_realtime_requests_protected_from_offline_backlog(self):
        # The multi-scenario cluster: a large offline backlog queues; a
        # real-time request arriving later still completes promptly.
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.001 * n,
            batcher=BatcherConfig(max_batch_size=16,
                                  max_queue_delay=0.001)))
        for _ in range(400):
            server.submit(Request("m", priority=0))  # offline backlog

        realtime_latencies = []

        def submit_realtime():
            request = Request("m", priority=10)
            server.submit(request)

        for k in range(10):
            server.sim.schedule_at(0.01 + 0.01 * k, submit_realtime)
        server.run()

        offline = [r for r in server.responses
                   if r.request.priority == 0]
        realtime = [r for r in server.responses
                    if r.request.priority == 10]
        assert len(realtime) == 10
        rt = summarize_responses(realtime)
        off = summarize_responses(offline)
        assert rt.mean_latency < off.mean_latency / 3

    def test_priorities_do_not_starve_offline_forever(self):
        # With a bounded real-time rate the offline work still drains.
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.001 * n,
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.001)))
        for _ in range(50):
            server.submit(Request("m", priority=0))
        for k in range(20):
            server.sim.schedule_at(
                0.005 * k,
                lambda: server.submit(Request("m", priority=5)))
        responses = server.run()
        assert len(responses) == 70
        assert all(r.ok for r in responses)
