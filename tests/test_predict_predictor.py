"""Tests for repro.predict.predictor and whatif."""

import pytest

from repro.hardware.platform import A100, JETSON, PlatformKind
from repro.predict.predictor import PerformancePredictor
from repro.predict.whatif import define_platform, preview_platform


class TestCalibratedPrediction:
    def test_matches_engine_models_on_measured_platform(self, vit_small):
        from repro.engine.latency import LatencyModel

        predictor = PerformancePredictor(A100)
        prediction = predictor.predict(vit_small, 64)
        reference = LatencyModel(vit_small, A100)
        assert prediction.calibrated
        assert prediction.throughput == pytest.approx(
            reference.throughput(64))
        assert prediction.latency_seconds == pytest.approx(
            reference.latency(64))

    def test_oom_limit_enforced(self, vit_base):
        predictor = PerformancePredictor(JETSON)
        with pytest.raises(ValueError, match="OOM"):
            predictor.predict(vit_base, 64)

    def test_sweep_stops_at_limit(self, vit_base):
        predictor = PerformancePredictor(JETSON)
        sweep = predictor.sweep(vit_base)
        assert sweep[-1].batch_size == 8

    def test_expectation_report_fields(self, resnet50):
        report = PerformancePredictor(A100).expectation_report(resnet50)
        assert report["max_batch"] == 1024
        assert report["peak_throughput"] == pytest.approx(16230.7,
                                                          rel=0.001)
        assert report["recommended_batch"] <= report["max_batch"]
        assert report["joules_per_image"] > 0

    def test_energy_included_when_profile_known(self, vit_tiny):
        prediction = PerformancePredictor(JETSON).predict(vit_tiny, 64)
        assert prediction.joules_per_image is not None


class TestWhatIfPlatforms:
    @pytest.fixture(scope="class")
    def orin_nx(self):
        return define_platform(
            "OrinNX", "edge", peak_tflops=50.0, precision="fp16",
            gpu_memory_gb=16, memory_bandwidth_gbps=102, cpu_cores=8,
            unified_memory=True)

    def test_tier_efficiency_applied(self, orin_nx):
        assert orin_nx.practical_tflops == pytest.approx(
            50.0 * 0.67, rel=0.01)

    def test_measured_practical_overrides(self):
        platform = define_platform(
            "X", "cloud", peak_tflops=100, precision="bf16",
            gpu_memory_gb=24, memory_bandwidth_gbps=900, cpu_cores=32,
            measured_practical_tflops=81.0)
        assert platform.practical_tflops == 81.0

    def test_edge_platform_properties(self, orin_nx):
        assert orin_nx.kind is PlatformKind.EDGE
        assert orin_nx.unified_memory
        assert orin_nx.usable_memory_fraction == 0.52

    def test_prediction_transfers_from_tier_donor(self, orin_nx,
                                                  vit_tiny):
        predictor = PerformancePredictor(orin_nx)
        prediction = predictor.predict(vit_tiny, 64)
        assert not prediction.calibrated
        # More compute than the Jetson donor -> higher throughput.
        donor = PerformancePredictor(JETSON).predict(vit_tiny, 64)
        assert prediction.throughput > donor.throughput

    def test_preview_covers_zoo_with_speedups(self, orin_nx):
        rows = preview_platform(orin_nx)
        assert len(rows) == 4
        for row in rows:
            assert row["speedup_vs_jetson"] > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            define_platform("bad", "cloud", peak_tflops=0,
                            precision="fp16", gpu_memory_gb=1,
                            memory_bandwidth_gbps=1, cpu_cores=1)
        with pytest.raises(ValueError):
            define_platform("bad", "host", peak_tflops=1,
                            precision="fp16", gpu_memory_gb=1,
                            memory_bandwidth_gbps=1, cpu_cores=1)
