"""Tests for repro.continuum.scenarios."""

import pytest

from repro.continuum.network import get_link
from repro.continuum.scenarios import (
    OfflineScenario,
    OnlineScenario,
    RealTimeScenario,
)
from repro.hardware.platform import A100, JETSON


class TestOnlineScenario:
    def test_upload_time_uses_link(self):
        scenario = OnlineScenario(link=get_link("field_lte"))
        assert scenario.upload_seconds(1e6) == pytest.approx(
            get_link("field_lte").transfer_seconds(1e6))

    def test_valid_on_cloud_and_edge(self):
        scenario = OnlineScenario()
        scenario.validate_platform(A100)
        scenario.validate_platform(JETSON)  # edge online allowed

    def test_default_slo(self):
        assert OnlineScenario().slo_seconds == 0.5


class TestOfflineScenario:
    def test_rejects_edge_platform(self):
        with pytest.raises(ValueError, match="edge"):
            OfflineScenario().validate_platform(JETSON)

    def test_accepts_cloud(self):
        OfflineScenario().validate_platform(A100)

    def test_defaults(self):
        scenario = OfflineScenario()
        assert scenario.stitch_first
        assert scenario.tile_size == 224


class TestRealTimeScenario:
    def test_rejects_cloud_platform(self):
        with pytest.raises(ValueError, match="edge"):
            RealTimeScenario().validate_platform(A100)

    def test_accepts_jetson(self):
        RealTimeScenario().validate_platform(JETSON)

    def test_default_deadline_is_60qps_line(self):
        scenario = RealTimeScenario()
        assert scenario.deadline_seconds == pytest.approx(1 / 60)
        assert scenario.frame_interval_seconds == pytest.approx(1 / 60)

    def test_camera_is_4k(self):
        assert RealTimeScenario().camera_resolution == (3840, 2160)
