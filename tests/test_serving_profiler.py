"""Tests for repro.serving.profiler — attribution, export, zero cost."""

import json

import pytest

from repro.perf.scenarios import _profiled_replay
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.events import Simulator
from repro.serving.profiler import _NULL_SCOPE, SimProfiler
from repro.serving.server import ModelConfig, TritonLikeServer


class FakeClock:
    """Manually advanced sim clock for exact scope arithmetic."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestScopes:
    def test_nested_scopes_attribute_self_time(self):
        clock = FakeClock()
        prof = SimProfiler(clock=clock)
        with prof.scope("sim", "run"):
            clock.now = 1.0
            with prof.scope("inner"):
                clock.now = 4.0
            clock.now = 5.0
        nodes = prof.nodes()
        # Parent self = 5.0 elapsed - 3.0 spent in the child.
        assert nodes[("sim", "run")][0] == pytest.approx(2.0)
        assert nodes[("sim", "run", "inner")][0] == pytest.approx(3.0)
        assert nodes[("sim", "run")][2] == 1

    def test_scope_paths_nest_under_enclosing_scope(self):
        prof = SimProfiler()
        with prof.scope("a"):
            with prof.scope("b", "c"):
                pass
        assert ("a", "b", "c") in prof.nodes()

    def test_record_is_absolute_regardless_of_open_scopes(self):
        prof = SimProfiler()
        with prof.scope("sim", "run"):
            prof.record(("serve", "infer", "execute"), sim_seconds=2.0,
                        count=3)
        nodes = prof.nodes()
        assert nodes[("serve", "infer", "execute")] == (2.0, 0.0, 3)

    def test_sibling_scopes_accumulate(self):
        clock = FakeClock()
        prof = SimProfiler(clock=clock)
        for _ in range(3):
            with prof.scope("leg"):
                clock.now += 0.5
        sim, _, count = prof.nodes()[("leg",)]
        assert sim == pytest.approx(1.5)
        assert count == 3

    def test_disabled_profiler_is_a_no_op(self):
        prof = SimProfiler(enabled=False)
        assert prof.scope("a") is _NULL_SCOPE
        with prof.scope("a"):
            pass
        prof.record(("b",), sim_seconds=1.0)
        assert prof.nodes() == {}
        assert prof.total() == 0.0

    def test_scope_requires_names(self):
        with pytest.raises(ValueError, match="at least one name"):
            SimProfiler().scope()

    def test_record_rejects_bad_paths(self):
        prof = SimProfiler()
        with pytest.raises(ValueError, match="non-empty strings"):
            prof.record((), sim_seconds=1.0)
        with pytest.raises(ValueError, match="non-empty strings"):
            prof.record(("a", ""), sim_seconds=1.0)

    def test_reset_clears_nodes(self):
        prof = SimProfiler()
        prof.record(("a",), sim_seconds=1.0)
        prof.reset()
        assert prof.nodes() == {}


class TestExports:
    def _sample(self) -> SimProfiler:
        prof = SimProfiler()
        prof.record(("serve", "infer", "execute"), sim_seconds=0.25,
                    count=2)
        prof.record(("serve", "infer", "queue_wait"), sim_seconds=0.5)
        prof.record(("continuum", "uplink"), sim_seconds=1.0)
        return prof

    def test_folded_collapses_paths(self):
        folded = self._sample().folded("sim")
        assert folded == {
            "continuum;uplink": 1.0,
            "serve;infer;execute": 0.25,
            "serve;infer;queue_wait": 0.5,
        }

    def test_render_folded_integer_microseconds(self):
        text = self._sample().render_folded("sim")
        assert "serve;infer;execute 250000" in text
        assert text.endswith("\n")

    def test_render_tree_totals_include_descendants(self):
        text = self._sample().render_tree("sim")
        lines = text.splitlines()
        serve = next(l for l in lines if l.startswith("serve"))
        assert "0.750000" in serve  # execute + queue_wait
        assert any(l.strip().startswith("execute") for l in lines)

    def test_render_tree_empty(self):
        assert SimProfiler().render_tree() == "(profiler is empty)\n"

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="unknown weight"):
            self._sample().folded("cpu")

    def test_speedscope_schema(self):
        doc = self._sample().speedscope("t")
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json")
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "microseconds"
        assert len(profile["samples"]) == len(profile["weights"]) == 3
        assert profile["endValue"] == sum(profile["weights"])
        frames = doc["shared"]["frames"]
        for stack in profile["samples"]:
            assert all(0 <= idx < len(frames) for idx in stack)

    def test_export_speedscope_round_trips(self):
        text = self._sample().export_speedscope()
        assert json.loads(text)["profiles"][0]["weights"] == [
            1000000, 250000, 500000]


def _run_serving(profiler=None, requests: int = 120):
    sim = Simulator()
    server = TritonLikeServer(sim)
    server.register(ModelConfig(
        "infer", lambda n: 0.002 + 0.001 * n,
        batcher=BatcherConfig(max_batch_size=8,
                              max_queue_delay=0.004)))
    if profiler is not None:
        server.attach_profiler(profiler)
    client = OpenLoopClient(server, "infer", rate_per_second=300.0,
                            num_requests=requests, seed=3)
    client.start()
    server.run()
    return server


class TestServingIntegration:
    def test_execute_attribution_matches_instance_stats(self):
        sim_holder = {}
        prof = SimProfiler(clock=lambda: sim_holder["sim"].now)
        sim = Simulator()
        sim_holder["sim"] = sim
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "infer", lambda n: 0.002 + 0.001 * n,
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.004)))
        server.attach_profiler(prof)
        client = OpenLoopClient(server, "infer", rate_per_second=300.0,
                                num_requests=120, seed=3)
        client.start()
        server.run()
        nodes = prof.nodes()
        busy = sum(inst.stats.busy_seconds
                   for inst in server._instances["infer"])
        assert nodes[("serve", "infer", "execute")][0] == (
            pytest.approx(busy))
        # Every response waited in exactly one queue-pick.
        assert nodes[("serve", "infer", "queue_wait")][2] == 120
        # The run scope covers the whole virtual horizon.
        assert nodes[("sim", "run")][0] == pytest.approx(sim.now)

    def test_models_registered_after_attach_inherit_profiler(self):
        prof = SimProfiler()
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.attach_profiler(prof)
        server.register(ModelConfig(
            "late", lambda n: 0.001,
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.001)))
        assert server._batchers["late"].profiler is prof
        assert all(inst.profiler is prof
                   for inst in server._instances["late"])

    def test_sim_time_profile_is_deterministic(self):
        def folded():
            sim = Simulator()
            prof = SimProfiler(clock=lambda: sim.now)
            server = TritonLikeServer(sim)
            server.register(ModelConfig(
                "infer", lambda n: 0.002 + 0.001 * n,
                batcher=BatcherConfig(max_batch_size=8,
                                      max_queue_delay=0.004)))
            server.attach_profiler(prof)
            client = OpenLoopClient(server, "infer",
                                    rate_per_second=300.0,
                                    num_requests=150, seed=11)
            client.start()
            server.run()
            return prof.render_folded("sim")

        assert folded() == folded()


class TestZeroCostContract:
    def test_scrapes_identical_across_profiler_modes(self):
        bare = _profiled_replay(400, "none")
        off = _profiled_replay(400, "off")
        on = _profiled_replay(400, "on")
        assert bare == off[:2] + (off[2],)
        assert bare[0] == on[0] and bare[1] == on[1]
        assert bare[2] == off[2] == on[2]

    def test_disabled_profiler_records_nothing_through_the_stack(self):
        prof = SimProfiler(enabled=False)
        _run_serving(prof)
        assert prof.nodes() == {}
