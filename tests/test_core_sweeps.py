"""Tests for repro.core.sweeps."""

import pytest

from repro.core.sweeps import (
    default_grid,
    e2e_sweep,
    engine_sweep,
    preprocessing_sweep,
)
from repro.hardware.platform import A100, JETSON


class TestDefaultGrid:
    def test_paper_dimensions(self):
        grid = default_grid()
        assert len(grid.platforms) == 3
        assert len(grid.models) == 4
        assert len(grid.datasets) == 6
        assert len(grid.frameworks) == 5

    def test_batch_sizes_delegate_to_calibration(self):
        grid = default_grid()
        assert grid.batch_sizes(A100)[-1] == 1024
        assert grid.batch_sizes(JETSON)[-1] == 196


class TestEngineSweep:
    def test_cloud_sweep_covers_full_grid(self, vit_tiny):
        points = engine_sweep(vit_tiny, A100)
        assert points[0].batch_size == 1
        assert points[-1].batch_size == 1024

    def test_jetson_sweep_stops_at_oom(self, vit_base):
        points = engine_sweep(vit_base, JETSON)
        assert points[-1].batch_size == 8  # Fig. 5c boundary

    def test_custom_grid(self, vit_tiny):
        points = engine_sweep(vit_tiny, A100, batch_sizes=(2, 8, 32))
        assert [p.batch_size for p in points] == [2, 8, 32]


class TestPreprocessingSweep:
    def test_fig7_cell_conventions(self):
        estimates = preprocessing_sweep(A100)
        cv2_cells = [e for e in estimates if e.framework == "CV2"]
        assert [c.dataset for c in cv2_cells] == ["crsa"]
        pytorch_cells = [e for e in estimates if e.framework == "PyTorch"]
        assert "crsa" not in {c.dataset for c in pytorch_cells}

    def test_dali_covers_all_datasets(self):
        estimates = preprocessing_sweep(A100)
        dali224 = {e.dataset for e in estimates
                   if e.framework == "DALI 224"}
        assert len(dali224) == 6

    def test_total_cell_count(self):
        # 3 DALI x 6 + PyTorch x 5 + CV2 x 1 = 24 cells per platform.
        assert len(preprocessing_sweep(A100)) == 24


class TestE2ESweep:
    def test_covers_models_and_non_crsa_datasets(self):
        results = e2e_sweep(A100)
        assert len(results) == 4 * 5
        assert {r.model for r in results} == {
            "vit_tiny", "vit_small", "vit_base", "resnet50"}

    def test_batch_labels_match_paper(self):
        results = e2e_sweep(JETSON)
        by_model = {r.model: r.batch_size for r in results}
        assert by_model == {"vit_tiny": 64, "vit_small": 32,
                            "vit_base": 2, "resnet50": 32}

    def test_throughputs_positive(self):
        for result in e2e_sweep(JETSON):
            assert result.throughput > 0
            assert result.latency_seconds > 0
