"""Tests for the byte-accounted cache store (repro.cache.store)."""

import pytest

from repro.cache.keys import FrameFingerprint
from repro.cache.store import (
    CacheStore,
    FIFOEviction,
    FrequencySketch,
    LRUEviction,
)
from repro.hardware.memory import MemoryPool


def fp(bits: int) -> FrameFingerprint:
    """A fingerprint whose dhash is the given bit pattern."""
    return FrameFingerprint(dhash=bits, blocks=0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


class TestLookupAndMatch:
    def test_exact_hit_and_miss(self, clock):
        store = CacheStore(1024, clock)
        store.insert(fp(0b1), "v", 10)
        assert store.lookup(fp(0b1)).value == "v"
        assert store.lookup(fp(0b10)) is None
        assert store.stats.hits == 1 and store.stats.misses == 1

    def test_threshold_matches_nearby_fingerprints(self, clock):
        store = CacheStore(1024, clock, match_threshold=2)
        store.insert(fp(0b1111), "v", 10)
        assert store.lookup(fp(0b1100)).value == "v"  # distance 2
        assert store.lookup(fp(0b0000)) is None       # distance 4

    def test_closest_entry_wins(self, clock):
        store = CacheStore(1024, clock, match_threshold=4)
        store.insert(fp(0b1111), "far", 10)
        store.insert(fp(0b1110), "near", 10)
        assert store.lookup(fp(0b1100)).value == "near"

    def test_tie_breaks_to_oldest_entry(self, clock):
        # The two residents are 4 bits apart (distinct content), the
        # probe is 2 bits from each: equidistant -> oldest entry wins.
        store = CacheStore(1024, clock, match_threshold=2)
        store.insert(fp(0b0011), "first", 10)
        store.insert(fp(0b1100), "second", 10)
        assert store.lookup(fp(0b0110)).value == "first"

    def test_reinsert_within_threshold_replaces(self, clock):
        # A near-duplicate fingerprint is the *same* content: inserting
        # it refreshes the resident entry instead of duplicating it.
        store = CacheStore(1024, clock, match_threshold=2)
        store.insert(fp(0b01), "old", 10)
        store.insert(fp(0b10), "new", 10)
        assert len(store) == 1
        assert store.lookup(fp(0b01)).value == "new"

    def test_peek_does_not_mutate(self, clock):
        store = CacheStore(1024, clock)
        store.insert(fp(1), "v", 10)
        assert store.peek(fp(1))
        assert not store.peek(fp(2))
        assert store.stats.lookups == 0


class TestTTL:
    def test_expired_match_counts_stale_and_misses(self, clock):
        store = CacheStore(1024, clock, ttl_seconds=5.0)
        store.insert(fp(1), "v", 10)
        clock.now = 6.0
        assert store.lookup(fp(1)) is None
        assert store.stats.stale == 1
        assert store.stats.misses == 1
        assert len(store) == 0

    def test_fresh_entry_still_hits(self, clock):
        store = CacheStore(1024, clock, ttl_seconds=5.0)
        store.insert(fp(1), "v", 10)
        clock.now = 4.9
        assert store.lookup(fp(1)) is not None

    def test_reinsert_refreshes_freshness(self, clock):
        store = CacheStore(1024, clock, ttl_seconds=5.0)
        store.insert(fp(1), "old", 10)
        clock.now = 4.0
        store.insert(fp(1), "new", 10)
        clock.now = 8.0
        assert store.lookup(fp(1)).value == "new"
        assert len(store) == 1

    def test_expire_sweeps_all_stale(self, clock):
        store = CacheStore(1024, clock, ttl_seconds=1.0)
        store.insert(fp(1), "a", 10)
        store.insert(fp(2), "b", 10)
        clock.now = 2.0
        assert store.expire() == 2
        assert store.stats.evictions == 2

    def test_peek_respects_ttl(self, clock):
        store = CacheStore(1024, clock, ttl_seconds=1.0)
        store.insert(fp(1), "v", 10)
        clock.now = 2.0
        assert not store.peek(fp(1))


class TestEviction:
    def test_lru_evicts_least_recently_used(self, clock):
        store = CacheStore(30, clock, eviction=LRUEviction())
        store.insert(fp(1), "a", 10)
        store.insert(fp(2), "b", 10)
        store.insert(fp(3), "c", 10)
        clock.now = 1.0
        store.lookup(fp(1))  # refresh a
        store.insert(fp(4), "d", 10)
        assert store.peek(fp(1)) and not store.peek(fp(2))

    def test_fifo_ignores_recency(self, clock):
        store = CacheStore(20, clock, eviction=FIFOEviction())
        store.insert(fp(1), "a", 10)
        store.insert(fp(2), "b", 10)
        clock.now = 1.0
        store.lookup(fp(1))
        store.insert(fp(3), "c", 10)
        assert not store.peek(fp(1)) and store.peek(fp(2))

    def test_oversized_value_is_uncacheable(self, clock):
        store = CacheStore(100, clock)
        assert not store.insert(fp(1), "v", 101)
        assert store.stats.uncacheable == 1

    def test_byte_accounting_tracks_residency(self, clock):
        store = CacheStore(100, clock)
        store.insert(fp(1), "a", 40)
        store.insert(fp(2), "b", 40)
        assert store.used_bytes == 80
        store.insert(fp(3), "c", 40)  # evicts one
        assert store.used_bytes == 80
        assert store.stats.evictions == 1

    def test_invalid_sizes_rejected(self, clock):
        store = CacheStore(100, clock)
        with pytest.raises(ValueError, match="size_bytes"):
            store.insert(fp(1), "v", 0)
        with pytest.raises(ValueError, match="capacity"):
            CacheStore(0, clock)


class TestTinyLFUAdmission:
    def test_cold_candidate_cannot_displace_hot_victim(self, clock):
        store = CacheStore(10, clock, admission=FrequencySketch())
        store.insert(fp(1), "hot", 10)
        for _ in range(5):
            store.lookup(fp(1))  # trains the sketch
        assert not store.insert(fp(2), "cold", 10)
        assert store.stats.admission_rejects == 1
        assert store.peek(fp(1))

    def test_hot_candidate_displaces_cold_victim(self, clock):
        store = CacheStore(10, clock, admission=FrequencySketch())
        store.insert(fp(1), "cold", 10)
        for _ in range(5):
            store.lookup(fp(2))  # misses, but trains the candidate
        assert store.insert(fp(2), "hot", 10)
        assert not store.peek(fp(1))

    def test_no_admission_filter_always_displaces(self, clock):
        store = CacheStore(10, clock)
        store.insert(fp(1), "a", 10)
        assert store.insert(fp(2), "b", 10)


class TestFrequencySketch:
    def test_estimate_tracks_increments(self):
        sketch = FrequencySketch()
        for _ in range(3):
            sketch.increment(42)
        assert sketch.estimate(42) == 3
        assert sketch.estimate(43) == 0

    def test_counters_cap(self):
        sketch = FrequencySketch()
        for _ in range(40):
            sketch.increment(7)
        assert sketch.estimate(7) == 15

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(sample_size=10)
        for _ in range(10):
            sketch.increment(1)
        assert sketch.estimate(1) <= 5

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="width"):
            FrequencySketch(width=100)
        with pytest.raises(ValueError, match="depth"):
            FrequencySketch(depth=0)
        with pytest.raises(ValueError, match="sample_size"):
            FrequencySketch(sample_size=0)


class TestMemoryPoolCharging:
    def test_resident_entries_charge_the_pool(self, clock):
        pool = MemoryPool(1000, name="jetson")
        store = CacheStore(500, clock, pool=pool, name="edge")
        store.insert(fp(1), "v", 200)
        assert pool.used_bytes == 200
        assert "cache:edge" in pool.breakdown()

    def test_eviction_frees_the_pool(self, clock):
        pool = MemoryPool(1000)
        store = CacheStore(200, clock, pool=pool)
        store.insert(fp(1), "a", 150)
        store.insert(fp(2), "b", 150)  # evicts a
        assert pool.used_bytes == 150

    def test_squeezed_pool_sheds_cache_first(self, clock):
        # Non-cache tenants (engine buffers) shrink the pool: the cache
        # gives up residency gracefully instead of raising OOM.
        pool = MemoryPool(300)
        store = CacheStore(300, clock, pool=pool)
        store.insert(fp(1), "a", 100)
        pool.allocate(150, tag="engine")
        assert store.insert(fp(2), "b", 120)  # sheds entry a
        assert not store.peek(fp(1))

    def test_pool_too_tight_is_uncacheable(self, clock):
        pool = MemoryPool(100)
        pool.allocate(90, tag="engine")
        store = CacheStore(100, clock, pool=pool)
        assert not store.insert(fp(1), "v", 50)
        assert store.stats.uncacheable == 1

    def test_clear_releases_everything(self, clock):
        pool = MemoryPool(1000)
        store = CacheStore(500, clock, pool=pool)
        store.insert(fp(1), "a", 100)
        store.insert(fp(2), "b", 100)
        store.clear()
        assert pool.used_bytes == 0 and len(store) == 0
