"""Tests for repro.predict.capacity and validation."""

import pytest

from repro.hardware.platform import A100, JETSON, V100
from repro.predict.capacity import CapacityPlanner, WorkloadSpec
from repro.predict.validation import backtest_platform, backtest_summary


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(images_per_second=0, latency_slo_seconds=0.1)
        with pytest.raises(ValueError):
            WorkloadSpec(images_per_second=1, latency_slo_seconds=0)
        with pytest.raises(ValueError):
            WorkloadSpec(images_per_second=1, latency_slo_seconds=1,
                         duty_cycle=0)


class TestCapacityPlanner:
    @pytest.fixture(scope="class")
    def workload(self):
        return WorkloadSpec(images_per_second=5000,
                            latency_slo_seconds=1 / 60,
                            duty_cycle=0.5)

    def test_plan_meets_demand(self, workload, resnet50):
        plan = CapacityPlanner(workload).plan(resnet50, A100)
        assert plan.meets_slo
        assert plan.total_throughput >= workload.images_per_second
        assert plan.latency_seconds <= workload.latency_slo_seconds

    def test_per_device_capped_at_compute_bound(self, workload, vit_tiny):
        plan = CapacityPlanner(workload).plan(vit_tiny, A100)
        cap = A100.throughput_upper_bound(vit_tiny.flops_per_image())
        assert plan.throughput_per_device <= cap + 1e-6

    def test_edge_needs_more_devices_than_cloud(self, workload, resnet50):
        planner = CapacityPlanner(workload)
        cloud = planner.plan(resnet50, A100)
        edge = planner.plan(resnet50, JETSON)
        assert edge.devices > cloud.devices

    def test_infeasible_slo_reported(self, vit_base):
        workload = WorkloadSpec(images_per_second=100,
                                latency_slo_seconds=1e-5)
        plan = CapacityPlanner(workload).plan(vit_base, JETSON)
        assert not plan.meets_slo
        assert plan.devices == 0

    def test_headroom_is_provisioned_over_demanded(self, workload,
                                                   resnet50):
        # Regression: headroom divided by the plan's *own* provisioned
        # throughput, so every feasible plan reported exactly 1.0 and
        # the metric carried no information about spare capacity.
        plan = CapacityPlanner(workload).plan(resnet50, A100)
        assert plan.headroom == pytest.approx(
            plan.total_throughput / workload.images_per_second)
        # Whole-device quantization guarantees real slack.
        assert plan.headroom >= 1.0
        assert plan.demand_images_per_second == \
            workload.images_per_second

    def test_headroom_reflects_overprovisioning(self, resnet50):
        tight = WorkloadSpec(images_per_second=5000,
                             latency_slo_seconds=1 / 60)
        loose = WorkloadSpec(images_per_second=500,
                             latency_slo_seconds=1 / 60)
        tight_plan = CapacityPlanner(tight).plan(resnet50, A100)
        loose_plan = CapacityPlanner(loose).plan(resnet50, A100)
        # One A100 covers both demands; the lighter one has ~10x slack.
        assert loose_plan.headroom > tight_plan.headroom

    def test_infeasible_plan_has_zero_headroom(self, vit_base):
        workload = WorkloadSpec(images_per_second=100,
                                latency_slo_seconds=1e-5)
        plan = CapacityPlanner(workload).plan(vit_base, JETSON)
        assert plan.headroom == 0.0

    def test_compare_orders_feasible_first(self, workload, resnet50):
        plans = CapacityPlanner(workload).compare(
            resnet50, [JETSON, V100, A100])
        flags = [p.meets_slo for p in plans]
        assert flags == sorted(flags, reverse=True)
        feasible = [p for p in plans if p.meets_slo]
        devices = [p.devices for p in feasible]
        assert devices == sorted(devices)

    def test_energy_accounting_positive(self, workload, resnet50):
        plan = CapacityPlanner(workload).plan(resnet50, JETSON)
        assert plan.watt_hours_per_day is not None
        assert plan.watt_hours_per_day > 0

    def test_duty_cycle_reduces_energy(self, resnet50):
        def energy(duty):
            workload = WorkloadSpec(images_per_second=500,
                                    latency_slo_seconds=1 / 30,
                                    duty_cycle=duty)
            return CapacityPlanner(workload).plan(resnet50,
                                                  A100).watt_hours_per_day

        assert energy(0.25) < energy(1.0)


class TestBacktest:
    def test_cross_platform_errors_bounded(self):
        # The predictor's portability assumption costs < 25% on the
        # paper's own anchors — the toolkit's honest error bar.
        summary = backtest_summary()
        assert set(summary) == {"v100<-a100", "a100<-v100",
                                "jetson<-a100", "a100<-jetson"}
        for pairing, error in summary.items():
            assert error < 0.25, pairing

    def test_backtest_rows_cover_zoo(self):
        results = backtest_platform("v100", "a100")
        assert {r.model for r in results} == {
            "vit_tiny", "vit_small", "vit_base", "resnet50"}
        for r in results:
            assert r.predicted_images_per_second > 0

    def test_same_platform_rejected(self):
        with pytest.raises(ValueError):
            backtest_platform("a100", "a100")

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            backtest_platform("h100", "a100")
