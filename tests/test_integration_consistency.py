"""Cross-subsystem consistency: different views of one quantity agree.

The reproduction exposes most quantities through several independent code
paths (study tables, figure series, engine facades, predictors, SVG
charts).  These tests pin them together so a refactor cannot silently
fork the numbers.
"""

import pytest

from repro.analysis.figures import fig5, fig6, fig8
from repro.core.study import CharacterizationStudy
from repro.engine.engine import InferenceEngine
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100, JETSON, get_platform
from repro.models.zoo import get_model
from repro.predict.predictor import PerformancePredictor


@pytest.fixture(scope="module")
def study_tables():
    study = CharacterizationStudy()
    return {
        "engine": study.engine_scaling(),
        "e2e": study.end_to_end(),
    }


class TestFigureVsStudyConsistency:
    def test_fig5_series_match_engine_table(self, study_tables):
        table = study_tables["engine"].where(platform="A100",
                                             model="vit_small")
        series = next(s for s in fig5("a100") if s.name == "ViT Small")
        assert list(series.x) == table.column("batch_size")
        for y, row_tflops in zip(series.y,
                                 table.column("achieved_tflops")):
            assert y == pytest.approx(row_tflops)

    def test_fig6_series_match_engine_table(self, study_tables):
        table = study_tables["engine"].where(platform="Jetson",
                                             model="resnet50")
        series = next(s for s in fig6("jetson") if s.name == "ResNet50")
        for y_ms, row_ms in zip(series.y, table.column("latency_ms")):
            assert y_ms == pytest.approx(row_ms)

    def test_fig8_series_match_e2e_table(self, study_tables):
        table = study_tables["e2e"].where(platform="Jetson",
                                          model="vit_base")
        series = next(s for s in fig8("jetson")
                      if s.name == "vit_base@BS2 throughput")
        by_dataset = dict(zip(series.x, series.y))
        for row in table.rows:
            assert by_dataset[row["dataset"]] == pytest.approx(
                row["throughput"])


class TestFacadeVsModelConsistency:
    def test_engine_facade_matches_latency_model(self, vit_small):
        engine = InferenceEngine(vit_small, A100)
        model = LatencyModel(vit_small, A100)
        for batch in (1, 16, 256):
            assert engine.infer(batch).latency_seconds == pytest.approx(
                model.latency(batch))

    def test_predictor_matches_study_on_calibrated_platform(
            self, study_tables, resnet50):
        predictor = PerformancePredictor(JETSON)
        prediction = predictor.predict(resnet50, 64)
        row = study_tables["engine"].where(
            platform="Jetson", model="resnet50").rows[-1]
        assert row["batch_size"] == 64
        assert prediction.throughput == pytest.approx(row["throughput"])

    def test_anchor_throughputs_identical_everywhere(self):
        # Three independent paths to the same paper anchor.
        from repro.engine.calibration import anchor_for

        graph = get_model("vit_base").graph
        batch, paper = anchor_for("v100", "vit_base")
        v100 = get_platform("v100")
        paths = [
            LatencyModel(graph, v100).throughput(batch),
            InferenceEngine(graph, v100).infer(batch).throughput,
            PerformancePredictor(v100).predict(graph, batch).throughput,
        ]
        for value in paths:
            assert value == pytest.approx(paper, rel=1e-3)


class TestChartsVsFigures:
    def test_svg_renders_from_identical_series(self):
        # The SVG path consumes fig5() directly; a parse-back of legend
        # labels must cover the zoo.
        import xml.etree.ElementTree as ET

        from repro.viz.charts import render_figure_svg

        root = ET.fromstring(render_figure_svg("fig5", "V100"))
        labels = [el.text for el in root.iter()
                  if el.tag.endswith("text") and el.text]
        for name in ("ViT Tiny", "ViT Small", "ViT Base", "ResNet50"):
            assert name in labels


class TestRepositoryVsZooConsistency:
    def test_repository_roundtrip_preserves_engine_performance(
            self, tmp_path, vit_small):
        # Serving a model from disk must price identically to serving
        # the in-memory zoo entry.
        from repro.serving.repository import ModelRepository

        repo = ModelRepository(tmp_path)
        repo.add_model(vit_small)
        loaded = repo.load("vit_small").graph
        original = LatencyModel(vit_small, A100)
        restored = LatencyModel(loaded, A100)
        for batch in (1, 64, 1024):
            assert restored.throughput(batch) == pytest.approx(
                original.throughput(batch))
