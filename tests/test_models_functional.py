"""Tests for repro.models.functional — the real NumPy execution path."""

import numpy as np
import pytest

from repro.models.functional import (
    MacTally,
    attention,
    batchnorm2d,
    build_functional,
    conv2d,
    gelu,
    global_avgpool,
    im2col,
    init_resnet50_weights,
    layernorm,
    linear,
    maxpool2d,
    relu,
    resnet50_forward,
    softmax,
    vit_forward,
)
from repro.models.resnet import build_resnet50
from repro.models.vit import VIT_CONFIGS, ViTConfig, build_vit


class TestLowLevelOps:
    def test_linear_matches_manual(self, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        w = rng.standard_normal((4, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        np.testing.assert_allclose(linear(x, w, b), x @ w.T + b, rtol=1e-5)

    def test_linear_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="features"):
            linear(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_im2col_identity_kernel(self, rng):
        x = rng.standard_normal((1, 1, 4, 4))
        patches, oh, ow = im2col(x, kernel=1, stride=1, padding=0)
        assert (oh, ow) == (4, 4)
        np.testing.assert_allclose(patches.reshape(4, 4), x[0, 0])

    def test_conv2d_matches_naive(self, rng):
        x = rng.standard_normal((1, 2, 5, 5)).astype(np.float64)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float64)
        out = conv2d(x, w, stride=1, padding=1)
        # Naive reference at a few positions.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for oc in range(3):
            for i, j in [(0, 0), (2, 3), (4, 4)]:
                ref = np.sum(padded[0, :, i:i + 3, j:j + 3] * w[oc])
                assert out[0, oc, i, j] == pytest.approx(ref)

    def test_conv2d_stride(self, rng):
        x = rng.standard_normal((1, 1, 8, 8))
        w = rng.standard_normal((1, 1, 2, 2))
        assert conv2d(x, w, stride=2).shape == (1, 1, 4, 4)

    def test_conv2d_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="channels"):
            conv2d(np.zeros((1, 3, 4, 4)), np.zeros((2, 4, 1, 1)))

    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_gelu_fixed_points(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-3)

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1.0, rtol=1e-6)

    def test_softmax_stable_for_large_logits(self):
        out = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_layernorm_standardizes(self, rng):
        x = rng.standard_normal((4, 16)).astype(np.float64) * 5 + 3
        out = layernorm(x, np.ones(16), np.zeros(16))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-3)

    def test_batchnorm_inference_mode(self, rng):
        x = rng.standard_normal((2, 3, 4, 4)).astype(np.float64)
        gamma, beta = np.full(3, 2.0), np.full(3, 1.0)
        mean, var = np.zeros(3), np.ones(3)
        out = batchnorm2d(x, gamma, beta, mean, var, eps=0.0)
        np.testing.assert_allclose(out, x * 2.0 + 1.0)

    def test_maxpool_reduces_and_takes_max(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = maxpool2d(x, kernel=2, stride=2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_global_avgpool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        np.testing.assert_allclose(global_avgpool(x),
                                   x.mean(axis=(2, 3)))

    def test_attention_output_shape(self, rng):
        qkv = rng.standard_normal((2, 5, 24)).astype(np.float32)
        assert attention(qkv, heads=2).shape == (2, 5, 8)

    def test_attention_uniform_values_average(self):
        # With identical tokens, attention returns the (identical) value.
        qkv = np.tile(np.arange(12, dtype=np.float64), (1, 4, 1))
        out = attention(qkv, heads=1)
        np.testing.assert_allclose(out, qkv[..., 8:], rtol=1e-6)

    def test_attention_invalid_heads(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            attention(rng.standard_normal((1, 2, 30)), heads=4)


class TestViTForward:
    @pytest.fixture(scope="class")
    def tiny_cfg(self):
        return ViTConfig("mini_vit", img_size=16, patch_size=4, dim=24,
                         depth=2, heads=2, num_classes=5)

    def test_logit_shape(self, tiny_cfg, rng):
        from repro.models.functional import init_vit_weights

        w = init_vit_weights(tiny_cfg)
        x = rng.standard_normal((3, 3, 16, 16)).astype(np.float32)
        assert vit_forward(tiny_cfg, w, x).shape == (3, 5)

    def test_deterministic_given_seed(self, tiny_cfg, rng):
        from repro.models.functional import init_vit_weights

        x = rng.standard_normal((1, 3, 16, 16)).astype(np.float32)
        a = vit_forward(tiny_cfg, init_vit_weights(tiny_cfg, seed=7), x)
        b = vit_forward(tiny_cfg, init_vit_weights(tiny_cfg, seed=7), x)
        np.testing.assert_array_equal(a, b)

    def test_wrong_input_shape_rejected(self, tiny_cfg):
        from repro.models.functional import init_vit_weights

        w = init_vit_weights(tiny_cfg)
        with pytest.raises(ValueError, match="expected input"):
            vit_forward(tiny_cfg, w, np.zeros((1, 3, 8, 8), np.float32))

    def test_mac_tally_matches_analytic_graph(self):
        # The MACs actually executed must equal the analytic accounting.
        cfg = VIT_CONFIGS["vit_tiny"]
        model = build_functional("vit_tiny")
        tally = MacTally()
        model(np.zeros((1, 3, 32, 32), np.float32), tally=tally)
        graph = build_vit("vit_tiny")
        assert tally.macs == pytest.approx(graph.total_macs(), rel=1e-9)
        assert cfg.tokens == 257  # the token count behind the match


class TestResNetForward:
    def test_logit_shape_small_input(self, rng):
        w = init_resnet50_weights(img_size=64, num_classes=7)
        x = rng.standard_normal((2, 3, 64, 64)).astype(np.float32)
        out = resnet50_forward(w, x, img_size=64)
        assert out.shape == (2, 7)

    def test_wrong_input_shape_rejected(self):
        w = init_resnet50_weights(img_size=64)
        with pytest.raises(ValueError, match="expected input"):
            resnet50_forward(w, np.zeros((1, 3, 32, 32), np.float32),
                             img_size=64)

    def test_mac_tally_matches_analytic_graph_small(self, rng):
        w = init_resnet50_weights(img_size=64, num_classes=10)
        x = rng.standard_normal((1, 3, 64, 64)).astype(np.float32)
        tally = MacTally()
        resnet50_forward(w, x, img_size=64, tally=tally)
        graph = build_resnet50(img_size=64, num_classes=10)
        # Analytic MACs count conv + fc; the tally counts the same ops.
        assert tally.macs == pytest.approx(graph.total_macs(), rel=1e-9)


class TestFacade:
    def test_build_functional_weight_count_matches_graph(self, vit_small):
        model = build_functional("vit_small")
        assert model.weight_elements() == vit_small.total_params()

    def test_resnet_weight_count_matches_graph(self, resnet50):
        model = build_functional("resnet50")
        assert model.weight_elements() == resnet50.total_params()

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_functional("alexnet")

    def test_num_classes_override(self):
        model = build_functional("vit_tiny", num_classes=3)
        out = model(np.zeros((1, 3, 32, 32), np.float32))
        assert out.shape == (1, 3)

    def test_end_to_end_vit_tiny(self, rng):
        model = build_functional("vit_tiny")
        x = rng.standard_normal((1, 3, 32, 32)).astype(np.float32)
        out = model(x)
        assert out.shape == (1, 39)
        assert np.isfinite(out).all()
