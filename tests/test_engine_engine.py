"""Tests for repro.engine.engine — the InferenceEngine facade."""

import numpy as np
import pytest

from repro.engine.engine import InferenceEngine
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.platform import A100, JETSON, V100
from repro.hardware.precision import Precision
from repro.models.vit import build_vit


@pytest.fixture(scope="module")
def tiny_engine():
    return InferenceEngine(build_vit("vit_tiny"), A100)


class TestConstruction:
    def test_default_precision_matches_platform(self, tiny_engine):
        assert tiny_engine.precision is Precision.BF16

    def test_v100_engine_uses_fp16(self):
        engine = InferenceEngine(build_vit("vit_tiny"), V100)
        assert engine.precision is Precision.FP16

    def test_build_time_oom_check(self, vit_base):
        with pytest.raises(OutOfMemoryError):
            InferenceEngine(vit_base, JETSON, memory_budget_bytes=1e6)

    def test_repr(self, tiny_engine):
        assert "vit_tiny" in repr(tiny_engine)
        assert "A100" in repr(tiny_engine)


class TestSimulatedInference:
    def test_integer_batch_returns_latency_only(self, tiny_engine):
        result = tiny_engine.infer(64)
        assert result.batch_size == 64
        assert result.outputs is None
        assert result.latency_seconds > 0
        assert result.throughput == pytest.approx(
            64 / result.latency_seconds)

    def test_latency_matches_model(self, tiny_engine):
        result = tiny_engine.infer(32)
        assert result.latency_seconds == pytest.approx(
            tiny_engine.latency_model.latency(32))

    def test_batch_beyond_profile_rejected(self, tiny_engine):
        with pytest.raises(ValueError, match="profile"):
            tiny_engine.infer(4096)

    def test_oom_batch_rejected_on_jetson(self, vit_base):
        engine = InferenceEngine(vit_base, JETSON, max_batch_size=1024)
        with pytest.raises(OutOfMemoryError):
            engine.infer(16)
        assert engine.infer(8).latency_seconds > 0

    def test_predict_point_validates_memory(self, vit_base):
        engine = InferenceEngine(vit_base, JETSON, max_batch_size=1024)
        point = engine.predict_point(8)
        assert point.batch_size == 8
        with pytest.raises(OutOfMemoryError):
            engine.predict_point(32)

    def test_memory_bytes_exposed(self, tiny_engine):
        assert engine_bytes_positive(tiny_engine)


def engine_bytes_positive(engine):
    return engine.memory_bytes(1) > 0


class TestFunctionalInference:
    def test_real_forward_produces_logits(self):
        engine = InferenceEngine(build_vit("vit_tiny"), A100,
                                 functional=True)
        x = np.zeros((2, 3, 32, 32), np.float32)
        result = engine.infer(x)
        assert result.outputs is not None
        assert result.outputs.shape == (2, 39)
        assert np.isfinite(result.outputs).all()

    def test_wrong_input_shape_rejected(self):
        engine = InferenceEngine(build_vit("vit_tiny"), A100,
                                 functional=True)
        with pytest.raises(ValueError, match="per-image shape"):
            engine.infer(np.zeros((1, 3, 16, 16), np.float32))

    def test_wrong_rank_rejected(self, tiny_engine):
        with pytest.raises(ValueError, match="N, C, H, W"):
            tiny_engine.infer(np.zeros((3, 32, 32), np.float32))

    def test_array_input_without_functional_mode_gives_no_outputs(
            self, tiny_engine):
        result = tiny_engine.infer(np.zeros((1, 3, 32, 32), np.float32))
        assert result.outputs is None
        assert result.batch_size == 1
