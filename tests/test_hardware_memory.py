"""Tests for repro.hardware.memory."""

import pytest

from repro.hardware.memory import (
    MemoryPool,
    OutOfMemoryError,
    UnifiedMemoryPool,
    pool_for_platform,
)
from repro.hardware.platform import A100, JETSON


class TestMemoryPool:
    def test_allocate_and_free_roundtrip(self):
        pool = MemoryPool(1000)
        alloc = pool.allocate(400, tag="weights")
        assert pool.used_bytes == 400
        assert pool.available_bytes == 600
        pool.free(alloc)
        assert pool.used_bytes == 0

    def test_oom_raises_with_details(self):
        pool = MemoryPool(100, name="test-pool")
        pool.allocate(80)
        with pytest.raises(OutOfMemoryError) as excinfo:
            pool.allocate(30)
        assert excinfo.value.requested == 30
        assert excinfo.value.available == pytest.approx(20)
        assert "test-pool" in str(excinfo.value)

    def test_exact_fit_succeeds(self):
        pool = MemoryPool(100)
        pool.allocate(100)
        assert pool.available_bytes == 0

    def test_zero_byte_allocation_allowed(self):
        pool = MemoryPool(10)
        alloc = pool.allocate(0)
        assert alloc.bytes == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(10).allocate(-1)

    def test_double_free_raises(self):
        pool = MemoryPool(100)
        alloc = pool.allocate(10)
        pool.free(alloc)
        with pytest.raises(KeyError):
            pool.free(alloc)

    def test_can_fit(self):
        pool = MemoryPool(100)
        pool.allocate(60)
        assert pool.can_fit(40)
        assert not pool.can_fit(41)
        assert not pool.can_fit(-1)

    def test_breakdown_groups_by_tag(self):
        pool = MemoryPool(1000)
        pool.allocate(100, tag="weights")
        pool.allocate(200, tag="activations")
        pool.allocate(50, tag="weights")
        assert pool.breakdown() == {"weights": 150, "activations": 200}

    def test_live_allocations_reflect_state(self):
        pool = MemoryPool(1000)
        a = pool.allocate(1)
        pool.allocate(2)
        pool.free(a)
        assert [x.bytes for x in pool.live_allocations()] == [2]

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoryPool(0)


class TestUnifiedMemoryPool:
    def test_host_reservation_shrinks_capacity(self):
        pool = UnifiedMemoryPool(8e9, host_reserved_bytes=3e9)
        assert pool.capacity_bytes == pytest.approx(5e9)
        assert pool.total_device_bytes == pytest.approx(8e9)

    def test_reservation_bounds_validated(self):
        with pytest.raises(ValueError):
            UnifiedMemoryPool(8e9, host_reserved_bytes=8e9)
        with pytest.raises(ValueError):
            UnifiedMemoryPool(8e9, host_reserved_bytes=-1)

    def test_competition_between_stages(self):
        # Preprocessing buffers and engine allocations share the pool:
        # after preprocessing claims memory, a formerly-fitting engine
        # allocation OOMs - the Fig. 8 Jetson dynamic.
        pool = UnifiedMemoryPool(4e9, host_reserved_bytes=1e9)
        assert pool.can_fit(2.5e9)
        pool.allocate(2.0e9, tag="preprocessing")
        assert not pool.can_fit(2.5e9)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(2.5e9, tag="engine")


class TestPoolForPlatform:
    def test_discrete_platform_gets_plain_pool(self):
        pool = pool_for_platform(A100)
        assert type(pool) is MemoryPool
        assert pool.capacity_bytes == pytest.approx(
            A100.usable_gpu_memory_bytes)

    def test_jetson_gets_unified_pool(self):
        pool = pool_for_platform(JETSON)
        assert isinstance(pool, UnifiedMemoryPool)
        assert pool.total_device_bytes == pytest.approx(8e9)
        assert pool.capacity_bytes == pytest.approx(
            JETSON.usable_gpu_memory_bytes)
