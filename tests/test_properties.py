"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.encoding import rle_decode, rle_encode
from repro.hardware.gemm import gemm_flops
from repro.hardware.memory import MemoryPool, OutOfMemoryError
from repro.models.layers import AttentionMatmul, Conv2d, Linear
from repro.preprocessing.ops import (
    center_crop,
    normalize,
    resize_bilinear,
    solve_homography,
    warp_perspective,
)
from repro.serving.batcher import BatcherConfig, DynamicBatcher
from repro.serving.events import Simulator
from repro.serving.request import Request


# ----------------------------------------------------------------------
# RLE codec: encode/decode is the identity for every uint8 image.
# ----------------------------------------------------------------------
@given(
    h=st.integers(1, 24), w=st.integers(1, 24), c=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_rle_roundtrip_identity(h, w, c, seed):
    rng = np.random.default_rng(seed)
    # Mix long runs and noise to exercise the chunking path.
    img = rng.choice(np.array([0, 0, 0, 7, 255], np.uint8),
                     size=(h, w, c))
    decoded = rle_decode(rle_encode(img))
    np.testing.assert_array_equal(img, decoded)


@given(value=st.integers(0, 255), length=st.integers(1, 2000))
@settings(max_examples=40, deadline=None)
def test_rle_constant_run_roundtrip(value, length):
    img = np.full((1, length, 1), value, np.uint8)
    decoded = rle_decode(rle_encode(img))
    np.testing.assert_array_equal(img, decoded)


# ----------------------------------------------------------------------
# Layer accounting: non-negative, monotone in structural parameters.
# ----------------------------------------------------------------------
@given(
    in_ch=st.integers(1, 16), out_ch=st.integers(1, 16),
    hw=st.integers(4, 32), k=st.sampled_from([1, 3]),
    stride=st.sampled_from([1, 2]),
)
@settings(max_examples=60, deadline=None)
def test_conv_accounting_invariants(in_ch, out_ch, hw, k, stride):
    conv = Conv2d("c", in_channels=in_ch, out_channels=out_ch,
                  in_hw=(hw, hw), kernel_size=k, stride=stride,
                  padding=k // 2)
    assert conv.params() > 0
    assert conv.macs() > 0
    # MACs = params(w/o bias) x output positions.
    oh, ow = conv.out_hw
    assert conv.macs() == conv.params() * oh * ow
    assert conv.activation_elements() == out_ch * oh * ow


@given(tokens=st.integers(1, 128), din=st.integers(1, 64),
       dout=st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_linear_macs_bilinear_in_dims(tokens, din, dout):
    layer = Linear("l", in_features=din, out_features=dout, tokens=tokens)
    assert layer.macs() == tokens * din * dout
    doubled = Linear("l", in_features=din, out_features=dout,
                     tokens=2 * tokens)
    assert doubled.macs() == 2 * layer.macs()


@given(tokens=st.integers(1, 64), heads=st.sampled_from([1, 2, 4]),
       head_dim=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_attention_quadratic_scaling(tokens, heads, head_dim):
    dim = heads * head_dim
    single = AttentionMatmul("a", tokens=tokens, dim=dim, heads=heads)
    double = AttentionMatmul("a", tokens=2 * tokens, dim=dim, heads=heads)
    assert double.macs() == 4 * single.macs()


# ----------------------------------------------------------------------
# Preprocessing ops.
# ----------------------------------------------------------------------
@given(
    h=st.integers(2, 40), w=st.integers(2, 40),
    oh=st.integers(1, 40), ow=st.integers(1, 40),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_resize_preserves_value_range(h, w, oh, ow, seed):
    rng = np.random.default_rng(seed)
    img = rng.random((h, w, 3)).astype(np.float32)
    out = resize_bilinear(img, oh, ow)
    assert out.shape == (oh, ow, 3)
    # Bilinear interpolation is a convex combination: range preserved.
    assert out.min() >= img.min() - 1e-5
    assert out.max() <= img.max() + 1e-5


@given(h=st.integers(1, 30), w=st.integers(1, 30),
       ch=st.integers(1, 30), cw=st.integers(1, 30))
@settings(max_examples=50, deadline=None)
def test_center_crop_shape_contract(h, w, ch, cw):
    img = np.zeros((h, w, 3), np.float32)
    if ch > h or cw > w:
        with pytest.raises(ValueError):
            center_crop(img, ch, cw)
    else:
        assert center_crop(img, ch, cw).shape == (ch, cw, 3)


@given(seed=st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_normalize_is_invertible(seed):
    rng = np.random.default_rng(seed)
    img = (rng.random((6, 6, 3)) * 255).astype(np.uint8)
    mean = rng.random(3).astype(np.float32)
    std = (rng.random(3) + 0.5).astype(np.float32)
    out = normalize(img, mean, std)
    recovered = (out * std + mean) * 255.0
    np.testing.assert_allclose(recovered, img.astype(np.float32),
                               atol=1e-3)


@given(
    shift_x=st.floats(-20, 20), shift_y=st.floats(-20, 20),
    scale=st.floats(0.5, 2.0),
)
@settings(max_examples=40, deadline=None)
def test_homography_solver_consistent_with_affine(shift_x, shift_y, scale):
    src = np.array([[0, 0], [50, 0], [50, 50], [0, 50]], float)
    dst = src * scale + [shift_x, shift_y]
    h = solve_homography(src, dst)
    probe = np.array([13.0, 29.0])
    mapped = h @ np.array([*probe, 1.0])
    np.testing.assert_allclose(mapped[:2] / mapped[2],
                               probe * scale + [shift_x, shift_y],
                               atol=1e-6)


@given(seed=st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_warp_identity_property(seed):
    rng = np.random.default_rng(seed)
    img = rng.random((10, 12, 3)).astype(np.float32)
    out = warp_perspective(img, np.eye(3), 10, 12)
    np.testing.assert_allclose(out, img, atol=1e-4)


# ----------------------------------------------------------------------
# Memory pool: usage accounting is conserved under any alloc/free trace.
# ----------------------------------------------------------------------
@given(ops=st.lists(st.integers(-5, 100), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_memory_pool_conservation(ops):
    pool = MemoryPool(500)
    live = []
    expected_used = 0.0
    for op in ops:
        if op < 0 and live:  # free the oldest live allocation
            alloc = live.pop(0)
            pool.free(alloc)
            expected_used -= alloc.bytes
        elif op >= 0:
            try:
                alloc = pool.allocate(op)
            except OutOfMemoryError:
                assert expected_used + op > 500
                continue
            live.append(alloc)
            expected_used += op
        assert pool.used_bytes == pytest.approx(expected_used)
        assert 0 <= pool.used_bytes <= pool.capacity_bytes


# ----------------------------------------------------------------------
# Dynamic batcher: no request lost, no request duplicated, FIFO order.
# ----------------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(1, 8), min_size=1, max_size=40),
    max_batch=st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_batcher_conserves_requests(sizes, max_batch):
    batcher = DynamicBatcher(BatcherConfig(max_batch_size=max_batch,
                                           max_queue_delay=0.0))
    requests = [Request("m", num_images=n) for n in sizes]
    for r in requests:
        batcher.enqueue(r, now=0.0)
    drained = []
    while len(batcher):
        batch = batcher.form_batch()
        assert batch, "form_batch returned an empty batch"
        images = sum(r.num_images for r in batch)
        assert images <= max(max_batch, max(sizes))
        drained.extend(batch)
    assert [r.request_id for r in drained] == \
        [r.request_id for r in requests]


# ----------------------------------------------------------------------
# Simulator: events always fire in nondecreasing time order.
# ----------------------------------------------------------------------
@given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_simulator_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ----------------------------------------------------------------------
# GEMM flops positivity and symmetry.
# ----------------------------------------------------------------------
@given(m=st.integers(1, 512), n=st.integers(1, 512), k=st.integers(1, 512))
@settings(max_examples=60, deadline=None)
def test_gemm_flops_symmetry(m, n, k):
    assert gemm_flops(m, n, k) == gemm_flops(n, m, k) == gemm_flops(k, n, m)
    assert gemm_flops(m, n, k) > 0


# ----------------------------------------------------------------------
# Engine laws: throughput monotone, latency superlinear floor.
# ----------------------------------------------------------------------
@given(b1=st.integers(1, 512), b2=st.integers(1, 512))
@settings(max_examples=60, deadline=None)
def test_engine_monotonicity(b1, b2, vit_small):
    from repro.engine.latency import LatencyModel
    from repro.hardware.platform import A100

    model = LatencyModel(vit_small, A100)
    lo, hi = sorted((b1, b2))
    assert model.throughput(lo) <= model.throughput(hi) + 1e-9
    assert model.latency(lo) <= model.latency(hi) + 1e-12
    assert model.latency(hi) >= model.theoretical_latency(hi)
