"""Tests for repro.engine.mfu — the Fig. 5 utilization model."""

import pytest

from repro.engine.calibration import anchor_for
from repro.engine.mfu import MFUModel
from repro.hardware.platform import A100, JETSON, V100
from repro.models.vit import ViTConfig, build_vit


class TestAnchorReproduction:
    @pytest.mark.parametrize("platform", [A100, V100, JETSON],
                             ids=lambda p: p.name)
    @pytest.mark.parametrize("model", ["vit_tiny", "vit_small",
                                       "vit_base", "resnet50"])
    def test_throughput_at_anchor_batch(self, platform, model, all_models):
        graph = next(g for g in all_models if g.name == model)
        mfu_model = MFUModel(graph, platform)
        batch, paper_thr = anchor_for(platform.name, model)
        thr = (platform.practical_flops * mfu_model.mfu(batch)
               / graph.flops_per_image())
        assert thr == pytest.approx(paper_thr, rel=0.001)


class TestCurveShape:
    def test_mfu_monotonically_increases(self, vit_tiny):
        model = MFUModel(vit_tiny, A100)
        values = [model.mfu(b) for b in (1, 2, 4, 8, 16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_diminishing_returns(self, vit_tiny):
        # "increasing batch size demonstrates diminishing returns".
        model = MFUModel(vit_tiny, A100)
        gain_small = model.mfu(8) - model.mfu(4)
        gain_large = model.mfu(512) - model.mfu(256)
        assert gain_large < gain_small

    def test_mfu_bounded_by_peak(self, vit_base):
        model = MFUModel(vit_base, A100)
        assert model.mfu(4096) <= model.mfu_peak <= 1.0

    def test_larger_models_saturate_at_smaller_batches(self, vit_tiny,
                                                       vit_base):
        # "deploying larger models similarly improves MFU".
        tiny = MFUModel(vit_tiny, A100)
        base = MFUModel(vit_base, A100)
        assert base.b_sat < tiny.b_sat
        assert base.mfu(8) / base.mfu_peak > tiny.mfu(8) / tiny.mfu_peak

    def test_invalid_batch_rejected(self, vit_tiny):
        with pytest.raises(ValueError):
            MFUModel(vit_tiny, A100).mfu(0)


class TestPaperMFUClaims:
    def test_resnet_beats_vit_small_mfu_despite_fewer_flops(
            self, vit_small, resnet50):
        # "While ViT-Small exhibits higher computational demand than
        # ResNet50 (5.47 vs. 4.09 GFLOPs/image), ResNet achieves superior
        # MFU."
        assert vit_small.reported_gflops() > resnet50.reported_gflops()
        for platform in (A100, V100, JETSON):
            vit = MFUModel(vit_small, platform)
            res = MFUModel(resnet50, platform)
            assert res.mfu_peak > vit.mfu_peak

    def test_substantial_gap_to_practical_bound(self, all_models):
        # "a substantial gap exists between the MFU and the practical
        # upper bound": even at max batch, utilization stays below ~45%.
        for graph in all_models:
            model = MFUModel(graph, A100)
            assert model.mfu(1024) < 0.45

    def test_achieved_tflops_below_practical(self, vit_base):
        model = MFUModel(vit_base, A100)
        assert model.achieved_tflops(1024) < A100.practical_tflops


class TestNearSaturation:
    def test_near_saturation_batch_increases_with_fraction(self, vit_tiny):
        model = MFUModel(vit_tiny, A100)
        assert (model.near_saturation_batch(0.95)
                > model.near_saturation_batch(0.5))

    def test_fraction_bounds_validated(self, vit_tiny):
        model = MFUModel(vit_tiny, A100)
        with pytest.raises(ValueError):
            model.near_saturation_batch(1.0)

    def test_mfu_at_near_saturation_batch(self, vit_small):
        model = MFUModel(vit_small, V100)
        b = model.near_saturation_batch(0.9)
        assert model.mfu(b) >= 0.9 * model.mfu_peak


class TestUnanchoredModels:
    def test_custom_model_interpolates_peak(self):
        # A ViT variant between Tiny and Small in GFLOPs gets a peak
        # between their calibrated peaks.
        cfg = ViTConfig("vit_mid", img_size=32, patch_size=2, dim=256,
                        depth=12, heads=4)
        mid = build_vit(cfg)
        tiny = MFUModel(build_vit("vit_tiny"), A100)
        small = MFUModel(build_vit("vit_small"), A100)
        model = MFUModel(mid, A100)
        low, high = sorted([tiny.mfu_peak, small.mfu_peak])
        assert low <= model.mfu_peak <= high

    def test_tiny_custom_model_clamps_to_smallest_anchor(self):
        cfg = ViTConfig("vit_nano", img_size=16, patch_size=2, dim=96,
                        depth=6, heads=3)
        nano = build_vit(cfg)
        model = MFUModel(nano, A100)
        tiny = MFUModel(build_vit("vit_tiny"), A100)
        assert model.mfu_peak == pytest.approx(tiny.mfu_peak)
