"""Tests for repro.data.distributions — the Fig. 4 size models."""

import numpy as np
import pytest

from repro.data.distributions import (
    FixedSize,
    VariableSize,
    density_grid,
    empirical_mode,
)


class TestFixedSize:
    def test_every_sample_is_the_mode(self, rng):
        dist = FixedSize(256, 256)
        sizes = dist.sample(100, rng)
        assert (sizes == 256).all()

    def test_mode_and_uniform_flag(self):
        dist = FixedSize(100, 50)
        assert dist.mode == (100, 50)
        assert dist.is_uniform

    def test_mean_pixels_is_exact(self):
        assert FixedSize(100, 50).mean_pixels() == 5000.0

    def test_zero_samples_ok(self, rng):
        assert FixedSize(10, 10).sample(0, rng).shape == (0, 2)

    def test_negative_n_rejected(self, rng):
        with pytest.raises(ValueError):
            FixedSize(10, 10).sample(-1, rng)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            FixedSize(0, 10)


class TestVariableSize:
    def test_samples_respect_truncation(self, rng):
        dist = VariableSize(61, 61, sigma=0.45, min_side=16, max_side=420)
        sizes = dist.sample(5000, rng)
        assert sizes.min() >= 16
        assert sizes.max() <= 420

    def test_mode_recovery_weed_soybean(self):
        # Fig. 4a labels the Weed-Soybean mode as 233x233.
        dist = VariableSize(233, 233, sigma=0.16)
        sizes = dist.sample(40000, np.random.default_rng(0))
        w, h = empirical_mode(sizes, bin_width=6)
        assert w == pytest.approx(233, rel=0.12)
        assert h == pytest.approx(233, rel=0.12)

    def test_mode_recovery_spittle_bug(self):
        # Fig. 4b labels the Spittle-Bug mode as 61x61.
        dist = VariableSize(61, 61, sigma=0.45)
        sizes = dist.sample(40000, np.random.default_rng(0))
        w, h = empirical_mode(sizes, bin_width=6)
        assert w == pytest.approx(61, abs=10)
        assert h == pytest.approx(61, abs=10)

    def test_width_height_correlated(self, rng):
        dist = VariableSize(100, 100, sigma=0.4, correlation=0.8)
        sizes = dist.sample(5000, rng)
        r = np.corrcoef(np.log(sizes[:, 0]), np.log(sizes[:, 1]))[0, 1]
        assert r > 0.6

    def test_zero_correlation_decorrelates(self, rng):
        dist = VariableSize(100, 100, sigma=0.4, correlation=0.0)
        sizes = dist.sample(5000, rng)
        r = np.corrcoef(np.log(sizes[:, 0]), np.log(sizes[:, 1]))[0, 1]
        assert abs(r) < 0.1

    def test_not_uniform(self):
        assert not VariableSize(61, 61).is_uniform

    def test_validation(self):
        with pytest.raises(ValueError):
            VariableSize(61, 61, sigma=0.0)
        with pytest.raises(ValueError):
            VariableSize(61, 61, correlation=1.5)
        with pytest.raises(ValueError):
            VariableSize(500, 500, max_side=420)

    def test_deterministic_given_rng_seed(self):
        dist = VariableSize(61, 61)
        a = dist.sample(10, np.random.default_rng(5))
        b = dist.sample(10, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)


class TestDensityGrid:
    def test_density_normalized_to_unit_peak(self, rng):
        sizes = VariableSize(100, 100).sample(2000, rng)
        density, _, _ = density_grid(sizes)
        assert density.max() == pytest.approx(1.0)

    def test_shapes(self, rng):
        sizes = VariableSize(100, 100).sample(500, rng)
        density, w_edges, h_edges = density_grid(sizes, bins=10)
        assert density.shape == (10, 10)
        assert len(w_edges) == len(h_edges) == 11

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            density_grid(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            density_grid(np.zeros((0, 2)))

    def test_fixed_size_collapses_to_single_cell(self, rng):
        sizes = FixedSize(100, 100).sample(100, rng)
        density, _, _ = density_grid(sizes)
        assert (density > 0).sum() == 1
