"""Tests for repro.serving.server, instance, client and metrics."""

import pytest

from repro.serving.batcher import BatcherConfig
from repro.serving.client import ClosedLoopClient, OpenLoopClient
from repro.serving.events import Simulator
from repro.serving.instance import BackendInstance
from repro.serving.metrics import summarize_responses
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


def constant_service(seconds):
    return lambda images: seconds


class TestBackendInstance:
    def test_executes_and_reports(self):
        sim = Simulator()
        inst = BackendInstance("m#0", constant_service(0.5), sim)
        done = []
        inst.execute([Request("m")], done.append)
        assert inst.busy
        sim.run()
        assert not inst.busy
        assert len(done) == 1
        assert inst.stats.batches_served == 1
        assert inst.stats.busy_seconds == 0.5

    def test_double_execute_rejected(self):
        sim = Simulator()
        inst = BackendInstance("m#0", constant_service(0.5), sim)
        inst.execute([Request("m")], lambda b: None)
        with pytest.raises(RuntimeError, match="busy"):
            inst.execute([Request("m")], lambda b: None)

    def test_empty_batch_rejected(self):
        inst = BackendInstance("m#0", constant_service(0.1), Simulator())
        with pytest.raises(ValueError):
            inst.execute([], lambda b: None)

    def test_stage_times_stamped(self):
        sim = Simulator()
        inst = BackendInstance("m#0", constant_service(0.25), sim)
        request = Request("m")
        inst.execute([request], lambda b: None)
        sim.run()
        assert request.stage_times["m#0:start"] == 0.0
        assert request.stage_times["m#0:end"] == 0.25

    def test_negative_service_time_rejected(self):
        inst = BackendInstance("m#0", lambda n: -1.0, Simulator())
        with pytest.raises(ValueError):
            inst.execute([Request("m")], lambda b: None)


class TestServerBasics:
    def make_server(self, service=0.01, **batcher_kw):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(service),
            batcher=BatcherConfig(**batcher_kw)))
        return server

    def test_single_request_roundtrip(self):
        server = self.make_server(max_queue_delay=0.0)
        server.submit(Request("m"))
        responses = server.run()
        assert len(responses) == 1
        assert responses[0].latency == pytest.approx(0.01)

    def test_unknown_model_rejected(self):
        server = self.make_server()
        with pytest.raises(KeyError, match="loaded"):
            server.submit(Request("nope"))

    def test_duplicate_registration_rejected(self):
        server = self.make_server()
        with pytest.raises(ValueError, match="already"):
            server.register(ModelConfig("m", constant_service(0.01)))

    def test_batching_coalesces_requests(self):
        server = self.make_server(max_batch_size=8, max_queue_delay=0.005)
        for _ in range(8):
            server.submit(Request("m"))
        server.run()
        [stats] = server.instance_stats("m")
        assert stats.batches_served == 1
        assert stats.images_served == 8

    def test_queue_delay_flushes_partial_batch(self):
        server = self.make_server(max_batch_size=64,
                                  max_queue_delay=0.002)
        server.submit(Request("m"))
        responses = server.run()
        # waited out the 2 ms delay, then served in 10 ms.
        assert responses[0].latency == pytest.approx(0.012, abs=1e-6)

    def test_multi_instance_parallelism(self):
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "m", constant_service(1.0), instances=2,
            batcher=BatcherConfig(enabled=False)))
        for _ in range(2):
            server.submit(Request("m"))
        server.run()
        # Two instances serve concurrently: both done at t=1.
        assert sim.now == pytest.approx(1.0)

    def test_single_instance_serializes(self):
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "m", constant_service(1.0),
            batcher=BatcherConfig(enabled=False)))
        for _ in range(2):
            server.submit(Request("m"))
        server.run()
        assert sim.now == pytest.approx(2.0)


class TestReconfigureBatcher:
    def test_shorter_delay_cancels_the_stale_timer(self):
        # Regression: a live swap from 50 ms to 1 ms queue delay must
        # dispatch at the new deadline.  Before the fix the pending
        # 50 ms timer was neither cancelled nor superseded
        # (_timer_pending still held the stage), so the old deadline
        # silently stayed in force.
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(0.01),
            batcher=BatcherConfig(max_batch_size=64,
                                  max_queue_delay=0.05)))
        server.submit(Request("m"))  # arms the 50 ms timer

        def swap():
            server.reconfigure_batcher(
                "m", BatcherConfig(max_batch_size=64,
                                   max_queue_delay=0.001))

        server.sim.schedule(0.0005, swap)
        [response] = server.run()
        # New deadline: enqueue (t=0) + 1 ms, then 10 ms of service —
        # not the stale 50 ms deadline.
        assert response.latency == pytest.approx(0.011, abs=1e-6)

    def test_longer_delay_swap_still_dispatches(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(0.01),
            batcher=BatcherConfig(max_batch_size=64,
                                  max_queue_delay=0.001)))
        server.submit(Request("m"))

        def swap():
            server.reconfigure_batcher(
                "m", BatcherConfig(max_batch_size=64,
                                   max_queue_delay=0.02))

        server.sim.schedule(0.0005, swap)
        [response] = server.run()
        assert response.latency == pytest.approx(0.03, abs=1e-6)

    def test_enabling_batching_live_rearms_from_new_config(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(0.01),
            batcher=BatcherConfig(max_batch_size=64,
                                  max_queue_delay=0.05)))
        server.submit(Request("m"))

        def swap():  # batching off => immediate FIFO dispatch
            server.reconfigure_batcher("m", BatcherConfig(enabled=False))

        server.sim.schedule(0.002, swap)
        [response] = server.run()
        assert response.latency == pytest.approx(0.012, abs=1e-6)

    def test_unknown_model_rejected(self):
        server = TritonLikeServer()
        with pytest.raises(KeyError):
            server.reconfigure_batcher("nope", BatcherConfig())


class TestEnsembleRouting:
    def test_preprocess_then_infer(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", constant_service(0.2),
            batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "model", constant_service(0.3),
            batcher=BatcherConfig(enabled=False),
            preprocess_model="pre"))
        server.submit(Request("model"))
        [response] = server.run()
        assert response.latency == pytest.approx(0.5)
        assert "pre#0:end" in response.request.stage_times
        assert "model#0:end" in response.request.stage_times

    def test_preprocess_must_exist_first(self):
        server = TritonLikeServer()
        with pytest.raises(ValueError, match="registered before"):
            server.register(ModelConfig(
                "model", constant_service(0.1),
                preprocess_model="missing"))

    def test_stages_overlap_for_streams(self):
        # With both stages busy simultaneously, total time for N requests
        # approaches N * bottleneck rather than N * (pre + infer).
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "pre", constant_service(0.1),
            batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "model", constant_service(0.1),
            batcher=BatcherConfig(enabled=False),
            preprocess_model="pre"))
        n = 10
        for _ in range(n):
            server.submit(Request("model"))
        server.run()
        assert sim.now == pytest.approx(0.1 * (n + 1))


class TestClients:
    def test_open_loop_rate(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(0.001),
            batcher=BatcherConfig(max_queue_delay=0.001)))
        client = OpenLoopClient(server, "m", rate_per_second=100,
                               num_requests=200, seed=3)
        client.start()
        server.run()
        stats = summarize_responses(server.responses,
                                    warmup_fraction=0.1)
        assert stats.throughput_rps == pytest.approx(100, rel=0.2)

    def test_closed_loop_completes_all(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(0.01),
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.001)))
        client = ClosedLoopClient(server, "m", concurrency=8,
                                  num_requests=50)
        client.start()
        server.run()
        assert len(client.completed) == 50

    def test_closed_loop_higher_concurrency_higher_throughput(self):
        def run(concurrency):
            server = TritonLikeServer()
            server.register(ModelConfig(
                "m", lambda n: 0.005 + 0.001 * n,
                batcher=BatcherConfig(max_batch_size=32,
                                      max_queue_delay=0.001)))
            client = ClosedLoopClient(server, "m", concurrency=concurrency,
                                      num_requests=200)
            client.start()
            server.run()
            return summarize_responses(client.completed,
                                       warmup_fraction=0.2).throughput_ips

        assert run(32) > run(1)

    def test_client_validation(self):
        server = TritonLikeServer()
        server.register(ModelConfig("m", constant_service(0.01)))
        with pytest.raises(ValueError):
            OpenLoopClient(server, "m", rate_per_second=0, num_requests=1)
        with pytest.raises(ValueError):
            ClosedLoopClient(server, "m", concurrency=5, num_requests=3)


class TestMetrics:
    def test_empty_responses(self):
        stats = summarize_responses([])
        assert stats.count == 0

    def test_percentiles_ordered(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.01 * n,
            batcher=BatcherConfig(max_batch_size=16,
                                  max_queue_delay=0.002)))
        client = OpenLoopClient(server, "m", rate_per_second=50,
                               num_requests=100)
        client.start()
        server.run()
        stats = summarize_responses(server.responses)
        assert (stats.p50_latency <= stats.p95_latency
                <= stats.p99_latency <= stats.max_latency)

    def test_warmup_fraction_drops_responses(self):
        server = TritonLikeServer()
        server.register(ModelConfig("m", constant_service(0.01),
                                    batcher=BatcherConfig(
                                        max_queue_delay=0.0)))
        for _ in range(10):
            server.submit(Request("m"))
        server.run()
        assert summarize_responses(server.responses,
                                   warmup_fraction=0.5).count == 5

    def test_invalid_warmup_rejected(self):
        with pytest.raises(ValueError):
            summarize_responses([], warmup_fraction=1.0)

    def test_warmup_window_starts_at_the_boundary(self):
        # Regression: after dropping the earliest completions, the
        # measurement window must start at the warmup boundary (the
        # last dropped completion), not at the kept requests' arrival
        # times — those predate the cut and deflate throughput.
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", constant_service(1.0),
            batcher=BatcherConfig(enabled=False)))
        for _ in range(10):
            server.submit(Request("m"))  # all arrive at t=0
        server.run()  # completions at t = 1..10
        cold = summarize_responses(server.responses)
        warm = summarize_responses(server.responses,
                                   warmup_fraction=0.5)
        # 5 kept completions over the 5 s past the boundary: the
        # steady-state rate, provably not lower than the cold run.
        assert warm.duration == pytest.approx(5.0)
        assert warm.throughput_rps >= cold.throughput_rps - 1e-9
        assert warm.throughput_rps == pytest.approx(1.0)
