"""Tests for repro.models.vit — the Table 3 transformer anchors."""

import pytest

from repro.models.layers import LayerCategory
from repro.models.vit import VIT_CONFIGS, ViTConfig, build_vit


class TestTable3Anchors:
    """Parameter counts and GFLOPs must land on the paper's values."""

    @pytest.mark.parametrize("name,params_m", [
        ("vit_tiny", 5.39), ("vit_small", 21.40), ("vit_base", 85.80)])
    def test_parameter_counts(self, name, params_m):
        graph = build_vit(name)
        assert graph.total_params() / 1e6 == pytest.approx(params_m,
                                                           rel=0.005)

    @pytest.mark.parametrize("name,gflops", [
        ("vit_tiny", 1.37), ("vit_small", 5.47), ("vit_base", 16.86)])
    def test_gflops_per_image(self, name, gflops):
        graph = build_vit(name)
        assert graph.reported_gflops() == pytest.approx(gflops, rel=0.01)

    @pytest.mark.parametrize("name,size", [
        ("vit_tiny", 32), ("vit_small", 32), ("vit_base", 224)])
    def test_input_sizes(self, name, size):
        assert build_vit(name).input_shape == (3, size, size)

    def test_vit_tiny_mlp_attention_split(self):
        # Section 4.0.2: 81.73% MLP / 18.23% attention for ViT Tiny.
        mlp, attn = build_vit("vit_tiny").mlp_attention_split()
        assert mlp * 100 == pytest.approx(81.73, abs=0.25)
        assert attn * 100 == pytest.approx(18.23, abs=0.25)

    def test_all_variants_are_transformers(self):
        for name in VIT_CONFIGS:
            assert build_vit(name).architecture == "transformer"


class TestConfig:
    def test_token_count_includes_cls(self):
        assert VIT_CONFIGS["vit_tiny"].tokens == 257
        assert VIT_CONFIGS["vit_base"].tokens == 197

    def test_mlp_hidden_is_four_x(self):
        cfg = VIT_CONFIGS["vit_small"]
        assert cfg.mlp_hidden == 4 * cfg.dim

    def test_indivisible_patch_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ViTConfig("bad", img_size=30, patch_size=4, dim=64, depth=2,
                      heads=2)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            ViTConfig("bad", img_size=32, patch_size=4, dim=65, depth=2,
                      heads=2)


class TestBuilder:
    def test_unknown_variant_raises_with_options(self):
        with pytest.raises(KeyError, match="available"):
            build_vit("vit_giant")

    def test_custom_config_accepted(self):
        cfg = ViTConfig("mini", img_size=16, patch_size=4, dim=32,
                        depth=2, heads=2, num_classes=5)
        graph = build_vit(cfg)
        assert graph.name == "mini"
        assert graph.layers[-1].out_features == 5

    def test_num_classes_override(self):
        default = build_vit("vit_tiny")
        two_class = build_vit("vit_tiny", num_classes=2)
        # Head shrinks by (39 - 2) weights (+ biases).
        assert (default.total_params() - two_class.total_params()
                == 37 * 192 + 37)

    def test_depth_controls_block_count(self):
        cfg = ViTConfig("d3", img_size=16, patch_size=4, dim=32, depth=3,
                        heads=2)
        graph = build_vit(cfg)
        blocks = {l.name.split(".")[0] for l in graph.layers
                  if l.name.startswith("block")}
        assert blocks == {"block0", "block1", "block2"}

    def test_attention_layers_present_per_block(self):
        graph = build_vit("vit_tiny")
        attn = [l for l in graph.layers
                if l.category is LayerCategory.ATTENTION]
        assert len(attn) == 12

    def test_macs_dominated_by_blocks_not_embeddings(self):
        graph = build_vit("vit_tiny")
        embed_macs = sum(l.macs() for l in graph.layers
                         if l.name in ("patch_embed", "cls_token",
                                       "pos_embed"))
        assert embed_macs < 0.01 * graph.total_macs()

    def test_larger_variant_needs_more_flops(self):
        tiny = build_vit("vit_tiny").reported_gflops()
        small = build_vit("vit_small").reported_gflops()
        base = build_vit("vit_base").reported_gflops()
        assert tiny < small < base
