"""Tests for repro.serving.observability — registry, sampler, scrape."""

import pytest

from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.events import Simulator
from repro.serving.exporter import export_metrics, export_registry, \
    parse_metrics
from repro.serving.faults import FaultModel
from repro.serving.metrics import summarize_responses
from repro.serving.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    TimeSeriesSampler,
)
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("reqs")
        c.inc(model="a")
        c.inc(2, model="a")
        c.inc(model="b")
        assert c.value(model="a") == 3
        assert c.value(model="b") == 1
        assert c.value(model="missing") == 0
        assert c.total() == 4

    def test_decrease_rejected(self):
        c = MetricsRegistry().counter("reqs")
        with pytest.raises(ValueError, match="decrease"):
            c.inc(-1)


class TestGauge:
    def test_set_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5, model="m")
        g.add(-2, model="m")
        assert g.value(model="m") == 3

    def test_remove_drops_series_from_scrape(self):
        g = MetricsRegistry().gauge("depth")
        g.set(5, model="a")
        g.set(7, model="b")
        assert g.remove(model="b") is True
        assert g.remove(model="b") is False  # already gone
        assert g.label_sets() == [(("model", "a"),)]
        assert g.value(model="b") == 0
        assert (("model", "b"),) not in g.last_updated


class TestHistogram:
    def test_buckets_sum_count(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v, stage="s")
        assert h.count(stage="s") == 4
        assert h.sum(stage="s") == pytest.approx(5.555)
        assert h.mean(stage="s") == pytest.approx(5.555 / 4)
        cumulative = h.cumulative_buckets(stage="s")
        assert cumulative == [(0.01, 1), (0.1, 2), (1.0, 3),
                              (float("inf"), 4)]

    def test_empty_series_reads_zero(self):
        h = MetricsRegistry().histogram("lat")
        assert h.count() == 0 and h.sum() == 0.0 and h.mean() == 0.0

    def test_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("bad2", buckets=(-1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("c")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("c")

    def test_collect_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a")
        assert [m.name for m in reg.collect()] == ["a", "z"]

    def test_updates_stamped_on_simulator_clock(self):
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "m", lambda n: 0.25, batcher=BatcherConfig(enabled=False)))
        server.submit(Request("m"))
        server.run()
        latency = server.metrics.get("request_latency_seconds")
        [key] = latency.label_sets()
        assert latency.last_updated[key] == pytest.approx(0.25)


def _loaded_server(instances=1, queue_limit=0, fault=None, retries=2):
    server = TritonLikeServer()
    server.register(ModelConfig(
        "m", lambda n: 0.01 + 0.001 * n,
        batcher=BatcherConfig(max_batch_size=8, max_queue_delay=0.002,
                              max_queue_size=queue_limit),
        instances=instances, fault_model=fault, max_retries=retries))
    return server


class TestTimeSeriesSampler:
    def test_samples_on_the_interval_and_stops_with_the_sim(self):
        server = _loaded_server(instances=2)
        client = OpenLoopClient(server, "m", rate_per_second=200,
                                num_requests=100, seed=1)
        sampler = TimeSeriesSampler(server, interval=0.01)
        client.start()
        sampler.start()
        server.run()
        assert len(sampler.samples) > 10
        times, depths = sampler.series("queue_depth", model="m")
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)
        # The sampler must not keep a drained simulation alive: it ends
        # within one interval of the last real event.
        assert server.sim.now <= times[-1] + 0.01 + 1e-9
        # Under 200 rps on a ~400 img/s server the queue is visibly
        # occupied at some point and drains by the end.
        assert max(depths) >= 1
        assert depths[-1] == 0

    def test_utilization_series_bounded(self):
        server = _loaded_server(instances=2)
        client = OpenLoopClient(server, "m", rate_per_second=300,
                                num_requests=60, seed=2)
        sampler = TimeSeriesSampler(server, interval=0.005)
        client.start()
        sampler.start()
        server.run()
        utils = [p.utilization for p in sampler.samples]
        assert all(0.0 <= u <= 1.0 for u in utils)
        assert max(utils) > 0

    def test_registry_gauges_mirror_last_sample(self):
        server = _loaded_server()
        server.submit(Request("m"))
        sampler = TimeSeriesSampler(server, interval=0.001)
        sampler.start()
        server.run()
        last = sampler.samples[-1]
        gauge = server.metrics.get("queue_depth")
        assert gauge.value(model="m") == last.queue_depth["m"]

    def test_double_start_rejected(self):
        sampler = TimeSeriesSampler(_loaded_server())
        sampler.start()
        with pytest.raises(RuntimeError, match="already"):
            sampler.start()

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(_loaded_server(), interval=0.0)

    def test_unloaded_model_leaves_the_scrape(self):
        # Regression: gauges for a model unloaded mid-run kept
        # reporting the pre-unload values forever (stale label sets).
        server = TritonLikeServer()
        for name in ("model_a", "model_b"):
            server.register(ModelConfig(
                name, lambda n: 0.01,
                batcher=BatcherConfig(enabled=False)))
        sampler = TimeSeriesSampler(server)
        sampler.sample_now()
        depth = server.metrics.get("queue_depth")
        total = server.metrics.get("total_instances")
        assert (("model", "model_b"),) in depth.label_sets()
        server.unregister("model_b")
        sampler.sample_now()
        for gauge in (depth, total):
            assert (("model", "model_b"),) not in gauge.label_sets()
            assert (("model", "model_a"),) in gauge.label_sets()
        assert 'model="model_b"' not in export_registry(server.metrics)

    def test_render_timeline(self):
        server = _loaded_server()
        for _ in range(5):
            server.submit(Request("m"))
        sampler = TimeSeriesSampler(server, interval=0.005)
        sampler.start()
        server.run()
        text = sampler.render_timeline()
        assert "util" in text and "queue" in text
        with pytest.raises(ValueError):
            sampler.render_timeline(width=3)


class TestExportRegistry:
    def test_histogram_exposition_format(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait_seconds", "Waits.", buckets=(0.1, 1.0))
        h.observe(0.05, stage="s")
        h.observe(0.5, stage="s")
        text = export_registry(reg)
        assert "# TYPE harvest_wait_seconds histogram" in text
        assert 'harvest_wait_seconds_bucket{le="0.1",stage="s"} 1' in text
        assert ('harvest_wait_seconds_bucket{le="+Inf",stage="s"} 2'
                in text)
        assert 'harvest_wait_seconds_count{stage="s"} 2' in text

    def test_empty_registry_exports_empty(self):
        assert export_registry(MetricsRegistry()) == ""

    def test_round_trips_through_parse_metrics(self):
        reg = MetricsRegistry()
        reg.counter("hits", "Hits.").inc(3, model="m")
        parsed = parse_metrics(export_registry(reg))
        assert parsed[("harvest_hits", (("model", "m"),))] == 3.0

    def test_label_values_escaped_and_round_trip(self):
        # Regression: quotes, backslashes and newlines in label values
        # used to be emitted raw, producing an unparseable exposition.
        reg = MetricsRegistry()
        hostile = 'say "hi"\\path\nnext,={}'
        reg.counter("hits", "Hits.").inc(2, model=hostile, zone="a")
        text = export_registry(reg)
        assert '\\"hi\\"' in text
        assert "\\\\path" in text
        assert "\\npext" not in text  # sanity: escapes, not mangles
        # The raw newline must not split the sample line.
        sample_lines = [l for l in text.splitlines()
                        if l.startswith("harvest_hits{")]
        assert len(sample_lines) == 1
        parsed = parse_metrics(text)
        key = ("harvest_hits",
               (("model", hostile), ("zone", "a")))
        assert parsed[key] == 2.0

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("hits", "Line one.\nBack\\slash.").inc(1)
        help_line = [l for l in export_registry(reg).splitlines()
                     if l.startswith("# HELP")][0]
        assert help_line == \
            "# HELP harvest_hits Line one.\\nBack\\\\slash."

    def test_malformed_label_block_rejected(self):
        with pytest.raises(ValueError, match="malformed label"):
            parse_metrics('harvest_hits{model=unquoted} 1')


class TestScrapeReconciliation:
    """Acceptance: live counters reconcile with summarize_responses."""

    def _run_scenario(self):
        fault = FaultModel(0.3, detect_seconds=0.02, seed=7)
        server = _loaded_server(queue_limit=12, fault=fault, retries=1)
        client = OpenLoopClient(server, "m", rate_per_second=400,
                                num_requests=300, seed=5)
        sampler = TimeSeriesSampler(server, interval=0.01)
        client.start()
        sampler.start()
        server.run()
        return server, sampler

    def test_counters_reconcile_with_response_summary(self):
        server, sampler = self._run_scenario()
        responses = server.responses
        assert len(responses) == 300
        by_status = {}
        for r in responses:
            by_status.setdefault(r.status, []).append(r)
        # The overloaded bounded queue rejects and the fault model
        # fails some requests: every status class is exercised.
        assert set(by_status) == {"ok", "rejected", "failed"}

        metrics = server.metrics
        for status, group in by_status.items():
            summary = summarize_responses(group)
            assert metrics.get("responses_total").value(
                model="m", status=status) == summary.count
            assert metrics.get("images_completed_total").value(
                model="m", status=status) == summary.images
        assert metrics.get("requests_submitted_total").value(
            model="m") == len(responses)
        assert metrics.get("rejections_total").value(
            stage="m") == len(by_status["rejected"])
        assert metrics.get("retry_exhausted_total").value(
            stage="m") == len(by_status["failed"])
        assert metrics.get("request_latency_seconds").count(
            model="m") == len(responses)
        # The sampler produced a queue-depth / utilization time series.
        times, depths = sampler.series("queue_depth", model="m")
        assert len(times) > 5 and max(depths) > 0
        assert any(p.utilization > 0 for p in sampler.samples)

    def test_scrape_text_carries_the_same_numbers(self):
        server, _ = self._run_scenario()
        parsed = parse_metrics(export_metrics(server))
        ok = sum(1 for r in server.responses if r.ok)
        rejected = sum(1 for r in server.responses
                       if r.status == "rejected")
        assert parsed[("harvest_responses_total",
                       (("model", "m"), ("status", "ok")))] == ok
        assert parsed[("harvest_rejections_total",
                       (("stage", "m"),))] == rejected
        assert parsed[("harvest_request_latency_seconds_count",
                       (("model", "m"),))] == len(server.responses)

    def test_scrape_is_deterministic_across_identical_runs(self):
        first, _ = self._run_scenario()
        second, _ = self._run_scenario()
        assert export_metrics(first) == export_metrics(second)


class TestStageBreakdownFromRegistry:
    def test_matches_tracing_totals(self):
        from repro.analysis.report import (
            registry_stage_breakdown,
            render_stage_breakdown,
        )
        from repro.serving.tracing import stage_breakdown

        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", lambda n: 0.002, batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "mdl", lambda n: 0.005, batcher=BatcherConfig(enabled=False),
            preprocess_model="pre"))
        for _ in range(4):
            server.submit(Request("mdl"))
        responses = server.run()

        from_traces = stage_breakdown(responses)
        from_registry = registry_stage_breakdown(server.metrics)
        assert set(from_registry) == set(from_traces)
        for stage in ("pre", "mdl"):
            assert (from_registry[stage]["total_seconds"]
                    == pytest.approx(from_traces[stage]["total_seconds"]))
        text = render_stage_breakdown(from_registry)
        assert "pre" in text and "mdl" in text and "queued" in text


class TestDefaultBuckets:
    def test_sorted_and_positive(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(b > 0 for b in DEFAULT_BUCKETS)


class TestHistogramBucketConflict:
    def test_conflicting_buckets_raise(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(0.1, 0.5, 1.0))
        with pytest.raises(ValueError, match="conflicting"):
            reg.histogram("lat", buckets=(0.2, 0.8))

    def test_same_buckets_any_order_return_same_instance(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 0.5, 1.0))
        assert reg.histogram("lat", buckets=(1.0, 0.1, 0.5)) is h

    def test_default_buckets_still_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat") is reg.histogram("lat")


class TestExemplars:
    def test_disabled_by_default(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05, trace_id="42", model="m")
        series = h._series[next(iter(h._series))]
        assert series.exemplars is None

    def test_recorded_per_bucket_last_wins(self):
        clock = [0.0]
        reg = MetricsRegistry(clock=lambda: clock[0])
        h = reg.histogram("lat", buckets=(0.1, 1.0)).enable_exemplars()
        h.observe(0.05, trace_id="1", model="m")
        clock[0] = 2.0
        h.observe(0.07, trace_id="2", model="m")
        h.observe(0.5, trace_id="3", model="m")
        series = h._series[next(iter(h._series))]
        assert series.exemplars[0] == (0.07, "2", 2.0)
        assert series.exemplars[1] == (0.5, "3", 2.0)

    def test_bound_handle_records_exemplars_too(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0)).enable_exemplars()
        bound = h.labels(model="m")
        bound.observe(0.05, trace_id="7")
        series = h._series[next(iter(h._series))]
        assert series.exemplars[0] == (0.05, "7", 0.0)

    def test_exported_in_openmetrics_syntax_and_parsed_back(self):
        from repro.serving.exporter import parse_exemplars

        clock = [3.5]
        reg = MetricsRegistry(clock=lambda: clock[0])
        h = reg.histogram("lat", buckets=(0.1, 1.0)).enable_exemplars()
        h.observe(0.05, trace_id="41", model="m")
        text = export_registry(reg)
        assert ('harvest_lat_bucket{le="0.1",model="m"} 1 '
                '# {trace_id="41"} 0.05 3.5') in text
        exemplars = parse_exemplars(text)
        key = ("harvest_lat_bucket", (("le", "0.1"), ("model", "m")))
        assert exemplars[key] == {
            "labels": {"trace_id": "41"}, "value": 0.05,
            "timestamp": 3.5}

    def test_parse_metrics_ignores_exemplar_suffixes(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0)).enable_exemplars()
        h.observe(0.05, trace_id="41", model="m")
        h.observe(0.5, model="m")
        parsed = parse_metrics(export_registry(reg))
        assert parsed[("harvest_lat_bucket",
                       (("le", "0.1"), ("model", "m")))] == 1
        assert parsed[("harvest_lat_count", (("model", "m"),))] == 2

    def test_scrape_without_trace_ids_is_unchanged(self):
        def scrape(enable: bool, with_ids: bool) -> str:
            reg = MetricsRegistry()
            h = reg.histogram("lat", buckets=(0.1, 1.0))
            if enable:
                h.enable_exemplars()
            for i, v in enumerate((0.05, 0.5, 2.0)):
                h.observe(v, trace_id=(str(i) if with_ids else None),
                          model="m")
            return export_registry(reg)

        assert scrape(False, False) == scrape(True, False)
        assert scrape(False, True) == scrape(False, False)


class TestSamplerTruncation:
    def _server(self):
        sim = Simulator()
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "m", lambda n: 0.004,
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.002)))
        client = OpenLoopClient(server, "m", rate_per_second=200.0,
                                num_requests=60, seed=1)
        client.start()
        return server

    def test_truncated_run_sets_flag_and_counter(self):
        server = self._server()
        sampler = TimeSeriesSampler(server, interval=0.01,
                                    max_samples=5)
        sampler.start()
        server.run()
        assert sampler.truncated
        assert len(sampler.samples) == 5
        counter = server.metrics.get("sampler_truncated_total")
        assert counter is not None and counter.total() == 1
        assert "harvest_sampler_truncated_total 1" in \
            export_registry(server.metrics)

    def test_uncapped_run_scrape_has_no_truncation_series(self):
        server = self._server()
        sampler = TimeSeriesSampler(server, interval=0.01)
        sampler.start()
        server.run()
        assert not sampler.truncated
        assert len(sampler.samples) < sampler.max_samples
        assert server.metrics.get("sampler_truncated_total") is None
        assert "sampler_truncated" not in export_registry(server.metrics)
