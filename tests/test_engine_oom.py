"""Tests for repro.engine.oom — the memory model behind Figs. 5c/8c."""

import pytest

from repro.engine.calibration import (
    JETSON_E2E_ENGINE_BUDGET_BYTES,
    JETSON_MAX_BATCH,
    batch_grid,
)
from repro.engine.oom import EngineMemoryModel, max_batch_size
from repro.hardware.memory import OutOfMemoryError
from repro.hardware.platform import A100, JETSON, V100
from repro.hardware.precision import Precision


class TestCloudPlatformsFitFullGrid:
    """Fig. 5a/5b: every model reaches BS 1024 on A100 and V100."""

    @pytest.mark.parametrize("platform", [A100, V100],
                             ids=lambda p: p.name)
    def test_all_models_reach_1024(self, platform, all_models):
        for graph in all_models:
            assert max_batch_size(graph, platform) == 1024


class TestJetsonOOMBoundaries:
    """Fig. 5c: ViT Tiny 196, ViT Small 64, ResNet50 64, ViT Base 8."""

    @pytest.mark.parametrize("model,expected",
                             sorted(JETSON_MAX_BATCH.items()))
    def test_engine_only_limits(self, model, expected, all_models):
        graph = next(g for g in all_models if g.name == model)
        assert max_batch_size(graph, JETSON) == expected

    def test_e2e_budget_limits(self, all_models):
        # Fig. 8c: with preprocessing co-resident the limits shrink to
        # Tiny 64, Small 32, Base 2, ResNet 32.
        expected = {"vit_tiny": 64, "vit_small": 32, "vit_base": 2,
                    "resnet50": 32}
        for graph in all_models:
            limit = max_batch_size(
                graph, JETSON,
                budget_bytes=JETSON_E2E_ENGINE_BUDGET_BYTES)
            assert limit == expected[graph.name], graph.name


class TestEngineMemoryModel:
    def test_memory_linear_in_batch(self, vit_small):
        model = EngineMemoryModel(vit_small, JETSON)
        m1, m2 = model.engine_bytes(1), model.engine_bytes(2)
        assert m2 - m1 == pytest.approx(model.activation_bytes_per_image)

    def test_jetson_uses_calibrated_footprints(self, vit_base):
        model = EngineMemoryModel(vit_base, JETSON)
        assert model.activation_bytes_per_image == 480e6

    def test_cloud_uses_analytic_ping_pong(self, vit_base):
        model = EngineMemoryModel(vit_base, A100)
        expected = vit_base.activation_bytes_per_image(
            Precision.BF16.bytes, reuse=True)
        assert model.activation_bytes_per_image == pytest.approx(expected)

    def test_unanchored_model_on_jetson_scales_analytic(self):
        from repro.models.vit import ViTConfig, build_vit

        cfg = ViTConfig("custom", img_size=32, patch_size=2, dim=128,
                        depth=6, heads=4)
        graph = build_vit(cfg)
        model = EngineMemoryModel(graph, JETSON)
        analytic = graph.activation_bytes_per_image(2, reuse=True)
        assert model.activation_bytes_per_image == pytest.approx(
            25.0 * analytic)

    def test_fits_and_require_agree(self, resnet50):
        model = EngineMemoryModel(resnet50, JETSON)
        assert model.fits(64)
        assert not model.fits(128)
        model.require(64)
        with pytest.raises(OutOfMemoryError):
            model.require(128)

    def test_weight_bytes_follow_precision(self, vit_tiny):
        fp16 = EngineMemoryModel(vit_tiny, V100, Precision.FP16)
        assert fp16.weight_bytes == pytest.approx(
            2 * vit_tiny.total_params())

    def test_unsupported_precision_rejected(self, vit_tiny):
        with pytest.raises(ValueError):
            EngineMemoryModel(vit_tiny, V100, Precision.BF16)

    def test_invalid_batch_rejected(self, vit_tiny):
        with pytest.raises(ValueError):
            EngineMemoryModel(vit_tiny, A100).engine_bytes(0)


class TestMaxBatchSize:
    def test_custom_grid_respected(self, vit_small):
        assert max_batch_size(vit_small, JETSON,
                              batch_sizes=(1, 10, 50)) == 50

    def test_nothing_fits_raises_oom(self, vit_base):
        with pytest.raises(OutOfMemoryError):
            max_batch_size(vit_base, JETSON, budget_bytes=1e6)

    def test_default_grid_is_platform_grid(self, vit_tiny):
        limit = max_batch_size(vit_tiny, JETSON)
        assert limit in batch_grid("jetson")
