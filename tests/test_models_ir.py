"""Tests for repro.models.ir — the ONNX-like serialization layer."""

import json

import pytest

from repro.models.ir import (
    IR_VERSION,
    IRError,
    dumps,
    from_ir,
    loads,
    to_ir,
)
from repro.models.resnet import build_resnet50
from repro.models.vit import build_vit


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [
        lambda: build_vit("vit_tiny"),
        lambda: build_vit("vit_base"),
        lambda: build_resnet50(img_size=64),
    ], ids=["vit_tiny", "vit_base", "resnet50_64"])
    def test_lossless_roundtrip(self, builder):
        graph = builder()
        restored = loads(dumps(graph))
        assert restored.name == graph.name
        assert restored.architecture == graph.architecture
        assert restored.input_shape == graph.input_shape
        assert restored.total_params() == graph.total_params()
        assert restored.total_macs() == graph.total_macs()
        assert restored.reported_gflops() == graph.reported_gflops()
        assert [l.name for l in restored] == [l.name for l in graph]

    def test_json_is_valid_and_versioned(self, vit_tiny):
        doc = json.loads(dumps(vit_tiny))
        assert doc["ir_version"] == IR_VERSION
        assert doc["name"] == "vit_tiny"
        assert len(doc["nodes"]) == len(vit_tiny)

    def test_indented_output(self, vit_tiny):
        assert "\n" in dumps(vit_tiny, indent=2)


class TestValidation:
    def test_invalid_json_raises(self):
        with pytest.raises(IRError, match="invalid JSON"):
            loads("{not json")

    def test_non_object_document_rejected(self):
        with pytest.raises(IRError, match="object"):
            loads("[1, 2, 3]")

    def test_wrong_version_rejected(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        doc["ir_version"] = 999
        with pytest.raises(IRError, match="ir_version"):
            from_ir(doc)

    def test_missing_top_level_field_rejected(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        del doc["nodes"]
        with pytest.raises(IRError, match="nodes"):
            from_ir(doc)

    def test_unknown_op_type_rejected(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        doc["nodes"][0]["op_type"] = "FlashAttention"
        with pytest.raises(IRError, match="op_type"):
            from_ir(doc)

    def test_unexpected_node_field_rejected(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        doc["nodes"][0]["sparsity"] = 0.5
        with pytest.raises(IRError, match="unexpected"):
            from_ir(doc)

    def test_missing_required_node_field_rejected(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        del doc["nodes"][0]["dim"]  # PatchEmbed.dim is required
        with pytest.raises(IRError, match="missing"):
            from_ir(doc)

    def test_invalid_field_value_wrapped_as_ir_error(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        doc["nodes"][0]["patch_size"] = 5  # 32 not divisible by 5
        with pytest.raises(IRError):
            from_ir(doc)

    def test_optional_fields_may_be_omitted(self, vit_tiny):
        doc = to_ir(vit_tiny).to_dict()
        # Linear.bias has a default; dropping it must still decode.
        linear_node = next(n for n in doc["nodes"]
                           if n["op_type"] == "Linear")
        del linear_node["bias"]
        restored = from_ir(doc)
        assert restored.total_params() == vit_tiny.total_params()
