"""Tests for repro.analysis.figures and tables — artifact regeneration."""

import pytest

from repro.analysis.figures import fig4, fig5, fig6, fig7, fig8
from repro.analysis.tables import table1, table2, table3


class TestTables:
    def test_table1_optionally_measures_host(self):
        table = table1(real_host_run=True)
        assert table.rows[-1]["platform"] == "host (measured)"
        assert table.rows[-1]["practical_tflops"] > 0

    def test_table2_and_3_shapes(self):
        assert len(table2().rows) == 6
        assert len(table3().rows) == 4


class TestFig4:
    def test_series_per_dataset(self):
        series = fig4(samples=2000)
        assert len(series) == 6

    def test_uniform_datasets_are_points(self):
        series = {s.panel: s for s in fig4(samples=2000)}
        assert series["plant_village"].meta["uniform"]
        assert series["plant_village"].meta["mode_label"] == "256x256"

    def test_variable_datasets_have_density(self):
        series = {s.panel: s for s in fig4(samples=8000)}
        weed = series["weed_soybean"]
        assert not weed.meta["uniform"]
        assert max(weed.meta["density"]) == pytest.approx(1.0)

    def test_mode_labels_near_paper_values(self):
        series = {s.panel: s for s in fig4(samples=30000)}
        w, h = map(int, series["weed_soybean"].meta["mode_label"].split("x"))
        assert w == pytest.approx(233, rel=0.15)
        w2, _ = map(int, series["spittle_bug"].meta["mode_label"].split("x"))
        assert w2 == pytest.approx(61, abs=12)


class TestFig5:
    def test_panels_and_legends(self):
        series = fig5("a100")
        names = {s.name for s in series}
        assert {"theoretical", "practical_bound", "ViT Tiny", "ResNet50"
                } <= names

    def test_achieved_below_dashed_lines(self):
        series = fig5("v100")
        practical = next(s for s in series if s.name == "practical_bound")
        for s in series:
            if s.name in ("theoretical", "practical_bound"):
                continue
            assert max(s.y) < practical.y[0]

    def test_legend_throughputs_match_anchors(self):
        from repro.engine.calibration import anchor_for

        series = fig5("jetson")
        tiny = next(s for s in series if s.name == "ViT Tiny")
        batch, thr = anchor_for("jetson", "vit_tiny")
        assert tiny.meta["max_batch"] == batch
        assert tiny.meta["throughput_at_max"] == pytest.approx(thr,
                                                               rel=0.001)

    def test_all_platforms_by_default(self):
        panels = {s.panel for s in fig5()}
        assert panels == {"A100", "V100", "Jetson"}


class TestFig6:
    def test_threshold_series_present(self):
        series = fig6("a100")
        threshold = next(s for s in series if s.name == "60qps_threshold")
        assert all(y == pytest.approx(1000 / 60) for y in threshold.y)

    def test_model_series_carry_theoretical_latency(self):
        series = fig6("a100")
        base = next(s for s in series if s.name == "ViT Base")
        assert len(base.meta["theoretical_ms"]) == len(base.y)
        assert all(t < a for t, a in zip(base.meta["theoretical_ms"],
                                         base.y))

    def test_latency_monotone_in_batch(self):
        for s in fig6("v100"):
            if s.name == "60qps_threshold":
                continue
            assert list(s.y) == sorted(s.y)


class TestFig7:
    def test_latency_and_throughput_series_per_framework(self):
        series = fig7("a100")
        names = {s.name for s in series}
        assert "DALI 32 latency" in names
        assert "DALI 32 throughput" in names
        assert "CV2 latency" in names

    def test_throughput_inverse_of_per_image_latency(self):
        series = fig7("jetson")
        lat = next(s for s in series if s.name == "DALI 96 latency")
        thr = next(s for s in series if s.name == "DALI 96 throughput")
        batch = lat.meta["batch_size"]
        for l_ms, t in zip(lat.y, thr.y):
            assert t == pytest.approx(batch / (l_ms / 1e3), rel=1e-6)


class TestFig8:
    def test_batch_labels_in_series_names(self):
        series = fig8("jetson")
        names = {s.name for s in series}
        assert "vit_base@BS2 latency" in names
        assert "vit_small@BS32 throughput" in names

    def test_bottleneck_metadata(self):
        series = fig8("a100")
        thr = next(s for s in series
                   if s.name == "vit_base@BS64 throughput")
        assert set(thr.meta["bottlenecks"]) <= {"preprocess", "engine"}

    def test_x_axis_is_datasets(self):
        series = fig8("v100")
        thr = next(s for s in series if "throughput" in s.name)
        assert "plant_village" in thr.x
        assert "crsa" not in thr.x  # excluded from Fig. 8


class TestSeriesValidation:
    def test_mismatched_xy_rejected(self):
        from repro.analysis.figures import FigureSeries

        with pytest.raises(ValueError, match="lengths"):
            FigureSeries("f", "p", "n", x=(1, 2), y=(1,))
