"""Tests for the hot-path optimization pass and its perf harness.

Covers the regression guarantees the optimization PR makes:
``schedule_at`` round-off clamping, bounded cancel state, firing-order
parity between the tuple-heap simulator and the preserved seed
simulator, bound-handle export parity, trace sampling + span pooling,
MAC-accounting parity on the packed kernel path, the preprocessing grid
cache, and the ``repro bench`` regression-check logic.
"""

import numpy as np
import pytest

from repro.perf import legacy
from repro.perf.bench import (
    MIN_SPEEDUPS,
    check_regression,
    render_results,
    run_scenario,
)
from repro.perf.scenarios import Scenario, build_scenarios
from repro.serving.events import Simulator


class TestScheduleAtClamp:
    """Float round-off near ``now`` must not kill a replay."""

    def test_ulp_past_target_clamps_to_now(self):
        # A cumulative-sum arrival trace lands the clock on a value
        # whose float neighbourhood the next schedule_at target falls
        # just below.
        sim = Simulator()
        fired = []
        t = 0.1 + 0.2  # 0.30000000000000004
        sim.schedule_at(t, lambda: sim.schedule_at(
            0.3, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [t]

    def test_genuinely_past_target_still_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(0.5, lambda: None)

    def test_clamp_scales_with_magnitude(self):
        # At now=1e6 a ULP is ~1e-10; an absolute tolerance would
        # either miss it or swallow real milliseconds.
        sim = Simulator()
        sim.schedule(1e6, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(1e6 - 1e-10, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1e6]


class TestBoundedCancelState:
    """Cancel bookkeeping must not outlive the event (seed leak)."""

    def test_cancel_after_fire_holds_no_state(self):
        # The seed simulator put cancelled seqs in a set that only
        # lazy-deletion at pop could drain — cancelling an event that
        # already fired leaked the entry forever.  The optimized
        # simulator keeps no auxiliary structure at all.
        sim = Simulator()
        events = [sim.schedule(i * 0.001, lambda: None)
                  for i in range(100)]
        sim.run()
        for event in events:
            sim.cancel(event)  # all no-ops: already fired
        assert not sim._heap and not sim._fg_heap
        assert all(e.fired and not e.cancelled for e in events)

    def test_seed_simulator_exhibits_the_leak(self):
        # Documents what the test above guards against.
        sim = legacy.LegacySimulator()
        events = [sim.schedule(i * 0.001, lambda: None)
                  for i in range(100)]
        sim.run()
        for event in events:
            sim.cancel(event)
        assert len(sim._cancelled) == 100  # leaked forever

    def test_cancelled_entries_drain_from_both_heaps(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        for i in range(50):
            sim.cancel(sim.schedule(0.5, lambda: None))
        sim.run()
        assert keep.fired
        assert not sim._heap and not sim._fg_heap

    def test_foreground_pending_tracks_cancel(self):
        sim = Simulator()
        event = sim.schedule(0.5, lambda: None)
        assert sim.peek_foreground_time() == 0.5
        sim.cancel(event)
        assert sim.peek_foreground_time() is None
        sim.cancel(event)  # double-cancel must not underflow
        assert sim.peek_foreground_time() is None


class TestLegacyParity:
    """The tuple-heap loop must fire exactly like the seed loop."""

    @staticmethod
    def _workload(sim):
        order = []
        cancelable = []

        def make(i):
            def cb():
                order.append(i)
                if i % 3 == 0:
                    cancelable.append(
                        sim.schedule(0.125, lambda: order.append(-i)))
                if i % 4 == 0 and cancelable:
                    sim.cancel(cancelable.pop())
                if i % 11 == 0:
                    sim.peek_foreground_time()
            return cb

        for i in range(500):
            # (i % 50) collides timestamps: heavy tie traffic.
            sim.schedule_at((i % 50) * 0.01, make(i),
                            daemon=(i % 13 == 0))
        sim.run()
        return order

    def test_firing_order_identical_under_ties_and_cancels(self):
        assert (self._workload(Simulator())
                == self._workload(legacy.LegacySimulator()))

    def test_events_processed_identical(self):
        new, old = Simulator(), legacy.LegacySimulator()
        self._workload(new)
        self._workload(old)
        assert new.events_processed == old.events_processed

    def test_run_until_parity(self):
        def staged(sim):
            seen = []
            for i in range(20):
                sim.schedule(i * 0.1, lambda i=i: seen.append(i))
            sim.run(until=0.95)
            seen.append(("paused", sim.now))
            sim.run()
            return seen

        assert staged(Simulator()) == staged(legacy.LegacySimulator())


class TestBoundHandleParity:
    """labels() handles must be observationally identical to kwargs."""

    @staticmethod
    def _scrape(registry):
        from repro.serving.exporter import export_registry

        return export_registry(registry)

    def test_counter_gauge_histogram_exports_match(self):
        from repro.serving.observability import MetricsRegistry

        kwargs_reg = MetricsRegistry(clock=lambda: 2.5)
        bound_reg = MetricsRegistry(clock=lambda: 2.5)

        c = kwargs_reg.counter("reqs_total", "Requests.")
        g = kwargs_reg.gauge("depth", "Depth.")
        h = kwargs_reg.histogram("lat_seconds", "Latency.")
        for _ in range(3):
            c.inc(2.0, model="m", status="ok")
        g.set(4.0, model="m")
        g.add(-1.5, model="m")
        for v in (0.001, 0.4, 99.0):
            h.observe(v, stage="infer")

        bc = bound_reg.counter("reqs_total", "Requests.").labels(
            model="m", status="ok")
        bg = bound_reg.gauge("depth", "Depth.").labels(model="m")
        bh = bound_reg.histogram("lat_seconds", "Latency.").labels(
            stage="infer")
        for _ in range(3):
            bc.inc(2.0)
        bg.set(4.0)
        bg.add(-1.5)
        for v in (0.001, 0.4, 99.0):
            bh.observe(v)

        assert self._scrape(bound_reg) == self._scrape(kwargs_reg)
        assert bc.value() == 6.0 and bg.value() == 2.5

    def test_bound_and_kwargs_paths_share_series(self):
        from repro.serving.observability import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("mix_total", "Mixed paths.")
        handle = counter.labels(tier="edge")
        handle.inc()
        counter.inc(tier="edge")  # kwargs path, same series
        assert counter.value(tier="edge") == 2.0
        assert handle.value() == 2.0

    def test_unobserved_bound_histogram_leaves_no_series(self):
        from repro.serving.observability import MetricsRegistry

        registry = MetricsRegistry()
        histogram = registry.histogram("quiet_seconds", "Never hit.")
        histogram.labels(stage="idle")  # bound but never observed
        assert histogram.label_sets() == []


class TestTraceSampling:
    """Sampling bounds trace retention without touching metrics."""

    def _replay(self, rate, n=40):
        from repro.continuum.network import get_link
        from repro.continuum.pipeline import ContinuumReplayer
        from repro.serving.batcher import BatcherConfig
        from repro.serving.observability import MetricsRegistry
        from repro.serving.request import Request
        from repro.serving.server import ModelConfig, TritonLikeServer

        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = TritonLikeServer(sim, registry=registry)
        server.register(ModelConfig(
            "m", lambda n: 0.01,
            batcher=BatcherConfig(max_batch_size=4,
                                  max_queue_delay=0.002)))
        replayer = ContinuumReplayer(
            server, get_link("station_ethernet"),
            edge_preprocess_time=lambda n: 0.002 * n,
            image_bytes=100_000.0, registry=registry,
            trace_sample_rate=rate)
        for i in range(n):
            sim.schedule(i * 0.02,
                         lambda i=i: replayer.submit(
                             Request("m", request_id=i + 1)))
        sim.run()
        return replayer, registry

    def test_quarter_rate_retains_quarter_of_traces(self):
        replayer, _ = self._replay(0.25)
        assert len(replayer.traces) == 10
        assert all(t.sampled for t in replayer.traces)

    def test_sampling_leaves_metrics_identical(self):
        from repro.serving.exporter import export_registry

        _, full = self._replay(1.0)
        _, sampled = self._replay(0.25)
        assert export_registry(sampled) == export_registry(full)

    def test_unsampled_requests_still_served_and_counted(self):
        replayer, registry = self._replay(0.0)
        assert replayer.traces == []
        finished = registry.get("continuum_requests_total")
        assert finished.total() == 40.0

    def test_span_pool_reuses_records(self):
        from repro.serving.tracectx import SpanPool, TraceContext

        pool = SpanPool()
        ctx = TraceContext(1, pool=pool)
        first = ctx.begin("a", 0.0)
        ctx.end(first, 1.0)
        ctx.close(1.0)
        released = {id(ctx.root), id(first)}
        ctx.recycle()
        assert len(pool) == 2
        ctx2 = TraceContext(2, pool=pool)
        reused = ctx2.begin("b", 2.0)
        # Both records of the new context come from the freed pool —
        # zero allocations for the unsampled steady state.
        assert {id(ctx2.root), id(reused)} == released
        assert reused.name == "b" and not reused.closed

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            self._replay(1.5)


class TestMacTallyPackedParity:
    """Packed fast path must charge exactly the seed MAC counts."""

    def _tiny(self):
        from repro.models.functional import init_vit_weights
        from repro.models.vit import ViTConfig

        cfg = ViTConfig("tally_probe", img_size=32, patch_size=8,
                        dim=64, depth=2, heads=2)
        weights = init_vit_weights(cfg, seed=3)
        x = np.random.default_rng(9).standard_normal(
            (2, 3, 32, 32)).astype(np.float32)
        return cfg, weights, x

    def test_vit_macs_identical_and_logits_close(self):
        from repro.models.functional import MacTally, vit_forward
        from repro.models.workspace import WeightPack

        cfg, weights, x = self._tiny()
        slow_tally, fast_tally = MacTally(), MacTally()
        slow = vit_forward(cfg, weights, x, tally=slow_tally)
        fast = vit_forward(cfg, weights, x, tally=fast_tally,
                           pack=WeightPack(weights))
        assert fast_tally.macs == slow_tally.macs > 0
        np.testing.assert_allclose(fast, slow, rtol=1e-4, atol=1e-5)

    def test_build_functional_packed_matches_unpacked(self):
        from repro.models.functional import build_functional

        packed = build_functional("vit_tiny", seed=1, packed=True)
        loose = build_functional("vit_tiny", seed=1, packed=False)
        x = np.random.default_rng(4).standard_normal(
            (1, *packed.input_shape)).astype(np.float32)
        np.testing.assert_allclose(packed(x), loose(x),
                                   rtol=1e-4, atol=1e-5)
        assert packed.pack is not None and packed.pack.packed_count > 0
        assert loose.pack is None


class TestGridCache:
    """Cached sampling grids must not change preprocessing output."""

    def test_resize_identical_across_calls(self):
        from repro.preprocessing.ops import resize_bilinear

        rng = np.random.default_rng(2)
        img = rng.integers(0, 255, size=(60, 80, 3)).astype(np.uint8)
        first = resize_bilinear(img, 48, 48)
        again = resize_bilinear(img, 48, 48)  # cached grid path
        np.testing.assert_array_equal(again, first)

    def test_warp_identical_across_calls(self):
        from repro.preprocessing.ops import (ground_plane_homography,
                                             warp_perspective)

        rng = np.random.default_rng(3)
        img = rng.integers(0, 255, size=(60, 80, 3)).astype(np.uint8)
        hom = ground_plane_homography(80, 60)
        first = warp_perspective(img, hom, 60, 80)
        again = warp_perspective(img, hom, 60, 80)
        np.testing.assert_array_equal(again, first)

    def test_cache_is_bounded(self):
        from repro.preprocessing.ops import _GridCache

        cache = _GridCache(maxsize=2)
        for i in range(5):
            cache.get(("k", i), lambda: (np.zeros(1),))
        assert len(cache._entries) == 2

    def test_cached_grids_are_read_only(self):
        from repro.preprocessing.ops import _GridCache

        cache = _GridCache(maxsize=2)
        grid, = cache.get(("ro",), lambda: (np.zeros(3),))
        with pytest.raises(ValueError):
            grid[0] = 1.0


class TestBenchHarness:
    """The regression-check logic behind ``repro bench --check``."""

    @staticmethod
    def _doc(quick=False, **speedups):
        return {"suite": "BENCH_core", "quick": quick, "scenarios": {
            name: {"layer": "x", "speedup": s,
                   "min_speedup": MIN_SPEEDUPS.get(name, 1.0),
                   "baseline_seconds": s, "optimized_seconds": 1.0,
                   "repeats": 2}
            for name, s in speedups.items()}}

    def test_pass_within_band_and_floor(self):
        ref = self._doc(simulator_core=10.0)
        cur = self._doc(simulator_core=6.0)  # >= 10*(1-0.5) and >= 1.2
        assert check_regression(cur, ref) == []

    def test_floor_violation_fails(self):
        ref = self._doc(vit_tiny_forward=1.6)
        cur = self._doc(vit_tiny_forward=1.1)  # within band, under 1.5
        [failure] = check_regression(cur, ref)
        assert "vit_tiny_forward" in failure

    def test_band_violation_fails(self):
        ref = self._doc(simulator_core=20.0)
        cur = self._doc(simulator_core=4.0)  # above floor, under band
        [failure] = check_regression(cur, ref, tolerance=0.5)
        assert "below required 10.00x" in failure

    def test_missing_scenario_fails(self):
        ref = self._doc(simulator_core=10.0)
        cur = self._doc()
        [failure] = check_regression(cur, ref)
        assert "missing" in failure

    def test_mode_mismatch_fails(self):
        ref = self._doc(quick=False, simulator_core=10.0)
        cur = self._doc(quick=True, simulator_core=10.0)
        [failure] = check_regression(cur, ref)
        assert "mode mismatch" in failure

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_regression(self._doc(), self._doc(), tolerance=1.0)

    def test_run_scenario_verifies_before_timing(self):
        broken = Scenario(
            name="broken", layer="x", description="disagrees",
            baseline=lambda: 1, optimized=lambda: 2,
            verify=lambda a, b: (_ for _ in ()).throw(
                AssertionError("diverged")))
        with pytest.raises(AssertionError, match="diverged"):
            run_scenario(broken, repeats=1)

    def test_run_scenario_shape_and_render(self):
        trivial = Scenario(
            name="trivial", layer="x", description="noop",
            baseline=lambda: 0, optimized=lambda: 0,
            verify=lambda a, b: None)
        entry = run_scenario(trivial, repeats=1)
        assert entry["speedup"] > 0 and entry["repeats"] == 1
        table = render_results(
            {"scenarios": {"trivial": entry}})
        assert "trivial" in table and "x" in table

    def test_build_scenarios_names_are_gated(self):
        names = {s.name for s in build_scenarios(quick=True)}
        assert names == set(MIN_SPEEDUPS)
