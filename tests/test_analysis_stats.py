"""Tests for repro.analysis.stats — bootstrap statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    bootstrap_ci,
    latency_cis,
    probability_a_beats_b,
)


class TestBootstrapCI:
    def test_interval_brackets_the_estimate(self, rng):
        samples = rng.normal(10.0, 2.0, size=200)
        ci = bootstrap_ci(samples)
        assert ci.low <= ci.estimate <= ci.high

    def test_covers_the_true_mean(self, rng):
        samples = rng.normal(5.0, 1.0, size=500)
        ci = bootstrap_ci(samples, confidence=0.99)
        assert ci.contains(5.0)

    def test_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, size=20), seed=1)
        large = bootstrap_ci(rng.normal(0, 1, size=2000), seed=1)
        assert large.width < small.width

    def test_deterministic_given_seed(self, rng):
        samples = rng.normal(0, 1, size=50)
        a = bootstrap_ci(samples, seed=7)
        b = bootstrap_ci(samples, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], resamples=5)

    def test_latency_cis_keys(self, rng):
        cis = latency_cis(rng.exponential(0.01, size=300))
        assert set(cis) == {"mean", "p95"}
        assert cis["p95"].estimate > cis["mean"].estimate


class TestABComparison:
    def test_clear_winner(self, rng):
        fast = rng.normal(1.0, 0.1, size=100)
        slow = rng.normal(2.0, 0.1, size=100)
        assert probability_a_beats_b(fast, slow) > 0.99
        assert probability_a_beats_b(slow, fast) < 0.01

    def test_identical_distributions_are_a_tossup(self, rng):
        a = rng.normal(1.0, 0.2, size=400)
        b = rng.normal(1.0, 0.2, size=400)
        p = probability_a_beats_b(a, b)
        assert 0.2 < p < 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            probability_a_beats_b([1.0], [1.0, 2.0])
