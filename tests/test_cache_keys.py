"""Tests for perceptual frame fingerprinting (repro.cache.keys)."""

import numpy as np
import pytest

from repro.cache.keys import (
    FrameFingerprint,
    block_means,
    block_signature_bits,
    dhash_bits,
    fingerprint,
    hamming,
    luma,
)
from repro.data.datasets import get_dataset
from repro.data.synthetic import synth_frame_sequence


def _frame(seed: int = 0, width: int = 64, height: int = 48):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, (height, width, 3), dtype=np.uint8)


class TestLuma:
    def test_rgb_uses_rec601_weights(self):
        frame = np.zeros((2, 2, 3), dtype=np.uint8)
        frame[..., 1] = 100  # pure green
        plane = luma(frame)
        assert plane == pytest.approx(np.full((2, 2), 58.7))

    def test_grayscale_passes_through(self):
        plane = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert np.array_equal(luma(plane), plane)

    def test_single_channel_squeezes(self):
        frame = np.ones((3, 4, 1), dtype=np.uint8) * 7
        assert np.array_equal(luma(frame), np.full((3, 4), 7.0))

    def test_other_channel_counts_average(self):
        frame = np.stack([np.zeros((2, 2)), np.full((2, 2), 10.0)],
                         axis=2)
        assert np.array_equal(luma(frame), np.full((2, 2), 5.0))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError, match="expected"):
            luma(np.zeros(8))


class TestBlockMeans:
    def test_exact_partition(self):
        plane = np.arange(16, dtype=np.float64).reshape(4, 4)
        means = block_means(plane, 2, 2)
        assert np.allclose(means, [[2.5, 4.5], [10.5, 12.5]])

    def test_non_divisible_resolution(self):
        # 5x7 into a 2x3 grid: every cell defined, total mean preserved
        # by area weighting of the linspace edges.
        plane = np.arange(35, dtype=np.float64).reshape(5, 7)
        means = block_means(plane, 2, 3)
        assert means.shape == (2, 3)
        assert np.all(np.diff(means, axis=1) > 0)

    def test_input_smaller_than_grid_repeats_pixels(self):
        plane = np.array([[1.0, 2.0]])
        means = block_means(plane, 4, 4)
        assert means.shape == (4, 4)
        assert set(np.unique(means)) == {1.0, 2.0}

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            block_means(np.zeros((2, 2, 3)), 2, 2)


class TestDhash:
    def test_all_black_frame_hashes_to_zero(self):
        assert dhash_bits(np.zeros((32, 32, 3), dtype=np.uint8)) == 0

    def test_uniform_frames_collide_regardless_of_level(self):
        black = np.zeros((24, 24), dtype=np.uint8)
        white = np.full((24, 24), 255, dtype=np.uint8)
        assert dhash_bits(black) == dhash_bits(white)

    def test_brightness_shift_is_invariant(self):
        frame = _frame(3).astype(np.int64)
        shifted = np.clip(frame + 20, 0, 255)
        assert dhash_bits(frame) == dhash_bits(shifted)

    def test_gradient_produces_all_ones(self):
        plane = np.tile(np.arange(64, dtype=np.float64), (64, 1))
        assert dhash_bits(plane, hash_size=4) == (1 << 16) - 1

    def test_rejects_tiny_hash_size(self):
        with pytest.raises(ValueError, match="hash_size"):
            dhash_bits(_frame(), hash_size=1)


class TestFingerprint:
    def test_non_224_resolutions_share_geometry(self):
        # A 4K frame and a thumbnail of the same scene still compare:
        # fingerprints depend on the grid, not the input resolution.
        a = fingerprint(_frame(1, width=640, height=360))
        b = fingerprint(_frame(1, width=64, height=36))
        assert a.nbits == b.nbits == 80
        assert a.distance(b) <= a.nbits

    def test_grayscale_frame_fingerprints(self):
        fp = fingerprint(_frame(2)[..., 0])
        assert isinstance(fp, FrameFingerprint)
        assert fp.packed >> 16 == fp.dhash

    def test_threshold_zero_is_exact_match(self):
        fp = fingerprint(_frame(4))
        same = fingerprint(_frame(4))
        off_by_one = FrameFingerprint(fp.dhash ^ 1, fp.blocks)
        assert fp.matches(same, threshold=0)
        assert not fp.matches(off_by_one, threshold=0)
        assert fp.matches(off_by_one, threshold=1)

    def test_negative_threshold_rejected(self):
        fp = fingerprint(_frame())
        with pytest.raises(ValueError, match="threshold"):
            fp.matches(fp, threshold=-1)

    def test_geometry_mismatch_rejected(self):
        a = fingerprint(_frame(), hash_size=8)
        b = fingerprint(_frame(), hash_size=4)
        with pytest.raises(ValueError, match="geometry"):
            a.distance(b)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="geometry"):
            FrameFingerprint(0, 0, hash_size=1)

    def test_hamming_counts_bits(self):
        assert hamming(0b1010, 0b0110) == 2

    def test_block_signature_balances_bits(self):
        # Half-dark half-bright frame: exactly half the cells exceed
        # the global mean.
        plane = np.zeros((64, 64))
        plane[:, 32:] = 200.0
        bits = block_signature_bits(plane, block_grid=4)
        assert bin(bits).count("1") == 8

    def test_deterministic_across_calls(self):
        frame = _frame(9)
        assert fingerprint(frame) == fingerprint(frame)


class TestSceneDiscrimination:
    """Jittered frames must match; scene cuts must not."""

    def test_sensor_noise_stays_within_small_distance(self):
        spec = get_dataset("crsa")
        rng = np.random.default_rng(7)
        frames = synth_frame_sequence(spec, 6, 0.0, rng)
        base = fingerprint(frames[0])
        for frame in frames[1:]:
            assert base.distance(fingerprint(frame)) <= 6

    def test_scene_cut_exceeds_threshold(self):
        spec = get_dataset("crsa")
        rng = np.random.default_rng(8)
        frames = synth_frame_sequence(spec, 40, 1.0, rng)
        distances = [fingerprint(frames[i]).distance(
            fingerprint(frames[i + 1])) for i in range(5)]
        assert min(distances) > 8
