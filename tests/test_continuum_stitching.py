"""Tests for repro.continuum.stitching — the offline drone front end."""

import numpy as np
import pytest

from repro.continuum.stitching import (
    StitchCostModel,
    TilePlacement,
    plan_survey,
    stitch_mosaic,
    tile_mosaic,
)
from repro.data.synthetic import synth_image


class TestPlanSurvey:
    def test_covers_field_corners(self):
        origins = plan_survey(200, 100, 80, 60, overlap=0.3)
        assert (0, 0) in origins
        assert (200 - 80, 100 - 60) in origins

    def test_overlap_increases_capture_count(self):
        sparse = plan_survey(300, 300, 100, 100, overlap=0.1)
        dense = plan_survey(300, 300, 100, 100, overlap=0.6)
        assert len(dense) > len(sparse)

    def test_every_pixel_covered(self):
        origins = plan_survey(150, 90, 50, 40, overlap=0.25)
        covered = np.zeros((90, 150), bool)
        for x, y in origins:
            covered[y:y + 40, x:x + 50] = True
        assert covered.all()

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_survey(100, 100, 200, 50)
        with pytest.raises(ValueError):
            plan_survey(100, 100, 50, 50, overlap=1.0)


class TestStitchMosaic:
    def test_single_capture_reproduces_itself(self, rng):
        img = synth_image(40, 30, rng)
        mosaic = stitch_mosaic([TilePlacement(img, 0, 0)], 40, 30)
        # Feathered single placement: interior pixels match exactly.
        np.testing.assert_allclose(mosaic[5:-5, 5:-5].astype(int),
                                   img[5:-5, 5:-5].astype(int), atol=1)

    def test_constant_tiles_blend_to_constant(self):
        tile = np.full((30, 40, 3), 100, np.uint8)
        placements = [TilePlacement(tile, x, 0) for x in (0, 20, 40)]
        mosaic = stitch_mosaic(placements, 80, 30)
        covered = mosaic.sum(axis=2) > 0
        assert np.all(mosaic[covered] == 100)

    def test_uncovered_regions_stay_black(self, rng):
        img = synth_image(20, 20, rng)
        mosaic = stitch_mosaic([TilePlacement(img, 0, 0)], 100, 100)
        assert mosaic[50:, 50:].sum() == 0

    def test_off_canvas_placement_rejected(self, rng):
        img = synth_image(20, 20, rng)
        with pytest.raises(ValueError, match="canvas"):
            stitch_mosaic([TilePlacement(img, 90, 90)], 100, 100)

    def test_empty_placements_rejected(self):
        with pytest.raises(ValueError):
            stitch_mosaic([], 10, 10)

    def test_negative_placement_rejected(self, rng):
        with pytest.raises(ValueError):
            TilePlacement(synth_image(10, 10, rng), -1, 0)

    def test_full_survey_roundtrip(self, rng):
        # Survey -> stitch covers the whole canvas.
        origins = plan_survey(120, 80, 50, 40, overlap=0.3)
        placements = [TilePlacement(synth_image(50, 40, rng), x, y)
                      for x, y in origins]
        mosaic = stitch_mosaic(placements, 120, 80)
        assert (mosaic.sum(axis=2) > 0).mean() > 0.99


class TestTileMosaic:
    def test_exact_tiling(self, rng):
        mosaic = synth_image(128, 64, rng)
        tiles = tile_mosaic(mosaic, 32)
        assert len(tiles) == (128 // 32) * (64 // 32)
        for x, y, tile in tiles:
            assert tile.shape == (32, 32, 3)
            np.testing.assert_array_equal(tile, mosaic[y:y + 32, x:x + 32])

    def test_partial_tiles_padded(self, rng):
        mosaic = synth_image(100, 50, rng)
        tiles = tile_mosaic(mosaic, 32)
        # 4 x 2 grid including padded edges.
        assert len(tiles) == 8
        corner = next(t for x, y, t in tiles if x == 96 and y == 32)
        assert corner.shape == (32, 32, 3)
        assert corner[20:, :].sum() == 0  # padding

    def test_drop_partial(self, rng):
        mosaic = synth_image(100, 50, rng)
        tiles = tile_mosaic(mosaic, 32, drop_partial=True)
        assert len(tiles) == 3  # only fully-covered tiles

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            tile_mosaic(np.zeros((10, 10)), 4)
        with pytest.raises(ValueError):
            tile_mosaic(synth_image(10, 10, rng), 0)


class TestStitchCostModel:
    def test_scales_with_pixels_and_cores(self):
        model = StitchCostModel(fixed_overhead_seconds=0.0)
        base = model.stitch_seconds(1e9, cpu_cores=1)
        assert model.stitch_seconds(2e9, cpu_cores=1) == pytest.approx(
            2 * base)
        assert model.stitch_seconds(1e9, cpu_cores=4) == pytest.approx(
            base / 4)

    def test_fixed_overhead_floor(self):
        model = StitchCostModel(fixed_overhead_seconds=30.0)
        assert model.stitch_seconds(0.0, cpu_cores=128) == 30.0

    def test_validation(self):
        model = StitchCostModel()
        with pytest.raises(ValueError):
            model.stitch_seconds(-1, 1)
        with pytest.raises(ValueError):
            model.stitch_seconds(1, 0)
