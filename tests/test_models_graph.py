"""Tests for repro.models.graph."""

import pytest

from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    AttentionMatmul,
    LayerCategory,
    Linear,
)


def tiny_graph():
    return ModelGraph("toy", "transformer", (3, 8, 8), [
        Linear("fc1", in_features=16, out_features=32, tokens=4),
        AttentionMatmul("attn", tokens=4, dim=16, heads=2),
        Activation("gelu", kind="gelu", shape=(4, 32)),
        Linear("fc2", in_features=32, out_features=16, tokens=4),
    ])


class TestConstruction:
    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ModelGraph("bad", "cnn", (3, 8, 8), [
                Linear("fc", 4, 4), Linear("fc", 4, 4)])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ModelGraph("bad", "cnn", (3, 8, 8), [])

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError, match="architecture"):
            ModelGraph("bad", "rnn", (3, 8, 8), [Linear("fc", 4, 4)])

    def test_iteration_and_len(self):
        graph = tiny_graph()
        assert len(graph) == 4
        assert [l.name for l in graph] == ["fc1", "attn", "gelu", "fc2"]


class TestAccounting:
    def test_total_params_is_layer_sum(self):
        graph = tiny_graph()
        assert graph.total_params() == sum(
            l.params() for l in graph.layers)

    def test_total_macs_includes_attention(self):
        graph = tiny_graph()
        attn_macs = 2 * 16 * 16  # 2 T^2 D
        assert graph.total_macs() == pytest.approx(
            4 * 16 * 32 + attn_macs + 4 * 32 * 16)

    def test_reported_gflops_excludes_attention_matmuls(self):
        # The Table 3 profiler convention.
        graph = tiny_graph()
        expected = (4 * 16 * 32 + 4 * 32 * 16) / 1e9
        assert graph.reported_gflops() == pytest.approx(expected)

    def test_flops_per_image_is_reported_convention(self):
        graph = tiny_graph()
        assert graph.flops_per_image() == pytest.approx(
            graph.reported_gflops() * 1e9)

    def test_compute_breakdown_sums_to_one(self):
        breakdown = tiny_graph().compute_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_mlp_attention_split_sums_to_one(self):
        mlp, attn = tiny_graph().mlp_attention_split()
        assert mlp + attn == pytest.approx(1.0)
        assert mlp > attn  # dense matmuls dominate

    def test_split_raises_without_matmuls(self):
        graph = ModelGraph("act-only", "cnn", (3, 8, 8), [
            Activation("a", kind="relu", shape=(3, 8, 8))])
        with pytest.raises(ValueError, match="no matmul"):
            graph.mlp_attention_split()


class TestMemoryAccounting:
    def test_weight_bytes_scale_with_precision(self):
        graph = tiny_graph()
        assert graph.weight_bytes(2) == 2 * graph.total_params()
        assert graph.weight_bytes(4) == 2 * graph.weight_bytes(2)

    def test_peak_vs_sum_activations(self):
        graph = tiny_graph()
        assert (graph.peak_activation_elements()
                <= graph.sum_activation_elements())

    def test_reuse_footprint_smaller_than_no_reuse(self):
        graph = tiny_graph()
        assert (graph.activation_bytes_per_image(2, reuse=True)
                <= graph.activation_bytes_per_image(2, reuse=False))

    def test_ping_pong_is_twice_the_peak(self):
        graph = tiny_graph()
        assert graph.activation_bytes_per_image(2, reuse=True) == \
            2 * 2 * graph.peak_activation_elements()


class TestSummary:
    def test_summary_fields(self, vit_tiny):
        s = vit_tiny.summary()
        assert s.name == "vit_tiny"
        assert s.architecture == "transformer"
        assert s.params == vit_tiny.total_params()
        assert s.params_millions == pytest.approx(s.params / 1e6)

    def test_layer_table_covers_all_layers(self, vit_tiny):
        table = vit_tiny.layer_table()
        assert len(table) == len(vit_tiny)
        assert {"name", "category", "params", "macs",
                "elementwise_flops", "output_shape"} == set(table[0])

    def test_repr_mentions_name_and_size(self, vit_tiny):
        text = repr(vit_tiny)
        assert "vit_tiny" in text and "5.40M" in text
