"""Tests for the elastic tier: admission control, drain, autoscaler."""

import pytest

from repro.analysis.report import render_scaling_timeline
from repro.hardware.platform import A100, JETSON
from repro.predict.capacity import CapacityPlanner, WorkloadSpec
from repro.scale.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.scale.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    replica_ceiling,
)
from repro.scale.balancer import LoadBalancer, RoundRobinPolicy
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.metrics import summarize_responses
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer
from repro.serving.traces import ArrivalTrace, TraceReplayer, step_trace


def _server(sim, service=0.01, registry=None, delay=0.002,
            max_batch=8):
    server = TritonLikeServer(sim, registry=registry)
    server.register(ModelConfig(
        "m", lambda n: service,
        batcher=BatcherConfig(max_batch_size=max_batch,
                              max_queue_delay=delay)))
    return server


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert [bucket.try_take(0.0) for _ in range(4)] == \
            [True, True, True, False]
        # 10 tokens/s: one token back after 0.1 s.
        assert bucket.try_take(0.1)
        assert not bucket.try_take(0.1)

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2)
        bucket.try_take(0.0)
        assert bucket.available(1000.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_disabled_admits_everything(self):
        controller = AdmissionController(AdmissionConfig())
        for t in range(100):
            assert controller.admit(float(t), queued_requests=10 ** 6
                                    ).admitted

    def test_rate_limit_sheds_with_reason(self):
        controller = AdmissionController(AdmissionConfig(
            rate_per_second=1.0, burst=2))
        decisions = [controller.admit(0.0, 0) for _ in range(3)]
        assert [d.admitted for d in decisions] == [True, True, False]
        assert decisions[-1].reason == "rate"

    def test_queue_shedding_takes_priority_over_tokens(self):
        controller = AdmissionController(AdmissionConfig(
            rate_per_second=100.0, burst=1, max_queued_requests=5))
        shed = controller.admit(0.0, queued_requests=5)
        assert not shed.admitted and shed.reason == "queue"
        # The shed request must not have burned the token.
        assert controller.admit(0.0, queued_requests=0).admitted

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(rate_per_second=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(burst=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queued_requests=-1)


class TestServerDrain:
    def test_drain_refuses_new_but_finishes_inflight(self):
        sim = Simulator()
        server = _server(sim, service=0.05)
        for _ in range(4):
            server.submit(Request("m"))
        server.begin_drain()
        server.submit(Request("m"))  # refused at the door
        responses = server.run()
        assert len(responses) == 5
        by_status = sorted(r.status for r in responses)
        assert by_status.count("ok") == 4
        assert by_status.count("rejected") == 1
        assert server.is_drained
        assert server.metrics.get(
            "drain_rejections_total").total() == 1

    def test_is_drained_false_while_working(self):
        sim = Simulator()
        server = _server(sim, service=0.05)
        server.submit(Request("m"))
        server.begin_drain()
        assert not server.is_drained
        server.run()
        assert server.is_drained

    def test_active_server_is_never_drained(self):
        server = _server(Simulator())
        assert not server.is_drained


class TestElasticPool:
    def test_add_backend_receives_routes(self):
        sim = Simulator()
        balancer = LoadBalancer([_server(sim)], RoundRobinPolicy())
        balancer.add_backend(_server(sim))
        for _ in range(4):
            balancer.submit(Request("m"))
        balancer.run()
        assert balancer.routing_counts() == [2, 2]

    def test_add_rejects_foreign_simulator_and_duplicates(self):
        sim = Simulator()
        backend = _server(sim)
        balancer = LoadBalancer([backend])
        with pytest.raises(ValueError, match="share"):
            balancer.add_backend(_server(Simulator()))
        with pytest.raises(ValueError, match="already"):
            balancer.add_backend(backend)

    def test_drained_backend_stops_receiving_routes(self):
        sim = Simulator()
        a, b = _server(sim), _server(sim)
        balancer = LoadBalancer([a, b], RoundRobinPolicy())
        balancer.drain_backend(b)
        for _ in range(4):
            balancer.submit(Request("m"))
        balancer.run()
        assert balancer.routing_counts() == [4, 0]

    def test_cannot_drain_last_active(self):
        sim = Simulator()
        a, b = _server(sim), _server(sim)
        balancer = LoadBalancer([a, b])
        balancer.drain_backend(a)
        with pytest.raises(ValueError, match="last active"):
            balancer.drain_backend(b)

    def test_release_requires_finished_drain(self):
        sim = Simulator()
        a, b = _server(sim, service=0.05), _server(sim, service=0.05)
        balancer = LoadBalancer([a, b], RoundRobinPolicy())
        for _ in range(4):
            balancer.submit(Request("m"))
        balancer.drain_backend(b)
        with pytest.raises(RuntimeError, match="in-flight"):
            balancer.release_backend(b)
        with pytest.raises(ValueError, match="draining"):
            balancer.release_backend(a)

    def test_scale_in_loses_no_inflight_responses(self):
        sim = Simulator()
        a, b = _server(sim, service=0.05), _server(sim, service=0.05)
        balancer = LoadBalancer([a, b], RoundRobinPolicy())
        for _ in range(6):
            balancer.submit(Request("m"))
        balancer.drain_backend(b)
        first = balancer.run()
        balancer.release_backend(b)
        # b's in-flight work completed and was collected before (or at)
        # release; nothing vanished with the replica.
        total = first + balancer.run()
        assert len(total) == 6
        assert all(r.ok for r in total)
        assert balancer.backends == [a]


class TestReplicaCeiling:
    def test_reuses_capacity_plan(self, resnet50):
        workload = WorkloadSpec(images_per_second=3000,
                                latency_slo_seconds=0.1)
        plan = CapacityPlanner(workload).plan(resnet50, JETSON)
        assert replica_ceiling(plan) == plan.devices
        assert replica_ceiling(plan, safety_factor=1.5) >= \
            replica_ceiling(plan)

    def test_infeasible_plan_rejected(self, vit_base):
        workload = WorkloadSpec(images_per_second=100,
                                latency_slo_seconds=1e-5)
        plan = CapacityPlanner(workload).plan(vit_base, JETSON)
        with pytest.raises(ValueError, match="infeasible"):
            replica_ceiling(plan)

    def test_safety_factor_validated(self, resnet50):
        workload = WorkloadSpec(images_per_second=3000,
                                latency_slo_seconds=0.1)
        plan = CapacityPlanner(workload).plan(resnet50, A100)
        with pytest.raises(ValueError, match="safety"):
            replica_ceiling(plan, safety_factor=0.5)


class TestAutoscalerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(slo_p95_seconds=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(slo_p95_seconds=0.1, interval=0)
        with pytest.raises(ValueError):
            AutoscalerConfig(slo_p95_seconds=0.1, min_replicas=2,
                             max_replicas=1)
        with pytest.raises(ValueError):
            AutoscalerConfig(slo_p95_seconds=0.1,
                             scale_in_utilization=1.5)


def _autoscaled_run(trace: ArrivalTrace, slo=0.1, max_replicas=6,
                    service=0.02):
    """Step-load harness: shared registry, one starting replica."""
    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)

    def factory():
        return _server(sim, service=service, registry=registry)

    balancer = LoadBalancer([factory()], RoundRobinPolicy(),
                            registry=registry)
    autoscaler = Autoscaler(balancer, factory, AutoscalerConfig(
        slo_p95_seconds=slo, interval=0.25, max_replicas=max_replicas,
        cooldown_seconds=0.5))
    replayer = TraceReplayer(balancer, "m")
    replayer.schedule(trace)
    autoscaler.start()
    responses = balancer.run()
    return balancer, autoscaler, replayer, responses


class TestAutoscalerIntegration:
    # One replica serves batches of <= 8 in 20 ms: ~400 img/s capacity.
    # The step offers 1200 rps, so ~3 replicas are needed to hold it.
    @pytest.fixture(scope="class")
    def trace(self):
        return step_trace(duration=24.0, base_rate=40.0,
                          step_rate=1200.0, step_start=4.0,
                          step_end=12.0, seed=7)

    @pytest.fixture(scope="class")
    def run(self, trace):
        return _autoscaled_run(trace)

    def test_scales_out_under_step_and_back_down(self, run):
        _, autoscaler, _, _ = run
        actions = [e.action for e in autoscaler.events]
        assert "scale_out" in actions
        assert "drain" in actions and "release" in actions
        peak = max(e.replicas for e in autoscaler.events)
        assert peak >= 3

    def test_p95_recovers_under_slo_after_scale_out(self, run):
        _, autoscaler, _, _ = run
        last_out = max(e.time for e in autoscaler.events
                       if e.action == "scale_out")
        # After the pool stops growing, the controller's own windowed
        # p95 readings return below the SLO before the trace ends.
        later = [e for e in autoscaler.events if e.time > last_out]
        assert later, "no events after the last scale-out"
        assert any(e.p95_seconds is not None
                   and e.p95_seconds <= 0.1 for e in later)

    def test_no_request_lost_across_scale_events(self, run):
        balancer, _, replayer, responses = run
        assert len(responses) == replayer.submitted
        assert all(r.ok for r in responses)
        # Nothing still queued or executing anywhere.
        assert balancer.queue_depth() == 0
        for backend in balancer.backends:
            assert backend.busy_instances() == 0

    def test_drains_back_toward_minimum(self, run):
        balancer, autoscaler, _, _ = run
        peak = max(e.replicas for e in autoscaler.events)
        assert len(balancer.active_backends) < peak
        assert not balancer.draining_backends

    def test_registry_records_scale_events(self, run):
        balancer, autoscaler, _, _ = run
        events = balancer.metrics.get("autoscale_events_total")
        outs = sum(1 for e in autoscaler.events
                   if e.action == "scale_out")
        assert events.value(action="scale_out") == outs
        assert balancer.metrics.get("autoscale_replicas").value() == \
            len(balancer.active_backends)

    def test_ceiling_is_respected(self, trace):
        balancer, autoscaler, _, _ = _autoscaled_run(trace,
                                                     max_replicas=2)
        assert max(e.replicas for e in autoscaler.events) <= 2
        assert len(balancer.backends) <= 2

    def test_deterministic_event_log(self, trace, run):
        _, first, _, _ = run
        _, second, _, _ = _autoscaled_run(trace)
        strip = [(e.time, e.action, e.replicas, e.reason)
                 for e in first.events]
        assert strip == [(e.time, e.action, e.replicas, e.reason)
                         for e in second.events]


class TestAdmissionAtTheBalancer:
    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        server = _server(sim, service=0.1, registry=registry)
        balancer = LoadBalancer(
            [server], registry=registry,
            admission=AdmissionController(AdmissionConfig(
                max_queued_requests=10)))
        for i in range(100):
            sim.schedule_at(i * 1e-4,
                            lambda: balancer.submit(Request("m")))
        responses = balancer.run()
        rejected = [r for r in responses if r.status == "rejected"]
        assert len(responses) == 100
        assert rejected, "expected shedding under overload"
        assert registry.get("admission_rejected_total").value(
            reason="queue") == len(rejected)
        # Shed requests answer instantly — graceful degradation.
        assert all(r.latency == 0.0 for r in rejected)

    def test_token_bucket_paces_sustained_overrate(self):
        sim = Simulator()
        server = _server(sim, service=0.001)
        balancer = LoadBalancer(
            [server],
            admission=AdmissionController(AdmissionConfig(
                rate_per_second=50.0, burst=5)))
        # 200 rps offered for one second against a 50 rps limit.
        for i in range(200):
            sim.schedule_at(i / 200.0,
                            lambda: balancer.submit(Request("m")))
        responses = balancer.run()
        admitted = [r for r in responses if r.ok]
        # burst + rate * 1s, within rounding.
        assert 50 <= len(admitted) <= 56
        shed = balancer.metrics.get("admission_rejected_total")
        assert shed.value(reason="rate") == 200 - len(admitted)


class TestScalingTimelineRendering:
    def test_renders_events_and_flags_breaches(self):
        trace = step_trace(duration=16.0, base_rate=40.0,
                           step_rate=1200.0, step_start=2.0,
                           step_end=8.0, seed=3)
        _, autoscaler, _, _ = _autoscaled_run(trace)
        text = render_scaling_timeline(autoscaler.events,
                                       slo_seconds=0.1)
        assert "scale_out" in text
        assert "!" in text  # at least one annotated SLO breach
        lines = text.splitlines()
        assert len(lines) == len(autoscaler.events) + 1

    def test_empty_events(self):
        assert render_scaling_timeline([]) == "(no scale events)\n"

    def test_width_validated(self):
        with pytest.raises(ValueError):
            render_scaling_timeline([], width=2)


class TestSummaryAccounting:
    def test_admitted_equals_completed_under_autoscaling(self):
        trace = step_trace(duration=16.0, base_rate=40.0,
                           step_rate=800.0, step_start=2.0,
                           step_end=8.0, seed=11)
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)

        def factory():
            return _server(sim, service=0.02, registry=registry)

        balancer = LoadBalancer(
            [factory()], RoundRobinPolicy(), registry=registry,
            admission=AdmissionController(AdmissionConfig(
                max_queued_requests=200)))
        autoscaler = Autoscaler(balancer, factory, AutoscalerConfig(
            slo_p95_seconds=0.1, interval=0.25, max_replicas=4,
            cooldown_seconds=0.5))
        replayer = TraceReplayer(balancer, "m")
        replayer.schedule(trace)
        autoscaler.start()
        responses = balancer.run()
        assert len(responses) == replayer.submitted
        ok = [r for r in responses if r.ok]
        shed = registry.get("admission_rejected_total").total()
        assert len(ok) + shed == replayer.submitted
        assert summarize_responses(ok).count == len(ok)
