"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestReport:
    def test_single_artifact(self, capsys):
        assert main(["report", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Plant Village" in out

    def test_figure_artifact(self, capsys):
        assert main(["report", "fig5"]) == 0
        assert "ViT Tiny" in capsys.readouterr().out

    def test_invalid_artifact_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["report", "fig9"])


class TestCompare:
    def test_prints_anchor_table(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "rel_err_pct" in out


class TestAdvise:
    def test_ranks_models(self, capsys):
        assert main(["advise", "--platform", "a100",
                     "--dataset", "plant_village"]) == 0
        out = capsys.readouterr().out
        assert "vit_base" in out and "meets target" in out

    def test_unknown_platform_is_an_error_exit(self, capsys):
        assert main(["advise", "--platform", "h100",
                     "--dataset", "plant_village"]) == 2
        assert "error" in capsys.readouterr().err


class TestPredict:
    def test_expectation_report(self, capsys):
        assert main(["predict", "--model", "vit_tiny",
                     "--platform", "jetson"]) == 0
        out = capsys.readouterr().out
        assert "max_batch: 196" in out

    def test_unknown_model_error(self, capsys):
        assert main(["predict", "--model", "bert",
                     "--platform", "a100"]) == 2


class TestFigures:
    def test_writes_svgs(self, tmp_path, capsys):
        assert main(["figures", "--out", str(tmp_path)]) == 0
        assert len(list(tmp_path.glob("*.svg"))) == 12


class TestMetricsCommand:
    def test_end_to_end_smoke(self, capsys):
        assert main(["metrics", "--requests", "40"]) == 0
        out = capsys.readouterr().out
        assert "== timeline ==" in out
        assert "== stage breakdown ==" in out
        assert "== scrape ==" in out
        assert "harvest_responses_total" in out
        assert "queue_wait_seconds" in out

    def test_scrape_is_deterministic_across_runs(self, capsys):
        # Tier-1 smoke: two identical simulated runs must print the
        # same timeline and the same scrape, byte for byte — the
        # observability layer adds no hidden nondeterminism.
        args = ["metrics", "--requests", "60", "--rate", "120",
                "--seed", "3"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_invalid_rate_is_an_error_exit(self, capsys):
        assert main(["metrics", "--rate", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestAutoscale:
    FAST = ["autoscale", "--duration", "12", "--step-start", "2",
            "--step-end", "6", "--step-rate", "2000",
            "--base-rate", "150", "--seed", "5"]

    def test_end_to_end_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "scaling timeline" in out
        assert "scale_out" in out
        assert "drain" in out
        assert "autoscale_replicas" in out
        assert "admission_admitted_total" in out

    def test_output_is_deterministic_across_runs(self, capsys):
        # Acceptance: two identical invocations are byte-identical —
        # scaling decisions, shed counts, scrape and all.
        assert main(self.FAST) == 0
        first = capsys.readouterr().out
        assert main(self.FAST) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_explicit_ceiling_skips_planner(self, capsys):
        assert main(self.FAST + ["--max-replicas", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 (--max-replicas)" in out

    def test_invalid_slo_is_an_error_exit(self, capsys):
        assert main(["autoscale", "--slo-ms", "0"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_model_is_an_error_exit(self, capsys):
        assert main(["autoscale", "--model", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestTrace:
    FAST = ["trace", "--duration", "6", "--step-start", "1",
            "--step-end", "3", "--step-rate", "700",
            "--base-rate", "60", "--seed", "2"]

    def test_end_to_end_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "== critical path ==" in out
        assert "== slo burn alerts ==" in out
        assert "== scaling timeline ==" in out
        assert "queue_wait" in out
        assert "tracked" in out

    def test_overload_fires_burn_alert_and_scales(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        alerts = out.split("== slo burn alerts ==")[1] \
                    .split("== scaling timeline ==")[0]
        assert "(no burn-rate alerts)" not in alerts
        assert "scale_out" in out

    def test_output_is_deterministic_across_runs(self, capsys,
                                                 tmp_path):
        # Acceptance: two identical invocations produce byte-identical
        # stdout AND byte-identical Perfetto JSON.
        out_file = tmp_path / "trace.json"
        args = self.FAST + ["--out", str(out_file)]
        assert main(args) == 0
        first_stdout = capsys.readouterr().out
        first_json = out_file.read_bytes()
        assert main(args) == 0
        second_stdout = capsys.readouterr().out
        assert first_stdout == second_stdout
        assert first_json == out_file.read_bytes()

    def test_written_trace_passes_schema_check(self, tmp_path):
        from repro.serving.trace_export import validate_chrome_trace

        out_file = tmp_path / "trace.json"
        assert main(self.FAST + ["--out", str(out_file)]) == 0
        payload = validate_chrome_trace(out_file.read_text())
        assert payload["traceEvents"]

    def test_unknown_link_is_an_error_exit(self, capsys):
        assert main(["trace", "--link", "carrier-pigeon"]) == 2
        assert "error" in capsys.readouterr().err


class TestCache:
    FAST = ["cache", "--frames", "80", "--rate", "20",
            "--scene-change-rates", "0.05", "--seed", "1"]

    def test_end_to_end_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "== scene change rate 0.05 ==" in out
        assert "edge_result" in out and "cloud_tensor" in out
        assert "p95 latency" in out
        assert "uplink bytes saved" in out

    def test_hit_ratio_and_p95_meet_acceptance_floor(self, capsys,
                                                     tmp_path):
        # Acceptance: at scene_change_rate=0.05 the edge tier absorbs
        # >= 80% of lookups, saves uplink bytes, and beats the
        # cache-disabled p95.
        import json

        out_file = tmp_path / "cache.json"
        args = ["cache", "--scene-change-rates", "0.05",
                "--out", str(out_file)]
        assert main(args) == 0
        capsys.readouterr()
        [row] = json.loads(out_file.read_text())["rates"]
        assert row["edge_hit_ratio"] >= 0.8
        assert row["uplink_bytes_saved"] > 0
        assert row["cached_p95_ms"] < row["uncached_p95_ms"]

    def test_output_is_deterministic_across_runs(self, capsys,
                                                 tmp_path):
        # Acceptance: two identical invocations produce byte-identical
        # stdout AND byte-identical JSON.
        out_file = tmp_path / "cache.json"
        args = self.FAST + ["--out", str(out_file)]
        assert main(args) == 0
        first_stdout = capsys.readouterr().out
        first_json = out_file.read_bytes()
        assert main(args) == 0
        assert capsys.readouterr().out == first_stdout
        assert out_file.read_bytes() == first_json

    def test_hit_ratio_decays_with_scene_change_rate(self, capsys,
                                                     tmp_path):
        import json

        out_file = tmp_path / "cache.json"
        args = ["cache", "--frames", "80", "--seed", "1",
                "--scene-change-rates", "0.0,0.2,0.8",
                "--out", str(out_file)]
        assert main(args) == 0
        capsys.readouterr()
        rows = json.loads(out_file.read_text())["rates"]
        ratios = [row["edge_hit_ratio"] for row in rows]
        assert ratios == sorted(ratios, reverse=True)

    def test_empty_rates_is_an_error_exit(self, capsys):
        assert main(["cache", "--scene-change-rates", " "]) == 2
        assert "error" in capsys.readouterr().err

    def test_out_of_range_rate_is_an_error_exit(self, capsys):
        assert main(["cache", "--scene-change-rates", "1.5"]) == 2
        assert "error" in capsys.readouterr().err


class TestNetwork:
    FAST = ["network", "--frames", "15", "--broker-messages", "60",
            "--seed", "1"]

    def test_end_to_end_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "4 co-located endpoints on field_lte_lossy" in out
        assert "== uncached replay ==" in out
        assert "== cached replay ==" in out
        assert "uplink spans:" in out
        assert "retransmits" in out
        assert "qos0:" in out and "qos1:" in out
        assert "link_bytes_total" in out
        assert "link_queue_depth" in out

    def test_contention_widens_uplink_spans(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "network.json"
        assert main(self.FAST + ["--out", str(out_file)]) == 0
        capsys.readouterr()
        payload = json.loads(out_file.read_text())
        uncached = payload["uncached"]
        # Four lockstep senders: every span stretches toward 4x the
        # solo serialization time, and the cache relieves the p95.
        assert uncached["peak_concurrency"] == 4
        solo_ms = 256.0 * 1024 * 8 / 10e6 * 1e3
        assert uncached["uplink_spans"]["mean_ms"] > 2.5 * solo_ms
        assert payload["cached"]["p95_ms"] < uncached["p95_ms"]

    def test_output_is_deterministic_across_runs(self, capsys,
                                                 tmp_path):
        # Acceptance: byte-identical stdout, JSON, and Chrome trace
        # across identical invocations.
        out_file = tmp_path / "network.json"
        trace_file = tmp_path / "network.trace.json"
        args = self.FAST + ["--out", str(out_file),
                            "--trace-out", str(trace_file)]
        assert main(args) == 0
        first_stdout = capsys.readouterr().out
        first_json = out_file.read_bytes()
        first_trace = trace_file.read_bytes()
        assert main(args) == 0
        assert capsys.readouterr().out == first_stdout
        assert out_file.read_bytes() == first_json
        assert trace_file.read_bytes() == first_trace

    def test_trace_out_validates(self, capsys, tmp_path):
        from repro.serving.trace_export import validate_chrome_trace

        trace_file = tmp_path / "network.trace.json"
        assert main(self.FAST + ["--trace-out", str(trace_file)]) == 0
        capsys.readouterr()
        payload = validate_chrome_trace(trace_file.read_text())
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "uplink" in names and "downlink" in names

    def test_outage_buffers_instead_of_dropping(self, capsys):
        assert main(self.FAST + ["--outage-start", "5",
                                 "--outage-seconds", "3"]) == 0
        out = capsys.readouterr().out
        assert "outage: link down 5..8 s" in out
        assert "store-and-forward:" in out
        assert "0 dropped" in out

    def test_bad_arguments_are_error_exits(self, capsys):
        assert main(["network", "--endpoints", "0"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["network", "--rate", "0"]) == 2
        assert "error" in capsys.readouterr().err
        assert main(["network", "--link", "nope"]) == 2
        assert "error" in capsys.readouterr().err


class TestBacktest:
    def test_prints_errors(self, capsys):
        assert main(["backtest", "--platform", "v100",
                     "--donor", "a100"]) == 0
        out = capsys.readouterr().out
        assert "mean relative error" in out

    def test_same_platform_error(self, capsys):
        assert main(["backtest", "--platform", "a100",
                     "--donor", "a100"]) == 2


class TestProfile:
    FAST = ["profile", "--duration", "3", "--fluid-duration", "30",
            "--burst-rate", "900"]

    def test_end_to_end_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "== profile tree (sim-time) ==" in out
        assert "serve" in out and "continuum" in out
        assert "== folded stacks (sim-time) ==" in out
        assert "sim;run " in out
        assert "== exemplars ==" in out
        assert ' # {trace_id="' in out
        assert "== tail attribution ==" in out
        assert "why is p99 high" in out
        assert "== fluid regime" in out
        assert "fluid_intervals_total" in out
        assert "== fluid profile tree (sim-time) ==" in out

    def test_output_is_deterministic_across_runs(self, capsys):
        assert main(self.FAST) == 0
        first = capsys.readouterr().out
        assert main(self.FAST) == 0
        assert capsys.readouterr().out == first

    def test_forward_prints_kernel_phase_counts(self, capsys):
        assert main(self.FAST + ["--forward"]) == 0
        out = capsys.readouterr().out
        assert "== kernel phases (vit_tiny forward, counts) ==" in out
        assert "kernel;patch_embed" in out
        # vit_tiny has 12 blocks: attention and mlp fire once each.
        assert "kernel;attention" in out and "x12" in out

    def test_artifacts_are_written_and_deterministic(self, capsys,
                                                     tmp_path):
        args = self.FAST + [
            "--out", str(tmp_path / "p.json"),
            "--speedscope", str(tmp_path / "p.speedscope.json"),
            "--folded-out", str(tmp_path / "p.folded")]
        assert main(args) == 0
        capsys.readouterr()
        import json
        doc = json.loads((tmp_path / "p.json").read_text())
        assert doc["continuum"]["closed_traces"] > 0
        assert "sim;run" in doc["continuum"]["folded_sim"]
        speedscope = json.loads(
            (tmp_path / "p.speedscope.json").read_text())
        assert speedscope["profiles"][0]["unit"] == "microseconds"
        folded_1 = (tmp_path / "p.folded").read_text()
        assert main(args) == 0
        capsys.readouterr()
        assert (tmp_path / "p.folded").read_text() == folded_1

    def test_bad_sample_rate_is_an_error_exit(self, capsys):
        assert main(["profile", "--sample-rate", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestProfileBench:
    def test_quick_run_reports_overhead_ratios(self, capsys):
        assert main(["profile-bench", "--quick", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_profile" in out
        assert "profile_off_overhead" in out
        assert "profile_on_overhead" in out


class TestSweep:
    ARGS = ["sweep", "--replications", "3", "--duration", "300",
            "--seed", "7"]

    def test_prints_deterministic_table(self, capsys):
        assert main(self.ARGS + ["--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "3 seed replications" in out
        assert "aggregate:" in out and "merged" in out
        assert "job" not in out  # worker count must not leak into stdout

    def test_stdout_byte_identical_across_jobs(self, capsys):
        assert main(self.ARGS + ["--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(self.ARGS + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == sequential

    def test_out_and_metrics_out_match_across_jobs(self, capsys,
                                                   tmp_path):
        import json

        files = {}
        for jobs in ("1", "2"):
            out = tmp_path / f"sweep{jobs}.json"
            prom = tmp_path / f"sweep{jobs}.prom"
            assert main(self.ARGS + ["--jobs", jobs, "--out", str(out),
                                     "--metrics-out", str(prom)]) == 0
            capsys.readouterr()
            files[jobs] = (out.read_text(), prom.read_text())
        assert files["1"] == files["2"]
        doc = json.loads(files["1"][0])
        assert len(doc["shards"]) == 3
        assert doc["aggregate"]["merged"]["count"] == sum(
            s["completed"] for s in doc["shards"])
        assert files["1"][1].startswith("# HELP")

    def test_wall_flag_appends_host_timings(self, capsys):
        assert main(self.ARGS + ["--jobs", "2", "--wall"]) == 0
        assert "wall" in capsys.readouterr().out

    def test_failed_shard_exits_nonzero_with_summary(self, capsys,
                                                     monkeypatch):
        import repro.sweep.workloads as workloads

        monkeypatch.setattr(
            workloads, "replay_sparse_diurnal",
            workloads._always_fails)
        assert main(self.ARGS + ["--jobs", "1"]) == 1
        err = capsys.readouterr().err
        assert "sweep failed" in err and "failed as designed" in err

    def test_bad_replications_is_an_error_exit(self, capsys):
        assert main(["sweep", "--replications", "0"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweepBench:
    def test_quick_run_verifies_and_reports(self, capsys):
        assert main(["sweep-bench", "--quick", "--repeats", "1",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "BENCH_sweep" in out
        assert "sweep_parallel_replay" in out
        assert "core-count aware" in out

    def test_check_gates_against_reference(self, capsys, tmp_path):
        ref = tmp_path / "ref.json"
        assert main(["sweep-bench", "--quick", "--repeats", "1",
                     "--jobs", "2", "--out", str(ref)]) == 0
        capsys.readouterr()
        assert main(["sweep-bench", "--quick", "--repeats", "1",
                     "--jobs", "2", "--check", str(ref)]) == 0
        assert "regression check" in capsys.readouterr().out
