"""Tests for repro.hardware.power — the energy models."""

import dataclasses

import pytest

from repro.hardware.power import (
    POWER_PROFILES,
    EnergyModel,
    PowerProfile,
    power_profile_for,
)
from repro.hardware.platform import A100, JETSON, V100


class TestPowerProfile:
    def test_idle_and_full_load(self):
        profile = PowerProfile("x", idle_watts=10, board_watts=100)
        assert profile.watts_at(0.0) == 10
        assert profile.watts_at(1.0) == 100
        assert profile.watts_at(0.5) == 55

    def test_overhead_factor_multiplies(self):
        profile = PowerProfile("x", idle_watts=10, board_watts=100,
                               overhead_factor=1.4)
        assert profile.watts_at(1.0) == pytest.approx(140)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerProfile("x", idle_watts=-1, board_watts=10)
        with pytest.raises(ValueError):
            PowerProfile("x", idle_watts=20, board_watts=10)
        with pytest.raises(ValueError):
            PowerProfile("x", idle_watts=1, board_watts=10,
                         overhead_factor=0.5)
        with pytest.raises(ValueError):
            PowerProfile("x", 1, 10).watts_at(1.5)

    def test_jetson_profile_is_25w_mode(self):
        profile = power_profile_for(JETSON)
        assert profile.board_watts == 25.0

    def test_profiles_for_all_platforms(self):
        for platform in (A100, V100, JETSON):
            assert power_profile_for(platform).platform_name == \
                platform.name

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError, match="available"):
            power_profile_for("tpu")


class TestEnergyModel:
    def test_point_consistency(self, vit_tiny):
        model = EnergyModel(vit_tiny, JETSON)
        point = model.point(64)
        assert point.joules_per_image == pytest.approx(
            point.watts / point.throughput)
        assert point.images_per_joule == pytest.approx(
            1.0 / point.joules_per_image)

    def test_energy_per_image_improves_with_batch(self, vit_tiny):
        # Larger batches raise utilization faster than power draw: the
        # energy-optimal point sits at high batch.
        model = EnergyModel(vit_tiny, JETSON)
        assert model.point(64).joules_per_image < \
            model.point(1).joules_per_image

    def test_edge_beats_cloud_on_energy_for_small_models(self, vit_tiny):
        # The continuum trade-off, quantified: the 25 W Jetson wins
        # images/joule against the 460 W A100 node for ViT Tiny.
        jetson = EnergyModel(vit_tiny, JETSON).point(64)
        a100 = EnergyModel(vit_tiny, A100).point(64)
        assert jetson.images_per_joule > a100.images_per_joule

    def test_best_batch_minimizes_energy(self, resnet50):
        model = EnergyModel(resnet50, JETSON)
        grid = (1, 2, 4, 8, 16, 32, 64)
        best = model.best_batch(grid)
        for b in grid:
            assert best.joules_per_image <= \
                model.point(b).joules_per_image + 1e-12

    def test_battery_planning(self, vit_tiny):
        model = EnergyModel(vit_tiny, JETSON)
        images = model.field_battery_images(battery_wh=100, batch_size=64)
        point = model.point(64)
        assert images == pytest.approx(100 * 3600 / point.joules_per_image)
        with pytest.raises(ValueError):
            model.field_battery_images(0, 64)

    def test_sweep_matches_points(self, vit_small):
        model = EnergyModel(vit_small, A100)
        sweep = model.sweep((1, 8, 64))
        assert [p.batch_size for p in sweep] == [1, 8, 64]

    def test_custom_profile(self, vit_tiny):
        profile = PowerProfile("custom", idle_watts=1, board_watts=2)
        model = EnergyModel(vit_tiny, JETSON, profile=profile)
        assert model.point(1).watts < 2.5
