"""Tests for repro.preprocessing.pipelines."""

import numpy as np
import pytest

from repro.data.synthetic import synth_crsa_frame, synth_image
from repro.preprocessing.pipelines import (
    IMAGENET_MEAN,
    IMAGENET_STD,
    crsa_pipeline,
    model_pipeline,
)


class TestModelPipeline:
    @pytest.mark.parametrize("size", [32, 96, 224])
    def test_output_is_model_input_layout(self, size, rng):
        pipeline = model_pipeline(size)
        img = synth_image(300, 260, rng)
        out = pipeline(img)
        assert out.shape == (3, size, size)
        assert out.dtype == np.float32

    def test_small_input_upscaled(self, rng):
        # A 61x61 spittle-bug crop still produces a 224 input.
        out = model_pipeline(224)(synth_image(61, 61, rng))
        assert out.shape == (3, 224, 224)

    def test_output_standardized_range(self, rng):
        out = model_pipeline(32)(synth_image(100, 100, rng))
        # ImageNet-normalized pixels live in roughly [-2.7, 2.7].
        assert out.min() > -3.0 and out.max() < 3.0

    def test_op_sequence(self):
        pipeline = model_pipeline(96)
        assert pipeline.op_names == ("resize", "center_crop", "normalize",
                                     "to_chw")

    def test_resize_ratio_follows_torchvision_convention(self, rng):
        # 256/224 short-side convention: intermediate resize above crop.
        pipeline = model_pipeline(224)
        img = synth_image(500, 500, rng)
        resized = pipeline.steps[0].fn(img)
        assert min(resized.shape[:2]) == 256

    def test_invalid_output_size_rejected(self):
        with pytest.raises(ValueError):
            model_pipeline(0)

    def test_normalization_constants_are_imagenet(self):
        np.testing.assert_allclose(IMAGENET_MEAN, [0.485, 0.456, 0.406])
        np.testing.assert_allclose(IMAGENET_STD, [0.229, 0.224, 0.225])

    def test_not_dataset_specific(self):
        assert not model_pipeline(32).dataset_specific


class TestCRSAPipeline:
    def test_output_shape(self):
        frame = synth_crsa_frame(384, 216)
        out = crsa_pipeline(32, frame_hw=(216, 384))(frame)
        assert out.shape == (3, 32, 32)

    def test_perspective_stage_first(self):
        pipeline = crsa_pipeline(32)
        assert pipeline.op_names[0] == "perspective"
        assert pipeline.dataset_specific

    def test_handles_scaled_frames(self):
        # Test frames smaller than 4K recompute the homography.
        frame = synth_crsa_frame(200, 100)
        out = crsa_pipeline(32, frame_hw=(2160, 3840))(frame)
        assert out.shape == (3, 32, 32)
        assert np.isfinite(out).all()
