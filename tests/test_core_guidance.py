"""Tests for repro.core.guidance — the tuning advisor."""

import pytest

from repro.core.guidance import TuningAdvisor
from repro.data.datasets import get_dataset
from repro.hardware.platform import A100, JETSON, V100


class TestBatchRecommendation:
    def test_a100_vit_tiny_needs_batch_over_16(self, vit_tiny):
        # Section 4.1: "On A100 hardware, this requires batch sizes
        # exceeding 16."
        rec = TuningAdvisor(A100, saturation_fraction=0.8).recommend_batch(
            vit_tiny)
        assert rec.meets_target
        assert rec.batch_size >= 16

    def test_v100_smaller_batch_suffices(self, vit_tiny):
        # "on V100, batch size 8 suffices" (saturation comes earlier).
        a100 = TuningAdvisor(A100, saturation_fraction=0.8)
        v100 = TuningAdvisor(V100, saturation_fraction=0.8)
        assert (v100.recommend_batch(vit_tiny).batch_size
                <= a100.recommend_batch(vit_tiny).batch_size)

    def test_latency_within_target(self, all_models):
        advisor = TuningAdvisor(A100)
        for graph in all_models:
            rec = advisor.recommend_batch(graph)
            if rec.meets_target:
                assert rec.expected_latency_seconds <= advisor.latency_target

    def test_multi_instance_suggested_when_headroom(self, vit_tiny):
        # A saturated small model on a large-memory GPU leaves room for a
        # second instance (the paper's multi-instance recommendation).
        rec = TuningAdvisor(A100).recommend_batch(vit_tiny)
        assert rec.memory_limited_batch >= 2 * (rec.batch_size or 1)
        assert rec.multi_instance_suggested

    def test_jetson_vit_base_cannot_meet_60qps(self, vit_base):
        # The Jetson's "considerably narrower operating margins": ViT
        # Base misses the 16.7 ms line even at batch 1, and the advisor
        # reports that honestly instead of recommending a batch.
        rec = TuningAdvisor(JETSON).recommend_batch(vit_base)
        assert not rec.meets_target
        assert rec.batch_size is None
        assert rec.memory_limited_batch == 8

    def test_jetson_fallback_with_relaxed_target(self, vit_base):
        # With a 50 ms budget the advisor falls back to the largest
        # latency-feasible batch below the OOM limit.
        rec = TuningAdvisor(JETSON,
                            latency_target_seconds=0.05).recommend_batch(
            vit_base)
        assert rec.meets_target
        assert rec.batch_size is not None
        assert rec.batch_size <= 8

    def test_impossible_target_reports_failure(self, vit_base):
        advisor = TuningAdvisor(JETSON, latency_target_seconds=1e-5)
        rec = advisor.recommend_batch(vit_base)
        assert not rec.meets_target
        assert rec.batch_size is None

    def test_validation(self):
        with pytest.raises(ValueError):
            TuningAdvisor(A100, latency_target_seconds=0)
        with pytest.raises(ValueError):
            TuningAdvisor(A100, saturation_fraction=1.5)


class TestModelRecommendation:
    def test_rankings_cover_zoo(self):
        recs = TuningAdvisor(A100).recommend_model(
            get_dataset("plant_village"))
        assert len(recs) == 4

    def test_target_meeting_models_ranked_by_capacity(self):
        recs = TuningAdvisor(A100, latency_target_seconds=0.1
                             ).recommend_model(get_dataset("plant_village"))
        meeting = [r for r in recs if r.meets_target]
        assert meeting, "A100 should meet a 100 ms budget"
        # Largest capable model first: ViT Base ranks top when feasible.
        assert meeting[0].model == "vit_base"

    def test_failed_models_ranked_after_meeting(self):
        recs = TuningAdvisor(JETSON, latency_target_seconds=0.05
                             ).recommend_model(get_dataset("fruits_360"))
        flags = [r.meets_target for r in recs]
        assert flags == sorted(flags, reverse=True)

    def test_recommendations_carry_bottleneck(self):
        recs = TuningAdvisor(V100).recommend_model(
            get_dataset("plant_village"))
        assert all(r.bottleneck in ("preprocess", "engine") for r in recs)
