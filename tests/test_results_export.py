"""Tests for machine-readable exports and precision-scaled engines."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.core.results import ResultTable
from repro.core.study import CharacterizationStudy
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100, V100
from repro.hardware.precision import Precision


class TestResultTableExport:
    @pytest.fixture(scope="class")
    def table(self):
        return CharacterizationStudy().table3()

    def test_json_roundtrip(self, table):
        restored = ResultTable.from_json(table.to_json())
        assert restored.title == table.title
        assert restored.rows == json.loads(table.to_json())["rows"]
        assert len(restored.rows) == 4

    def test_csv_has_header_and_rows(self, table):
        lines = table.to_csv().strip().splitlines()
        assert lines[0].startswith("model,")
        assert len(lines) == 1 + 4

    def test_csv_parses_back(self, table):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(table.to_csv())))
        assert rows[0]["model"] == "ViT Tiny"
        assert float(rows[0]["paper_gflops_per_image"]) == 1.37

    def test_from_json_validates(self):
        with pytest.raises(ValueError):
            ResultTable.from_json('{"rows": []}')
        with pytest.raises(json.JSONDecodeError):
            ResultTable.from_json("{nope")

    def test_cli_structured_export(self, capsys):
        from repro.cli import main

        assert main(["report", "table2", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert "Plant Village" in out
        assert out.splitlines()[0].startswith("dataset,")

    def test_cli_export_to_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "t1.json"
        assert main(["report", "table1", "--format", "json",
                     "--out", str(target)]) == 0
        doc = json.loads(target.read_text())
        assert len(doc["rows"]) == 3


class TestPrecisionScaledEngine:
    def test_int8_doubles_a100_throughput(self, vit_small):
        base = LatencyModel(vit_small, A100)
        int8 = LatencyModel(vit_small, A100, precision=Precision.INT8)
        assert int8.throughput(64) == pytest.approx(
            2.0 * base.throughput(64))
        assert int8.latency(64) == pytest.approx(base.latency(64) / 2)

    def test_benchmark_precision_is_identity(self, vit_small):
        base = LatencyModel(vit_small, A100)
        explicit = LatencyModel(vit_small, A100,
                                precision=Precision.BF16)
        assert explicit.throughput(64) == pytest.approx(
            base.throughput(64))

    def test_fp32_slows_the_engine(self, resnet50):
        base = LatencyModel(resnet50, A100)
        fp32 = LatencyModel(resnet50, A100, precision=Precision.FP32)
        assert fp32.throughput(64) < 0.1 * base.throughput(64)

    def test_unsupported_precision_rejected(self, vit_small):
        with pytest.raises(ValueError):
            LatencyModel(vit_small, V100, precision=Precision.BF16)

    def test_point_scales_achieved_tflops(self, vit_small):
        int8 = LatencyModel(vit_small, A100, precision=Precision.INT8)
        base = LatencyModel(vit_small, A100)
        assert int8.point(64).achieved_tflops == pytest.approx(
            2 * base.point(64).achieved_tflops)

    def test_engine_facade_uses_requested_precision(self, vit_small):
        from repro.engine.engine import InferenceEngine

        bf16 = InferenceEngine(vit_small, A100)
        int8 = InferenceEngine(vit_small, A100,
                               precision=Precision.INT8)
        assert int8.infer(64).latency_seconds == pytest.approx(
            bf16.infer(64).latency_seconds / 2)


class TestTraceSvg:
    def test_renders_and_parses(self):
        from repro.serving.batcher import BatcherConfig
        from repro.serving.request import Request
        from repro.serving.server import ModelConfig, TritonLikeServer
        from repro.serving.tracing import trace_of
        from repro.viz.charts import render_trace_svg

        server = TritonLikeServer()
        server.register(ModelConfig("pre", lambda n: 0.002,
                                    batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig("mdl", lambda n: 0.004,
                                    batcher=BatcherConfig(enabled=False),
                                    preprocess_model="pre"))
        server.submit(Request("mdl"))
        [response] = server.run()
        svg = render_trace_svg(trace_of(response))
        root = ET.fromstring(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) == 1 + 2  # background + two spans

    def test_empty_trace_rejected(self):
        from repro.serving.tracing import RequestTrace
        from repro.viz.charts import render_trace_svg

        with pytest.raises(ValueError):
            render_trace_svg(RequestTrace(1, 0.0, 1.0, "ok", ()))
