"""Tests for repro.serving.fluid — the hybrid fluid/DES engine."""

import numpy as np
import pytest

from repro.serving.batcher import BatcherConfig
from repro.serving.faults import FaultModel
from repro.serving.fluid import FluidConfig, HybridReplayer
from repro.serving.server import ModelConfig, TritonLikeServer
from repro.serving.traces import ArrivalTrace, TraceReplayer, step_trace


def make_server(instances=2, max_batch=32):
    """A server whose capacity (~98 img/s) a step trace can saturate."""
    server = TritonLikeServer()
    server.register(ModelConfig(
        "crop", service_time=lambda n: 0.01 + 0.02 * n,
        batcher=BatcherConfig(max_batch_size=max_batch,
                              max_queue_delay=0.05),
        instances=instances))
    return server


def saturating_trace():
    """120 req/s for 200 s against ~98 req/s of capacity."""
    return step_trace(duration=600.0, base_rate=5.0, step_rate=120.0,
                      step_start=50.0, step_end=250.0, seed=3)


FLUID = FluidConfig(enter_queued_images=256, sustain_seconds=0.5,
                    exit_queued_images=32, min_fluid_arrivals=256)


class TestFluidConfig:
    def test_hysteresis_enforced(self):
        with pytest.raises(ValueError, match="hysteresis"):
            FluidConfig(enter_queued_images=64, exit_queued_images=64)

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            FluidConfig(enter_queued_images=0)
        with pytest.raises(ValueError):
            FluidConfig(exit_queued_images=-1)
        with pytest.raises(ValueError):
            FluidConfig(sustain_seconds=-0.1)
        with pytest.raises(ValueError):
            FluidConfig(min_fluid_arrivals=0)


class TestValidation:
    def test_unknown_model(self):
        with pytest.raises(KeyError):
            HybridReplayer(make_server(), "nope")

    def test_multi_stage_model_rejected(self):
        server = make_server()
        server.register(ModelConfig("pre", lambda n: 0.001))
        server.register(ModelConfig("two_stage", lambda n: 0.01,
                                    preprocess_model="pre"))
        with pytest.raises(ValueError, match="single-stage"):
            HybridReplayer(server, "two_stage")

    def test_faulty_model_rejected(self):
        server = make_server()
        server.inject_faults("crop",
                             FaultModel(failure_probability=0.5, seed=1))
        with pytest.raises(ValueError, match="fault"):
            HybridReplayer(server, "crop")

    def test_parameter_bounds(self):
        server = make_server()
        with pytest.raises(ValueError):
            HybridReplayer(server, "crop", images_per_request=0)
        with pytest.raises(ValueError):
            HybridReplayer(server, "crop", time_scale=0.0)

    def test_single_trace_per_replayer(self):
        server = make_server()
        replayer = HybridReplayer(server, "crop")
        trace = ArrivalTrace("t", (1.0,), duration=2.0)
        replayer.schedule(trace)
        with pytest.raises(RuntimeError, match="already"):
            replayer.schedule(trace)

    def test_empty_trace_schedules_nothing(self):
        replayer = HybridReplayer(make_server(), "crop")
        assert replayer.schedule(ArrivalTrace("t", (), 1.0)) is None


class TestRegimeController:
    def test_light_load_stays_exact(self):
        server = make_server()
        trace = step_trace(duration=120.0, base_rate=5.0, step_rate=20.0,
                           step_start=30.0, step_end=60.0, seed=1)
        replayer = HybridReplayer(server, "crop", config=FLUID)
        replayer.schedule(trace)
        server.run()
        assert replayer.intervals == []
        assert replayer.fluid_completed == 0
        assert len(server.responses) == len(trace)

    def test_saturation_triggers_fluid_entry(self):
        server = make_server()
        replayer = HybridReplayer(server, "crop", config=FLUID)
        trace = saturating_trace()
        replayer.schedule(trace)
        server.run()
        assert len(replayer.intervals) >= 1
        interval = replayer.intervals[0]
        assert interval.entered < interval.resumed
        assert interval.integrated_requests == replayer.fluid_completed
        assert interval.entry_backlog_images >= FLUID.enter_queued_images
        # The fluid stretch should own the bulk of the saturated window.
        assert replayer.fluid_completed > len(trace) // 2

    def test_sustain_guard_blocks_transient_spikes(self):
        server = make_server()
        config = FluidConfig(enter_queued_images=256, sustain_seconds=1e9,
                             exit_queued_images=32, min_fluid_arrivals=1)
        replayer = HybridReplayer(server, "crop", config=config)
        replayer.schedule(saturating_trace())
        server.run()
        assert replayer.intervals == []

    def test_short_tails_stay_exact(self):
        server = make_server()
        config = FluidConfig(enter_queued_images=256, sustain_seconds=0.0,
                             exit_queued_images=32,
                             min_fluid_arrivals=10 ** 9)
        replayer = HybridReplayer(server, "crop", config=config)
        replayer.schedule(saturating_trace())
        server.run()
        assert replayer.intervals == []


class TestConservationAndHandoff:
    def _run_hybrid(self, trace=None):
        server = make_server()
        replayer = HybridReplayer(server, "crop", config=FLUID)
        replayer.schedule(trace if trace is not None
                          else saturating_trace())
        server.run()
        return server, replayer

    def test_every_arrival_completes_exactly_once(self):
        server, replayer = self._run_hybrid()
        trace = saturating_trace()
        assert replayer.completed == len(trace)
        assert len(server.responses) + replayer.fluid_completed == \
            len(trace)
        assert all(r.ok for r in server.responses)

    def test_server_fully_drains_after_exit(self):
        server, replayer = self._run_hybrid()
        assert server.queue_depth() == 0
        assert server.busy_instances() == 0
        assert server.sim.peek_foreground_time() is None

    def test_metrics_fold_both_regimes(self):
        server, replayer = self._run_hybrid()
        trace = saturating_trace()
        metrics = server.metrics
        submitted = metrics.get("requests_submitted_total")
        responses = metrics.get("responses_total")
        latency = metrics.get("request_latency_seconds")
        assert submitted.value(model="crop") == len(trace)
        assert responses.value(model="crop", status="ok") == len(trace)
        assert latency.count(model="crop") == len(trace)

    def test_busy_time_is_integrated(self):
        server, replayer = self._run_hybrid()
        busy = sum(s.busy_seconds for s in server.instance_stats("crop"))
        # 200 s of overload across 2 instances: both near-fully busy.
        assert busy > 300.0

    def test_trace_ending_saturated_drains_virtually(self):
        # No post-step cooldown: the fluid stretch runs to the end of
        # the arrivals and the backlog drains analytically.
        trace = step_trace(duration=200.0, base_rate=5.0,
                           step_rate=120.0, step_start=20.0,
                           step_end=200.0, seed=5)
        server, replayer = self._run_hybrid(trace)
        assert replayer.completed == len(trace)
        interval = replayer.intervals[-1]
        assert interval.restored_requests == 0
        assert interval.resumed > trace.duration
        assert server.sim.peek_foreground_time() is None

    def test_latency_summary_counts_both_regimes(self):
        server, replayer = self._run_hybrid()
        summary = replayer.latency_summary()
        assert summary["count"] == replayer.completed
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["mean"] > 0


class TestParityWithExactDES:
    """The tentpole acceptance check: fluid vs exact on one trace."""

    def _parity_pair(self):
        trace = saturating_trace()
        exact = make_server()
        TraceReplayer(exact, "crop").schedule(trace)
        exact.run()
        hybrid = make_server()
        replayer = HybridReplayer(hybrid, "crop", config=FLUID)
        replayer.schedule(trace)
        hybrid.run()
        return trace, exact, replayer

    def test_throughput_is_exact(self):
        trace, exact, replayer = self._parity_pair()
        assert replayer.completed == len(exact.responses) == len(trace)

    def test_latency_quantiles_match_within_tolerance(self):
        trace, exact, replayer = self._parity_pair()
        des = np.array([r.latency for r in exact.responses if r.ok])
        summary = replayer.latency_summary()
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            assert summary[key] == pytest.approx(
                float(np.quantile(des, q)), rel=0.10), key
        assert summary["mean"] == pytest.approx(
            float(des.mean()), rel=0.10)


class TestRegimeObservability:
    def _run_saturated(self):
        server = make_server()
        replayer = HybridReplayer(server, "crop", config=FLUID)
        replayer.schedule(saturating_trace())
        server.run()
        return server, replayer

    def test_counters_track_intervals_and_folded_arrivals(self):
        server, replayer = self._run_saturated()
        metrics = server.metrics
        intervals = metrics.get("fluid_intervals_total")
        folded = metrics.get("fluid_folded_arrivals_total")
        assert intervals.value(model="crop") == len(replayer.intervals)
        # Every trace arrival either fired through the DES (submitted)
        # or was folded into a fluid stretch — the counter owns the
        # remainder exactly.
        total = len(saturating_trace())
        assert folded.value(model="crop") == total - replayer.submitted
        assert folded.value(model="crop") > 0

    def test_timeline_instants_bracket_every_interval(self):
        _, replayer = self._run_saturated()
        enters = replayer.timeline.find("fluid_enter")
        exits = replayer.timeline.find("fluid_exit")
        assert len(enters) == len(exits) == len(replayer.intervals)
        for enter, exit_, interval in zip(enters, exits,
                                          replayer.intervals):
            assert enter.start == pytest.approx(interval.entered)
            assert exit_.start == pytest.approx(interval.resumed)
            assert enter.args["backlog_images"] == \
                interval.entry_backlog_images
            assert exit_.args["integrated_requests"] == \
                interval.integrated_requests
            assert exit_.args["restored_requests"] == \
                interval.restored_requests

    def test_exact_run_keeps_zero_counters_and_empty_timeline(self):
        server = make_server()
        trace = step_trace(duration=120.0, base_rate=5.0,
                           step_rate=20.0, step_start=30.0,
                           step_end=60.0, seed=1)
        replayer = HybridReplayer(server, "crop", config=FLUID)
        replayer.schedule(trace)
        server.run()
        assert server.metrics.get(
            "fluid_intervals_total").value(model="crop") == 0
        assert replayer.timeline.find("fluid_enter") == []

    def test_render_regime_timeline_saturated(self):
        from repro.serving.fluid import render_regime_timeline

        _, replayer = self._run_saturated()
        text = render_regime_timeline(replayer)
        assert "regime timeline:" in text
        assert "#" in text
        assert "entered" in text and "restored" in text
        assert len(text.splitlines()) == 4 + len(replayer.intervals)

    def test_render_regime_timeline_exact_run(self):
        from repro.serving.fluid import render_regime_timeline

        server = make_server()
        replayer = HybridReplayer(server, "crop", config=FLUID)
        replayer.schedule(step_trace(duration=60.0, base_rate=5.0,
                                     step_rate=10.0, step_start=10.0,
                                     step_end=20.0, seed=1))
        server.run()
        assert "exact DES throughout" in render_regime_timeline(replayer)

    def test_render_regime_timeline_is_deterministic(self):
        from repro.serving.fluid import render_regime_timeline

        _, first = self._run_saturated()
        _, second = self._run_saturated()
        assert render_regime_timeline(first) == \
            render_regime_timeline(second)

    def test_render_width_validated(self):
        from repro.serving.fluid import render_regime_timeline

        _, replayer = self._run_saturated()
        with pytest.raises(ValueError):
            render_regime_timeline(replayer, width=5)
