"""Tests for repro.continuum.deployment — manifests and stack building."""

import pytest

from repro.continuum.deployment import (
    ManifestError,
    build_stack,
    load_manifest,
)
from repro.serving.request import Request


def valid_manifest(**overrides):
    doc = {
        "name": "station-a100",
        "platform": "a100",
        "scenario": "online",
        "models": [
            {"model": "vit_small", "dataset": "plant_village",
             "max_batch_size": 64, "max_queue_delay_ms": 2.0,
             "instances": 2},
        ],
    }
    doc.update(overrides)
    return doc


class TestValidation:
    def test_valid_manifest_loads(self):
        manifest = load_manifest(valid_manifest())
        assert manifest.platform_name == "A100"
        assert manifest.entries[0].model == "vit_small"
        assert manifest.entries[0].max_queue_delay == pytest.approx(
            0.002)

    def test_json_string_accepted(self):
        import json

        manifest = load_manifest(json.dumps(valid_manifest()))
        assert manifest.name == "station-a100"

    def test_invalid_json_rejected(self):
        with pytest.raises(ManifestError, match="JSON"):
            load_manifest("{nope")

    def test_missing_keys_rejected(self):
        doc = valid_manifest()
        del doc["platform"]
        with pytest.raises(ManifestError, match="platform"):
            load_manifest(doc)

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            load_manifest(valid_manifest(platform="h100"))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ManifestError, match="scenario"):
            load_manifest(valid_manifest(scenario="batch"))

    def test_scenario_platform_mismatch_rejected(self):
        doc = valid_manifest(scenario="real-time")  # on a cloud node
        with pytest.raises(ManifestError, match="edge"):
            load_manifest(doc)

    def test_offline_on_jetson_rejected(self):
        doc = valid_manifest(platform="jetson", scenario="offline")
        with pytest.raises(ManifestError):
            load_manifest(doc)

    def test_empty_models_rejected(self):
        with pytest.raises(ManifestError, match="no models"):
            load_manifest(valid_manifest(models=[]))

    def test_unknown_model_rejected(self):
        doc = valid_manifest(models=[{"model": "bert",
                                      "dataset": "plant_village"}])
        with pytest.raises(KeyError):
            load_manifest(doc)

    def test_memory_overcommit_rejected(self):
        doc = valid_manifest(platform="jetson", scenario="real-time",
                             models=[{"model": "vit_base",
                                      "dataset": "plant_village",
                                      "max_batch_size": 16}])
        with pytest.raises(ManifestError, match="memory"):
            load_manifest(doc)

    def test_cpu_crsa_in_real_time_rejected(self):
        doc = valid_manifest(
            platform="jetson", scenario="real-time",
            models=[{"model": "vit_tiny", "dataset": "crsa",
                     "max_batch_size": 4,
                     "gpu_preprocessing": False}])
        with pytest.raises(ManifestError, match="real-time"):
            load_manifest(doc)


class TestBuildStack:
    def test_stack_serves_requests_end_to_end(self):
        manifest = load_manifest(valid_manifest())
        server = build_stack(manifest)
        assert set(server.model_names()) == {"pre_vit_small",
                                             "vit_small"}
        for _ in range(10):
            server.submit(Request("vit_small"))
        responses = server.run()
        assert len(responses) == 10
        # Requests traversed both stages.
        assert any("pre_vit_small" in k
                   for k in responses[0].request.stage_times)

    def test_instances_respected(self):
        manifest = load_manifest(valid_manifest())
        server = build_stack(manifest)
        assert len(server.instance_stats("vit_small")) == 2

    def test_multiple_models_coexist(self):
        doc = valid_manifest(models=[
            {"model": "vit_small", "dataset": "plant_village"},
            {"model": "resnet50", "dataset": "corn_growth"},
        ])
        server = build_stack(load_manifest(doc))
        server.submit(Request("vit_small"))
        server.submit(Request("resnet50"))
        assert len(server.run()) == 2

    def test_jetson_real_time_stack(self):
        doc = {
            "name": "vehicle", "platform": "jetson",
            "scenario": "real-time",
            "models": [{"model": "vit_tiny", "dataset": "spittle_bug",
                        "max_batch_size": 8,
                        "max_queue_delay_ms": 2.0}],
        }
        server = build_stack(load_manifest(doc))
        server.submit(Request("vit_tiny"))
        [response] = server.run()
        assert response.ok
