"""Tests for repro.predict.placement — fleet bin packing."""

import pytest

from repro.hardware.platform import A100, JETSON
from repro.models.zoo import get_model
from repro.predict.placement import (
    ModelDemand,
    PlacementPlanner,
    PlacementPlan,
)


def demand(name, batch=64, load=1000.0):
    return ModelDemand(get_model(name).graph, batch, load)


class TestPlacement:
    def test_whole_zoo_fits_two_a100s(self):
        planner = PlacementPlanner(A100, max_devices=2)
        demands = [demand("vit_tiny", load=5000),
                   demand("vit_small", load=4000),
                   demand("vit_base", load=2000),
                   demand("resnet50", load=6000)]
        plan = planner.place(demands)
        assert not plan.unplaced
        assert plan.device_count <= 2
        placed = [m for d in plan.devices for m in d.models]
        assert sorted(placed) == ["resnet50", "vit_base", "vit_small",
                                  "vit_tiny"]

    def test_memory_budget_respected(self):
        planner = PlacementPlanner(A100, max_devices=4)
        plan = planner.place([demand("vit_base", load=1000)
                              for _ in range(3)])
        # Duplicate names end up on devices but memory stays in budget.
        for device in plan.devices:
            assert device.memory_bytes <= A100.usable_gpu_memory_bytes

    def test_compute_cap_forces_spreading(self):
        planner = PlacementPlanner(A100, max_devices=4, compute_cap=0.5)
        # Each demand claims ~all of half a device's ViT-Tiny capacity.
        capacity = 20000.0
        demands = [demand("vit_tiny", load=0.45 * capacity)
                   for _ in range(3)]
        plan = planner.place(demands)
        assert plan.device_count >= 2
        for device in plan.devices:
            assert device.compute_fraction <= 0.5 + 1e-9

    def test_fleet_cap_leaves_demands_unplaced(self):
        planner = PlacementPlanner(A100, max_devices=1, compute_cap=0.5)
        demands = [demand("vit_tiny", load=9500) for _ in range(3)]
        plan = planner.place(demands)
        assert plan.unplaced

    def test_oversized_engine_reported_unplaced(self):
        planner = PlacementPlanner(JETSON, max_devices=4)
        # ViT Base @BS16 exceeds the Jetson's memory (Fig. 5c boundary).
        plan = planner.place([ModelDemand(get_model("vit_base").graph,
                                          16, 100.0)])
        assert plan.unplaced == ("vit_base",)
        assert plan.device_count == 0

    def test_overdemand_single_model_unplaced(self):
        planner = PlacementPlanner(A100, compute_cap=0.8)
        # Offered load above a whole device's capacity for that model.
        plan = planner.place([demand("vit_base", load=1e6)])
        assert plan.unplaced == ("vit_base",)

    def test_device_of_lookup(self):
        planner = PlacementPlanner(A100, max_devices=2)
        plan = planner.place([demand("vit_tiny"), demand("resnet50")])
        assert plan.device_of("vit_tiny") is not None
        assert plan.device_of("missing") is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementPlanner(A100, max_devices=0)
        with pytest.raises(ValueError):
            PlacementPlanner(A100, compute_cap=0.0)
        with pytest.raises(ValueError):
            ModelDemand(get_model("vit_tiny").graph, 0, 1.0)
        with pytest.raises(ValueError):
            ModelDemand(get_model("vit_tiny").graph, 1, -1.0)
