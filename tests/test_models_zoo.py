"""Tests for repro.models.zoo and the Table 3 harness."""

import pytest

from repro.models.zoo import (
    MODEL_ORDER,
    MODEL_ZOO,
    get_model,
    list_models,
    table3_rows,
)


class TestRegistry:
    def test_four_models(self):
        assert set(MODEL_ZOO) == {"vit_tiny", "vit_small", "vit_base",
                                  "resnet50"}

    def test_lookup_case_insensitive(self):
        assert get_model("ViT_Tiny").name == "vit_tiny"

    def test_unknown_model_raises_with_options(self):
        with pytest.raises(KeyError, match="available"):
            get_model("efficientnet")

    def test_list_order_matches_table3(self):
        assert [e.name for e in list_models()] == list(MODEL_ORDER)

    def test_graph_is_cached(self):
        entry = get_model("vit_tiny")
        assert entry.graph is entry.graph

    def test_display_names(self):
        assert get_model("resnet50").display_name == "ResNet50"
        assert get_model("vit_base").display_name == "ViT Base"


class TestZooAgainstPaper:
    @pytest.mark.parametrize("name", list(MODEL_ORDER))
    def test_built_params_match_paper_column(self, name):
        entry = get_model(name)
        assert entry.graph.total_params() / 1e6 == pytest.approx(
            entry.paper_params_millions, rel=0.005)

    @pytest.mark.parametrize("name", list(MODEL_ORDER))
    def test_built_gflops_match_paper_column(self, name):
        entry = get_model(name)
        assert entry.graph.reported_gflops() == pytest.approx(
            entry.paper_gflops_per_image, rel=0.01)

    @pytest.mark.parametrize("name", list(MODEL_ORDER))
    def test_input_size_matches_paper(self, name):
        entry = get_model(name)
        assert entry.graph.input_shape[1] == entry.paper_input_size


class TestTable3Rows:
    def test_row_per_model(self):
        rows = table3_rows()
        assert [r["model"] for r in rows] == [
            "ViT Tiny", "ViT Small", "ViT Base", "ResNet50"]

    def test_upper_bounds_reproduce_paper(self):
        # Table 3 "Throughput UpperBound images/sec".
        paper = {
            ("ViT Tiny", "upper_bound_a100"): 172_508,
            ("ViT Small", "upper_bound_a100"): 43_214,
            ("ViT Base", "upper_bound_a100"): 14_013,
            ("ResNet50", "upper_bound_a100"): 57_775,
            ("ViT Tiny", "upper_bound_v100"): 67_602,
            ("ViT Small", "upper_bound_v100"): 16_935,
            ("ViT Base", "upper_bound_v100"): 5_491,
            ("ResNet50", "upper_bound_v100"): 22_641,
            ("ViT Tiny", "upper_bound_jetson"): 8_322,
            ("ViT Small", "upper_bound_jetson"): 2_085,
            ("ViT Base", "upper_bound_jetson"): 676,
            ("ResNet50", "upper_bound_jetson"): 2_787,
        }
        rows = {r["model"]: r for r in table3_rows()}
        for (model, column), expected in paper.items():
            assert rows[model][column] == pytest.approx(expected, rel=0.015), \
                f"{model} {column}"

    def test_rows_carry_paper_reference_values(self):
        row = table3_rows()[0]
        assert row["paper_params_millions"] == 5.39
        assert row["paper_gflops_per_image"] == 1.37
