"""Tests for repro.serving.events — the DES core."""

import pytest

from repro.serving.events import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.3, lambda: fired.append("c"))
        sim.schedule(0.1, lambda: fired.append("a"))
        sim.schedule(0.2, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(0.5, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(0.5, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [1.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(
            3.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="past"):
            Simulator().schedule(-0.1, lambda: None)


class TestRunControl:
    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run(until=1.5)
        assert fired == [1] and sim.now == 1.5
        sim.run()
        assert fired == [1, 2]

    def test_run_until_with_empty_heap_advances_clock(self):
        sim = Simulator()
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_runaway_loop_guard(self):
        sim = Simulator()

        def respawn():
            sim.schedule(0.0, respawn)

        sim.schedule(0.0, respawn)
        with pytest.raises(RuntimeError, match="self-scheduling"):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(0.1, lambda: None)
        sim.run()
        sim.cancel(event)  # must not raise

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(first)
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None


class TestDaemonEvents:
    def test_daemon_events_still_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.5, lambda: fired.append("d"), daemon=True)
        sim.run()
        assert fired == ["d"]

    def test_peek_foreground_skips_daemons(self):
        sim = Simulator()
        sim.schedule(0.1, lambda: None, daemon=True)
        assert sim.peek_time() == 0.1
        assert sim.peek_foreground_time() is None
        sim.schedule(0.7, lambda: None)
        assert sim.peek_foreground_time() == 0.7

    def test_peek_foreground_skips_cancelled(self):
        sim = Simulator()
        work = sim.schedule(0.3, lambda: None)
        sim.cancel(work)
        assert sim.peek_foreground_time() is None

    def test_two_control_loops_cannot_keep_each_other_alive(self):
        # Regression: two periodic loops re-arming "while events are
        # pending" each saw the other's tick and never drained the
        # heap.  Daemon ticks + peek_foreground_time break the cycle.
        sim = Simulator()

        def loop():
            if sim.peek_foreground_time() is not None:
                sim.schedule(0.25, loop, daemon=True)

        sim.schedule(0.25, loop, daemon=True)
        sim.schedule(0.25, loop, daemon=True)
        sim.schedule(1.0, lambda: None)  # the actual workload
        sim.run(max_events=100)  # raises if the loops self-sustain
        assert sim.now < 2.0


class TestDispatchEdgeCases:
    def test_cancel_mid_batch_keeps_foreground_accounting(self):
        # Two same-timestamp events: the first cancels the second after
        # both were popped into the dispatch batch.  The victim must not
        # fire and must be decremented from the foreground counter
        # exactly once (by the cancel, not again by the skip).
        sim = Simulator()
        fired = []
        holder = {}
        sim.schedule(1.0, lambda: sim.cancel(holder["victim"]))
        holder["victim"] = sim.schedule(
            1.0, lambda: fired.append("victim"))
        sim.schedule(2.0, lambda: fired.append("after"))
        sim.run()
        assert fired == ["after"]
        assert sim.peek_foreground_time() is None

    def test_max_events_requeues_unfired_tail(self):
        # Tripping the budget mid-batch must push the unfired tail back
        # on the heap (main and shadow state stay consistent) so the
        # simulation can resume after the post-mortem.
        sim = Simulator()
        fired = []
        for tag in "abcd":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=2)
        assert fired == ["a", "b"]
        assert sim.peek_foreground_time() == 1.0
        sim.run()
        assert fired == ["a", "b", "c", "d"]
        assert sim.peek_foreground_time() is None

    def test_peek_foreground_sees_same_time_siblings(self):
        # A callback asking "is there work" mid-batch must see its
        # same-timestamp sibling still waiting in the dispatch list.
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.peek_foreground_time()))
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert seen == [1.0]

    def test_peek_foreground_ignores_daemon_siblings(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.peek_foreground_time()))
        sim.schedule(1.0, lambda: None, daemon=True)
        sim.run()
        assert seen == [None]


class TestEventStream:
    def test_stream_interleaves_with_heap_events(self):
        sim = Simulator()
        order = []
        sim.add_stream([1.0, 3.0],
                       lambda i: order.append(("s", i, sim.now)))
        sim.schedule(2.0, lambda: order.append(("e", sim.now)))
        sim.run()
        assert order == [("s", 0, 1.0), ("e", 2.0), ("s", 1, 3.0)]

    def test_heap_wins_ties(self):
        sim = Simulator()
        order = []
        sim.add_stream([1.0], lambda i: order.append("stream"))
        sim.schedule(1.0, lambda: order.append("event"))
        sim.run()
        assert order == ["event", "stream"]

    def test_streams_tie_by_registration_order(self):
        sim = Simulator()
        order = []
        sim.add_stream([1.0], lambda i: order.append("first"))
        sim.add_stream([1.0], lambda i: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_until_pauses_and_resumes_inside_stream(self):
        sim = Simulator()
        fired = []
        sim.add_stream([1.0, 2.0, 3.0], lambda i: fired.append(i))
        sim.run(until=2.5)
        assert fired == [0, 1]
        assert sim.now == 2.5
        sim.run()
        assert fired == [0, 1, 2]

    def test_nondecreasing_enforced(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            Simulator().add_stream([2.0, 1.0], lambda i: None)

    def test_cannot_stream_into_the_past(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.add_stream([1.0], lambda i: None)

    def test_jump_skips_entries_and_keeps_accounting(self):
        sim = Simulator()
        fired = []
        stream = sim.add_stream([1.0, 2.0, 3.0, 4.0],
                                lambda i: fired.append(i))
        sim.schedule(1.5, lambda: stream.jump(3))
        sim.run()
        assert fired == [0, 3]
        assert sim.peek_foreground_time() is None

    def test_jump_past_the_end_clamps_and_stays_drained(self):
        sim = Simulator()
        fired = []
        stream = sim.add_stream([1.0, 2.0, 3.0],
                                lambda i: fired.append(i))
        sim.schedule(1.5, lambda: stream.jump(99))
        sim.run()
        assert fired == [0]
        assert stream.remaining == 0
        assert stream.peek_time() is None
        assert sim.peek_foreground_time() is None

    def test_jump_onto_a_heap_tie_lets_the_heap_event_win(self):
        sim = Simulator()
        order = []
        stream = sim.add_stream([1.0, 2.0, 3.0],
                                lambda i: order.append(("stream", i)))
        sim.schedule(3.0, lambda: order.append(("heap", None)))
        sim.schedule(1.5, lambda: stream.jump(2))
        sim.run()
        # The jump lands the cursor exactly on the 3.0 heap entry;
        # ties break toward the heap, then the stream fires at the
        # same timestamp.
        assert order == [("stream", 0), ("heap", None), ("stream", 2)]
        assert sim.now == 3.0

    def test_jump_backward_rejected(self):
        sim = Simulator()
        stream = sim.add_stream([1.0, 2.0], lambda i: None)
        sim.run()
        with pytest.raises(ValueError, match="backward"):
            stream.jump(0)

    def test_cancel_stops_remaining_firings(self):
        sim = Simulator()
        fired = []
        stream = sim.add_stream([1.0, 2.0], lambda i: fired.append(i))
        sim.schedule(1.5, stream.cancel)
        sim.run()
        assert fired == [0]
        assert stream.remaining == 0
        assert sim.peek_foreground_time() is None

    def test_daemon_stream_invisible_to_foreground_peek(self):
        sim = Simulator()
        stream = sim.add_stream([1.0, 2.0], lambda i: None, daemon=True)
        assert sim.peek_foreground_time() is None
        assert sim.peek_time() == 1.0
        sim.run()
        assert stream.remaining == 0

    def test_callback_scheduled_events_interleave(self):
        sim = Simulator()
        order = []

        def fire(i):
            if i == 0:
                sim.schedule(0.5, lambda: order.append("mid"))
            order.append(i)

        sim.add_stream([1.0, 2.0], fire)
        sim.run()
        assert order == [0, "mid", 1]
