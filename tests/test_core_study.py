"""Tests for repro.core.study — the full reproduction driver."""

import pytest

from repro.core.study import CharacterizationStudy


@pytest.fixture(scope="module")
def study():
    return CharacterizationStudy()


@pytest.fixture(scope="module")
def report(study):
    return study.run()


class TestIndividualTables:
    def test_table1_rows(self, study):
        table = study.table1()
        assert table.column("platform") == ["A100", "V100", "Jetson"]
        a100 = table.where(platform="A100").rows[0]
        assert a100["theory_tflops"] == 312.0
        assert a100["practical_tflops"] == pytest.approx(236.3, rel=0.02)

    def test_table2_rows(self, study):
        assert len(study.table2().rows) == 6

    def test_table3_rows(self, study):
        table = study.table3()
        assert len(table.rows) == 4
        assert "upper_bound_jetson" in table.columns

    def test_engine_scaling_covers_grid(self, study):
        table = study.engine_scaling()
        a100_tiny = table.where(platform="A100", model="vit_tiny")
        assert a100_tiny.column("batch_size")[-1] == 1024
        jetson_base = table.where(platform="Jetson", model="vit_base")
        assert jetson_base.column("batch_size")[-1] == 8

    def test_preprocessing_cells(self, study):
        table = study.preprocessing()
        assert len(table.rows) == 3 * 24

    def test_end_to_end_cells(self, study):
        table = study.end_to_end()
        assert len(table.rows) == 3 * 20
        assert set(table.column("bottleneck")) <= {"preprocess", "engine"}


class TestFullRun:
    def test_all_artifacts_present(self, report):
        assert set(report.tables) == {
            "table1", "table2", "table3", "fig5_6_engine",
            "fig7_preprocessing", "fig8_end_to_end"}

    def test_getitem(self, report):
        assert report["table1"].rows

    def test_render_produces_text(self, report):
        text = report.render()
        assert "Table 1" in text
        assert "Fig 8" in text
        assert len(text) > 1000
