"""Tests for repro.hardware.precision."""

import numpy as np
import pytest

from repro.hardware.precision import (
    PRECISION_BYTES,
    Precision,
    parse_precision,
)


class TestPrecisionBytes:
    def test_fp32_is_four_bytes(self):
        assert Precision.FP32.bytes == 4

    def test_fp16_and_bf16_are_two_bytes(self):
        assert Precision.FP16.bytes == 2
        assert Precision.BF16.bytes == 2

    def test_int8_is_one_byte(self):
        assert Precision.INT8.bytes == 1

    def test_tf32_stores_as_four_bytes(self):
        # TF32 is a compute format; storage stays 32-bit.
        assert Precision.TF32.bytes == 4

    def test_every_member_has_a_byte_width(self):
        assert set(PRECISION_BYTES) == set(Precision)


class TestNumpyDtypes:
    def test_fp16_maps_to_native_half(self):
        assert Precision.FP16.numpy_dtype == np.dtype(np.float16)

    def test_bf16_falls_back_to_float32(self):
        # NumPy has no bfloat16; the functional path computes in fp32.
        assert Precision.BF16.numpy_dtype == np.dtype(np.float32)

    def test_int8_fake_quantizes_in_float32(self):
        assert Precision.INT8.numpy_dtype == np.dtype(np.float32)


class TestIsReduced:
    def test_fp32_is_not_reduced(self):
        assert not Precision.FP32.is_reduced

    @pytest.mark.parametrize("precision", [
        Precision.FP16, Precision.BF16, Precision.INT8, Precision.TF32])
    def test_everything_else_is_reduced(self, precision):
        assert precision.is_reduced


class TestParsePrecision:
    def test_passthrough_of_enum(self):
        assert parse_precision(Precision.FP16) is Precision.FP16

    def test_lowercase_string(self):
        assert parse_precision("bf16") is Precision.BF16

    def test_uppercase_string(self):
        assert parse_precision("FP16") is Precision.FP16

    def test_unknown_format_raises_with_options(self):
        with pytest.raises(ValueError, match="unknown precision"):
            parse_precision("fp8")

    def test_non_string_raises(self):
        with pytest.raises(ValueError):
            parse_precision(16)
