"""Tests for repro.continuum.offload — edge/cloud placement decisions."""

import pytest

from repro.continuum.network import NetworkLink, get_link
from repro.continuum.offload import OffloadPolicy, Placement
from repro.hardware.platform import A100, JETSON


@pytest.fixture(scope="module")
def policy(vit_base):
    return OffloadPolicy(vit_base, JETSON, A100, get_link("farm_wifi"))


class TestDecisions:
    def test_small_payloads_offload_to_cloud(self, policy):
        decision = policy.decide(10e3)  # 10 kB thumbnail
        assert decision.placement is Placement.CLOUD
        assert decision.cloud_latency_seconds < \
            decision.edge_latency_seconds

    def test_large_payloads_stay_on_edge(self, policy):
        decision = policy.decide(25e6)  # raw 4K frame
        assert decision.placement is Placement.EDGE

    def test_chosen_latency_is_the_minimum(self, policy):
        for payload in (1e3, 1e5, 1e7):
            decision = policy.decide(payload)
            assert decision.chosen_latency_seconds == pytest.approx(min(
                decision.edge_latency_seconds,
                decision.cloud_latency_seconds))
            assert decision.margin_seconds >= 0

    def test_crossover_separates_the_regimes(self, policy):
        crossover = policy.crossover_image_bytes()
        assert crossover is not None
        below = policy.decide(crossover * 0.5)
        above = policy.decide(crossover * 2.0)
        assert below.placement is Placement.CLOUD
        assert above.placement is Placement.EDGE

    def test_at_crossover_latencies_match(self, policy):
        crossover = policy.crossover_image_bytes()
        decision = policy.decide(crossover)
        assert decision.edge_latency_seconds == pytest.approx(
            decision.cloud_latency_seconds, rel=1e-6)

    def test_decide_at_crossover_matches_its_documentation(self, policy):
        # Regression: the crossover is documented as the largest payload
        # at which uploading still wins, but decide() used to resolve
        # the boundary by raw float comparison — whichever way rounding
        # fell.  The tie must deterministically offload.
        crossover = policy.crossover_image_bytes()
        assert policy.decide(crossover).placement is Placement.CLOUD

    def test_exact_tie_breaks_toward_the_cloud(self, policy,
                                               monkeypatch):
        monkeypatch.setattr(policy, "edge_latency", lambda: 0.25)
        monkeypatch.setattr(policy, "cloud_latency",
                            lambda payload: 0.25)
        assert policy.decide(1e6).placement is Placement.CLOUD

    def test_near_tie_within_tolerance_offloads(self, policy,
                                                monkeypatch):
        monkeypatch.setattr(policy, "edge_latency", lambda: 0.25)
        # A few ULPs above the edge latency: still a tie, not a win.
        monkeypatch.setattr(policy, "cloud_latency",
                            lambda payload: 0.25 * (1.0 + 1e-12))
        assert policy.decide(1e6).placement is Placement.CLOUD

    def test_shared_uplink_contention_shifts_the_boundary(self,
                                                          vit_base):
        from repro.continuum.uplink import SharedUplink
        from repro.serving.events import Simulator

        sim = Simulator()
        uplink = SharedUplink(get_link("farm_wifi"), sim)
        policy = OffloadPolicy(vit_base, JETSON, A100, uplink)
        idle_cross = policy.crossover_image_bytes()
        # Saturate the bottleneck: the cloud path now pays fair-share
        # serialization, so the payload window that still offloads
        # shrinks.
        for _ in range(4):
            uplink.schedule_transfer(sim, 5e6, lambda: None)
        busy_cross = policy.crossover_image_bytes()
        assert busy_cross is None or busy_cross < idle_cross
        sim.run()
        assert policy.crossover_image_bytes() == pytest.approx(
            idle_cross)


class TestRegimeStructure:
    def test_slow_link_kills_the_cloud_option(self, vit_base):
        dialup = NetworkLink("dialup", bandwidth_bps=56e3,
                             round_trip_seconds=0.2)
        policy = OffloadPolicy(vit_base, JETSON, A100, dialup)
        assert policy.crossover_image_bytes() is None
        assert policy.decide(1e3).placement is Placement.EDGE

    def test_fast_model_on_edge_shrinks_the_cloud_window(self, vit_tiny,
                                                         vit_base):
        link = get_link("farm_wifi")
        heavy = OffloadPolicy(vit_base, JETSON, A100, link)
        light = OffloadPolicy(vit_tiny, JETSON, A100, link)
        heavy_cross = heavy.crossover_image_bytes()
        light_cross = light.crossover_image_bytes()
        # The light model runs fast locally, so uploading pays off only
        # for smaller payloads (if at all).
        assert light_cross is None or light_cross < heavy_cross

    def test_better_link_grows_the_cloud_window(self, vit_base):
        wifi = OffloadPolicy(vit_base, JETSON, A100,
                             get_link("farm_wifi"))
        ether = OffloadPolicy(vit_base, JETSON, A100,
                              get_link("station_ethernet"))
        assert ether.crossover_image_bytes() > \
            wifi.crossover_image_bytes()

    def test_sustainable_rate_is_the_uplink_ceiling(self, policy):
        rate = policy.sustainable_offload_rate(100e3)
        assert rate == pytest.approx(
            get_link("farm_wifi").sustainable_images_per_second(100e3))


class TestValidation:
    def test_bad_batches_rejected(self, vit_base):
        with pytest.raises(ValueError):
            OffloadPolicy(vit_base, JETSON, A100, get_link("farm_wifi"),
                          edge_batch=0)

    def test_negative_payload_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.cloud_latency(-1.0)
        with pytest.raises(ValueError):
            policy.sustainable_offload_rate(0.0)
