"""Tests for repro.hardware.roofline."""

import pytest

from repro.hardware.platform import A100, JETSON, V100
from repro.hardware.roofline import RooflineModel


class TestRoofline:
    def test_low_intensity_is_bandwidth_bound(self):
        model = RooflineModel(A100)
        point = model.attainable(1.0)  # 1 FLOP/byte: far left of ridge
        assert not point.compute_bound
        assert point.attainable_tflops == pytest.approx(
            A100.memory_bandwidth_gbps * 1e9 / 1e12)

    def test_high_intensity_is_compute_bound(self):
        model = RooflineModel(A100)
        point = model.attainable(10_000.0)
        assert point.compute_bound
        assert point.attainable_tflops == pytest.approx(
            A100.practical_tflops)

    def test_ridge_point_separates_regimes(self):
        model = RooflineModel(V100)
        ridge = model.ridge_point
        assert not model.attainable(ridge * 0.5).compute_bound
        assert model.attainable(ridge * 2.0).compute_bound

    def test_attainable_is_monotone_then_flat(self):
        model = RooflineModel(JETSON)
        values = [model.attainable(i).attainable_tflops
                  for i in (1, 10, 100, 1000, 10000)]
        assert values == sorted(values)
        assert values[-1] == values[-2]  # plateau reached

    def test_precision_scales_the_ceiling(self):
        # INT8 peak is 2x BF16 peak on the A100; the practical ceiling
        # scales with it.
        bf16 = RooflineModel(A100, "bf16")
        int8 = RooflineModel(A100, "int8")
        assert int8.compute_ceiling_tflops == pytest.approx(
            2.0 * bf16.compute_ceiling_tflops)

    def test_unsupported_precision_raises(self):
        with pytest.raises(KeyError):
            RooflineModel(V100, "bf16")

    def test_nonpositive_intensity_rejected(self):
        with pytest.raises(ValueError):
            RooflineModel(A100).attainable(0.0)

    def test_model_intensity_helper(self):
        model = RooflineModel(A100)
        assert model.model_intensity(100.0, 50.0) == 2.0
        with pytest.raises(ValueError):
            model.model_intensity(100.0, 0.0)

    def test_sweep_matches_pointwise(self):
        model = RooflineModel(A100)
        intensities = [0.5, 5.0, 50.0]
        swept = model.sweep(intensities)
        assert [p.attainable_tflops for p in swept] == [
            model.attainable(i).attainable_tflops for i in intensities]

    def test_edge_device_has_lower_ridge_than_cloud(self):
        # The Jetson's compute/bandwidth balance sits at a higher ridge
        # (lower bandwidth relative to compute) - verify ridges computed.
        a100 = RooflineModel(A100).ridge_point
        jetson = RooflineModel(JETSON).ridge_point
        assert a100 > 0 and jetson > 0
