"""Tests for repro.training — probes, self-training, the frontier."""

import numpy as np
import pytest

from repro.data.synthetic import synth_labeled_images
from repro.training.features import FeatureExtractor
from repro.training.linear_probe import (
    LinearProbe,
    train_test_split,
)
from repro.training.pseudo_label import self_training
from repro.training.tradeoff import FrontierPoint, pareto_front


def gaussian_blobs(n, classes, dim, separation, rng):
    """Fast synthetic features: class-centered gaussians."""
    centers = rng.standard_normal((classes, dim)) * separation
    labels = rng.integers(0, classes, size=n)
    x = centers[labels] + rng.standard_normal((n, dim))
    return x.astype(np.float64), labels


class TestTrainTestSplit:
    def test_partition_covers_everything(self, rng):
        x, y = gaussian_blobs(50, 3, 4, 2.0, rng)
        xtr, ytr, xte, yte = train_test_split(x, y, 0.2, rng)
        assert xtr.shape[0] + xte.shape[0] == 50
        assert ytr.shape[0] == xtr.shape[0]

    def test_validation(self, rng):
        x, y = gaussian_blobs(10, 2, 4, 2.0, rng)
        with pytest.raises(ValueError):
            train_test_split(x, y, 0.0, rng)
        with pytest.raises(ValueError):
            train_test_split(x, y[:5], 0.3, rng)


class TestLinearProbe:
    def test_learns_separable_blobs(self, rng):
        x, y = gaussian_blobs(300, 4, 16, 4.0, rng)
        xtr, ytr, xte, yte = train_test_split(x, y, 0.3, rng)
        probe = LinearProbe(16, 4, epochs=300)
        result = probe.fit(xtr, ytr, xte, yte)
        assert result.test_accuracy > 0.95

    def test_chance_level_on_pure_noise(self, rng):
        x = rng.standard_normal((400, 8))
        y = rng.integers(0, 4, size=400)
        xtr, ytr, xte, yte = train_test_split(x, y, 0.5, rng)
        probe = LinearProbe(8, 4, epochs=100)
        result = probe.fit(xtr, ytr, xte, yte)
        assert result.test_accuracy < 0.5  # near 0.25 chance

    def test_loss_decreases(self, rng):
        x, y = gaussian_blobs(200, 3, 8, 2.0, rng)
        probe = LinearProbe(8, 3, epochs=50)
        probe.fit(x, y)
        assert probe.loss_history[-1] < probe.loss_history[0]

    def test_early_stopping_on_plateau(self, rng):
        x, y = gaussian_blobs(100, 2, 4, 10.0, rng)
        probe = LinearProbe(4, 2, epochs=5000)
        result = probe.fit(x, y, tolerance=1e-5)
        assert result.epochs_run < 5000

    def test_deterministic(self, rng):
        x, y = gaussian_blobs(100, 3, 8, 2.0, rng)
        a = LinearProbe(8, 3, seed=5)
        b = LinearProbe(8, 3, seed=5)
        a.fit(x, y)
        b.fit(x, y)
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_predict_proba_rows_sum_to_one(self, rng):
        x, y = gaussian_blobs(50, 3, 8, 2.0, rng)
        probe = LinearProbe(8, 3, epochs=10)
        probe.fit(x, y)
        np.testing.assert_allclose(probe.predict_proba(x).sum(axis=1),
                                   1.0, rtol=1e-9)

    def test_weight_decay_shrinks_weights(self, rng):
        x, y = gaussian_blobs(200, 3, 8, 3.0, rng)
        free = LinearProbe(8, 3, weight_decay=0.0, epochs=200)
        decayed = LinearProbe(8, 3, weight_decay=0.1, epochs=200)
        free.fit(x, y)
        decayed.fit(x, y)
        assert np.linalg.norm(decayed.weight) < np.linalg.norm(
            free.weight)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LinearProbe(0, 3)
        with pytest.raises(ValueError):
            LinearProbe(4, 1)
        probe = LinearProbe(4, 3)
        x, y = gaussian_blobs(10, 3, 4, 2.0, rng)
        with pytest.raises(ValueError, match="features"):
            probe.fit(x[:, :2], y)
        with pytest.raises(ValueError, match="class range"):
            probe.fit(x, y + 5)


class TestSelfTraining:
    def _task(self, rng, separation=2.2):
        x, y = gaussian_blobs(500, 3, 12, separation, rng)
        return (x[:15], y[:15],          # tiny labeled set
                x[15:350], y[15:350],    # unlabeled pool (truth held)
                x[350:], y[350:])        # test set

    def test_pseudo_labels_improve_a_weak_baseline(self):
        rng = np.random.default_rng(7)
        x_l, y_l, x_u, y_u, x_t, y_t = self._task(rng)
        result = self_training(x_l, y_l, x_u, x_t, y_t, classes=3,
                               y_unlabeled_true=y_u, confidence=0.85)
        assert result.pseudo_labels_used > 50
        assert result.final_accuracy >= result.baseline_accuracy - 0.02
        assert result.pseudo_label_precision > 0.7

    def test_no_confident_samples_stops_early(self):
        rng = np.random.default_rng(8)
        # Pure noise with a strongly regularized (underfit) head: the
        # posterior stays near uniform, so nothing crosses the bar.
        x = rng.standard_normal((200, 8))
        y = rng.integers(0, 4, size=200)
        result = self_training(
            x[:20], y[:20], x[20:150], x[150:], y[150:], classes=4,
            confidence=0.95,
            probe_kwargs={"weight_decay": 5.0, "epochs": 50})
        assert result.pseudo_labels_used == 0
        assert result.rounds_run == 0

    def test_validation(self, rng):
        x, y = gaussian_blobs(30, 2, 4, 2.0, rng)
        with pytest.raises(ValueError):
            self_training(x[:5], y[:5], x[5:20], x[20:], y[20:], 2,
                          confidence=0.3)
        with pytest.raises(ValueError):
            self_training(x[:5], y[:5], x[5:20], x[20:], y[20:], 2,
                          rounds=0)


class TestFeatureExtractor:
    def test_embeddings_standardized(self, rng):
        images, _ = synth_labeled_images(8, 2, 32, rng)
        extractor = FeatureExtractor("vit_tiny")
        features = extractor.extract(list(images))
        assert features.shape == (8, 192)
        np.testing.assert_allclose(features.mean(axis=0), 0.0, atol=1e-4)

    def test_feature_dims_match_architecture(self):
        assert FeatureExtractor("vit_tiny").feature_dim == 192
        assert FeatureExtractor("vit_small").feature_dim == 384

    def test_preprocessing_resizes_arbitrary_captures(self, rng):
        images, _ = synth_labeled_images(2, 2, 56, rng)
        extractor = FeatureExtractor("vit_tiny")
        batch = extractor.preprocess(list(images))
        assert batch.shape == (2, 3, 32, 32)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor("vit_tiny").extract([])

    def test_features_separate_synthetic_classes(self, rng):
        # The end-to-end claim behind the fine-tuning story: frozen
        # random-backbone features keep the synthetic class signal
        # linearly separable.
        images, labels = synth_labeled_images(48, 2, 32, rng,
                                              signal_strength=1.0)
        features = FeatureExtractor("vit_tiny").extract(list(images))
        xtr, ytr, xte, yte = train_test_split(
            features, labels, 0.33, np.random.default_rng(3))
        probe = LinearProbe(192, 2, epochs=300)
        result = probe.fit(xtr, ytr, xte, yte)
        assert result.test_accuracy >= 0.75


class TestParetoFront:
    def _point(self, model, acc, lat):
        return FrontierPoint(model, 0, acc, lat, 1.0 / lat, 1, 0.0)

    def test_dominated_points_removed(self):
        points = [
            self._point("fast_bad", acc=0.6, lat=0.01),
            self._point("slow_good", acc=0.9, lat=0.10),
            self._point("dominated", acc=0.5, lat=0.20),
        ]
        front = pareto_front(points)
        assert [p.model for p in front] == ["fast_bad", "slow_good"]

    def test_single_point_is_the_front(self):
        points = [self._point("only", 0.8, 0.05)]
        assert pareto_front(points) == points

    def test_front_sorted_by_latency(self):
        points = [
            self._point("b", acc=0.9, lat=0.2),
            self._point("a", acc=0.7, lat=0.1),
        ]
        front = pareto_front(points)
        assert [p.model for p in front] == ["a", "b"]
