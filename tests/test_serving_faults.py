"""Failure-injection tests: faults, retries, and backpressure."""

from collections import Counter

import pytest

from repro.serving.batcher import BatcherConfig, QueueFullError
from repro.serving.faults import FaultModel
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


class TestFaultModel:
    def test_probability_zero_never_fails(self):
        model = FaultModel(0.0)
        assert not any(model.draw_failure() for _ in range(100))

    def test_probability_one_always_fails(self):
        model = FaultModel(1.0)
        assert all(model.draw_failure() for _ in range(10))
        assert model.injected == 10

    def test_deterministic_given_seed(self):
        a = [FaultModel(0.5, seed=3).draw_failure() for _ in range(1)]
        b = [FaultModel(0.5, seed=3).draw_failure() for _ in range(1)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(1.5)
        with pytest.raises(ValueError):
            FaultModel(0.5, detect_seconds=-1)


def faulty_server(prob, retries, detect=0.05, seed=1, **batcher_kw):
    server = TritonLikeServer()
    server.register(ModelConfig(
        "m", lambda n: 0.01,
        batcher=BatcherConfig(enabled=False, **batcher_kw),
        fault_model=FaultModel(prob, detect_seconds=detect, seed=seed),
        max_retries=retries))
    return server


class TestRetries:
    def test_transient_faults_recovered_by_retry(self):
        server = faulty_server(prob=0.3, retries=3)
        for _ in range(100):
            server.submit(Request("m"))
        responses = server.run()
        statuses = Counter(r.status for r in responses)
        assert statuses["ok"] >= 95  # 0.3^4 residual failure odds
        assert len(responses) == 100

    def test_zero_retries_fail_fast(self):
        server = faulty_server(prob=1.0, retries=0)
        server.submit(Request("m"))
        [response] = server.run()
        assert response.status == "failed"

    def test_failed_requests_counted_not_lost(self):
        server = faulty_server(prob=1.0, retries=2)
        for _ in range(10):
            server.submit(Request("m"))
        responses = server.run()
        assert len(responses) == 10
        assert all(r.status == "failed" for r in responses)

    def test_detection_window_adds_latency(self):
        # A single fault + successful retry costs ~detect + service.
        server = faulty_server(prob=1.0, retries=1, detect=0.2)
        # Force exactly one failure by flipping the model after start:
        server._models["m"].fault_model.failure_probability = 1.0
        server.submit(Request("m"))

        def clear():  # after the first failure, stop injecting
            server._models["m"].fault_model.failure_probability = 0.0

        server.sim.schedule(0.1, clear)
        [response] = server.run()
        assert response.status == "ok"
        assert response.latency == pytest.approx(0.2 + 0.01, abs=1e-6)

    def test_failure_stats_recorded(self):
        server = faulty_server(prob=1.0, retries=0)
        server.submit(Request("m"))
        server.run()
        [stats] = server.instance_stats("m")
        assert stats.failures == 1
        assert stats.batches_served == 0

    def test_fault_time_counts_toward_utilization(self):
        # Regression: a failed execution occupies the instance for the
        # whole detection window; before the fix that time vanished
        # from the stats, so fault injection *lowered* reported
        # utilization while the instance was actually saturated.
        server = faulty_server(prob=1.0, retries=0, detect=0.2)
        server.submit(Request("m"))
        server.run()
        [stats] = server.instance_stats("m")
        assert stats.fault_seconds == pytest.approx(0.2)
        assert stats.busy_seconds == 0.0
        # The slot was occupied for the entire elapsed window.
        assert stats.utilization(server.sim.now) == pytest.approx(1.0)

    def test_mixed_run_accounts_both_components(self):
        # One failed attempt (0.2 s detection) + one successful retry
        # (0.01 s service): both occupy the instance.
        server = faulty_server(prob=1.0, retries=1, detect=0.2)
        server.submit(Request("m"))

        def clear():
            server._models["m"].fault_model.failure_probability = 0.0

        server.sim.schedule(0.1, clear)
        [response] = server.run()
        assert response.status == "ok"
        [stats] = server.instance_stats("m")
        assert stats.fault_seconds == pytest.approx(0.2)
        assert stats.busy_seconds == pytest.approx(0.01)
        assert stats.utilization(server.sim.now) == pytest.approx(1.0)


class TestBackpressure:
    def test_bounded_queue_rejects_overflow(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 1.0,
            batcher=BatcherConfig(enabled=False, max_queue_size=3)))
        for _ in range(10):
            server.submit(Request("m"))
        responses = server.run()
        statuses = Counter(r.status for r in responses)
        # 1 executing + 3 queued survive the initial burst; the rest
        # bounce immediately.
        assert statuses["rejected"] == 6
        assert statuses["ok"] == 4

    def test_rejections_complete_instantly(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 1.0,
            batcher=BatcherConfig(enabled=False, max_queue_size=1)))
        for _ in range(5):
            server.submit(Request("m"))
        responses = server.run()
        rejected = [r for r in responses if r.status == "rejected"]
        assert rejected
        assert all(r.latency == 0.0 for r in rejected)

    def test_unbounded_queue_never_rejects(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.001,
            batcher=BatcherConfig(enabled=False)))
        for _ in range(100):
            server.submit(Request("m"))
        assert all(r.ok for r in server.run())

    def test_queue_full_error_direct(self):
        from repro.serving.batcher import DynamicBatcher

        batcher = DynamicBatcher(BatcherConfig(max_queue_size=2))
        batcher.enqueue(Request("m"), now=0.0)
        batcher.enqueue(Request("m"), now=0.0)
        with pytest.raises(QueueFullError, match="full"):
            batcher.enqueue(Request("m"), now=0.0)

    def test_multi_image_request_counts_against_limit(self):
        from repro.serving.batcher import DynamicBatcher

        batcher = DynamicBatcher(BatcherConfig(max_queue_size=4))
        batcher.enqueue(Request("m", num_images=3), now=0.0)
        with pytest.raises(QueueFullError):
            batcher.enqueue(Request("m", num_images=2), now=0.0)


class TestEnsembleFaultInteraction:
    def test_consumer_failure_fails_the_request_once(self):
        from repro.serving.server import EnsembleConfig

        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", lambda n: 0.01, batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "good", lambda n: 0.01, batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "bad", lambda n: 0.01, batcher=BatcherConfig(enabled=False),
            fault_model=FaultModel(1.0, seed=2), max_retries=0))
        server.register_ensemble(EnsembleConfig("e", "pre",
                                                ("good", "bad")))
        server.submit(Request("e"))
        responses = server.run()
        assert len(responses) == 1
        assert responses[0].status == "failed"
