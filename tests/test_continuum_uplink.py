"""Tests for repro.continuum.uplink — fair sharing and buffering."""

import pytest

from repro.continuum.network import NetworkLink
from repro.continuum.uplink import SharedUplink, StoreAndForward
from repro.serving.events import Simulator
from repro.serving.faults import LinkOutageModel
from repro.serving.observability import MetricsRegistry
from repro.serving.tracectx import TraceContext


def clean_link(bandwidth_bps=8e6, rtt=0.0):
    """A deterministic link: no overhead, jitter, or loss."""
    return NetworkLink("bottleneck", bandwidth_bps=bandwidth_bps,
                       round_trip_seconds=rtt, overhead_factor=1.0)


MB = 1e6  # 1 MB = 8 Mb = 1 s solo at 8 Mbps on clean_link()


class TestFairSharing:
    def test_solo_transfer_matches_the_bare_link(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        done = []
        uplink.schedule_transfer(sim, MB, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]

    def test_two_concurrent_transfers_halve_the_rate(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        done = []
        for _ in range(2):
            uplink.schedule_transfer(sim, MB,
                                     lambda: done.append(sim.now))
        sim.run()
        # Each flow gets 4 Mbps, so both 1 s transfers take 2 s.
        assert done == [pytest.approx(2.0)] * 2
        assert uplink.peak_concurrency == 2
        assert uplink.completed == 2

    def test_staggered_arrival_integrates_event_by_event(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        done = {}
        sim.schedule_at(0.0, lambda: uplink.schedule_transfer(
            sim, MB, lambda: done.setdefault("a", sim.now)))
        sim.schedule_at(0.5, lambda: uplink.schedule_transfer(
            sim, MB, lambda: done.setdefault("b", sim.now)))
        sim.run()
        # a: 0.5 s solo (4 Mb done) + 1 s shared (4 Mb) -> t=1.5;
        # b: 1 s shared (4 Mb) + 0.5 s solo (4 Mb) -> t=2.0.
        assert done["a"] == pytest.approx(1.5)
        assert done["b"] == pytest.approx(2.0)

    def test_contention_widens_the_traced_spans(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        traces = [TraceContext(i) for i in (1, 2)]
        for trace in traces:
            uplink.schedule_transfer(sim, MB, lambda: None, trace=trace)
        sim.run()
        solo = clean_link().transfer_seconds(MB)
        for trace in traces:
            span = trace.find("uplink")[0]
            assert span.end is not None
            assert span.duration == pytest.approx(2.0 * solo)
        # The second submission saw one flow already on the wire.
        depths = [t.find("uplink")[0].args["queue_depth"]
                  for t in traces]
        assert depths == [0, 1]

    def test_pricing_reflects_current_contention(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        idle = uplink.transfer_seconds(MB)
        assert idle == pytest.approx(clean_link().transfer_seconds(MB))
        uplink.schedule_transfer(sim, MB, lambda: None)
        assert uplink.transfer_seconds(MB) == pytest.approx(2.0 * idle)
        sim.run()
        assert uplink.transfer_seconds(MB) == pytest.approx(idle)

    def test_downlink_bypasses_the_bottleneck(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        done = []
        uplink.schedule_transfer(sim, MB, lambda: done.append(
            ("up", sim.now)))
        uplink.schedule_transfer(sim, MB, lambda: done.append(
            ("down", sim.now)), direction="downlink")
        sim.run()
        # The downlink leg rides the bare link (1 s) while the uplink
        # still had the wire to itself after it -> no mutual slowdown.
        assert dict(done) == {"up": pytest.approx(1.0),
                              "down": pytest.approx(1.0)}

    def test_same_seed_is_byte_identical(self):
        link = NetworkLink("lossy", bandwidth_bps=8e6,
                           round_trip_seconds=0.04, overhead_factor=1.0,
                           jitter_seconds=0.01, loss_probability=0.05)

        def run(seed):
            sim = Simulator()
            uplink = SharedUplink(link, sim, seed=seed)
            done = []
            for index in range(10):
                sim.schedule_at(index * 0.2,
                                lambda: uplink.schedule_transfer(
                                    sim, 200e3,
                                    lambda: done.append(sim.now)))
            sim.run()
            return done, uplink.total_retransmits

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_validation(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        with pytest.raises(ValueError):
            uplink.schedule_transfer(Simulator(), MB, lambda: None)
        with pytest.raises(ValueError):
            uplink.schedule_transfer(sim, -1.0, lambda: None)


class TestCancellation:
    def test_cancel_mid_serialization_speeds_up_the_rest(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        done = []
        trace = TraceContext(1)
        victim = uplink.schedule_transfer(sim, MB, lambda: done.append(
            "victim"), trace=trace)
        uplink.schedule_transfer(sim, MB,
                                 lambda: done.append(sim.now))
        sim.schedule_at(1.0, victim.cancel)
        sim.run()
        # Survivor: 1 s at half rate (4 Mb) + 0.5 s solo -> t=1.5.
        assert done == [pytest.approx(1.5)]
        assert victim.cancelled and not victim.fired
        span = trace.find("uplink")[0]
        assert span.end is not None
        assert span.args["cancelled"] is True
        assert [s for s in trace.children() if s.end is None] == []

    def test_cancel_during_propagation(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(rtt=1.0), sim)
        done = []
        handle = uplink.schedule_transfer(sim, MB,
                                          lambda: done.append(sim.now))
        # Serialization ends at t=1.0; delivery at 1.5.  Cancel between.
        sim.schedule_at(1.2, handle.cancel)
        sim.run()
        assert done == []
        assert handle.cancelled

    def test_cancel_after_delivery_is_a_noop(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        done = []
        handle = uplink.schedule_transfer(sim, MB,
                                          lambda: done.append(sim.now))
        sim.run()
        handle.cancel()
        assert handle.fired and not handle.cancelled
        assert len(done) == 1


class TestStoreAndForward:
    def test_outage_delays_instead_of_dropping(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        buffer = StoreAndForward(
            uplink, sim, outage=LinkOutageModel(windows=((1.0, 3.0),)))
        buffer.start(horizon=10.0)
        done = {}
        for name, at in (("before", 0.0), ("during", 1.5),
                         ("during2", 2.0)):
            sim.schedule_at(at, lambda n=name: buffer.schedule_transfer(
                sim, 100e3, lambda n=n: done.setdefault(n, sim.now)))
        sim.run()
        assert done["before"] == pytest.approx(0.1)
        # Parked until t=3.0, then both drain (fair-shared: 0.2 s).
        assert done["during"] == pytest.approx(3.2)
        assert done["during2"] == pytest.approx(3.2)
        assert buffer.outages == 1
        assert buffer.buffered_total == 2
        assert buffer.max_buffer_depth == 2
        assert buffer.dropped == 0

    def test_buffered_wait_is_traced(self):
        sim = Simulator()
        buffer = StoreAndForward(
            clean_link(), sim,
            outage=LinkOutageModel(windows=((0.0, 2.0),)))
        buffer.start(horizon=5.0)
        trace = TraceContext(1)
        done = []
        sim.schedule_at(0.5, lambda: buffer.schedule_transfer(
            sim, MB, lambda: done.append(sim.now), trace=trace))
        sim.run()
        wait = trace.find("store_and_forward")[0]
        assert wait.duration == pytest.approx(1.5)  # parked 0.5 -> 2
        leg = trace.find("uplink")[0]
        assert leg.start == pytest.approx(2.0)
        assert done == [pytest.approx(3.0)]

    def test_full_buffer_tail_drops(self):
        sim = Simulator()
        buffer = StoreAndForward(clean_link(), sim,
                                 capacity_bytes=150e3)
        buffer.fail()
        trace = TraceContext(1)
        kept = buffer.schedule_transfer(sim, 100e3, lambda: None)
        lost = buffer.schedule_transfer(sim, 100e3, lambda: None,
                                        trace=trace)
        assert kept is not None
        assert lost is None
        assert buffer.dropped == 1
        assert trace.find("store_and_forward_drop")
        assert [s for s in trace.children() if s.end is None] == []

    def test_cancel_parked_entry_frees_capacity(self):
        sim = Simulator()
        buffer = StoreAndForward(clean_link(), sim,
                                 capacity_bytes=150e3)
        buffer.fail()
        done = []
        parked = buffer.schedule_transfer(sim, 100e3,
                                          lambda: done.append("a"))
        parked.cancel()
        assert parked.cancelled
        assert buffer.buffer_depth == 0
        # The freed capacity admits the next transfer.
        assert buffer.schedule_transfer(sim, 100e3,
                                        lambda: done.append("b")) \
            is not None
        buffer.restore()
        sim.run()
        assert done == ["b"]

    def test_explicit_fail_restore_cycle(self):
        sim = Simulator()
        buffer = StoreAndForward(clean_link(), sim)
        buffer.fail()
        buffer.fail()  # idempotent
        assert buffer.outages == 1
        done = []
        buffer.schedule_transfer(sim, 100e3, lambda: done.append(1))
        buffer.restore()
        buffer.restore()  # idempotent
        sim.run()
        assert done == [1]

    def test_pricing_delegates_to_the_transport(self):
        sim = Simulator()
        uplink = SharedUplink(clean_link(), sim)
        buffer = StoreAndForward(uplink, sim)
        assert buffer.transfer_seconds(MB) == \
            uplink.transfer_seconds(MB)
        assert buffer.sustainable_images_per_second(MB) == \
            uplink.sustainable_images_per_second(MB)
        assert buffer.name == "bottleneck"
        with pytest.raises(ValueError):
            StoreAndForward(uplink, sim, capacity_bytes=0)


class TestTelemetry:
    def test_link_metrics_flow_through_the_stack(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        link = NetworkLink("lossy", bandwidth_bps=8e6,
                           round_trip_seconds=0.0, overhead_factor=1.0,
                           loss_probability=0.2)
        uplink = SharedUplink(link, sim, seed=0, registry=registry)
        for _ in range(5):
            uplink.schedule_transfer(sim, MB, lambda: None)
        sim.run()
        bytes_total = registry.counter("link_bytes_total")
        assert bytes_total.value(link="lossy", direction="uplink") == \
            pytest.approx(5 * MB)
        retx = registry.counter("link_retransmits_total")
        assert retx.value(link="lossy") == uplink.total_retransmits
        assert uplink.total_retransmits > 0
        depth = registry.gauge("link_queue_depth")
        assert depth.value(link="lossy", component="uplink") == 0.0


class TestWhatifFairShare:
    def test_fair_share_divides_the_link_ceiling(self):
        from repro.continuum.network import get_link
        from repro.predict.whatif import uplink_fair_share_rate

        link = get_link("field_lte")
        solo = link.sustainable_images_per_second(256e3)
        assert uplink_fair_share_rate(link, 1, 256e3) == \
            pytest.approx(solo)
        assert uplink_fair_share_rate(link, 4, 256e3) == \
            pytest.approx(solo / 4)
        with pytest.raises(ValueError):
            uplink_fair_share_rate(link, 0, 256e3)

    def test_loss_discounts_the_ceiling(self):
        from repro.continuum.network import get_link
        from repro.predict.whatif import uplink_fair_share_rate

        clean = uplink_fair_share_rate(get_link("field_lte"), 4, 256e3)
        lossy = uplink_fair_share_rate(get_link("field_lte_lossy"), 4,
                                       256e3)
        assert lossy < clean


class TestLinkOutageModel:
    def test_explicit_windows_clip_to_horizon(self):
        model = LinkOutageModel(windows=((1.0, 3.0), (8.0, 20.0)))
        assert model.windows_until(10.0) == [(1.0, 3.0), (8.0, 10.0)]
        assert model.windows_until(0.5) == []

    def test_sampled_windows_are_seed_deterministic(self):
        a = LinkOutageModel(mean_up_seconds=10.0, mean_down_seconds=2.0,
                            seed=3)
        b = LinkOutageModel(mean_up_seconds=10.0, mean_down_seconds=2.0,
                            seed=3)
        assert a.windows_until(100.0) == b.windows_until(100.0)
        windows = a.windows_until(100.0)
        assert windows
        for start, end in windows:
            assert 0.0 <= start < end <= 100.0
