"""Tests for repro.serving.tracing — span extraction and rendering."""

import pytest

from repro.serving.batcher import BatcherConfig
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer
from repro.serving.tracing import (
    RequestTrace,
    Span,
    render_gantt,
    stage_breakdown,
    trace_of,
)


@pytest.fixture()
def two_stage_response():
    server = TritonLikeServer()
    server.register(ModelConfig("pre", lambda n: 0.002,
                                batcher=BatcherConfig(enabled=False)))
    server.register(ModelConfig("mdl", lambda n: 0.005,
                                batcher=BatcherConfig(enabled=False),
                                preprocess_model="pre"))
    server.submit(Request("mdl"))
    [response] = server.run()
    return response


class TestTraceOf:
    def test_spans_cover_both_stages(self, two_stage_response):
        trace = trace_of(two_stage_response)
        assert [s.stage for s in trace.spans] == ["pre#0", "mdl#0"]
        assert trace.spans[0].duration == pytest.approx(0.002)
        assert trace.spans[1].duration == pytest.approx(0.005)

    def test_latency_decomposes(self, two_stage_response):
        trace = trace_of(two_stage_response)
        assert trace.latency == pytest.approx(0.007)
        assert trace.queued_seconds == pytest.approx(0.0, abs=1e-12)

    def test_spans_ordered_by_start(self, two_stage_response):
        trace = trace_of(two_stage_response)
        starts = [s.start for s in trace.spans]
        assert starts == sorted(starts)

    def test_queueing_shows_up(self):
        server = TritonLikeServer()
        server.register(ModelConfig("m", lambda n: 0.01,
                                    batcher=BatcherConfig(enabled=False)))
        server.submit(Request("m"))
        server.submit(Request("m"))  # waits behind the first
        responses = server.run()
        second = trace_of(responses[1])
        assert second.queued_seconds == pytest.approx(0.01)


class TestRetriedSpans:
    def _retried_response(self):
        from repro.serving.faults import FaultModel

        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.01,
            batcher=BatcherConfig(enabled=False),
            fault_model=FaultModel(1.0, detect_seconds=0.2, seed=1),
            max_retries=1))
        server.submit(Request("m"))

        def clear():  # exactly one failure, then the retry succeeds
            server._models["m"].fault_model.failure_probability = 0.0

        server.sim.schedule(0.1, clear)
        [response] = server.run()
        assert response.status == "ok"
        return response

    def test_each_attempt_keeps_its_own_span(self):
        # Regression: the retry used to overwrite the first attempt's
        # ``m#0:start``, dropping the failed attempt from the trace.
        response = self._retried_response()
        trace = trace_of(response)
        assert [s.stage for s in trace.spans] == ["m#0", "m#0@1"]
        assert [s.attempt for s in trace.spans] == [0, 1]
        # Failed attempt spans the 0.2 s detection window; the retry
        # spans the 0.01 s service time.
        assert trace.spans[0].duration == pytest.approx(0.2)
        assert trace.spans[1].duration == pytest.approx(0.01)

    def test_detection_window_not_misread_as_queueing(self):
        # Regression: with the failed attempt's span lost, the 0.2 s
        # detection window was booked as queued_seconds.
        trace = trace_of(self._retried_response())
        assert trace.queued_seconds == pytest.approx(0.0, abs=1e-9)

    def test_breakdown_surfaces_retried_attempts(self):
        response = self._retried_response()
        breakdown = stage_breakdown([response])
        assert breakdown["m"]["count"] == 2
        assert breakdown["m"]["retried_attempts"] == 1
        assert breakdown["m"]["total_seconds"] == pytest.approx(0.21)
        assert breakdown["queued"]["retried_attempts"] == 0

    def test_span_model_collapses_instance_and_attempt(self):
        trace = trace_of(self._retried_response())
        assert all(s.model == "m" for s in trace.spans)


class TestRendering:
    def test_gantt_includes_all_stages(self, two_stage_response):
        text = render_gantt(trace_of(two_stage_response))
        assert "pre#0" in text and "mdl#0" in text
        assert "#" in text

    def test_gantt_width_validated(self, two_stage_response):
        with pytest.raises(ValueError):
            render_gantt(trace_of(two_stage_response), width=5)

    def test_gantt_zero_duration_trace_degenerates(self):
        # Regression: a request shed the instant it arrived has
        # arrival == completion; scaling bars against the total would
        # divide by zero.  It must render as a one-column chart.
        trace = RequestTrace(
            request_id=9, arrival=0.5, completion=0.5,
            status="rejected",
            spans=(Span("queue_reject#0", 0.5, 0.5),))
        text = render_gantt(trace)
        lines = text.splitlines()
        assert "0.00 ms" in lines[0]
        # Exactly one bar column at the origin, no leading dots.
        bar = lines[1].split()[1]
        assert bar == "#"

    def test_gantt_zero_duration_trace_without_spans(self):
        trace = RequestTrace(request_id=9, arrival=1.0, completion=1.0,
                             status="rejected", spans=())
        assert "rejected" in render_gantt(trace)


class TestBreakdown:
    def test_aggregates_collapse_instances(self):
        server = TritonLikeServer()
        server.register(ModelConfig("m", lambda n: 0.01, instances=2,
                                    batcher=BatcherConfig(enabled=False)))
        for _ in range(4):
            server.submit(Request("m"))
        responses = server.run()
        breakdown = stage_breakdown(responses)
        assert breakdown["m"]["count"] == 4
        assert breakdown["m"]["mean_seconds"] == pytest.approx(0.01)
        assert "queued" in breakdown

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            stage_breakdown([])

    def test_section31_decomposition(self):
        # The Section 3.1 latency decomposition: dataset preprocessing,
        # model preprocessing, inference — three traced stages.
        server = TritonLikeServer()
        server.register(ModelConfig("dataset_pre", lambda n: 0.003,
                                    batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig("model_pre", lambda n: 0.002,
                                    batcher=BatcherConfig(enabled=False),
                                    preprocess_model="dataset_pre"))
        server.register(ModelConfig("infer", lambda n: 0.004,
                                    batcher=BatcherConfig(enabled=False),
                                    preprocess_model="model_pre"))
        server.submit(Request("infer"))
        [response] = server.run()
        trace = trace_of(response)
        # Only the direct preprocess chain of "infer" runs: model_pre
        # then infer (dataset_pre is model_pre's own preprocess and runs
        # first in its chain).
        assert trace.latency == pytest.approx(0.003 + 0.002 + 0.004,
                                              abs=1e-9) or \
            trace.latency == pytest.approx(0.002 + 0.004, abs=1e-9)
        assert len(trace.spans) >= 2
