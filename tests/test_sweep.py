"""Tests for the process-parallel sweep engine (spec + runner)."""

import multiprocessing
import time

import pytest

from repro.sweep import (
    ShardError,
    SweepError,
    SweepRunner,
    SweepSpec,
    derive_seed,
    resolve_worker,
)

PROBE = "repro.sweep.workloads:_probe"


class TestDeriveSeed:
    def test_deterministic_and_index_dependent(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) != derive_seed(7, 1)
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_non_negative_63_bit(self):
        for index in range(64):
            seed = derive_seed(123, index)
            assert 0 <= seed < 2 ** 63

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)

    def test_stable_across_processes(self):
        # The anchor value: hash() would vary per interpreter under
        # PYTHONHASHSEED randomization; SHA-256 derivation must not.
        assert derive_seed(42, 0) == 0x2A39A2E570E779B9


class TestResolveWorker:
    def test_colon_and_dot_paths(self):
        assert callable(resolve_worker(PROBE))
        assert callable(resolve_worker("repro.sweep.workloads._probe"))

    def test_bad_paths_raise_value_error(self):
        for path in ("noseparator", "no.such.module:fn",
                     "repro.sweep.workloads:nope",
                     "repro.sweep.workloads:LATENCY_BOUNDS"):
            with pytest.raises(ValueError):
                resolve_worker(path)


class TestSweepSpec:
    def test_axes_cartesian_product_last_axis_fastest(self):
        spec = SweepSpec(worker=PROBE,
                         axes={"a": [1, 2], "b": [10, 20]})
        points = spec.points()
        assert [(p["a"], p["b"]) for p in points] == [
            (1, 10), (1, 20), (2, 10), (2, 20)]

    def test_grid_crossed_with_axes_and_base_params(self):
        spec = SweepSpec(worker=PROBE,
                         grid=[{"m": "x"}, {"m": "y"}],
                         axes={"a": [1, 2]},
                         base_params={"c": 9, "a": -1})
        points = spec.points()
        assert len(points) == 4
        assert all(p["c"] == 9 for p in points)
        # axes override base_params; grid entries ride along
        assert [(p["m"], p["a"]) for p in points] == [
            ("x", 1), ("x", 2), ("y", 1), ("y", 2)]

    def test_shards_inject_seed_index_replication(self):
        spec = SweepSpec(worker=PROBE, axes={"a": [1, 2]},
                         replications=3, base_seed=5)
        shards = spec.shards()
        assert len(shards) == 6
        assert [s.index for s in shards] == list(range(6))
        for shard in shards:
            assert shard.params["seed"] == derive_seed(5, shard.index)
            assert shard.params["shard_index"] == shard.index
        assert [s.params["replication"] for s in shards] == [0, 1, 2] * 2

    def test_pure_replication_set_without_grid(self):
        spec = SweepSpec(worker=PROBE, replications=4)
        assert len(spec.shards()) == 4

    def test_declaration_time_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(worker=PROBE, replications=0)
        with pytest.raises(ValueError):
            SweepSpec(worker=PROBE, grid=[])
        with pytest.raises(ValueError):
            SweepSpec(worker="no.such.module:fn")

    def test_expected_cost_feeds_cost_of(self):
        spec = SweepSpec(worker=PROBE, axes={"a": [1, 2, 3]},
                         expected_cost=lambda p: p["a"] * 2.0)
        costs = [spec.cost_of(s) for s in spec.shards()]
        assert costs == [2.0, 4.0, 6.0]
        assert SweepSpec(worker=PROBE).cost_of(
            SweepSpec(worker=PROBE).shards()[0]) == 0.0


class TestRunnerInline:
    def test_results_in_index_order_with_derived_seeds(self):
        spec = SweepSpec(worker=PROBE, replications=5, base_seed=11)
        result = SweepRunner(jobs=1).run(spec)
        assert result.jobs == 1
        assert [o.index for o in result.shards] == list(range(5))
        for outcome in result.shards:
            assert outcome.ok and outcome.attempts == 1
            assert outcome.value["seed"] == derive_seed(11, outcome.index)

    def test_lejf_ordering_does_not_change_output(self):
        base = SweepSpec(worker=PROBE, axes={"scale": [3, 1, 2]},
                         base_seed=2)
        costed = SweepSpec(worker=PROBE, axes={"scale": [3, 1, 2]},
                           base_seed=2,
                           expected_cost=lambda p: p["scale"])
        values = SweepRunner(jobs=1).run(base).values()
        costed_values = SweepRunner(jobs=1).run(costed).values()
        assert ([v["value"] for v in values]
                == [v["value"] for v in costed_values])

    def test_single_shard_runs_inline_even_with_jobs(self):
        spec = SweepSpec(worker=PROBE, replications=1)
        result = SweepRunner(jobs=4).run(spec)
        assert len(result.shards) == 1
        assert spec.shards()[0].seed == result.shards[0].seed

    def test_runner_argument_validation(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(retries=-1)
        with pytest.raises(ValueError):
            SweepRunner(timeout_seconds=0.0)


class TestRunnerPool:
    def test_pool_matches_inline_exactly(self):
        spec = SweepSpec(worker=PROBE, replications=6, base_seed=3)
        inline = SweepRunner(jobs=1).run(spec)
        pooled = SweepRunner(jobs=3).run(spec)
        strip = lambda vs: [  # noqa: E731 - pids legitimately differ
            {k: v for k, v in value.items() if k != "pid"}
            for value in vs]
        assert strip(inline.values()) == strip(pooled.values())

    def test_spawn_context_is_supported(self):
        spec = SweepSpec(worker=PROBE, replications=3, base_seed=1)
        result = SweepRunner(
            jobs=2,
            mp_context=multiprocessing.get_context("spawn")).run(spec)
        result.raise_on_error()
        assert [v["seed"] for v in result.values()] == [
            derive_seed(1, i) for i in range(3)]


class TestFailurePaths:
    def test_structured_error_with_params_and_traceback(self):
        spec = SweepSpec(worker="repro.sweep.workloads:_always_fails",
                         replications=2, base_seed=7)
        result = SweepRunner(jobs=2).run(spec)
        errors = result.errors()
        assert len(errors) == 2
        for error in errors:
            assert isinstance(error, ShardError)
            assert error.error_type == "RuntimeError"
            assert "failed as designed" in error.message
            assert "Traceback" in error.traceback
            assert error.attempts == 2  # first try + one retry
            assert error.params["seed"] == derive_seed(7,
                                                       error.shard_index)
        assert result.values() == []

    def test_raise_on_error_carries_every_failure(self):
        spec = SweepSpec(worker="repro.sweep.workloads:_always_fails",
                         replications=3)
        with pytest.raises(SweepError) as excinfo:
            SweepRunner(jobs=1).run(spec).raise_on_error()
        assert len(excinfo.value.errors) == 3
        assert "shard 0" in str(excinfo.value)

    def test_failures_do_not_corrupt_successful_shards(self):
        # Shard params carry a marker that makes exactly one point
        # fail; the others must come back intact and in order.
        spec = SweepSpec(worker="repro.sweep.workloads:_probe_or_fail",
                         axes={"fail_on": [0, 1, 0]}, base_seed=4)
        result = SweepRunner(jobs=2).run(spec)
        assert [o.ok for o in result.shards] == [True, False, True]
        assert [v["shard_index"] for v in result.values()] == [0, 2]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_retry_reruns_with_same_derived_seed(self, jobs, tmp_path):
        spec = SweepSpec(worker="repro.sweep.workloads:_flaky_once",
                         base_params={"marker_dir": str(tmp_path)},
                         replications=3, base_seed=13)
        result = SweepRunner(jobs=jobs).run(spec)
        result.raise_on_error()
        for outcome in result.shards:
            assert outcome.attempts == 2
            assert outcome.value["seeds_match"] is True

    def test_zero_retries_fail_immediately(self, tmp_path):
        spec = SweepSpec(worker="repro.sweep.workloads:_flaky_once",
                         base_params={"marker_dir": str(tmp_path)},
                         replications=1)
        result = SweepRunner(jobs=1, retries=0).run(spec)
        assert result.errors()[0].attempts == 1

    def test_unpicklable_worker_exception_is_contained(self):
        spec = SweepSpec(
            worker="repro.sweep.workloads:_unpicklable_failure",
            replications=2)
        result = SweepRunner(jobs=2).run(spec)
        errors = result.errors()
        assert len(errors) == 2
        assert "unpicklable by design" in errors[0].message

    def test_timeout_terminates_pool_promptly(self):
        spec = SweepSpec(worker="repro.sweep.workloads:_sleep_forever",
                         base_params={"sleep_seconds": 60.0},
                         replications=2)
        start = time.monotonic()
        result = SweepRunner(jobs=2, timeout_seconds=1.0).run(spec)
        assert time.monotonic() - start < 15.0  # never the full sleep
        errors = result.errors()
        assert len(errors) == 2
        assert "budget" in errors[0].message
