"""Tests for repro.data.synthetic — procedural imagery."""

import numpy as np
import pytest

from repro.data.datasets import get_dataset
from repro.data.synthetic import (
    SyntheticSampler,
    synth_crsa_frame,
    synth_frame_sequence,
    synth_image,
)


class TestSynthImage:
    def test_shape_and_dtype(self, rng):
        img = synth_image(120, 80, rng)
        assert img.shape == (80, 120, 3)
        assert img.dtype == np.uint8

    def test_vegetation_channel_balance(self, rng):
        # Green dominates red dominates blue on average.
        img = synth_image(64, 64, rng).astype(float)
        r, g, b = img[..., 0].mean(), img[..., 1].mean(), img[..., 2].mean()
        assert g > r > b

    def test_single_channel(self, rng):
        assert synth_image(10, 10, rng, channels=1).shape == (10, 10, 1)

    def test_deterministic_given_seed(self):
        a = synth_image(16, 16, np.random.default_rng(3))
        b = synth_image(16, 16, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_invalid_dims_rejected(self, rng):
        with pytest.raises(ValueError):
            synth_image(0, 10, rng)

    def test_not_constant(self, rng):
        img = synth_image(32, 32, rng)
        assert img.std() > 1.0


class TestCRSAFrame:
    def test_default_is_4k(self):
        # Full 4K generation is slow; check the small path and the default
        # parameters separately.
        frame = synth_crsa_frame(384, 216)
        assert frame.shape == (216, 384, 3)

    def test_grid_lines_present(self):
        frame = synth_crsa_frame(400, 200, grid_spacing=100)
        # Grid pixels carry the row color (30, 110, 40).
        mask = (frame[..., 1] == 110) & (frame[..., 0] == 30)
        assert mask.sum() > 200

    def test_rows_converge_toward_top(self):
        # Perspective: the spread of marked columns shrinks higher up.
        frame = synth_crsa_frame(600, 300, grid_spacing=120)
        mask = (frame[..., 1] == 110) & (frame[..., 0] == 30)
        top_cols = np.where(mask[10])[0]
        bottom_cols = np.where(mask[-10])[0]
        assert len(top_cols) > 0 and len(bottom_cols) > 0
        assert (top_cols.max() - top_cols.min()
                < bottom_cols.max() - bottom_cols.min())

    def test_too_small_frame_rejected(self):
        with pytest.raises(ValueError):
            synth_crsa_frame(4, 4)


class TestSyntheticSampler:
    def test_classification_samples_have_labels(self):
        sampler = SyntheticSampler(get_dataset("fruits_360"), seed=1)
        samples = sampler.sample(5)
        assert len(samples) == 5
        for img, label in samples:
            assert img.shape == (100, 100, 3)
            assert 0 <= label < 81

    def test_crsa_samples_unlabelled(self):
        sampler = SyntheticSampler(get_dataset("crsa"), seed=1, scale=0.05)
        [(img, label)] = sampler.sample(1)
        assert label is None
        assert img.shape[2] == 3

    def test_variable_sizes_vary(self):
        sampler = SyntheticSampler(get_dataset("spittle_bug"), seed=1)
        sizes = sampler.sample_sizes(50)
        assert len(np.unique(sizes[:, 0])) > 5

    def test_scale_shrinks_dimensions(self):
        full = SyntheticSampler(get_dataset("plant_village"), seed=1)
        half = SyntheticSampler(get_dataset("plant_village"), seed=1,
                                scale=0.5)
        assert half.sample_sizes(1)[0, 0] == full.sample_sizes(1)[0, 0] // 2

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            SyntheticSampler(get_dataset("crsa"), scale=0.0)


class TestSynthFrameSequence:
    def test_shape_dtype_and_count(self):
        spec = get_dataset("crsa")
        frames = synth_frame_sequence(spec, 5, 0.0,
                                      np.random.default_rng(0),
                                      width=64, height=48)
        assert len(frames) == 5
        for frame in frames:
            assert frame.shape == (48, 64, 3)
            assert frame.dtype == np.uint8

    def test_zero_rate_keeps_one_scene(self):
        spec = get_dataset("crsa")
        frames = synth_frame_sequence(spec, 8, 0.0,
                                      np.random.default_rng(1),
                                      width=64, height=48, jitter=2.0)
        base = frames[0].astype(np.int64)
        for frame in frames[1:]:
            delta = np.abs(frame.astype(np.int64) - base)
            assert delta.mean() < 8.0  # only sensor noise apart

    def test_unit_rate_cuts_every_frame(self):
        spec = get_dataset("crsa")
        frames = synth_frame_sequence(spec, 6, 1.0,
                                      np.random.default_rng(2),
                                      width=64, height=48)
        deltas = [np.abs(frames[i].astype(np.int64)
                         - frames[i + 1].astype(np.int64)).mean()
                  for i in range(5)]
        assert min(deltas) > 10.0

    def test_higher_rate_means_more_distinct_scenes(self):
        from repro.cache.keys import fingerprint

        spec = get_dataset("crsa")

        def distinct(rate):
            frames = synth_frame_sequence(spec, 60, rate,
                                          np.random.default_rng(3),
                                          width=64, height=48)
            kept = []
            for frame in frames:
                fp = fingerprint(frame)
                if not any(fp.distance(seen) <= 8 for seen in kept):
                    kept.append(fp)
            return len(kept)

        assert distinct(0.0) <= distinct(0.05) <= distinct(0.5)

    def test_dataset_selects_frame_generator(self):
        # CRSA scenes carry the perspective grid's dark-green rows;
        # plain field imagery does not.
        crsa = synth_frame_sequence(get_dataset("crsa"), 1, 0.0,
                                    np.random.default_rng(4),
                                    width=96, height=64, jitter=0.0)[0]
        plain = synth_frame_sequence(get_dataset("plant_village"), 1,
                                     0.0, np.random.default_rng(4),
                                     width=96, height=64, jitter=0.0)[0]
        assert not np.array_equal(crsa, plain)

    def test_deterministic_for_a_seed(self):
        spec = get_dataset("crsa")
        first = synth_frame_sequence(spec, 4, 0.3,
                                     np.random.default_rng(7),
                                     width=32, height=24)
        second = synth_frame_sequence(spec, 4, 0.3,
                                      np.random.default_rng(7),
                                      width=32, height=24)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_validation(self):
        spec = get_dataset("crsa")
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="at least one"):
            synth_frame_sequence(spec, 0, 0.0, rng)
        with pytest.raises(ValueError, match="scene_change_rate"):
            synth_frame_sequence(spec, 3, 1.5, rng)
        with pytest.raises(ValueError, match="jitter"):
            synth_frame_sequence(spec, 3, 0.0, rng, jitter=-1.0)
