"""Tests for repro.scale — data parallelism and load balancing."""

import numpy as np
import pytest

from repro.hardware.platform import A100
from repro.scale.balancer import (
    JoinShortestQueuePolicy,
    LoadBalancer,
    RoundRobinPolicy,
)
from repro.scale.parallel import DataParallelGroup, shard_batch
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.metrics import summarize_responses
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


class TestShardBatch:
    def test_even_split(self, rng):
        batch = rng.random((8, 3))
        shards = shard_batch(batch, 2)
        assert [s.shape[0] for s in shards] == [4, 4]
        np.testing.assert_array_equal(np.concatenate(shards), batch)

    def test_uneven_split_differs_by_one(self, rng):
        shards = shard_batch(rng.random((10, 2)), 3)
        sizes = [s.shape[0] for s in shards]
        assert sizes == [4, 3, 3]

    def test_fewer_samples_than_replicas(self, rng):
        shards = shard_batch(rng.random((2, 2)), 5)
        assert [s.shape[0] for s in shards] == [1, 1]

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            shard_batch(rng.random((4, 2)), 0)
        with pytest.raises(ValueError):
            shard_batch(np.empty((0, 2)), 2)


class TestDataParallelGroup:
    @pytest.fixture(scope="class")
    def group(self, vit_small):
        return DataParallelGroup(vit_small, A100)

    def test_single_replica_matches_engine(self, group, vit_small):
        from repro.engine.latency import LatencyModel

        point = group.point(1, 64)
        assert point.throughput == pytest.approx(
            LatencyModel(vit_small, A100).throughput(64))
        assert point.scaling_efficiency == 1.0

    def test_two_gpu_node_near_doubles(self, group):
        # The Table 1 nodes' second GPU: ~2x at ~98% efficiency.
        one = group.point(1, 64)
        two = group.point(2, 64)
        assert two.throughput == pytest.approx(2 * one.throughput
                                               * group.efficiency(2))
        assert group.efficiency(2) > 0.95

    def test_efficiency_monotonically_decays(self, group):
        effs = [group.efficiency(n) for n in (1, 2, 4, 8, 16)]
        assert effs == sorted(effs, reverse=True)

    def test_scaling_curve_throughput_increases(self, group):
        curve = group.scaling_curve(8)
        throughputs = [p.throughput for p in curve]
        assert throughputs == sorted(throughputs)

    def test_split_batch_latency_improves_with_replicas(self, group):
        assert group.split_batch_latency(256, 2) < \
            group.split_batch_latency(256, 1)

    def test_validation(self, vit_small):
        with pytest.raises(ValueError):
            DataParallelGroup(vit_small, A100, coordination_overhead=-1)
        group = DataParallelGroup(vit_small, A100)
        with pytest.raises(ValueError):
            group.efficiency(0)
        with pytest.raises(ValueError):
            group.scaling_curve(0)
        with pytest.raises(ValueError):
            group.split_batch_latency(0, 2)


def _make_backend(sim, service=0.01):
    server = TritonLikeServer(sim)
    server.register(ModelConfig(
        "m", lambda n: service,
        batcher=BatcherConfig(max_batch_size=8, max_queue_delay=0.001)))
    return server


class TestLoadBalancer:
    def test_round_robin_balances_exactly(self):
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(3)]
        balancer = LoadBalancer(backends, RoundRobinPolicy())
        for _ in range(9):
            balancer.submit(Request("m"))
        balancer.run()
        assert balancer.routing_counts() == [3, 3, 3]

    def test_all_requests_answered(self):
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(2)]
        balancer = LoadBalancer(backends)
        for _ in range(10):
            balancer.submit(Request("m"))
        responses = balancer.run()
        assert len(responses) == 10

    def test_jsq_prefers_idle_backend(self):
        sim = Simulator()
        slow = _make_backend(sim, service=1.0)
        fast = _make_backend(sim, service=1.0)
        balancer = LoadBalancer([slow, fast], JoinShortestQueuePolicy())
        # Pre-load the first backend directly.
        for _ in range(5):
            slow.submit(Request("m"))
        balancer.submit(Request("m"))
        assert balancer.routing_counts() == [0, 1]

    def test_two_backends_double_throughput(self, vit_tiny):
        from repro.engine.latency import LatencyModel

        latency = LatencyModel(vit_tiny, A100)

        def run(n_backends):
            sim = Simulator()
            backends = []
            for _ in range(n_backends):
                server = TritonLikeServer(sim)
                server.register(ModelConfig(
                    "m", lambda k: latency.latency(max(1, k)),
                    batcher=BatcherConfig(max_batch_size=256,
                                          max_queue_delay=0.002)))
                backends.append(server)
            balancer = LoadBalancer(backends, RoundRobinPolicy())
            for i in range(4000):
                sim.schedule_at(i / 30000.0,
                                lambda: balancer.submit(Request("m")))
            responses = balancer.run()
            return summarize_responses(responses, warmup_fraction=0.1)

        single = run(1)
        double = run(2)
        # One A100 saturates near ~20k img/s; two keep up with 30k.
        assert double.throughput_ips > 1.3 * single.throughput_ips

    def test_backends_must_share_simulator(self):
        a = _make_backend(Simulator())
        b = _make_backend(Simulator())
        with pytest.raises(ValueError, match="share"):
            LoadBalancer([a, b])

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancer([])
