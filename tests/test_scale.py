"""Tests for repro.scale — data parallelism and load balancing."""

import numpy as np
import pytest

from repro.hardware.platform import A100
from repro.scale.balancer import (
    JoinShortestQueuePolicy,
    LoadBalancer,
    RoundRobinPolicy,
)
from repro.scale.parallel import DataParallelGroup, shard_batch
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.metrics import summarize_responses
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


class TestShardBatch:
    def test_even_split(self, rng):
        batch = rng.random((8, 3))
        shards = shard_batch(batch, 2)
        assert [s.shape[0] for s in shards] == [4, 4]
        np.testing.assert_array_equal(np.concatenate(shards), batch)

    def test_uneven_split_differs_by_one(self, rng):
        shards = shard_batch(rng.random((10, 2)), 3)
        sizes = [s.shape[0] for s in shards]
        assert sizes == [4, 3, 3]

    def test_fewer_samples_than_replicas(self, rng):
        shards = shard_batch(rng.random((2, 2)), 5)
        assert [s.shape[0] for s in shards] == [1, 1]

    def test_samples_equal_replicas(self, rng):
        batch = rng.random((4, 2))
        shards = shard_batch(batch, 4)
        assert [s.shape[0] for s in shards] == [1, 1, 1, 1]
        np.testing.assert_array_equal(np.concatenate(shards), batch)

    def test_one_more_sample_than_replicas(self, rng):
        shards = shard_batch(rng.random((5, 2)), 4)
        assert [s.shape[0] for s in shards] == [2, 1, 1, 1]

    def test_one_fewer_sample_than_replicas(self, rng):
        # The empty tail shard is dropped, not returned zero-length.
        shards = shard_batch(rng.random((3, 2)), 4)
        assert [s.shape[0] for s in shards] == [1, 1, 1]
        assert all(s.shape[0] > 0 for s in shards)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            shard_batch(rng.random((4, 2)), 0)
        with pytest.raises(ValueError):
            shard_batch(np.empty((0, 2)), 2)


class TestDataParallelGroup:
    @pytest.fixture(scope="class")
    def group(self, vit_small):
        return DataParallelGroup(vit_small, A100)

    def test_single_replica_matches_engine(self, group, vit_small):
        from repro.engine.latency import LatencyModel

        point = group.point(1, 64)
        assert point.throughput == pytest.approx(
            LatencyModel(vit_small, A100).throughput(64))
        assert point.scaling_efficiency == 1.0

    def test_two_gpu_node_near_doubles(self, group):
        # The Table 1 nodes' second GPU: ~2x at ~98% efficiency.
        one = group.point(1, 64)
        two = group.point(2, 64)
        assert two.throughput == pytest.approx(2 * one.throughput
                                               * group.efficiency(2))
        assert group.efficiency(2) > 0.95

    def test_efficiency_monotonically_decays(self, group):
        effs = [group.efficiency(n) for n in (1, 2, 4, 8, 16)]
        assert effs == sorted(effs, reverse=True)

    def test_scaling_curve_throughput_increases(self, group):
        curve = group.scaling_curve(8)
        throughputs = [p.throughput for p in curve]
        assert throughputs == sorted(throughputs)

    def test_split_batch_latency_improves_with_replicas(self, group):
        assert group.split_batch_latency(256, 2) < \
            group.split_batch_latency(256, 1)

    def test_validation(self, vit_small):
        with pytest.raises(ValueError):
            DataParallelGroup(vit_small, A100, coordination_overhead=-1)
        group = DataParallelGroup(vit_small, A100)
        with pytest.raises(ValueError):
            group.efficiency(0)
        with pytest.raises(ValueError):
            group.scaling_curve(0)
        with pytest.raises(ValueError):
            group.split_batch_latency(0, 2)


def _make_backend(sim, service=0.01):
    server = TritonLikeServer(sim)
    server.register(ModelConfig(
        "m", lambda n: service,
        batcher=BatcherConfig(max_batch_size=8, max_queue_delay=0.001)))
    return server


class TestLoadBalancer:
    def test_round_robin_balances_exactly(self):
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(3)]
        balancer = LoadBalancer(backends, RoundRobinPolicy())
        for _ in range(9):
            balancer.submit(Request("m"))
        balancer.run()
        assert balancer.routing_counts() == [3, 3, 3]

    def test_all_requests_answered(self):
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(2)]
        balancer = LoadBalancer(backends)
        for _ in range(10):
            balancer.submit(Request("m"))
        responses = balancer.run()
        assert len(responses) == 10

    def test_jsq_prefers_idle_backend(self):
        sim = Simulator()
        slow = _make_backend(sim, service=1.0)
        fast = _make_backend(sim, service=1.0)
        balancer = LoadBalancer([slow, fast], JoinShortestQueuePolicy())
        # Pre-load the first backend directly.
        for _ in range(5):
            slow.submit(Request("m"))
        balancer.submit(Request("m"))
        assert balancer.routing_counts() == [0, 1]

    def test_two_backends_double_throughput(self, vit_tiny):
        from repro.engine.latency import LatencyModel

        latency = LatencyModel(vit_tiny, A100)

        def run(n_backends):
            sim = Simulator()
            backends = []
            for _ in range(n_backends):
                server = TritonLikeServer(sim)
                server.register(ModelConfig(
                    "m", lambda k: latency.latency(max(1, k)),
                    batcher=BatcherConfig(max_batch_size=256,
                                          max_queue_delay=0.002)))
                backends.append(server)
            balancer = LoadBalancer(backends, RoundRobinPolicy())
            for i in range(4000):
                sim.schedule_at(i / 30000.0,
                                lambda: balancer.submit(Request("m")))
            responses = balancer.run()
            return summarize_responses(responses, warmup_fraction=0.1)

        single = run(1)
        double = run(2)
        # One A100 saturates near ~20k img/s; two keep up with 30k.
        assert double.throughput_ips > 1.3 * single.throughput_ips

    def test_backends_must_share_simulator(self):
        a = _make_backend(Simulator())
        b = _make_backend(Simulator())
        with pytest.raises(ValueError, match="share"):
            LoadBalancer([a, b])

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancer([])

    def test_run_returns_only_new_responses_each_call(self):
        # Regression: run() used to re-extend the cumulative response
        # log of every backend on every call, so a second run() replayed
        # all earlier completions as duplicates.
        sim = Simulator()
        balancer = LoadBalancer([_make_backend(sim)])
        for _ in range(3):
            balancer.submit(Request("m"))
        first = balancer.run()
        for _ in range(2):
            balancer.submit(Request("m"))
        second = balancer.run()
        assert len(first) == 3
        assert len(second) == 2
        ids = [r.request.request_id for r in first + second]
        assert len(ids) == len(set(ids)), "duplicated responses"
        assert len(balancer.all_responses()) == 5

    def test_run_responses_ordered_by_completion(self):
        sim = Simulator()
        backends = [_make_backend(sim, service=0.01),
                    _make_backend(sim, service=0.05)]
        balancer = LoadBalancer(backends, RoundRobinPolicy())
        for _ in range(8):
            balancer.submit(Request("m"))
        responses = balancer.run()
        times = [r.completion_time for r in responses]
        assert times == sorted(times)


class TestRoundRobinResize:
    def test_rotation_survives_backend_addition(self):
        # Regression: the rotation was a global counter taken modulo the
        # *current* pool size, so growing the pool mid-stream permuted
        # the cycle and could starve the new backend entirely.
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(3)]
        balancer = LoadBalancer(backends, RoundRobinPolicy())
        for _ in range(4):  # A B C A
            balancer.submit(Request("m"))
        balancer.add_backend(_make_backend(sim))
        for _ in range(3):  # resumes after A: B C D
            balancer.submit(Request("m"))
        balancer.run()
        assert balancer.routing_counts() == [2, 2, 2, 1]

    def test_rotation_survives_drain(self):
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(3)]
        balancer = LoadBalancer(backends, RoundRobinPolicy())
        for _ in range(2):  # A B
            balancer.submit(Request("m"))
        balancer.drain_backend(backends[1])
        for _ in range(4):  # C A C A — cycle over the two active
            balancer.submit(Request("m"))
        balancer.run()
        assert balancer.routing_counts() == [3, 1, 2]

    def test_balance_across_add_and_remove(self):
        sim = Simulator()
        backends = [_make_backend(sim) for _ in range(2)]
        balancer = LoadBalancer(backends, RoundRobinPolicy())
        for _ in range(4):
            balancer.submit(Request("m"))
        extra = _make_backend(sim)
        balancer.add_backend(extra)
        for _ in range(6):
            balancer.submit(Request("m"))
        balancer.drain_backend(extra)
        balancer.run()
        balancer.release_backend(extra)
        for _ in range(4):
            balancer.submit(Request("m"))
        balancer.run()
        # Every phase stayed balanced: 2+2(+2), then +2 each survivor.
        assert balancer.routing_counts() == [6, 6]
        assert len(balancer.all_responses()) == 14


class TestJoinShortestQueueTieBreak:
    def test_ties_rotate_instead_of_pinning_first(self):
        # Regression: equal-load ties always resolved to index 0, so a
        # lightly loaded pool funnelled every request to one backend.
        sim = Simulator()
        backends = [_make_backend(sim, service=0.001) for _ in range(3)]
        balancer = LoadBalancer(backends, JoinShortestQueuePolicy())
        # Space arrivals out so each completes before the next: every
        # decision sees all queues equal (a pure tie).
        for i in range(9):
            sim.schedule_at(i * 0.1,
                            lambda: balancer.submit(Request("m")))
        balancer.run()
        assert balancer.routing_counts() == [3, 3, 3]

    def test_load_still_dominates_tiebreak(self):
        sim = Simulator()
        busy = _make_backend(sim, service=1.0)
        idle_a = _make_backend(sim, service=1.0)
        idle_b = _make_backend(sim, service=1.0)
        balancer = LoadBalancer([busy, idle_a, idle_b],
                                JoinShortestQueuePolicy())
        for _ in range(5):
            busy.submit(Request("m"))
        balancer.submit(Request("m"))
        balancer.submit(Request("m"))
        assert balancer.routing_counts()[0] == 0
        assert sorted(balancer.routing_counts()[1:]) == [1, 1]
