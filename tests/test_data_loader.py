"""Tests for repro.data.loader."""

import pytest

from repro.data.datasets import get_dataset
from repro.data.loader import DataLoader


class TestDataLoader:
    def test_batch_count_rounds_up(self):
        loader = DataLoader(get_dataset("fruits_360"), batch_size=4,
                            epoch_size=10)
        assert len(loader) == 3

    def test_final_batch_is_short(self):
        loader = DataLoader(get_dataset("fruits_360"), batch_size=4,
                            epoch_size=10)
        batches = list(loader)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_epoch_defaults_to_table2_samples(self):
        loader = DataLoader(get_dataset("spittle_bug"), batch_size=101)
        assert len(loader) == 100  # 10100 / 101

    def test_samples_carry_encoded_size(self):
        loader = DataLoader(get_dataset("plant_village"), batch_size=1,
                            epoch_size=1)
        [batch] = list(loader)
        sample = batch[0]
        assert sample.encoded_nbytes == pytest.approx(256 * 256 * 0.45)
        assert sample.pixels == 256 * 256

    def test_labels_in_class_range(self):
        loader = DataLoader(get_dataset("spittle_bug"), batch_size=8,
                            epoch_size=8, scale=0.5)
        [batch] = list(loader)
        assert all(s.label in (0, 1) for s in batch)

    def test_scale_keeps_relative_statistics(self):
        full = DataLoader(get_dataset("weed_soybean"), batch_size=1,
                          epoch_size=1).size_statistics(256)
        half = DataLoader(get_dataset("weed_soybean"), batch_size=1,
                          epoch_size=1, scale=0.5).size_statistics(256)
        assert half["mean_width"] == pytest.approx(
            full["mean_width"] / 2, rel=0.05)

    def test_deterministic_given_seed(self):
        a = DataLoader(get_dataset("fruits_360"), batch_size=2,
                       epoch_size=2, seed=9)
        b = DataLoader(get_dataset("fruits_360"), batch_size=2,
                       epoch_size=2, seed=9)
        [batch_a], [batch_b] = list(a), list(b)
        assert batch_a[0].label == batch_b[0].label
        assert (batch_a[0].image == batch_b[0].image).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            DataLoader(get_dataset("crsa"), batch_size=0)
        with pytest.raises(ValueError):
            DataLoader(get_dataset("crsa"), batch_size=1, epoch_size=0)

    def test_size_statistics_keys(self):
        stats = DataLoader(get_dataset("fruits_360"),
                           batch_size=1).size_statistics(64)
        assert set(stats) == {"mean_width", "mean_height", "mean_pixels",
                              "p95_pixels"}
        assert stats["mean_pixels"] == pytest.approx(100 * 100)
