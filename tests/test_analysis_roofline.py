"""Tests for the per-layer roofline analysis and energy-aware advice."""

import pytest

from repro.analysis.layer_roofline import (
    model_layer_roofline,
    roofline_summary,
)
from repro.core.guidance import TuningAdvisor
from repro.hardware.platform import A100, JETSON


class TestLayerRoofline:
    def test_time_fractions_sum_to_one(self, resnet50):
        points = model_layer_roofline(resnet50, A100, batch_size=64)
        assert sum(p.time_fraction for p in points) == pytest.approx(1.0)

    def test_batching_raises_compute_bound_share(self, vit_tiny):
        # The Fig. 5 mechanism from first principles: batch amortizes
        # weight traffic, moving matmuls toward the compute roof.
        small = roofline_summary(vit_tiny, A100, batch_size=1)
        large = roofline_summary(vit_tiny, A100, batch_size=256)
        assert large["compute_bound_time_fraction"] > \
            small["compute_bound_time_fraction"]

    def test_resnet_time_dominated_by_convs(self, resnet50):
        summary = roofline_summary(resnet50, A100, batch_size=64)
        by_cat = summary["time_by_category"]
        assert by_cat["conv"] == max(by_cat.values())

    def test_vit_time_dominated_by_linear(self, vit_small):
        summary = roofline_summary(vit_small, A100, batch_size=64)
        by_cat = summary["time_by_category"]
        assert by_cat["linear"] == max(by_cat.values())

    def test_normalization_layers_are_bandwidth_bound(self, vit_small):
        points = model_layer_roofline(vit_small, A100, batch_size=64)
        norms = [p for p in points if p.category == "norm"]
        assert norms
        assert all(not p.compute_bound for p in norms)

    def test_edge_device_more_compute_bound(self, resnet50):
        # The Jetson's compute/bandwidth ratio is lower, so more layers
        # hit its (lower) compute roof at the same batch.
        cloud = roofline_summary(resnet50, A100, batch_size=64)
        edge = roofline_summary(resnet50, JETSON, batch_size=64)
        assert edge["compute_bound_time_fraction"] >= \
            cloud["compute_bound_time_fraction"]

    def test_invalid_batch_rejected(self, vit_tiny):
        with pytest.raises(ValueError):
            model_layer_roofline(vit_tiny, A100, batch_size=0)


class TestEnergyAwareAdvice:
    def test_energy_choice_is_latency_feasible(self, resnet50):
        advisor = TuningAdvisor(JETSON, latency_target_seconds=0.05)
        rec = advisor.recommend_batch_energy_aware(resnet50)
        assert rec.meets_target
        assert rec.expected_latency_seconds <= 0.05

    def test_energy_choice_minimizes_joules(self, resnet50):
        from repro.engine.calibration import batch_grid
        from repro.engine.latency import LatencyModel
        from repro.engine.oom import max_batch_size
        from repro.hardware.power import EnergyModel

        advisor = TuningAdvisor(JETSON, latency_target_seconds=0.05)
        rec = advisor.recommend_batch_energy_aware(resnet50)
        energy = EnergyModel(resnet50, JETSON)
        model = LatencyModel(resnet50, JETSON)
        limit = max_batch_size(resnet50, JETSON)
        chosen = energy.point(rec.batch_size).joules_per_image
        for b in batch_grid("jetson"):
            if b <= limit and model.latency(b) <= 0.05:
                assert chosen <= energy.point(b).joules_per_image + 1e-12

    def test_unreachable_target_reported(self, vit_base):
        advisor = TuningAdvisor(JETSON, latency_target_seconds=1e-5)
        rec = advisor.recommend_batch_energy_aware(vit_base)
        assert not rec.meets_target
