"""Documentation coverage: every public item carries a doc comment.

Deliverable (e) enforced mechanically: all public modules, classes, and
functions under ``repro`` must have docstrings, and the repo-level
documents must exist and reference what they claim to.
"""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parent.parent.parent


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(_walk_modules())


class TestDocstringCoverage:
    def test_every_module_documented(self):
        undocumented = [m.__name__ for m in ALL_MODULES
                        if not (m.__doc__ or "").strip()]
        assert not undocumented

    def test_every_public_class_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue  # re-export
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing

    def test_every_public_function_documented(self):
        missing = []
        for module in ALL_MODULES:
            for name, obj in vars(module).items():
                if name.startswith("_") or not inspect.isfunction(obj):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                if not (obj.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
        assert not missing

    def test_every_public_method_documented(self):
        # A method counts as documented if it, or the base-class
        # contract it implements (MRO), carries a docstring.
        def doc_of(cls, name):
            for klass in cls.__mro__:
                member = klass.__dict__.get(name)
                func = None
                if inspect.isfunction(member):
                    func = member
                elif isinstance(member, property) and member.fget:
                    func = member.fget
                if func is not None and (func.__doc__ or "").strip():
                    return func.__doc__
            return None

        missing = []
        for module in ALL_MODULES:
            for cls_name, cls in vars(module).items():
                if cls_name.startswith("_") or not inspect.isclass(cls):
                    continue
                if cls.__module__ != module.__name__:
                    continue
                for name, member in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    is_callable = (inspect.isfunction(member)
                                   or isinstance(member, property))
                    if is_callable and doc_of(cls, name) is None:
                        missing.append(
                            f"{module.__name__}.{cls_name}.{name}")
        assert not missing, sorted(missing)


class TestRepoDocuments:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/architecture.md", "docs/calibration.md",
        "docs/extending.md"])
    def test_document_exists_and_substantial(self, name):
        path = REPO_ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name

    def test_design_lists_every_figure_and_table(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for artifact in ("Table 1", "Table 2", "Table 3", "Fig 4",
                         "Fig 5", "Fig 6", "Fig 7", "Fig 8"):
            assert artifact in text, artifact

    def test_experiments_records_paper_vs_measured(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "22,879" in text or "22879" in text  # a Fig 5 anchor
        assert "Known" in text or "deviation" in text.lower()

    def test_readme_quickstart_is_runnable_code(self):
        text = (REPO_ROOT / "README.md").read_text()
        assert "from repro import CharacterizationStudy" in text
        # The quickstart snippet's imports must actually work.
        from repro import (  # noqa: F401
            JETSON,
            CharacterizationStudy,
            TuningAdvisor,
            get_model,
        )
