"""Tests for repro.data.datasets — the Table 2 inventory."""

import pytest

from repro.data.datasets import (
    DATASET_ORDER,
    DATASETS,
    ImageFormat,
    get_dataset,
    list_datasets,
    table2_rows,
)


class TestTable2Inventory:
    def test_six_datasets(self):
        assert len(DATASETS) == 6

    @pytest.mark.parametrize("name,classes,samples", [
        ("plant_village", 39, 43430),
        ("weed_soybean", 4, 10635),
        ("spittle_bug", 2, 10100),
        ("fruits_360", 81, 40998),
        ("corn_growth", 23, 52198),
        ("crsa", None, 992),
    ])
    def test_classes_and_samples(self, name, classes, samples):
        spec = get_dataset(name)
        assert spec.classes == classes
        assert spec.samples == samples

    @pytest.mark.parametrize("name,mode", [
        ("plant_village", (256, 256)),
        ("weed_soybean", (233, 233)),
        ("spittle_bug", (61, 61)),
        ("fruits_360", (100, 100)),
        ("corn_growth", (224, 224)),
        ("crsa", (3840, 2160)),
    ])
    def test_modal_sizes(self, name, mode):
        assert get_dataset(name).mode_size == mode

    def test_uniform_vs_variable(self):
        assert get_dataset("plant_village").size_distribution.is_uniform
        assert not get_dataset("weed_soybean").size_distribution.is_uniform
        assert not get_dataset("spittle_bug").size_distribution.is_uniform

    def test_weed_soybean_ships_as_tiff(self):
        # The format difference the paper credits for PyTorch variance.
        assert get_dataset("weed_soybean").image_format is ImageFormat.TIFF

    def test_crsa_is_raw_with_dataset_preprocessing(self):
        crsa = get_dataset("crsa")
        assert crsa.image_format is ImageFormat.RAW
        assert crsa.dataset_specific_preprocessing

    def test_only_crsa_needs_dataset_preprocessing(self):
        flagged = [d.name for d in list_datasets()
                   if d.dataset_specific_preprocessing]
        assert flagged == ["crsa"]


class TestImageFormat:
    def test_tiff_larger_than_jpeg_per_pixel(self):
        assert (ImageFormat.TIFF.bytes_per_pixel
                > ImageFormat.JPEG.bytes_per_pixel)

    def test_raw_is_three_bytes_per_pixel(self):
        assert ImageFormat.RAW.bytes_per_pixel == 3.0

    def test_jpeg_decode_is_most_expensive_per_byte(self):
        assert ImageFormat.JPEG.decode_cost_per_byte == max(
            f.decode_cost_per_byte for f in ImageFormat)

    def test_encoded_bytes_at_mode(self):
        pv = get_dataset("plant_village")
        assert pv.encoded_bytes_at_mode() == pytest.approx(
            256 * 256 * 0.45)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_dataset("CRSA").name == "crsa"

    def test_unknown_dataset_raises_with_options(self):
        with pytest.raises(KeyError, match="available"):
            get_dataset("imagenet")

    def test_list_order_matches_table2(self):
        assert [d.name for d in list_datasets()] == list(DATASET_ORDER)

    def test_table2_rows_render_sizes(self):
        rows = {r["dataset"]: r for r in table2_rows()}
        assert rows["Plant Village"]["image_size"] == "256x256"
        assert "mode 233x233" in rows["Weed Detection in Soybean"][
            "image_size"]
        assert rows["CRSA"]["classes"] == "-"
