"""Tests for repro.engine.calibration — the paper's anchor data."""

import pytest

from repro.engine import calibration
from repro.engine.calibration import anchor_for, batch_grid


class TestBatchGrids:
    def test_cloud_grid_reaches_1024(self):
        assert batch_grid("a100")[-1] == 1024
        assert batch_grid("v100")[-1] == 1024

    def test_jetson_grid_stops_at_196(self):
        assert batch_grid("jetson")[-1] == 196

    def test_grids_are_increasing(self):
        for name in ("a100", "v100", "jetson"):
            grid = batch_grid(name)
            assert list(grid) == sorted(set(grid))

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            batch_grid("h100")

    def test_case_insensitive(self):
        assert batch_grid("A100") == batch_grid("a100")


class TestAnchors:
    def test_twelve_anchors(self):
        assert len(calibration.THROUGHPUT_ANCHORS) == 12

    @pytest.mark.parametrize("platform,model,batch,thr", [
        ("a100", "vit_tiny", 1024, 22879.3),
        ("a100", "resnet50", 1024, 16230.7),
        ("v100", "vit_base", 1024, 1482.6),
        ("jetson", "vit_tiny", 196, 1170.1),
        ("jetson", "vit_small", 64, 469.4),
        ("jetson", "vit_base", 8, 201.0),
        ("jetson", "resnet50", 64, 842.9),
    ])
    def test_fig5_legend_values(self, platform, model, batch, thr):
        assert anchor_for(platform, model) == (batch, thr)

    def test_unknown_pair_raises(self):
        with pytest.raises(KeyError):
            anchor_for("a100", "alexnet")

    def test_anchor_batches_lie_on_the_grid(self):
        for (plat, _), (batch, _) in calibration.THROUGHPUT_ANCHORS.items():
            assert batch in batch_grid(plat)


class TestJetsonMemoryAnchors:
    def test_fig5c_max_batches(self):
        assert calibration.JETSON_MAX_BATCH == {
            "vit_tiny": 196, "vit_small": 64, "vit_base": 8,
            "resnet50": 64}

    def test_fig8_e2e_batches(self):
        assert calibration.E2E_BATCH_SIZES[("jetson", "vit_base")] == 2
        assert calibration.E2E_BATCH_SIZES[("v100", "vit_small")] == 32
        assert calibration.E2E_BATCH_SIZES[("a100", "resnet50")] == 64

    def test_e2e_budget_below_engine_budget(self):
        from repro.hardware.platform import JETSON

        assert (calibration.JETSON_E2E_ENGINE_BUDGET_BYTES
                < JETSON.usable_gpu_memory_bytes)

    def test_latency_threshold_is_60qps(self):
        assert calibration.TARGET_QPS == 60.0
        assert calibration.LATENCY_TARGET_SECONDS == pytest.approx(
            1 / 60, abs=1e-9)
