"""Tests for repro.hardware.gemm — the Table 1 methodology."""

import pytest

from repro.hardware.gemm import GemmBenchmark, gemm_flops
from repro.hardware.platform import A100, JETSON, V100


class TestGemmFlops:
    def test_square_gemm_flop_count(self):
        assert gemm_flops(4, 4, 4) == 2 * 64

    def test_rectangular(self):
        assert gemm_flops(2, 3, 5) == 2 * 2 * 3 * 5

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            gemm_flops(0, 4, 4)


class TestModeledSweep:
    @pytest.mark.parametrize("platform", [A100, V100, JETSON],
                             ids=lambda p: p.name)
    def test_plateau_reproduces_table1_practical(self, platform):
        sweep = GemmBenchmark().run_modeled(platform)
        assert sweep.practical_tflops == pytest.approx(
            platform.practical_tflops, rel=0.02)

    @pytest.mark.parametrize("platform", [A100, V100, JETSON],
                             ids=lambda p: p.name)
    def test_efficiency_matches_table1(self, platform):
        sweep = GemmBenchmark().run_modeled(platform)
        assert sweep.efficiency == pytest.approx(
            platform.flops_efficiency, rel=0.03)

    def test_achieved_rate_is_monotone_in_size(self):
        sweep = GemmBenchmark().run_modeled(A100)
        rates = [r.achieved_tflops for r in sweep.results]
        assert rates == sorted(rates)

    def test_achieved_never_exceeds_theoretical(self):
        for platform in (A100, V100, JETSON):
            sweep = GemmBenchmark().run_modeled(platform)
            for result in sweep.results:
                assert result.achieved_tflops < result.theoretical_tflops

    def test_small_gemms_underutilize(self):
        # The launch-overhead regime: a 256-square GEMM on the A100 should
        # sit well below the plateau.
        sweep = GemmBenchmark().run_modeled(A100)
        small = sweep.results[0]
        assert small.size == 256
        assert small.achieved_tflops < 0.5 * sweep.practical_tflops

    def test_seconds_consistent_with_rate(self):
        sweep = GemmBenchmark().run_modeled(V100)
        for result in sweep.results:
            expected = gemm_flops(result.size, result.size, result.size) \
                / (result.achieved_tflops * 1e12)
            assert result.seconds == pytest.approx(expected)


class TestHostSweep:
    def test_real_measurement_runs(self):
        sweep = GemmBenchmark(sizes=(128, 256), repeats=1).run_host(
            max_size=256)
        assert len(sweep.results) == 2
        assert all(r.seconds > 0 for r in sweep.results)
        assert all(r.achieved_tflops > 0 for r in sweep.results)

    def test_max_size_caps_the_sweep(self):
        sweep = GemmBenchmark(sizes=(128, 256, 4096), repeats=1).run_host(
            max_size=256)
        assert max(r.size for r in sweep.results) == 256

    def test_explicit_theoretical_peak_propagates(self):
        sweep = GemmBenchmark(sizes=(128,), repeats=1).run_host(
            theoretical_tflops=100.0, max_size=128)
        assert sweep.results[0].theoretical_tflops == 100.0
        assert sweep.results[0].efficiency < 1.0

    def test_no_sizes_within_cap_raises(self):
        with pytest.raises(ValueError, match="max_size"):
            GemmBenchmark(sizes=(2048,), repeats=1).run_host(max_size=256)


class TestConstruction:
    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            GemmBenchmark(sizes=())

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GemmBenchmark(sizes=(0, 128))

    def test_sizes_are_sorted(self):
        bench = GemmBenchmark(sizes=(512, 128, 256))
        assert bench.sizes == (128, 256, 512)
