"""SLO-burn provisioned-concurrency policy and the what-if crossover."""

import pytest

from repro.faas import FaaSBackend, FaaSFunctionConfig, FaaSPlatformModel
from repro.predict.whatif import compare_serverless
from repro.scale.autoscaler import FaaSConcurrencyPolicy, FaaSPolicyConfig
from repro.serving.events import Simulator
from repro.serving.request import Request
from repro.serving.traces import sparse_diurnal_trace


PLATFORM = FaaSPlatformModel(
    name="test", cold_start_base_seconds=0.5,
    cold_start_jitter_seconds=0.0, artifact_bytes=125e6,
    artifact_bandwidth_bps=1e9, memory_gb=2.0)


def make_policy(config, horizon=12.0):
    """Backend + policy with a foreground heartbeat through ``horizon``.

    The policy tick is a daemon event and re-arms only while
    foreground work pends, so tests pin the loop alive with no-op
    foreground events — the same sampler discipline the autoscaler
    tests rely on.
    """
    sim = Simulator()
    backend = FaaSBackend(sim, seed=None)
    backend.register(FaaSFunctionConfig(
        "fn", lambda n: 0.01, platform=PLATFORM,
        concurrency_limit=8, keep_alive_seconds=60.0))
    policy = FaaSConcurrencyPolicy(backend, "fn", config=config)
    t = 0.0
    while t <= horizon:
        sim.schedule(t, lambda: None)
        t += 0.5
    return sim, backend, policy


class TestPolicyConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="interval"):
            FaaSPolicyConfig(interval=0.0)
        with pytest.raises(ValueError, match="min provisioned"):
            FaaSPolicyConfig(min_provisioned=-1)
        with pytest.raises(ValueError, match="max provisioned"):
            FaaSPolicyConfig(min_provisioned=2, max_provisioned=1)
        with pytest.raises(ValueError, match="step"):
            FaaSPolicyConfig(step=0)
        with pytest.raises(ValueError, match="hold_seconds"):
            FaaSPolicyConfig(hold_seconds=-1.0)


class TestProvisionRelease:
    def test_start_applies_the_minimum_floor(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, min_provisioned=1,
                             max_provisioned=2), horizon=2.0)
        policy.start()
        sim.run()
        assert backend.provisioned_concurrency("fn") == 1
        assert backend.function_stats("fn").prewarms == 1

    def test_alerts_raise_the_floor_step_by_step_to_max(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, max_provisioned=2,
                             hold_seconds=1e9))
        policy.start()
        for t in (0.5, 1.5, 2.5):
            sim.schedule(t, policy.notify_slo_alert)
        sim.run()
        # Third alert is a no-op: the floor is already at max.
        assert backend.provisioned_concurrency("fn") == 2
        actions = [(e.action, e.provisioned) for e in policy.events]
        assert actions == [("provision", 1), ("provision", 2)]
        assert all(e.reason == "slo burn-rate"
                   for e in policy.events)

    def test_sustained_calm_releases_back_to_min(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, max_provisioned=2,
                             hold_seconds=4.0), horizon=12.0)
        policy.start()
        for t in (0.5, 1.5):
            sim.schedule(t, policy.notify_slo_alert)
        sim.run()
        assert backend.provisioned_concurrency("fn") == 0
        actions = [e.action for e in policy.events]
        assert actions == ["provision", "provision",
                           "release", "release"]
        releases = [e for e in policy.events
                    if e.action == "release"]
        assert all(e.reason == "sustained calm" for e in releases)
        # The hold window actually gated the decay: last alert landed
        # at the t=2.0 tick, so no release before t=6.0.
        assert releases[0].time >= 6.0

    def test_fresh_alert_resets_the_calm_clock(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, max_provisioned=1,
                             hold_seconds=4.0), horizon=9.0)
        policy.start()
        sim.schedule(0.5, policy.notify_slo_alert)
        sim.schedule(4.5, policy.notify_slo_alert)
        sim.run()
        releases = [e for e in policy.events
                    if e.action == "release"]
        assert len(releases) == 1
        assert releases[0].time >= 9.0

    def test_metrics_track_events_and_floor(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, max_provisioned=2,
                             hold_seconds=1e9), horizon=4.0)
        policy.start()
        sim.schedule(0.5, policy.notify_slo_alert)
        sim.run()
        metrics = backend.metrics
        assert metrics.get("faas_policy_events_total").value(
            action="provision") == 1
        assert metrics.get("faas_provisioned_concurrency").value(
            function="fn") == 1

    def test_stop_halts_the_loop(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, max_provisioned=2,
                             hold_seconds=1e9))
        policy.start()
        sim.schedule(1.5, policy.stop)
        sim.schedule(2.5, policy.notify_slo_alert)
        sim.run()
        assert policy.events == []

    def test_double_start_rejected(self):
        sim, backend, policy = make_policy(FaaSPolicyConfig())
        policy.start()
        with pytest.raises(RuntimeError, match="already started"):
            policy.start()

    def test_prewarmed_floor_serves_requests_warm(self):
        sim, backend, policy = make_policy(
            FaaSPolicyConfig(interval=1.0, min_provisioned=1,
                             max_provisioned=1), horizon=6.0)
        policy.start()
        sim.schedule(5.0, lambda: backend.submit(Request("fn")))
        sim.run()
        stats = backend.function_stats("fn")
        assert stats.cold_starts == 0
        assert stats.warm_starts == 1


class TestCompareServerless:
    def sparse(self):
        return sparse_diurnal_trace(duration=7200.0, peak_rate=6.0,
                                    night_rate=0.02, seed=1)

    def test_validation(self):
        trace = self.sparse()
        with pytest.raises(ValueError, match="execute_seconds"):
            compare_serverless(trace, execute_seconds=0.0,
                               memory_gb=1.0,
                               replica_cost_per_hour=0.02,
                               replica_qps_capacity=10.0)
        with pytest.raises(ValueError, match="memory_gb"):
            compare_serverless(trace, execute_seconds=0.02,
                               memory_gb=0.0,
                               replica_cost_per_hour=0.02,
                               replica_qps_capacity=10.0)
        with pytest.raises(ValueError, match="capacity"):
            compare_serverless(trace, execute_seconds=0.02,
                               memory_gb=1.0,
                               replica_cost_per_hour=0.02,
                               replica_qps_capacity=0.0)

    def test_break_even_matches_the_replica_rate(self):
        report = compare_serverless(
            self.sparse(), execute_seconds=0.02, memory_gb=4.0,
            replica_cost_per_hour=0.02, replica_qps_capacity=50.0)
        per_second = 0.02 / 3600.0
        assert report["break_even_qps"] * \
            report["per_invocation_usd"] == pytest.approx(per_second)

    def test_sparse_trace_favors_serverless_with_a_crossover(self):
        report = compare_serverless(
            self.sparse(), execute_seconds=0.02, memory_gb=4.0,
            replica_cost_per_hour=0.02, replica_qps_capacity=50.0)
        assert report["cheaper"] == "serverless"
        assert report["peak_rate"] > report["break_even_qps"]
        # Some daylight bins cross over to provisioned-cheaper while
        # the nighttime floor stays serverless-cheaper.
        assert 0 < report["crossover_hours"] < 2.0
        verdicts = {row["serverless_cheaper"]
                    for row in report["bins"]}
        assert verdicts == {True, False}

    def test_dense_trace_favors_provisioned(self):
        dense = sparse_diurnal_trace(duration=7200.0, peak_rate=60.0,
                                     night_rate=50.0, seed=1)
        report = compare_serverless(
            dense, execute_seconds=0.02, memory_gb=4.0,
            replica_cost_per_hour=0.02, replica_qps_capacity=100.0)
        assert report["cheaper"] == "provisioned"
        assert report["crossover_hours"] == 0.0

    def test_totals_integrate_the_bin_rates(self):
        report = compare_serverless(
            self.sparse(), execute_seconds=0.02, memory_gb=4.0,
            replica_cost_per_hour=0.02, replica_qps_capacity=50.0,
            bins=12)
        bin_seconds = 7200.0 / 12
        expected = sum(row["serverless_usd_per_s"] * bin_seconds
                       for row in report["bins"])
        assert report["serverless_total_usd"] == pytest.approx(
            expected)
        assert report["provisioned_total_usd"] == pytest.approx(
            report["replicas"] * 0.02 / 3600.0 * 7200.0)
