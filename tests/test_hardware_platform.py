"""Tests for repro.hardware.platform — the Table 1 inventory."""

import dataclasses

import pytest

from repro.hardware.platform import (
    A100,
    JETSON,
    PLATFORMS,
    PlatformKind,
    PlatformSpec,
    Scenario,
    V100,
    get_platform,
    list_platforms,
)
from repro.hardware.precision import Precision


class TestTable1Inventory:
    """The registry must reproduce Table 1 exactly."""

    def test_three_platforms_registered(self):
        assert len(PLATFORMS) == 3

    def test_cpu_cores(self):
        assert V100.cpu_cores == 40
        assert A100.cpu_cores == 128
        assert JETSON.cpu_cores == 6

    def test_memory(self):
        assert V100.host_memory_gb == 384.0
        assert A100.host_memory_gb == 256.0
        assert JETSON.host_memory_gb == 8.0

    def test_theory_tflops(self):
        assert V100.theoretical_tflops[Precision.FP16] == 112.0
        assert A100.theoretical_tflops[Precision.BF16] == 312.0
        assert JETSON.theoretical_tflops[Precision.FP16] == 17.0

    def test_practical_tflops(self):
        assert V100.practical_tflops == 92.6
        assert A100.practical_tflops == 236.3
        assert JETSON.practical_tflops == 11.4

    def test_efficiency_range_of_cloud_platforms(self):
        # "FLOPS efficiency achieved on each platform ranges from 75.74%
        # to 82.68%" (the two cloud platforms).
        assert A100.flops_efficiency == pytest.approx(0.7574, abs=1e-4)
        assert V100.flops_efficiency == pytest.approx(0.8268, abs=1e-4)

    def test_scenarios(self):
        assert Scenario.ONLINE in A100.scenarios
        assert Scenario.OFFLINE in V100.scenarios
        assert JETSON.scenarios == (Scenario.REAL_TIME,)

    def test_only_jetson_has_unified_memory(self):
        assert JETSON.unified_memory
        assert not A100.unified_memory and not V100.unified_memory

    def test_jetson_power_mode(self):
        # "Jetson platforms ... operate in 25W power mode."
        assert JETSON.power_watts == 25.0

    def test_cloud_nodes_have_two_gpus_but_one_is_used(self):
        # "V100 and A100 experiments used only one of the two GPUs."
        assert A100.gpu_count == 2 and V100.gpu_count == 2


class TestDerivedQuantities:
    def test_practical_flops_unit_conversion(self):
        assert A100.practical_flops == pytest.approx(236.3e12)

    def test_peak_flops_lookup(self):
        assert V100.peak_flops("fp16") == pytest.approx(112e12)

    def test_peak_flops_unsupported_precision_raises(self):
        with pytest.raises(KeyError, match="does not support"):
            V100.peak_flops(Precision.BF16)

    def test_supports(self):
        assert A100.supports("bf16")
        assert not V100.supports("bf16")

    def test_throughput_upper_bound_table3_example(self):
        # Table 3: ViT Base on A100 -> 14,013 img/s (236.3e12 / 16.86e9).
        bound = A100.throughput_upper_bound(16.86e9)
        assert bound == pytest.approx(14013, rel=0.01)

    def test_throughput_upper_bound_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            A100.throughput_upper_bound(0.0)

    def test_min_latency_scales_linearly_with_batch(self):
        one = A100.min_latency_seconds(4.09e9, 1)
        many = A100.min_latency_seconds(4.09e9, 64)
        assert many == pytest.approx(64 * one)

    def test_min_latency_rejects_zero_batch(self):
        with pytest.raises(ValueError):
            A100.min_latency_seconds(1e9, 0)

    def test_usable_memory_below_physical(self):
        for platform in list_platforms():
            assert (platform.usable_gpu_memory_bytes
                    < platform.gpu_memory_gb * 1e9)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_platform("A100") is A100
        assert get_platform("jetson") is JETSON

    def test_unknown_platform_raises_with_options(self):
        with pytest.raises(KeyError, match="available"):
            get_platform("h100")

    def test_list_order_is_table1_column_order(self):
        assert [p.name for p in list_platforms()] == ["A100", "V100",
                                                      "Jetson"]


class TestValidation:
    def test_practical_cannot_exceed_theoretical(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            dataclasses.replace(A100, practical_tflops=400.0)

    def test_benchmark_precision_must_be_supported(self):
        with pytest.raises(ValueError, match="missing"):
            dataclasses.replace(V100, benchmark_precision=Precision.BF16)

    def test_nonpositive_practical_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(A100, practical_tflops=0.0)

    def test_platform_kind_values(self):
        assert A100.kind is PlatformKind.CLOUD
        assert JETSON.kind is PlatformKind.EDGE

    def test_spec_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            A100.cpu_cores = 1  # type: ignore[misc]
