"""Tests for repro.core.autotune — the SLO feedback controller."""

import numpy as np
import pytest

from repro.core.autotune import SLOAutotuner
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.server import ModelConfig, TritonLikeServer


def make_server(initial_delay=0.03):
    latency = LatencyModel(get_model("vit_tiny").graph, A100)
    server = TritonLikeServer()
    server.register(ModelConfig(
        "m", lambda n: latency.latency(max(1, n)),
        batcher=BatcherConfig(max_batch_size=256,
                              max_queue_delay=initial_delay)))
    return server


class TestController:
    def test_shrinks_delay_when_slo_violated(self):
        server = make_server(initial_delay=0.03)
        tuner = SLOAutotuner(server, "m", target_p95_seconds=0.010,
                             interval_seconds=0.2)
        tuner.start(duration=2.0)
        client = OpenLoopClient(server, "m", rate_per_second=3000,
                               num_requests=6000, seed=3)
        client.start()
        server.run()
        assert tuner.current_delay < 0.03
        # The tail of the run meets the SLO.
        late = [r.latency for r in server.responses[-1000:]]
        assert float(np.percentile(late, 95)) < 0.010

    def test_grows_delay_when_headroom(self):
        server = make_server(initial_delay=0.0005)
        tuner = SLOAutotuner(server, "m", target_p95_seconds=0.05,
                             interval_seconds=0.2, grow_step=2e-3)
        tuner.start(duration=2.0)
        client = OpenLoopClient(server, "m", rate_per_second=2000,
                               num_requests=4000, seed=4)
        client.start()
        server.run()
        assert tuner.current_delay > 0.0005
        assert any(step.action == "grow" for step in tuner.history)

    def test_idle_windows_recorded(self):
        server = make_server()
        tuner = SLOAutotuner(server, "m", target_p95_seconds=0.01,
                             interval_seconds=0.1)
        tuner.start(duration=0.5)
        server.run()  # no traffic at all
        assert tuner.history
        assert all(step.action == "idle" for step in tuner.history)

    def test_bounded_by_min_and_max(self):
        server = make_server(initial_delay=0.01)
        tuner = SLOAutotuner(server, "m", target_p95_seconds=1e-6,
                             interval_seconds=0.1, min_delay=1e-3)
        tuner.start(duration=1.0)
        client = OpenLoopClient(server, "m", rate_per_second=1000,
                               num_requests=1000, seed=5)
        client.start()
        server.run()
        assert tuner.current_delay >= 1e-3

    def test_violations_counter(self):
        server = make_server(initial_delay=0.03)
        tuner = SLOAutotuner(server, "m", target_p95_seconds=0.005,
                             interval_seconds=0.2)
        tuner.start(duration=1.0)
        client = OpenLoopClient(server, "m", rate_per_second=3000,
                               num_requests=3000, seed=6)
        client.start()
        server.run()
        assert tuner.violations() >= 1

    def test_double_start_rejected(self):
        server = make_server()
        tuner = SLOAutotuner(server, "m", target_p95_seconds=0.01)
        tuner.start(duration=0.1)
        with pytest.raises(RuntimeError):
            tuner.start()

    def test_validation(self):
        server = make_server()
        with pytest.raises(ValueError):
            SLOAutotuner(server, "m", target_p95_seconds=0)
        with pytest.raises(ValueError):
            SLOAutotuner(server, "m", 0.01, min_delay=0.1,
                         max_delay=0.01)
        with pytest.raises(ValueError):
            SLOAutotuner(server, "m", 0.01, shrink_factor=1.5)


class TestLiveReconfiguration:
    def test_reconfigure_batcher_swaps_policy(self):
        server = make_server(initial_delay=0.02)
        new = BatcherConfig(max_batch_size=8, max_queue_delay=0.001)
        server.reconfigure_batcher("m", new)
        assert server.batcher_config("m") == new

    def test_unknown_model_rejected(self):
        server = make_server()
        with pytest.raises(KeyError):
            server.reconfigure_batcher("nope", BatcherConfig())
        with pytest.raises(KeyError):
            server.batcher_config("nope")
