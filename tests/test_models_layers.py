"""Tests for repro.models.layers — per-layer accounting."""

import pytest

from repro.models.layers import (
    Activation,
    Add,
    AttentionMatmul,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    LayerCategory,
    LayerNorm,
    Linear,
    PatchEmbed,
    Pool2d,
    PositionEmbedding,
    Softmax,
    TokenConcat,
)


class TestConv2d:
    def make(self, **kw):
        defaults = dict(name="c", in_channels=3, out_channels=8,
                        in_hw=(16, 16), kernel_size=3, stride=1, padding=1)
        defaults.update(kw)
        return Conv2d(**defaults)

    def test_same_padding_preserves_spatial(self):
        assert self.make().out_hw == (16, 16)

    def test_stride_halves_spatial(self):
        assert self.make(stride=2).out_hw == (8, 8)

    def test_params_without_bias(self):
        assert self.make().params() == 8 * 3 * 9

    def test_params_with_bias(self):
        assert self.make(bias=True).params() == 8 * 3 * 9 + 8

    def test_macs_formula(self):
        conv = self.make()
        assert conv.macs() == 8 * 16 * 16 * 3 * 9

    def test_stride_reduces_macs_quadratically(self):
        assert self.make(stride=2).macs() == self.make().macs() / 4

    def test_collapsed_output_rejected(self):
        with pytest.raises(ValueError, match="collapsed"):
            self.make(in_hw=(2, 2), kernel_size=3, padding=0)

    def test_category(self):
        assert self.make().category is LayerCategory.CONV

    def test_no_elementwise_flops(self):
        assert self.make().elementwise_flops() == 0.0


class TestLinear:
    def test_params(self):
        layer = Linear("l", in_features=10, out_features=5)
        assert layer.params() == 55

    def test_params_no_bias(self):
        layer = Linear("l", in_features=10, out_features=5, bias=False)
        assert layer.params() == 50

    def test_macs_scale_with_tokens(self):
        one = Linear("l", 10, 5, tokens=1)
        many = Linear("l", 10, 5, tokens=7)
        assert many.macs() == 7 * one.macs()

    def test_shapes(self):
        layer = Linear("l", 10, 5, tokens=3)
        assert layer.input_shape == (3, 10)
        assert layer.output_shape == (3, 5)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            Linear("l", 0, 5)


class TestAttentionMatmul:
    def test_macs_are_quadratic_in_tokens(self):
        # "attention layers scale quadratically with respect to input
        # sequence length" (Section 3.1).
        small = AttentionMatmul("a", tokens=10, dim=8, heads=2)
        large = AttentionMatmul("a", tokens=20, dim=8, heads=2)
        assert large.macs() == 4 * small.macs()

    def test_macs_formula(self):
        layer = AttentionMatmul("a", tokens=5, dim=8, heads=2)
        assert layer.macs() == 2 * 25 * 8

    def test_no_params(self):
        assert AttentionMatmul("a", tokens=5, dim=8, heads=2).params() == 0

    def test_activation_includes_score_matrix(self):
        layer = AttentionMatmul("a", tokens=5, dim=8, heads=2)
        assert layer.activation_elements() == 2 * 25 + 5 * 8

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            AttentionMatmul("a", tokens=5, dim=9, heads=2)

    def test_category_is_attention(self):
        layer = AttentionMatmul("a", tokens=5, dim=8, heads=2)
        assert layer.category is LayerCategory.ATTENTION


class TestNormalizationLayers:
    def test_batchnorm_params_are_two_per_channel(self):
        assert BatchNorm2d("bn", channels=16, in_hw=(4, 4)).params() == 32

    def test_batchnorm_has_no_macs(self):
        assert BatchNorm2d("bn", channels=16, in_hw=(4, 4)).macs() == 0

    def test_batchnorm_elementwise_flops(self):
        bn = BatchNorm2d("bn", channels=2, in_hw=(3, 3))
        assert bn.elementwise_flops() == 2 * 2 * 9

    def test_layernorm_params(self):
        assert LayerNorm("ln", tokens=7, dim=16).params() == 32

    def test_layernorm_shape_passthrough(self):
        ln = LayerNorm("ln", tokens=7, dim=16)
        assert ln.input_shape == ln.output_shape == (7, 16)


class TestActivations:
    def test_relu_one_flop_per_element(self):
        act = Activation("r", kind="relu", shape=(2, 3))
        assert act.elementwise_flops() == 6

    def test_gelu_costs_more_than_relu(self):
        relu = Activation("r", kind="relu", shape=(2, 3))
        gelu = Activation("g", kind="gelu", shape=(2, 3))
        assert gelu.elementwise_flops() > relu.elementwise_flops()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Activation("x", kind="swish", shape=(2,))

    def test_softmax_flops(self):
        sm = Softmax("s", tokens=4, heads=2)
        assert sm.elementwise_flops() == 3 * 2 * 16


class TestPooling:
    def test_maxpool_output_shape(self):
        pool = Pool2d("p", kind="max", channels=4, in_hw=(8, 8),
                      kernel_size=2, stride=2)
        assert pool.output_shape == (4, 4, 4)

    def test_pool_padding(self):
        pool = Pool2d("p", kind="max", channels=1, in_hw=(7, 7),
                      kernel_size=3, stride=2, padding=1)
        assert pool.out_hw == (4, 4)

    def test_unknown_pool_kind_rejected(self):
        with pytest.raises(ValueError):
            Pool2d("p", kind="median", channels=1, in_hw=(4, 4),
                   kernel_size=2, stride=2)

    def test_global_avgpool_collapses_spatial(self):
        pool = GlobalAvgPool("g", channels=32, in_hw=(7, 7))
        assert pool.output_shape == (32,)
        assert pool.elementwise_flops() == 32 * 49


class TestEmbeddings:
    def test_patch_embed_token_count(self):
        pe = PatchEmbed("pe", in_channels=3, dim=8, img_hw=(16, 16),
                        patch_size=4)
        assert pe.num_patches == 16
        assert pe.output_shape == (16, 8)

    def test_patch_embed_params_include_bias(self):
        pe = PatchEmbed("pe", in_channels=3, dim=8, img_hw=(16, 16),
                        patch_size=4)
        assert pe.params() == 8 * 3 * 16 + 8

    def test_patch_embed_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            PatchEmbed("pe", in_channels=3, dim=8, img_hw=(17, 16),
                       patch_size=4)

    def test_token_concat_adds_one_token(self):
        tc = TokenConcat("cls", tokens=16, dim=8)
        assert tc.output_shape == (17, 8)
        assert tc.params() == 8
        assert tc.macs() == 0

    def test_position_embedding_params(self):
        pe = PositionEmbedding("pos", tokens=17, dim=8)
        assert pe.params() == 17 * 8

    def test_residual_add(self):
        add = Add("res", shape=(17, 8))
        assert add.params() == 0
        assert add.elementwise_flops() == 17 * 8
