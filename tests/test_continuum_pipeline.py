"""Tests for repro.continuum.pipeline — the Fig. 8 composition."""

import pytest

from repro.continuum.pipeline import EndToEndPipeline, e2e_batch_size
from repro.data.datasets import get_dataset, list_datasets
from repro.hardware.platform import A100, JETSON, V100
from repro.preprocessing.frameworks import DALI, OpenCVCPU


class TestE2EBatchSize:
    """The Fig. 8 x-labels must reproduce."""

    @pytest.mark.parametrize("platform,expected", [
        (A100, {"vit_tiny": 64, "vit_small": 64, "vit_base": 64,
                "resnet50": 64}),
        (V100, {"vit_tiny": 64, "vit_small": 32, "vit_base": 2,
                "resnet50": 32}),
        (JETSON, {"vit_tiny": 64, "vit_small": 32, "vit_base": 2,
                  "resnet50": 32}),
    ], ids=lambda v: v.name if hasattr(v, "name") else "")
    def test_paper_batch_labels(self, platform, expected, all_models):
        for graph in all_models:
            assert e2e_batch_size(platform, graph) == expected[graph.name]

    def test_unanchored_model_falls_back_to_memory_model(self):
        from repro.models.vit import ViTConfig, build_vit

        cfg = ViTConfig("custom_e2e", img_size=32, patch_size=2, dim=128,
                        depth=6, heads=4)
        graph = build_vit(cfg)
        batch = e2e_batch_size(A100, graph)
        assert 1 <= batch <= 64


class TestPipelineEvaluation:
    def test_latency_is_sum_of_stages(self, vit_small):
        pipeline = EndToEndPipeline(vit_small, A100)
        result = pipeline.evaluate(get_dataset("plant_village"))
        assert result.latency_seconds == pytest.approx(
            result.preprocess_latency_seconds
            + result.engine_latency_seconds)

    def test_throughput_is_bottleneck_stage(self, vit_small):
        pipeline = EndToEndPipeline(vit_small, A100)
        result = pipeline.evaluate(get_dataset("plant_village"))
        assert result.throughput == pytest.approx(min(
            result.preprocess_throughput, result.engine_throughput))

    def test_default_framework_matches_model_input(self, vit_base):
        pipeline = EndToEndPipeline(vit_base, A100)
        assert pipeline.framework.output_size == 224

    def test_mismatched_framework_rejected(self, vit_base):
        with pytest.raises(ValueError, match="expects"):
            EndToEndPipeline(vit_base, A100, framework=DALI(32))

    def test_crsa_with_dali_rejected(self, vit_tiny):
        pipeline = EndToEndPipeline(vit_tiny, A100)
        with pytest.raises(ValueError, match="dataset-specific"):
            pipeline.evaluate(get_dataset("crsa"))

    def test_crsa_with_cpu_warp_framework_accepted(self, vit_tiny):
        pipeline = EndToEndPipeline(vit_tiny, A100,
                                    framework=OpenCVCPU(32))
        result = pipeline.evaluate(get_dataset("crsa"), batch_size=1)
        assert result.throughput > 0

    def test_sweep_skips_crsa_for_gpu_framework(self, vit_tiny):
        pipeline = EndToEndPipeline(vit_tiny, A100)
        results = pipeline.sweep_datasets(list_datasets())
        assert {r.dataset for r in results} == {
            "plant_village", "weed_soybean", "spittle_bug", "fruits_360",
            "corn_growth"}

    def test_explicit_batch_override(self, vit_tiny):
        pipeline = EndToEndPipeline(vit_tiny, A100)
        result = pipeline.evaluate(get_dataset("fruits_360"),
                                   batch_size=8)
        assert result.batch_size == 8

    def test_invalid_batch_rejected(self, vit_tiny):
        pipeline = EndToEndPipeline(vit_tiny, A100)
        with pytest.raises(ValueError):
            pipeline.evaluate(get_dataset("fruits_360"), batch_size=0)


class TestPaperShapeClaims:
    def test_a100_large_models_approach_engine_bound(self, vit_small,
                                                     vit_base):
        # "larger models such as ViT-Base and ViT-Small benefit from
        # effective preprocessing-inference latency overlap, achieving
        # performance approaching the model engine's theoretical upper
        # bound."
        for graph in (vit_small, vit_base):
            result = EndToEndPipeline(graph, A100).evaluate(
                get_dataset("plant_village"))
            assert result.bottleneck == "engine"
            assert result.throughput == pytest.approx(
                result.engine_throughput)

    def test_small_models_preprocessing_bottlenecked(self, vit_tiny):
        # "Conversely, smaller models remain preprocessing-bottlenecked,
        # particularly on platforms with limited preprocessing
        # capabilities like the V100."
        for platform in (A100, V100):
            result = EndToEndPipeline(vit_tiny, platform).evaluate(
                get_dataset("plant_village"))
            assert result.bottleneck == "preprocess"

    def test_jetson_vit_base_degrades_most(self, all_models):
        # "ViT-Base, possessing the highest memory requirements,
        # demonstrates the most severe performance degradation, while
        # remaining models exhibit comparable performance reductions."
        # The degradation is the memory-contention effect: preprocessing
        # residency shrinks the engine batch (Fig. 8c labels vs Fig. 5c),
        # so compare engine throughput at the two batch sizes.
        from repro.engine.latency import LatencyModel
        from repro.engine.oom import max_batch_size

        retained = {}
        for graph in all_models:
            model = LatencyModel(graph, JETSON)
            engine_only = model.throughput(max_batch_size(graph, JETSON))
            contended = model.throughput(e2e_batch_size(JETSON, graph))
            retained[graph.name] = contended / engine_only
        assert retained["vit_base"] == min(retained.values())
        # The other three cluster together ("comparable reductions").
        others = [v for k, v in retained.items() if k != "vit_base"]
        assert max(others) - min(others) < 0.15
        assert retained["vit_base"] < min(others) - 0.15
