"""Tests for repro.preprocessing.frameworks — the Fig. 7 models."""

import numpy as np
import pytest

from repro.data.datasets import get_dataset, list_datasets
from repro.data.synthetic import synth_image
from repro.hardware.platform import A100, JETSON, V100
from repro.preprocessing.cost import cost_params_for
from repro.preprocessing.frameworks import (
    DALI,
    FrameworkKind,
    OpenCVCPU,
    PyTorchCPU,
    framework_catalog,
)


class TestCatalog:
    def test_fig7_legend_order(self):
        names = [f.name for f in framework_catalog()]
        assert names == ["DALI 224", "DALI 96", "DALI 32", "PyTorch",
                         "CV2"]

    def test_default_batch_sizes_match_fig7(self):
        catalog = {f.name: f for f in framework_catalog()}
        assert catalog["DALI 224"].default_batch_size == 64
        assert catalog["PyTorch"].default_batch_size == 1
        assert catalog["CV2"].default_batch_size == 1

    def test_kinds(self):
        catalog = {f.name: f for f in framework_catalog()}
        assert catalog["DALI 32"].kind is FrameworkKind.GPU
        assert catalog["PyTorch"].kind is FrameworkKind.CPU


class TestDALIOrdering:
    """Fig. 7: smaller DALI output resolutions preprocess faster."""

    @pytest.mark.parametrize("platform", [A100, V100, JETSON],
                             ids=lambda p: p.name)
    def test_dali_32_faster_than_96_faster_than_224(self, platform):
        pv = get_dataset("plant_village")
        t224 = DALI(224).estimate(pv, platform).per_image_seconds
        t96 = DALI(96).estimate(pv, platform).per_image_seconds
        t32 = DALI(32).estimate(pv, platform).per_image_seconds
        assert t32 < t96 < t224

    def test_dataset_differences_converge_at_high_resolution(self):
        # "As transformation complexity dominates at higher resolutions
        # (DALI 96, 224), performance differences across datasets
        # converge."
        datasets = [get_dataset(n) for n in
                    ("plant_village", "fruits_360", "spittle_bug")]

        def spread(output_size):
            times = [DALI(output_size).estimate(d, A100).per_image_seconds
                     for d in datasets]
            return (max(times) - min(times)) / min(times)

        assert spread(224) < spread(32)

    def test_batch_overhead_amortizes(self):
        pv = get_dataset("plant_village")
        bs1 = DALI(32).estimate(pv, A100, batch_size=1)
        bs64 = DALI(32).estimate(pv, A100, batch_size=64)
        assert bs64.per_image_seconds < bs1.per_image_seconds


class TestPlatformOrdering:
    @pytest.mark.parametrize("framework", framework_catalog()[:4],
                             ids=lambda f: f.name)
    def test_a100_fastest_jetson_slowest(self, framework):
        pv = get_dataset("plant_village")
        a = framework.estimate(pv, A100).per_image_seconds
        v = framework.estimate(pv, V100).per_image_seconds
        j = framework.estimate(pv, JETSON).per_image_seconds
        assert a <= v <= j

    def test_gpu_preprocessing_beats_cpu_baseline(self):
        # "GPU-accelerated preprocessing frameworks like NVIDIA DALI
        # demonstrate significant speedups over traditional CPU-based
        # pipelines."
        pv = get_dataset("plant_village")
        dali = DALI(224).estimate(pv, A100)
        torch = PyTorchCPU(224).estimate(pv, A100)
        assert dali.throughput > 5 * torch.throughput


class TestPyTorchBaseline:
    def test_varies_across_encoding_formats(self):
        # "PyTorch ... exhibiting varying performance across datasets -
        # likely attributable to differences in image encoding formats
        # (e.g., TIFF vs. JPEG)."
        fw = PyTorchCPU(224)
        tiff = fw.estimate(get_dataset("weed_soybean"), A100)
        jpeg_similar_size = fw.estimate(get_dataset("corn_growth"), A100)
        assert tiff.per_image_seconds != pytest.approx(
            jpeg_similar_size.per_image_seconds, rel=0.02)

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            PyTorchCPU(224).estimate(get_dataset("crsa"), A100,
                                     batch_size=0)


class TestOpenCVOnCRSA:
    def test_crsa_is_slow_on_every_platform(self):
        # "demonstrates poor performance in real-time scenarios": far
        # over the 16.7 ms real-time budget everywhere.
        crsa = get_dataset("crsa")
        for platform in (A100, V100, JETSON):
            est = OpenCVCPU(224).estimate(crsa, platform)
            assert est.per_image_seconds > 0.1

    def test_warp_surcharge_applies_only_to_crsa(self):
        fw = OpenCVCPU(224)
        crsa = fw.estimate(get_dataset("crsa"), A100)
        torch_crsa = PyTorchCPU(224).estimate(get_dataset("crsa"), A100)
        assert crsa.per_image_seconds > 2 * torch_crsa.per_image_seconds

    def test_cv2_runs_the_perspective_stage(self):
        assert OpenCVCPU(224).supports_warp
        assert not DALI(224).supports_warp
        assert not PyTorchCPU(224).supports_warp


class TestFunctionalRun:
    def test_run_produces_model_batch(self, rng):
        fw = DALI(32)
        images = [synth_image(50, 40, rng) for _ in range(3)]
        out = fw.run(images, get_dataset("plant_village"))
        assert out.shape == (3, 3, 32, 32)
        assert out.dtype == np.float32

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            DALI(32).run([], get_dataset("plant_village"))

    def test_cv2_run_applies_perspective_for_crsa(self, rng):
        from repro.data.synthetic import synth_crsa_frame

        fw = OpenCVCPU(32)
        frame = synth_crsa_frame(192, 108)
        out = fw.run([frame], get_dataset("crsa"))
        assert out.shape == (1, 3, 32, 32)


class TestEstimateMetadata:
    def test_throughput_is_inverse_per_image(self):
        est = DALI(32).estimate(get_dataset("fruits_360"), A100)
        assert est.throughput == pytest.approx(1.0 / est.per_image_seconds)

    def test_batch_latency(self):
        est = DALI(32).estimate(get_dataset("fruits_360"), A100)
        assert est.batch_latency_seconds == pytest.approx(
            64 * est.per_image_seconds)

    def test_memory_positive_and_scales_with_batch(self):
        small = DALI(224).estimate(get_dataset("plant_village"), JETSON,
                                   batch_size=8)
        large = DALI(224).estimate(get_dataset("plant_village"), JETSON,
                                   batch_size=64)
        assert 0 < small.memory_bytes < large.memory_bytes

    def test_unknown_platform_cost_params_raise(self):
        with pytest.raises(KeyError, match="available"):
            cost_params_for("tpu")
