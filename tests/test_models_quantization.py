"""Tests for repro.models.quantization — the INT8 accuracy trade-off."""

import numpy as np
import pytest

from repro.models.quantization import (
    evaluate_quantization,
    fake_quantize,
    quantize_tensor,
    quantize_weights,
    quantized_model,
    sqnr_db,
)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        q, scale = quantize_tensor(x, bits=8)
        error = np.abs(x - q * scale)
        assert error.max() <= scale / 2 + 1e-7

    def test_int_range_respected(self, rng):
        x = rng.standard_normal(1000) * 100
        q, _ = quantize_tensor(x, bits=8)
        assert q.max() <= 127 and q.min() >= -127

    def test_zero_tensor(self):
        q, scale = quantize_tensor(np.zeros(10))
        assert (q == 0).all() and scale == 1.0

    def test_more_bits_less_error(self, rng):
        x = rng.standard_normal(4096)
        e4 = np.abs(x - fake_quantize(x, 4)).mean()
        e8 = np.abs(x - fake_quantize(x, 8)).mean()
        e12 = np.abs(x - fake_quantize(x, 12)).mean()
        assert e12 < e8 < e4

    def test_bits_validated(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=17)


class TestSQNR:
    def test_identical_signal_is_infinite(self, rng):
        x = rng.standard_normal(100)
        assert sqnr_db(x, x) == float("inf")

    def test_eight_bit_weights_around_40db(self, rng):
        # Rule of thumb: ~6 dB per bit, minus headroom for the peak.
        x = rng.standard_normal(100_000)
        value = sqnr_db(x, fake_quantize(x, 8))
        assert 30 < value < 55


class TestQuantizeWeights:
    def test_bn_and_bias_stay_float(self, rng):
        weights = {
            "conv.weight": rng.standard_normal((4, 4)).astype(np.float32),
            "conv.bias": rng.standard_normal(4).astype(np.float32),
            "bn.gamma": rng.standard_normal(4).astype(np.float32),
            "bn.mean": rng.standard_normal(4).astype(np.float32),
        }
        out = quantize_weights(weights, bits=8)
        assert out["conv.bias"] is weights["conv.bias"]
        assert out["bn.gamma"] is weights["bn.gamma"]
        assert out["bn.mean"] is weights["bn.mean"]
        assert out["conv.weight"] is not weights["conv.weight"]

    def test_quantized_weights_on_grid(self, rng):
        weights = {"w": rng.standard_normal((64, 64)).astype(np.float32)}
        out = quantize_weights(weights, bits=8)["w"]
        scale = np.abs(weights["w"]).max() / 127
        steps = out / scale
        np.testing.assert_allclose(steps, np.rint(steps), atol=1e-4)


class TestEndToEndQuantization:
    def test_int8_vit_tiny_agrees_with_fp32(self):
        # The Section 3.1 claim quantified: INT8 "may reduce accuracy"
        # but for this model class the drop is minor - logits stay close
        # and top-1 decisions mostly agree on synthetic inputs.
        report = evaluate_quantization("vit_tiny", bits=8, batch=8)
        assert report.top1_agreement >= 0.75
        assert report.weight_sqnr_db > 30

    def test_fewer_bits_more_drift(self):
        int8 = evaluate_quantization("vit_tiny", bits=8, batch=4)
        int4 = evaluate_quantization("vit_tiny", bits=4, batch=4)
        assert int4.mean_abs_logit_error > int8.mean_abs_logit_error
        assert int4.weight_sqnr_db < int8.weight_sqnr_db

    def test_quantized_model_runs(self, rng):
        model = quantized_model("vit_tiny", bits=8)
        x = rng.standard_normal((1, 3, 32, 32)).astype(np.float32)
        out = model(x)
        assert out.shape == (1, 39)
        assert np.isfinite(out).all()
