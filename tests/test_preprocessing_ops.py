"""Tests for repro.preprocessing.ops — the real image ops."""

import numpy as np
import pytest

from repro.preprocessing.ops import (
    center_crop,
    ground_plane_homography,
    normalize,
    resize_bilinear,
    solve_homography,
    to_chw,
    warp_perspective,
)


class TestResize:
    def test_output_shape(self, rng):
        img = rng.random((40, 60, 3)).astype(np.float32)
        assert resize_bilinear(img, 20, 30).shape == (20, 30, 3)

    def test_identity_resize_preserves_values(self, rng):
        img = rng.random((16, 16, 3)).astype(np.float32)
        np.testing.assert_allclose(resize_bilinear(img, 16, 16), img,
                                   atol=1e-5)

    def test_constant_image_stays_constant(self):
        img = np.full((10, 10, 3), 42.0, np.float32)
        out = resize_bilinear(img, 23, 7)
        np.testing.assert_allclose(out, 42.0, rtol=1e-6)

    def test_upscale_preserves_gradient_direction(self):
        ramp = np.tile(np.arange(8, dtype=np.float32)[None, :, None],
                       (8, 1, 3))
        out = resize_bilinear(ramp, 16, 16)
        assert (np.diff(out[8, :, 0]) >= -1e-5).all()

    def test_mean_preserved_downscale(self, rng):
        img = rng.random((64, 64, 3)).astype(np.float32)
        out = resize_bilinear(img, 32, 32)
        assert out.mean() == pytest.approx(img.mean(), abs=0.02)

    def test_uint8_input_accepted(self, rng):
        img = (rng.random((8, 8, 3)) * 255).astype(np.uint8)
        out = resize_bilinear(img, 4, 4)
        assert out.dtype == np.float32

    def test_invalid_inputs_rejected(self, rng):
        with pytest.raises(ValueError):
            resize_bilinear(rng.random((8, 8)), 4, 4)
        with pytest.raises(ValueError):
            resize_bilinear(rng.random((8, 8, 3)), 0, 4)


class TestCenterCrop:
    def test_crop_is_centered(self):
        img = np.zeros((10, 10, 1), np.float32)
        img[4:6, 4:6] = 1.0
        out = center_crop(img, 2, 2)
        np.testing.assert_array_equal(out, np.ones((2, 2, 1)))

    def test_full_size_crop_is_identity(self, rng):
        img = rng.random((6, 8, 3))
        np.testing.assert_array_equal(center_crop(img, 6, 8), img)

    def test_oversized_crop_rejected(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            center_crop(rng.random((4, 4, 3)), 5, 4)


class TestNormalize:
    def test_uint8_scaling_and_standardization(self):
        img = np.full((2, 2, 3), 255, np.uint8)
        mean = np.array([0.5, 0.5, 0.5])
        std = np.array([0.25, 0.5, 1.0])
        out = normalize(img, mean, std)
        np.testing.assert_allclose(out[0, 0], [2.0, 1.0, 0.5], rtol=1e-6)

    def test_mean_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="shape"):
            normalize(rng.random((2, 2, 3)), np.zeros(2), np.ones(2))

    def test_nonpositive_std_rejected(self, rng):
        with pytest.raises(ValueError, match="std"):
            normalize(rng.random((2, 2, 3)), np.zeros(3), np.zeros(3))

    def test_output_is_float32(self, rng):
        out = normalize((rng.random((2, 2, 3)) * 255).astype(np.uint8),
                        np.zeros(3), np.ones(3))
        assert out.dtype == np.float32


class TestToCHW:
    def test_layout_transpose(self, rng):
        img = rng.random((4, 6, 3)).astype(np.float32)
        out = to_chw(img)
        assert out.shape == (3, 4, 6)
        np.testing.assert_array_equal(out[1], img[..., 1])

    def test_contiguous_output(self, rng):
        assert to_chw(rng.random((4, 6, 3))).flags["C_CONTIGUOUS"]

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            to_chw(rng.random((4, 6)))


class TestHomography:
    def test_identity_from_identical_points(self):
        pts = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], float)
        h = solve_homography(pts, pts)
        np.testing.assert_allclose(h, np.eye(3), atol=1e-9)

    def test_translation(self):
        src = np.array([[0, 0], [10, 0], [10, 10], [0, 10]], float)
        dst = src + [5, 7]
        h = solve_homography(src, dst)
        mapped = h @ np.array([3.0, 4.0, 1.0])
        mapped /= mapped[2]
        np.testing.assert_allclose(mapped[:2], [8.0, 11.0], atol=1e-9)

    def test_maps_all_four_corners(self):
        src = np.array([[0, 0], [100, 0], [100, 50], [0, 50]], float)
        dst = np.array([[10, 5], [90, 0], [95, 60], [0, 55]], float)
        h = solve_homography(src, dst)
        for s, d in zip(src, dst):
            mapped = h @ np.array([*s, 1.0])
            np.testing.assert_allclose(mapped[:2] / mapped[2], d,
                                       atol=1e-6)

    def test_collinear_points_rejected(self):
        src = np.array([[0, 0], [1, 1], [2, 2], [3, 3]], float)
        dst = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], float)
        with pytest.raises(ValueError, match="degenerate"):
            solve_homography(src, dst)

    def test_wrong_point_count_rejected(self):
        with pytest.raises(ValueError, match="four"):
            solve_homography(np.zeros((3, 2)), np.zeros((3, 2)))


class TestWarpPerspective:
    def test_identity_warp(self, rng):
        img = rng.random((12, 16, 3)).astype(np.float32)
        out = warp_perspective(img, np.eye(3), 12, 16)
        np.testing.assert_allclose(out, img, atol=1e-4)

    def test_translation_moves_content(self):
        img = np.zeros((10, 10, 1), np.float32)
        img[2, 2] = 1.0
        # Shift content +3 in x.
        h = np.eye(3)
        h[0, 2] = 3.0
        out = warp_perspective(img, h, 10, 10)
        assert out[2, 5, 0] == pytest.approx(1.0, abs=1e-5)

    def test_out_of_bounds_zeroed(self):
        img = np.ones((4, 4, 1), np.float32)
        h = np.eye(3)
        h[0, 2] = 100.0  # content pushed far right; sampling goes left
        out = warp_perspective(img, h, 4, 4)
        assert out.max() == 0.0

    def test_rectifies_converging_rows(self):
        # The CRSA use case: a frame with perspective-converged rows
        # becomes parallel after the ground-plane correction.
        from repro.data.synthetic import synth_crsa_frame

        frame = synth_crsa_frame(400, 200, grid_spacing=100)
        hom = ground_plane_homography(400, 200)
        out = warp_perspective(frame, hom, 200, 400)
        # After rectification, a marked row's column should be ~constant
        # between the upper and lower halves of the ground region.
        greenish = (np.abs(out[..., 1] - 110) < 25) & \
                   (np.abs(out[..., 0] - 30) < 25)
        rows = np.where(greenish.any(axis=1))[0]
        assert len(rows) > 20

    def test_bad_homography_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            warp_perspective(rng.random((4, 4, 1)), np.eye(2), 4, 4)

    def test_invalid_output_size_rejected(self, rng):
        with pytest.raises(ValueError):
            warp_perspective(rng.random((4, 4, 1)), np.eye(3), 0, 4)


class TestGroundPlaneHomography:
    def test_bottom_corners_fixed(self):
        h = ground_plane_homography(100, 50)
        for corner in ([0.0, 49.0], [99.0, 49.0]):
            mapped = h @ np.array([*corner, 1.0])
            np.testing.assert_allclose(mapped[:2] / mapped[2], corner,
                                       atol=1e-6)

    def test_horizon_stretches_to_top_corners(self):
        h = ground_plane_homography(100, 50, horizon_fraction=0.4,
                                    top_squeeze=0.5)
        mapped = h @ np.array([25.0, 20.0, 1.0])  # left horizon point
        np.testing.assert_allclose(mapped[:2] / mapped[2], [0.0, 0.0],
                                   atol=1e-6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ground_plane_homography(100, 50, horizon_fraction=0.0)
        with pytest.raises(ValueError):
            ground_plane_homography(100, 50, top_squeeze=0.0)
