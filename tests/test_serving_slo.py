"""Tests for repro.serving.slo — error budgets and burn-rate alerts."""

import pytest

from repro.scale.autoscaler import Autoscaler, AutoscalerConfig
from repro.scale.balancer import LoadBalancer, RoundRobinPolicy
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.observability import MetricsRegistry
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer
from repro.serving.slo import BurnAlert, SLOConfig, SLOMonitor

THRESHOLD = 1.0 / 60.0  # the paper's 60 QPS frame budget


def _config(**overrides):
    defaults = dict(latency_threshold_seconds=THRESHOLD,
                    objective=0.99, interval=0.25,
                    fast_window_seconds=1.0, slow_window_seconds=5.0,
                    fast_burn_threshold=14.4, slow_burn_threshold=6.0,
                    min_window_samples=5, rearm_seconds=5.0)
    defaults.update(overrides)
    return SLOConfig(**defaults)


class TestSLOConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(latency_threshold_seconds=0.0)
        with pytest.raises(ValueError):
            _config(objective=1.0)
        with pytest.raises(ValueError):
            _config(interval=0.0)
        with pytest.raises(ValueError):
            _config(slow_window_seconds=0.5)  # slower than fast
        with pytest.raises(ValueError):
            _config(fast_burn_threshold=0.0)
        with pytest.raises(ValueError):
            _config(min_window_samples=0)
        with pytest.raises(ValueError):
            _config(rearm_seconds=-1.0)


class TestBurnAlert:
    def test_budget_remaining(self):
        alert = BurnAlert(time=1.0, fast_burn_rate=20.0,
                          slow_burn_rate=10.0, window_error_rate=0.2,
                          budget_consumed=0.25)
        assert alert.budget_remaining == 0.75


def _monitor(sim, registry, **overrides):
    return SLOMonitor(sim, registry, _config(**overrides),
                      histogram_name="request_latency_seconds")


def _histogram(registry):
    # Bucket boundary at the threshold: conservative counting is exact.
    return registry.histogram(
        "request_latency_seconds", buckets=(0.005, THRESHOLD, 0.1, 1.0))


class TestViolationCounting:
    def test_conservative_bucket_split(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        histogram = _histogram(registry)
        monitor = _monitor(sim, registry)
        for value in (0.001, 0.01, THRESHOLD, 0.05, 0.5):
            histogram.observe(value, model="m")
        violations, total = monitor._cumulative()
        assert total == 5
        # <= threshold is good (three obs); above it violates (two).
        assert violations == 2

    def test_observations_in_threshold_bucket_count_as_violations(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        # No bucket boundary at the threshold: everything in the
        # bucket containing it must count as violating (never
        # under-report).
        histogram = registry.histogram("request_latency_seconds",
                                       buckets=(0.005, 0.1, 1.0))
        monitor = _monitor(sim, registry)
        histogram.observe(0.01)  # under threshold, same bucket as over
        violations, total = monitor._cumulative()
        assert (violations, total) == (1, 1)

    def test_missing_histogram_reads_zero(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        monitor = _monitor(sim, registry)
        assert monitor._cumulative() == (0, 0)


class TestBurnRateAlerting:
    def _run_overload(self, good_seconds, violate_seconds,
                      rate=40.0, duration=4.0, **overrides):
        """Scripted load: good completions, then a violation storm."""
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        histogram = _histogram(registry)
        monitor = _monitor(sim, registry, **overrides)

        def observe(value):
            return lambda: histogram.observe(value, model="m")

        steps = int(duration * rate)
        for i in range(steps):
            t = (i + 1) / rate
            value = (0.25 if good_seconds <= t < violate_seconds
                     else 0.001)
            sim.schedule_at(t, observe(value))
        monitor.start()
        sim.run()
        return monitor

    def test_overload_fires_alert(self):
        monitor = self._run_overload(good_seconds=1.0,
                                     violate_seconds=3.0)
        assert monitor.alerts
        first = monitor.alerts[0]
        # The storm starts at t=1; both windows must fill first.
        assert 1.0 < first.time <= 3.0
        assert first.fast_burn_rate >= 14.4
        assert first.slow_burn_rate >= 6.0
        assert 0.0 < first.window_error_rate <= 1.0

    def test_healthy_run_never_alerts(self):
        monitor = self._run_overload(good_seconds=99.0,
                                     violate_seconds=99.0)
        assert monitor.alerts == []
        assert monitor.budget_consumed() == 0.0

    def test_rearm_suppresses_repeat_alerts(self):
        throttled = self._run_overload(1.0, 3.0, rearm_seconds=60.0)
        noisy = self._run_overload(1.0, 3.0, rearm_seconds=0.0)
        assert len(throttled.alerts) == 1
        assert len(noisy.alerts) > len(throttled.alerts)

    def test_callbacks_receive_alerts(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        histogram = _histogram(registry)
        monitor = _monitor(sim, registry)
        seen = []
        monitor.on_alert(seen.append)
        for i in range(40):
            sim.schedule_at(0.1 + i * 0.05,
                            lambda: histogram.observe(0.5))
        monitor.start()
        sim.run()
        assert seen == monitor.alerts and seen

    def test_gauges_track_burn_and_budget(self):
        monitor = self._run_overload(1.0, 3.0)
        registry = monitor.registry
        assert registry.get("slo_burn_alerts_total").total() == \
            len(monitor.alerts)
        assert registry.get("slo_error_budget_remaining").value() < 1.0

    def test_min_window_samples_gates_noise(self):
        # Two violating completions are not evidence of an overload.
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        histogram = _histogram(registry)
        monitor = _monitor(sim, registry, min_window_samples=5)
        for t in (0.1, 0.6):
            sim.schedule_at(t, lambda: histogram.observe(0.5))
        monitor.start()
        sim.run()
        assert monitor.alerts == []

    def test_double_start_rejected(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        monitor = _monitor(sim, registry)
        sim.schedule(1.0, lambda: None)
        monitor.start()
        with pytest.raises(RuntimeError, match="already started"):
            monitor.start()


class TestAutoscalerConsumesAlerts:
    def test_burn_alert_triggers_scale_out(self):
        """Regression: the burn alert alone must grow the pool.

        The p95 threshold and queue threshold are set unreachable, so
        the only possible scale-out signal is the SLO monitor's alert.
        """
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)

        def replica_factory():
            server = TritonLikeServer(sim, registry=registry)
            server.register(ModelConfig(
                "m", lambda n: 0.25,
                batcher=BatcherConfig(max_batch_size=4,
                                      max_queue_delay=0.002)))
            return server

        balancer = LoadBalancer([replica_factory()],
                                policy=RoundRobinPolicy(),
                                registry=registry)
        autoscaler = Autoscaler(balancer, replica_factory,
                                AutoscalerConfig(
                                    slo_p95_seconds=1e6,
                                    scale_out_queue_depth=1e9,
                                    interval=0.25, breach_intervals=2,
                                    cooldown_seconds=0.0,
                                    max_replicas=2))
        monitor = SLOMonitor(sim, registry, _config(),
                             histogram_name="request_latency_seconds")
        monitor.on_alert(autoscaler.notify_slo_alert)

        # Overload: every completion takes 0.25 s against a 16.7 ms
        # threshold, plenty of traffic for both windows.
        for i in range(120):
            sim.schedule_at(0.05 * i,
                            lambda: balancer.submit(Request("m")))
        autoscaler.start()
        monitor.start()
        balancer.run()

        assert monitor.alerts, "overload must fire a burn alert"
        outs = [e for e in autoscaler.events if e.action == "scale_out"]
        assert outs, "autoscaler must consume the alert"
        assert outs[0].reason == "slo burn-rate"
        assert outs[0].time >= monitor.alerts[0].time

    def test_alert_does_not_scale_without_traffic_reasons(self):
        # No alert, unreachable thresholds: the pool must stay put.
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)

        def replica_factory():
            server = TritonLikeServer(sim, registry=registry)
            server.register(ModelConfig(
                "m", lambda n: 0.001,
                batcher=BatcherConfig(enabled=False)))
            return server

        balancer = LoadBalancer([replica_factory()],
                                policy=RoundRobinPolicy(),
                                registry=registry)
        autoscaler = Autoscaler(balancer, replica_factory,
                                AutoscalerConfig(
                                    slo_p95_seconds=1e6,
                                    scale_out_queue_depth=1e9,
                                    interval=0.25,
                                    cooldown_seconds=0.0))
        for i in range(20):
            sim.schedule_at(0.05 * i,
                            lambda: balancer.submit(Request("m")))
        autoscaler.start()
        balancer.run()
        assert not [e for e in autoscaler.events
                    if e.action == "scale_out"]
