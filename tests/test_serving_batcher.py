"""Tests for repro.serving.batcher — Triton dynamic batching semantics."""

import pytest

from repro.serving.batcher import BatcherConfig, DynamicBatcher
from repro.serving.request import Request


def req(n=1, model="m"):
    return Request(model, num_images=n)


class TestConfig:
    def test_defaults(self):
        config = BatcherConfig()
        assert config.max_batch_size == 64
        assert config.enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            BatcherConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_queue_delay=-1)
        with pytest.raises(ValueError):
            BatcherConfig(max_batch_size=8, preferred_batch_sizes=(16,))


class TestReadiness:
    def test_empty_queue_never_ready(self):
        batcher = DynamicBatcher(BatcherConfig())
        assert not batcher.ready(now=100.0)

    def test_full_batch_is_immediately_ready(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=4,
                                               max_queue_delay=10.0))
        for _ in range(4):
            batcher.enqueue(req(), now=0.0)
        assert batcher.ready(now=0.0)

    def test_partial_batch_waits_for_delay(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=4,
                                               max_queue_delay=0.01))
        batcher.enqueue(req(), now=0.0)
        assert not batcher.ready(now=0.005)
        assert batcher.ready(now=0.01)

    def test_ready_tolerates_float_roundoff(self):
        # The regression behind the server's delay-timer livelock.
        delay = 0.002
        enqueue_at = 0.022719478673441063
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=8,
                                               max_queue_delay=delay))
        batcher.enqueue(req(), now=enqueue_at)
        assert batcher.ready(now=enqueue_at + delay)

    def test_disabled_batching_always_ready(self):
        batcher = DynamicBatcher(BatcherConfig(enabled=False,
                                               max_queue_delay=100.0))
        batcher.enqueue(req(), now=0.0)
        assert batcher.ready(now=0.0)

    def test_next_deadline(self):
        batcher = DynamicBatcher(BatcherConfig(max_queue_delay=0.5))
        assert batcher.next_deadline() is None
        batcher.enqueue(req(), now=2.0)
        assert batcher.next_deadline() == pytest.approx(2.5)


class TestBatchFormation:
    def test_batch_caps_at_max_size(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=4))
        for _ in range(10):
            batcher.enqueue(req(), now=0.0)
        batch = batcher.form_batch()
        assert len(batch) == 4
        assert batcher.queued_images == 6

    def test_fifo_order(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=2))
        first, second, third = req(), req(), req()
        for r in (first, second, third):
            batcher.enqueue(r, now=0.0)
        assert batcher.form_batch() == [first, second]

    def test_multi_image_requests_not_split(self):
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=4))
        batcher.enqueue(req(3), now=0.0)
        batcher.enqueue(req(3), now=0.0)
        batch = batcher.form_batch()
        assert len(batch) == 1  # the second 3-image request won't fit

    def test_oversized_single_request_still_dispatches(self):
        # A request larger than max_batch_size must not deadlock.
        batcher = DynamicBatcher(BatcherConfig(max_batch_size=4))
        batcher.enqueue(req(10), now=0.0)
        assert len(batcher.form_batch()) == 1

    def test_preferred_sizes_round_down(self):
        batcher = DynamicBatcher(BatcherConfig(
            max_batch_size=64, preferred_batch_sizes=(8, 16, 32)))
        for _ in range(20):
            batcher.enqueue(req(), now=0.0)
        assert len(batcher.form_batch()) == 16

    def test_preferred_sizes_ignored_when_queue_small(self):
        batcher = DynamicBatcher(BatcherConfig(
            max_batch_size=64, preferred_batch_sizes=(32,)))
        for _ in range(5):
            batcher.enqueue(req(), now=0.0)
        assert len(batcher.form_batch()) == 5

    def test_disabled_batching_single_dispatch(self):
        batcher = DynamicBatcher(BatcherConfig(enabled=False))
        batcher.enqueue(req(), now=0.0)
        batcher.enqueue(req(), now=0.0)
        assert len(batcher.form_batch()) == 1

    def test_form_on_empty_queue_raises(self):
        with pytest.raises(RuntimeError):
            DynamicBatcher(BatcherConfig()).form_batch()

    def test_len_counts_requests(self):
        batcher = DynamicBatcher(BatcherConfig())
        batcher.enqueue(req(5), now=0.0)
        assert len(batcher) == 1
        assert batcher.queued_images == 5
