"""Merge-determinism tests: registries, profilers, summaries.

The sweep engine's contract is that merged output is byte-identical
regardless of worker count, completion order, or merge order.  These
tests attack each reduction from that angle: shuffle the fold order,
vary the pool size, and compare scrapes/folded profiles byte for byte.
"""

import pickle
import random

import pytest

from repro.serving.exporter import export_registry
from repro.serving.observability import MetricsRegistry
from repro.serving.profiler import SimProfiler
from repro.sweep import (
    BucketSummary,
    SweepRunner,
    SweepSpec,
    merge_profiles,
    merge_registries,
    merge_summaries,
    normal_ci,
)


def _registry(clock_value=0.0):
    return MetricsRegistry(clock=lambda: clock_value)


class TestCounterMerge:
    def test_sums_per_label_set(self):
        a, b = _registry(), _registry()
        a.counter("req_total", "h").inc(3.0, model="vit")
        b.counter("req_total", "h").inc(4.0, model="vit")
        b.counter("req_total", "h").inc(2.0, model="resnet")
        merged = a._metrics["req_total"].merge(b._metrics["req_total"])
        assert merged.value(model="vit") == 7.0
        assert merged.value(model="resnet") == 2.0

    def test_type_and_name_mismatch_raise(self):
        a, b = _registry(), _registry()
        counter = a.counter("x_total", "h")
        with pytest.raises(ValueError):
            counter.merge(b.gauge("x_total", "h"))
        with pytest.raises(ValueError):
            counter.merge(b.counter("y_total", "h"))


class TestGaugeMerge:
    def test_freshest_reading_wins(self):
        early, late = _registry(1.0), _registry(5.0)
        early.gauge("depth", "h").set(10.0, stage="infer")
        late.gauge("depth", "h").set(3.0, stage="infer")
        forward = _registry()._metrics  # noqa: F841 - explicit merges below
        a = early._metrics["depth"]
        b = late._metrics["depth"]
        assert a.merge(b).value(stage="infer") == 3.0

    def test_tie_keeps_larger_value_commutatively(self):
        a, b = _registry(2.0), _registry(2.0)
        a.gauge("depth", "h").set(1.0)
        b.gauge("depth", "h").set(9.0)
        merged_ab = a._metrics["depth"].merge(b._metrics["depth"])
        c, d = _registry(2.0), _registry(2.0)
        c.gauge("depth", "h").set(9.0)
        d.gauge("depth", "h").set(1.0)
        merged_cd = c._metrics["depth"].merge(d._metrics["depth"])
        assert merged_ab.value() == merged_cd.value() == 9.0


class TestHistogramMerge:
    def test_counts_sum_and_count_add(self):
        a, b = _registry(), _registry()
        ha = a.histogram("lat_seconds", "h", buckets=(0.1, 1.0))
        hb = b.histogram("lat_seconds", "h", buckets=(0.1, 1.0))
        ha.observe(0.05, model="m")
        hb.observe(0.5, model="m")
        hb.observe(5.0, model="m")
        ha.merge(hb)
        series = ha._series[(("model", "m"),)]
        assert series.bucket_counts == [1, 1, 1]
        assert series.count == 3
        assert series.sum == pytest.approx(5.55)

    def test_bucket_layout_conflict_raises(self):
        a, b = _registry(), _registry()
        ha = a.histogram("lat_seconds", "h", buckets=(0.1, 1.0))
        hb = b.histogram("lat_seconds", "h", buckets=(0.1, 2.0))
        with pytest.raises(ValueError, match="bucket layouts conflict"):
            ha.merge(hb)

    def test_exemplar_latest_sim_time_wins(self):
        a, b = _registry(1.0), _registry(9.0)
        ha = a.histogram("lat_seconds", "h").enable_exemplars()
        hb = b.histogram("lat_seconds", "h").enable_exemplars()
        ha.observe(0.003, trace_id="old")
        hb.observe(0.004, trace_id="new")  # same bucket, later stamp
        ha.merge(hb)
        series = next(iter(ha._series.values()))
        (value, trace_id, stamp), = series.exemplars.values()
        assert trace_id == "new" and stamp == 9.0


class TestRegistryMerge:
    @staticmethod
    def _shard_registry(seed):
        registry = _registry(float(seed))
        registry.counter("req_total", "req").inc(seed + 1, model="vit")
        registry.gauge("depth", "depth").set(seed * 2.0)
        registry.histogram("lat_seconds", "lat").observe(
            0.01 * (seed + 1), model="vit")
        return registry

    def test_scrape_independent_of_merge_order(self):
        registries = [self._shard_registry(s) for s in range(6)]
        scrapes = set()
        for ordering_seed in range(5):
            shuffled = list(registries)
            random.Random(ordering_seed).shuffle(shuffled)
            scrapes.add(export_registry(merge_registries(shuffled)))
        assert len(scrapes) == 1

    def test_merge_creates_missing_metrics_with_their_buckets(self):
        target = MetricsRegistry()
        source = _registry()
        source.histogram("lat_seconds", "lat",
                         buckets=(0.5, 2.0)).observe(1.0)
        target.merge(source)
        assert target._metrics["lat_seconds"].buckets == (0.5, 2.0)
        # and the source registry is untouched by the fold
        assert source._metrics["lat_seconds"]._series

    def test_registry_survives_pickling_without_its_clock(self):
        registry = self._shard_registry(3)
        clone = pickle.loads(pickle.dumps(registry))
        assert (export_registry(clone) == export_registry(registry))


class TestProfilerMerge:
    def test_merged_folds_equal_sequential_accumulation(self):
        parts = []
        combined = SimProfiler()
        for shard in range(4):
            profiler = SimProfiler()
            for target in (profiler, combined):
                target.record(("serve", f"model{shard % 2}"),
                              sim_seconds=0.5 * (shard + 1),
                              count=shard + 1)
            parts.append(profiler)
        random.Random(1).shuffle(parts)
        merged = merge_profiles(parts)
        assert merged.render_folded() == combined.render_folded()
        assert merged.nodes() == combined.nodes()

    def test_open_scope_blocks_merge_and_pickle(self):
        profiler = SimProfiler()
        scope = profiler.scope("busy")
        scope.__enter__()
        with pytest.raises(ValueError):
            SimProfiler().merge(profiler)
        with pytest.raises(ValueError):
            pickle.dumps(profiler)
        scope.__exit__(None, None, None)
        assert SimProfiler().merge(profiler).folded()

    def test_pickled_profiler_keeps_recorded_costs(self):
        profiler = SimProfiler(clock=lambda: 1.0)
        profiler.record(("a", "b"), sim_seconds=2.0)
        clone = pickle.loads(pickle.dumps(profiler))
        assert clone.render_folded() == profiler.render_folded()


class TestBucketSummary:
    def test_quantiles_reaccumulate_rather_than_average(self):
        # Two skewed shards: averaging their p95s would be ~5.05; the
        # re-accumulated p95 of the union is in the tail bucket.
        fast = BucketSummary.from_values([0.01] * 95 + [0.1] * 5,
                                         bounds=(0.05, 1.0, 20.0))
        slow = BucketSummary.from_values([10.0] * 100,
                                         bounds=(0.05, 1.0, 20.0))
        merged = merge_summaries([fast, slow])
        assert merged.count == 200
        assert merged.quantile(0.95) == 10.0  # clamped to observed max
        assert merged.quantile(0.25) == 0.05
        assert merged.mean == pytest.approx((0.01 * 95 + 0.1 * 5
                                             + 10.0 * 100) / 200)

    def test_merge_order_cannot_change_counts_or_quantiles(self):
        # Counts and bucket-walk quantiles are exactly order-free;
        # float sums (the mean) are only order-free to the ULP, which
        # is why the engine always folds in shard-index order.
        shards = [BucketSummary.from_values([0.001 * i, 0.02 * i])
                  for i in range(1, 6)]
        reference = merge_summaries(shards).as_dict()
        shuffled = list(shards)
        random.Random(3).shuffle(shuffled)
        redone = merge_summaries(shuffled).as_dict()
        for key in ("count", "min", "max", "p50", "p95", "p99"):
            assert redone[key] == reference[key]
        assert redone["mean"] == pytest.approx(reference["mean"],
                                               rel=1e-12)

    def test_bounds_conflict_raises(self):
        a = BucketSummary.from_values([1.0], bounds=(0.5, 2.0))
        b = BucketSummary.from_values([1.0], bounds=(0.5, 3.0))
        with pytest.raises(ValueError, match="layouts conflict"):
            a.merge(b)
        with pytest.raises(ValueError):
            merge_summaries([])

    def test_empty_and_degenerate_cases(self):
        empty = BucketSummary.empty(bounds=(1.0,))
        assert empty.quantile(0.5) == 0.0 and empty.mean == 0.0
        assert empty.as_dict()["min"] == 0.0
        with pytest.raises(ValueError):
            empty.quantile(1.5)
        with pytest.raises(ValueError):
            BucketSummary.empty(bounds=())


class TestNormalCI:
    def test_known_interval(self):
        mean, half_width = normal_ci([1.0, 2.0, 3.0, 4.0])
        assert mean == 2.5
        # s = sqrt(5/3); hw = 1.96 * s / 2
        assert half_width == pytest.approx(1.9600 * (5 / 3) ** 0.5 / 2)

    def test_single_value_and_validation(self):
        assert normal_ci([7.0]) == (7.0, 0.0)
        with pytest.raises(ValueError):
            normal_ci([])
        with pytest.raises(ValueError):
            normal_ci([1.0, 2.0], confidence=0.8)

    def test_deterministic(self):
        values = [0.1 * i for i in range(10)]
        assert normal_ci(values) == normal_ci(values)


class TestEndToEndDeterminism:
    """The headline contract: worker count cannot change merged bytes."""

    SPEC = dict(worker="repro.sweep.workloads:replay_sparse_diurnal",
                base_params={"duration": 300.0, "peak_rate": 3.0},
                replications=3, base_seed=21)

    @staticmethod
    def _merged(jobs, shuffle_seed=None):
        result = SweepRunner(jobs=jobs).run(SweepSpec(
            **TestEndToEndDeterminism.SPEC))
        result.raise_on_error()
        values = result.values()
        if shuffle_seed is not None:
            values = list(values)
            random.Random(shuffle_seed).shuffle(values)
        scrape = export_registry(
            merge_registries(v["registry"] for v in values))
        folded = merge_profiles(
            v["profiler"] for v in values).render_folded()
        table = merge_summaries(
            v["summary"] for v in values).as_dict()
        return scrape, folded, table

    def test_byte_identical_across_worker_counts(self):
        reference = self._merged(1)
        for jobs in (2, 8):
            assert self._merged(jobs) == reference

    def test_byte_identical_under_shuffled_merge_order(self):
        reference = self._merged(1)
        assert self._merged(2, shuffle_seed=9) == reference
