"""Tests for shared-preprocessing ensembles and the DALIWarp framework."""

import pytest

from repro.data.datasets import get_dataset
from repro.hardware.platform import A100, JETSON
from repro.preprocessing.frameworks import DALI, DALIWarp, OpenCVCPU
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.request import Request
from repro.serving.server import (
    EnsembleConfig,
    ModelConfig,
    TritonLikeServer,
)


def _server_with_ensemble(pre=0.1, residue=0.2, pest=0.3):
    server = TritonLikeServer()
    for name, seconds in (("pre", pre), ("residue", residue),
                          ("pest", pest)):
        server.register(ModelConfig(
            name, lambda n, s=seconds: s,
            batcher=BatcherConfig(enabled=False)))
    server.register_ensemble(EnsembleConfig(
        "field_tasks", "pre", ("residue", "pest")))
    return server


class TestEnsembleRouting:
    def test_preprocess_runs_once_consumers_fan_out(self):
        server = _server_with_ensemble()
        server.submit(Request("field_tasks"))
        [response] = server.run()
        times = response.request.stage_times
        assert times["pre#0:end"] == pytest.approx(0.1)
        # Both consumers start right after the shared preprocess.
        assert times["residue#0:start"] == pytest.approx(0.1)
        assert times["pest#0:start"] == pytest.approx(0.1)

    def test_response_waits_for_slowest_consumer(self):
        server = _server_with_ensemble(pre=0.1, residue=0.2, pest=0.3)
        server.submit(Request("field_tasks"))
        [response] = server.run()
        assert response.latency == pytest.approx(0.4)  # 0.1 + 0.3

    def test_single_response_per_request(self):
        server = _server_with_ensemble()
        for _ in range(5):
            server.submit(Request("field_tasks"))
        responses = server.run()
        assert len(responses) == 5
        ids = [r.request.request_id for r in responses]
        assert len(set(ids)) == 5

    def test_preprocessing_shared_not_repeated(self):
        server = _server_with_ensemble()
        for _ in range(4):
            server.submit(Request("field_tasks"))
        server.run()
        [pre_stats] = server.instance_stats("pre")
        assert pre_stats.batches_served == 4  # once per request, not
        # once per (request, consumer) pair
        [residue_stats] = server.instance_stats("residue")
        assert residue_stats.batches_served == 4

    def test_validation(self):
        server = TritonLikeServer()
        server.register(ModelConfig("pre", lambda n: 0.1))
        with pytest.raises(ValueError, match="not a registered"):
            server.register_ensemble(EnsembleConfig(
                "e", "pre", ("missing",)))
        with pytest.raises(ValueError):
            EnsembleConfig("e", "pre", ())
        with pytest.raises(ValueError):
            EnsembleConfig("e", "pre", ("m", "m"))

    def test_name_collisions_rejected(self):
        server = TritonLikeServer()
        server.register(ModelConfig("pre", lambda n: 0.1))
        server.register(ModelConfig("m", lambda n: 0.1))
        server.register_ensemble(EnsembleConfig("e", "pre", ("m",)))
        with pytest.raises(ValueError, match="already"):
            server.register_ensemble(EnsembleConfig("e", "pre", ("m",)))

    def test_plain_models_still_route(self):
        server = _server_with_ensemble()
        server.submit(Request("residue"))
        [response] = server.run()
        assert response.latency == pytest.approx(0.2)


class TestDegradedFanOut:
    """Partial fan-out results are distinguishable from full rejection."""

    def _server(self, bad_queue_limit=1):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", lambda n: 0.01, batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "good", lambda n: 0.01,
            batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "bad", lambda n: 1.0,
            batcher=BatcherConfig(enabled=False,
                                  max_queue_size=bad_queue_limit)))
        server.register_ensemble(EnsembleConfig(
            "e", "pre", ("good", "bad")))
        return server

    def _saturate_bad(self, server):
        # One request executing + one queued: the bounded "bad" queue
        # is full when the ensemble branch arrives.
        server.submit(Request("bad"))
        server.submit(Request("bad"))

    def test_partial_rejection_reports_degraded(self):
        # Regression: one consumer succeeded and one branch bounced off
        # a full queue — the seed reported a bare "rejected",
        # indistinguishable from a fully rejected request.
        server = self._server()
        self._saturate_bad(server)
        ensemble_request = Request("e")
        server.submit(ensemble_request)
        responses = server.run()
        [result] = [r for r in responses
                    if r.request.request_id
                    == ensemble_request.request_id]
        assert result.status == "degraded"
        assert result.degraded and not result.ok
        # The good branch really ran before the response was emitted.
        assert "good#0:end" in ensemble_request.stage_times

    def test_fully_rejected_fanout_stays_rejected(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", lambda n: 0.01, batcher=BatcherConfig(enabled=False)))
        server.register(ModelConfig(
            "bad", lambda n: 1.0,
            batcher=BatcherConfig(enabled=False, max_queue_size=1)))
        server.register_ensemble(EnsembleConfig("e", "pre", ("bad",)))
        server.submit(Request("bad"))
        server.submit(Request("bad"))
        ensemble_request = Request("e")
        server.submit(ensemble_request)
        responses = server.run()
        [result] = [r for r in responses
                    if r.request.request_id
                    == ensemble_request.request_id]
        assert result.status == "rejected"

    def test_degraded_counted_in_metrics(self):
        server = self._server()
        self._saturate_bad(server)
        server.submit(Request("e"))
        server.run()
        assert server.metrics.get("responses_total").value(
            model="e", status="degraded") == 1


class TestDALIWarp:
    """The paper's future work: GPU-accelerated CRSA preprocessing."""

    def test_supports_the_perspective_stage(self):
        assert DALIWarp(224).supports_warp
        assert not DALI(224).supports_warp

    def test_far_faster_than_cv2_on_crsa(self):
        crsa = get_dataset("crsa")
        gpu = DALIWarp(224).estimate(crsa, A100)
        cpu = OpenCVCPU(224).estimate(crsa, A100)
        assert gpu.per_image_seconds < cpu.per_image_seconds / 10

    def test_enables_real_time_crsa_on_cloud(self):
        # With the warp on the GPU, a CRSA frame fits the 60-QPS budget
        # on the A100 (12 ms vs CV2's ~490 ms) — streaming 4K inference
        # becomes an *online* (cloud) scenario option.
        crsa = get_dataset("crsa")
        est = DALIWarp(224).estimate(crsa, A100)
        assert est.per_image_seconds < 1.0 / 60.0

    def test_substantial_speedup_on_jetson_but_not_yet_realtime(self):
        # On the edge device the GPU warp is ~3x CV2 but full-4K frames
        # still miss 30 fps at the calibrated rates — the honest answer
        # is ROI cropping or cloud offload, which the advisor surfaces.
        crsa = get_dataset("crsa")
        gpu = DALIWarp(224).estimate(crsa, JETSON, batch_size=1)
        cv2 = OpenCVCPU(224).estimate(crsa, JETSON)
        assert gpu.per_image_seconds < cv2.per_image_seconds / 2.5
        assert gpu.per_image_seconds > 1.0 / 30.0

    def test_no_surcharge_for_plain_datasets(self):
        pv = get_dataset("plant_village")
        base = DALI(224).estimate(pv, A100)
        warp = DALIWarp(224).estimate(pv, A100)
        assert warp.per_image_seconds == pytest.approx(
            base.per_image_seconds)

    def test_warp_adds_device_memory(self):
        crsa = get_dataset("crsa")
        base = DALI(224).estimate(crsa, A100)
        warp = DALIWarp(224).estimate(crsa, A100)
        assert warp.memory_bytes > base.memory_bytes

    def test_functional_run_applies_perspective(self, rng):
        from repro.data.synthetic import synth_crsa_frame

        frame = synth_crsa_frame(192, 108)
        out = DALIWarp(32).run([frame], get_dataset("crsa"))
        assert out.shape == (1, 3, 32, 32)
