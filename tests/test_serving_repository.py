"""Tests for repro.serving.repository — the Triton model repository."""

import json

import pytest

from repro.hardware.platform import A100
from repro.models.resnet import build_resnet50
from repro.models.vit import build_vit
from repro.serving.batcher import BatcherConfig
from repro.serving.repository import ModelRepository, RepositoryError
from repro.serving.request import Request
from repro.serving.server import TritonLikeServer


@pytest.fixture()
def repo(tmp_path):
    return ModelRepository(tmp_path / "models")


class TestWriteAndLayout:
    def test_layout_on_disk(self, repo):
        repo.add_model(build_vit("vit_tiny"))
        root = repo.root
        assert (root / "vit_tiny" / "config.json").exists()
        assert (root / "vit_tiny" / "1" / "model.json").exists()

    def test_versions_increment(self, repo):
        assert repo.add_model(build_vit("vit_tiny")) == 1
        assert repo.add_model(build_vit("vit_tiny")) == 2
        assert repo.versions("vit_tiny") == [1, 2]

    def test_explicit_version(self, repo):
        repo.add_model(build_vit("vit_tiny"), version=7)
        assert repo.versions("vit_tiny") == [7]
        with pytest.raises(RepositoryError):
            repo.add_model(build_vit("vit_tiny"), version=0)

    def test_config_serializes_batching(self, repo):
        repo.add_model(build_vit("vit_tiny"),
                       BatcherConfig(max_batch_size=32,
                                     max_queue_delay=0.003,
                                     preferred_batch_sizes=(8, 16)),
                       instances=3)
        doc = json.loads((repo.root / "vit_tiny" / "config.json"
                          ).read_text())
        assert doc["max_batch_size"] == 32
        assert doc["max_queue_delay_us"] == 3000
        assert doc["instance_count"] == 3
        assert doc["preferred_batch_sizes"] == [8, 16]


class TestLoad:
    def test_roundtrip_preserves_model(self, repo):
        original = build_resnet50(img_size=64)
        repo.add_model(original)
        entry = repo.load("resnet50")
        assert entry.graph.total_params() == original.total_params()
        assert entry.graph.reported_gflops() == pytest.approx(
            original.reported_gflops())

    def test_latest_version_loaded_by_default(self, repo):
        repo.add_model(build_vit("vit_tiny"))
        repo.add_model(build_vit("vit_tiny", num_classes=7))
        entry = repo.load("vit_tiny")
        assert entry.version == 2
        assert entry.graph.layers[-1].out_features == 7

    def test_specific_version(self, repo):
        repo.add_model(build_vit("vit_tiny"))
        repo.add_model(build_vit("vit_tiny", num_classes=7))
        entry = repo.load("vit_tiny", version=1)
        assert entry.graph.layers[-1].out_features == 39

    def test_missing_model_raises(self, repo):
        with pytest.raises(RepositoryError, match="not found"):
            repo.load("missing")

    def test_missing_version_raises(self, repo):
        repo.add_model(build_vit("vit_tiny"))
        with pytest.raises(RepositoryError, match="versions"):
            repo.load("vit_tiny", version=9)

    def test_corrupt_model_file_raises(self, repo):
        repo.add_model(build_vit("vit_tiny"))
        (repo.root / "vit_tiny" / "1" / "model.json").write_text("junk")
        with pytest.raises(RepositoryError):
            repo.load("vit_tiny")

    def test_corrupt_config_raises(self, repo):
        repo.add_model(build_vit("vit_tiny"))
        (repo.root / "vit_tiny" / "config.json").write_text("{}")
        with pytest.raises(RepositoryError, match="config"):
            repo.load("vit_tiny")

    def test_empty_repository(self, repo):
        assert repo.model_names() == []
        assert repo.load_all() == []


class TestServe:
    def test_cold_start_serves_requests(self, repo):
        repo.add_model(build_vit("vit_tiny"),
                       BatcherConfig(max_batch_size=16,
                                     max_queue_delay=0.001))
        server = TritonLikeServer()
        entries = repo.serve(server, A100)
        assert [e.name for e in entries] == ["vit_tiny"]
        server.submit(Request("vit_tiny", num_images=4))
        responses = server.run()
        assert len(responses) == 1
        assert responses[0].latency > 0

    def test_ensemble_dependency_order(self, repo, vit_small):
        # A model referencing a preprocess entry loads after it.
        repo.add_model(build_vit("vit_tiny"))  # plays the preproc role
        repo.add_model(vit_small, preprocess_model="vit_tiny")
        server = TritonLikeServer()
        repo.serve(server, A100)
        server.submit(Request("vit_small"))
        [response] = server.run()
        assert "vit_tiny#0:end" in response.request.stage_times
