"""Tests for repro.continuum.broker — QoS 0/1 pub/sub delivery."""

import pytest

from repro.continuum.broker import Broker
from repro.continuum.network import NetworkLink, get_link
from repro.continuum.uplink import SharedUplink, StoreAndForward
from repro.serving.events import Simulator
from repro.serving.faults import LinkOutageModel
from repro.serving.observability import MetricsRegistry
from repro.serving.tracectx import TraceContext


def lossy_link(loss=0.05):
    return NetworkLink("lossy", bandwidth_bps=8e6,
                       round_trip_seconds=0.02, overhead_factor=1.0,
                       loss_probability=loss)


def run_broker(link, count, qos, seed=0, payload=2048.0, **kwargs):
    sim = Simulator()
    broker = Broker(sim, link, seed=seed, **kwargs)
    deliveries = []
    broker.subscribe("t", lambda topic, size, dup: deliveries.append(
        (sim.now, dup)))
    for index in range(count):
        sim.schedule_at(index * 0.05,
                        lambda: broker.publish("t", payload, qos=qos))
    sim.run()
    return broker, deliveries


class TestDelivery:
    def test_lossless_link_delivers_everything(self):
        broker, deliveries = run_broker(get_link("farm_wifi"), 20,
                                        qos=0)
        assert broker.delivered == 20
        assert broker.dropped == broker.duplicates == 0
        assert len(deliveries) == 20

    def test_qos0_drops_on_loss(self):
        broker, deliveries = run_broker(lossy_link(), 200, qos=0)
        assert broker.published == 200
        assert broker.dropped > 0
        assert broker.duplicates == 0 and broker.retries == 0
        assert broker.delivered + broker.dropped == 200
        assert len(deliveries) == broker.delivered

    def test_qos1_retries_into_delivery(self):
        broker, deliveries = run_broker(lossy_link(), 200, qos=1,
                                        max_retries=8)
        assert broker.delivered == 200
        assert broker.dropped == 0
        assert broker.retries > 0
        # At-least-once: the subscriber may see duplicates, never gaps.
        assert len(deliveries) == 200 + broker.duplicates
        assert broker.duplicates == sum(dup for _, dup in deliveries)

    def test_qos1_exhausted_retries_count_as_failed(self):
        broker, _ = run_broker(lossy_link(loss=0.6), 50, qos=1,
                               max_retries=0)
        assert broker.failed > 0
        assert broker.retries == 0
        assert broker.delivered + broker.failed + broker.duplicates \
            >= broker.delivered + broker.failed

    def test_message_loss_probability(self):
        link = lossy_link(loss=0.01)
        sim = Simulator()
        broker = Broker(sim, link)
        # 3000 B = 2 packets: survive chance 0.99^2.
        assert broker.message_loss_probability(3000.0) == \
            pytest.approx(1.0 - 0.99 ** 2)
        assert Broker(sim, get_link("farm_wifi"),
                      ).message_loss_probability(3000.0) == 0.0

    def test_qos2_not_modeled(self):
        sim = Simulator()
        broker = Broker(sim, lossy_link())
        with pytest.raises(ValueError, match="QoS"):
            broker.publish("t", 100.0, qos=2)
        with pytest.raises(ValueError):
            broker.publish("t", -1.0)
        with pytest.raises(ValueError):
            Broker(sim, lossy_link(), retry_seconds=0.0)


class TestDeterminism:
    def stats(self, seed):
        broker, deliveries = run_broker(lossy_link(), 100, qos=1,
                                        seed=seed)
        return (broker.delivered, broker.dropped, broker.duplicates,
                broker.retries, broker.failed, deliveries)

    def test_same_seed_same_outcomes(self):
        assert self.stats(5) == self.stats(5)

    def test_different_seed_different_sample_path(self):
        assert self.stats(5)[-1] != self.stats(6)[-1]


class TestFanOut:
    def test_every_subscriber_gets_every_message(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        seen = {name: [] for name in ("a", "b", "c")}
        for name in seen:
            broker.subscribe(
                "t", lambda topic, size, dup, n=name:
                seen[n].append(size), name=name)
        for index in range(20):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish("t", 2048.0))
        sim.run()
        # One message-level delivery, three subscriber copies.
        assert broker.delivered == 20
        for subscription in broker.subscriptions("t"):
            assert subscription.received == 20
            assert subscription.delivered == 20
            assert subscription.dropped == 0
        assert all(len(v) == 20 for v in seen.values())

    def test_default_names_index_the_topic(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        broker.subscribe("t", lambda *a: None)
        broker.subscribe("t", lambda *a: None)
        names = [s.name for s in broker.subscriptions("t")]
        assert names == ["t#0", "t#1"]

    def test_qos1_duplicates_visible_to_every_subscriber(self):
        sim = Simulator()
        broker = Broker(sim, lossy_link(), seed=0, max_retries=8)
        flags = {"a": [], "b": []}
        for name in flags:
            broker.subscribe(
                "t", lambda topic, size, dup, n=name:
                flags[n].append(dup), name=name)
        for index in range(200):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish("t", 2048.0, qos=1))
        sim.run()
        assert broker.duplicates > 0
        for subscription in broker.subscriptions("t"):
            # At-least-once: all 200 messages plus every redelivery,
            # with the duplicate flag raised on each extra copy —
            # dedup is the application's job, for every subscriber.
            assert subscription.received == 200 + broker.duplicates
            assert subscription.duplicates == broker.duplicates
        assert sum(flags["a"]) == broker.duplicates
        assert flags["a"] == flags["b"]

    def test_slow_subscriber_queues_without_delaying_the_fast_one(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        fast_times, slow_times = [], []
        broker.subscribe("t", lambda *a: fast_times.append(sim.now),
                         name="fast")
        slow = broker.subscribe(
            "t", lambda *a: slow_times.append(sim.now),
            name="slow", service_seconds=1.0)
        for index in range(5):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish("t", 2048.0))
        sim.run()
        assert len(fast_times) == len(slow_times) == 5
        # The fast subscriber finished with the last transfer; the
        # slow one serialized 5 x 1 s of processing behind it.
        assert max(fast_times) < 1.0
        assert max(slow_times) == pytest.approx(
            slow_times[0] + 4.0)
        assert slow.max_queue_depth > 0
        assert slow.queue_depth == 0

    def test_bounded_queue_drops_only_on_the_slow_subscriber(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        broker.subscribe("t", lambda *a: None, name="fast")
        slow = broker.subscribe("t", lambda *a: None, name="slow",
                                service_seconds=5.0, max_queue=1)
        for index in range(10):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish("t", 2048.0))
        sim.run()
        fast = broker.subscriptions("t")[0]
        assert fast.delivered == 10 and fast.dropped == 0
        assert slow.dropped > 0
        assert slow.delivered + slow.dropped == 10
        # Message-level accounting is untouched by subscriber drops.
        assert broker.delivered == 10 and broker.dropped == 0

    def test_in_service_message_does_not_count_against_max_queue(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        slow = broker.subscribe("t", lambda *a: None, name="slow",
                                service_seconds=5.0, max_queue=1)
        for index in range(3):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish("t", 2048.0))
        sim.run()
        # max_queue bounds the *waiting* backlog: the first message is
        # in service, the second waits, only the third overflows.
        assert slow.delivered == 2
        assert slow.dropped == 1
        assert slow.max_queue_depth == 1
        assert slow.queue_depth == 0

    def test_subscription_validation(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        with pytest.raises(ValueError, match="service time"):
            broker.subscribe("t", lambda *a: None,
                             service_seconds=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            broker.subscribe("t", lambda *a: None, max_queue=-1)


class TestComposition:
    def test_broker_traffic_contends_on_a_shared_uplink(self):
        sim = Simulator()
        link = NetworkLink("b", bandwidth_bps=8e6,
                           round_trip_seconds=0.0, overhead_factor=1.0)
        uplink = SharedUplink(link, sim)
        broker = Broker(sim, uplink)
        assert broker.link is link
        deliveries = []
        broker.subscribe("t", lambda *a: deliveries.append(sim.now))
        # A 1 MB image upload (1 s solo) shares the wire with a 1 MB
        # publish: both serialize at half rate and land at t=2.
        done = []
        uplink.schedule_transfer(sim, 1e6, lambda: done.append(sim.now))
        broker.publish("t", 1e6)
        sim.run()
        assert done == [pytest.approx(2.0)]
        assert deliveries == [pytest.approx(2.0)]

    def test_broker_over_store_and_forward_arrives_late_not_never(self):
        sim = Simulator()
        buffer = StoreAndForward(
            get_link("farm_wifi"), sim,
            outage=LinkOutageModel(windows=((0.0, 2.0),)))
        buffer.start(horizon=10.0)
        broker = Broker(sim, buffer)
        deliveries = []
        broker.subscribe("t", lambda *a: deliveries.append(sim.now))
        sim.schedule_at(0.5, lambda: broker.publish("t", 2048.0))
        sim.run()
        assert len(deliveries) == 1
        assert deliveries[0] > 2.0  # held until the link came back
        assert broker.delivered == 1 and broker.dropped == 0

    def test_publish_span_records_outcome(self):
        sim = Simulator()
        broker = Broker(sim, get_link("farm_wifi"))
        trace = TraceContext(1)
        broker.publish("t", 2048.0, qos=1, trace=trace)
        sim.run()
        span = trace.find("publish")[0]
        assert span.end is not None
        assert span.args["outcome"] == "delivered"
        assert span.args["qos"] == 1

    def test_metrics_count_outcomes(self):
        sim = Simulator()
        registry = MetricsRegistry(clock=lambda: sim.now)
        broker = Broker(sim, lossy_link(), registry=registry)
        for index in range(100):
            sim.schedule_at(index * 0.05,
                            lambda: broker.publish("t", 2048.0, qos=0))
        sim.run()
        counter = registry.counter("broker_messages_total")
        assert counter.value(qos="0", outcome="delivered") == \
            broker.delivered
        assert counter.value(qos="0", outcome="dropped") == \
            broker.dropped
        assert broker.dropped > 0

    def test_bare_object_rejected(self):
        with pytest.raises(TypeError, match="NetworkLink"):
            Broker(Simulator(), object())
