"""Shared fixtures.

Model graphs are session-scoped (they're immutable and building ResNet50's
layer list repeatedly is the slowest part of the analytic tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.platform import A100, JETSON, V100
from repro.models.resnet import build_resnet50
from repro.models.vit import build_vit


@pytest.fixture(scope="session")
def vit_tiny():
    return build_vit("vit_tiny")


@pytest.fixture(scope="session")
def vit_small():
    return build_vit("vit_small")


@pytest.fixture(scope="session")
def vit_base():
    return build_vit("vit_base")


@pytest.fixture(scope="session")
def resnet50():
    return build_resnet50()


@pytest.fixture(scope="session")
def all_models(vit_tiny, vit_small, vit_base, resnet50):
    return [vit_tiny, vit_small, vit_base, resnet50]


@pytest.fixture(scope="session")
def platforms():
    return [A100, V100, JETSON]


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
