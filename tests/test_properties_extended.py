"""Extended property-based tests over the newer subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuum.network import NetworkLink
from repro.continuum.offload import OffloadPolicy, Placement
from repro.continuum.stitching import TilePlacement, stitch_mosaic
from repro.hardware.platform import A100, JETSON
from repro.models.ir import dumps, loads
from repro.models.vit import ViTConfig, build_vit
from repro.preprocessing.ops import solve_homography, warp_perspective
from repro.serving.batcher import BatcherConfig, DynamicBatcher
from repro.serving.request import Request
from repro.serving.traces import ArrivalTrace


# ----------------------------------------------------------------------
# IR: round-trip identity over random ViT architectures.
# ----------------------------------------------------------------------
@given(
    dim_per_head=st.integers(2, 16), heads=st.integers(1, 4),
    depth=st.integers(1, 4), patch=st.sampled_from([2, 4, 8]),
    patches_per_side=st.integers(2, 6), classes=st.integers(2, 50),
)
@settings(max_examples=40, deadline=None)
def test_ir_roundtrip_random_vits(dim_per_head, heads, depth, patch,
                                  patches_per_side, classes):
    cfg = ViTConfig("rand", img_size=patch * patches_per_side,
                    patch_size=patch, dim=dim_per_head * heads,
                    depth=depth, heads=heads, num_classes=classes)
    graph = build_vit(cfg)
    restored = loads(dumps(graph))
    assert restored.total_params() == graph.total_params()
    assert restored.total_macs() == graph.total_macs()
    assert restored.peak_activation_elements() == \
        graph.peak_activation_elements()


# ----------------------------------------------------------------------
# Homography: composition of translations equals summed translation.
# ----------------------------------------------------------------------
@given(dx1=st.floats(-5, 5), dy1=st.floats(-5, 5),
       dx2=st.floats(-5, 5), dy2=st.floats(-5, 5))
@settings(max_examples=40, deadline=None)
def test_homography_translation_composition(dx1, dy1, dx2, dy2):
    base = np.array([[0, 0], [20, 0], [20, 20], [0, 20]], float)
    h1 = solve_homography(base, base + [dx1, dy1])
    h2 = solve_homography(base, base + [dx2, dy2])
    combined = solve_homography(base, base + [dx1 + dx2, dy1 + dy2])
    np.testing.assert_allclose(h2 @ h1, combined, atol=1e-8)


@given(seed=st.integers(0, 200), dx=st.integers(-3, 3),
       dy=st.integers(-3, 3))
@settings(max_examples=30, deadline=None)
def test_warp_translation_matches_roll(seed, dx, dy):
    rng = np.random.default_rng(seed)
    img = rng.random((12, 12, 1)).astype(np.float32)
    h = np.eye(3)
    h[0, 2], h[1, 2] = dx, dy
    out = warp_perspective(img, h, 12, 12)
    # Interior pixels match the integer shift exactly.
    ys = slice(max(0, dy) + 1, 12 + min(0, dy) - 1)
    xs = slice(max(0, dx) + 1, 12 + min(0, dx) - 1)
    shifted = np.roll(np.roll(img, dy, axis=0), dx, axis=1)
    np.testing.assert_allclose(out[ys, xs], shifted[ys, xs], atol=1e-5)


# ----------------------------------------------------------------------
# Batcher priorities: drain order is always (priority desc, FIFO).
# ----------------------------------------------------------------------
@given(priorities=st.lists(st.integers(0, 3), min_size=1, max_size=25))
@settings(max_examples=60, deadline=None)
def test_priority_drain_order(priorities):
    batcher = DynamicBatcher(BatcherConfig(max_batch_size=1,
                                           max_queue_delay=0.0))
    requests = [Request("m", priority=p) for p in priorities]
    for request in requests:
        batcher.enqueue(request, now=0.0)
    drained = []
    while len(batcher):
        drained.extend(batcher.form_batch())
    expected = sorted(range(len(requests)),
                      key=lambda i: (-priorities[i], i))
    assert [r.request_id for r in drained] == \
        [requests[i].request_id for i in expected]


# ----------------------------------------------------------------------
# Stitching: covered pixels are reconstructed, uncovered stay zero.
# ----------------------------------------------------------------------
@given(
    placements=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 30)),
        min_size=1, max_size=6),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_stitch_coverage_invariant(placements, seed):
    rng = np.random.default_rng(seed)
    tile = (rng.random((10, 10, 3)) * 255).astype(np.uint8)
    placed = [TilePlacement(tile, x, y) for x, y in placements]
    mosaic = stitch_mosaic(placed, 40, 40)
    covered = np.zeros((40, 40), bool)
    for x, y in placements:
        covered[y:y + 10, x:x + 10] = True
    # Uncovered pixels are exactly zero.
    assert mosaic[~covered].sum() == 0


# ----------------------------------------------------------------------
# Offload: the decision always picks the cheaper side, and flips
# monotonically with payload size.
# ----------------------------------------------------------------------
@given(payload_kb=st.floats(0.1, 50000))
@settings(max_examples=50, deadline=None)
def test_offload_decision_is_argmin(payload_kb, vit_small):
    link = NetworkLink("l", bandwidth_bps=80e6, round_trip_seconds=0.01)
    policy = OffloadPolicy(vit_small, JETSON, A100, link)
    decision = policy.decide(payload_kb * 1e3)
    if decision.placement is Placement.EDGE:
        assert decision.edge_latency_seconds <= \
            decision.cloud_latency_seconds
    else:
        assert decision.cloud_latency_seconds < \
            decision.edge_latency_seconds


@given(a_kb=st.floats(1, 1000), b_kb=st.floats(1, 1000))
@settings(max_examples=40, deadline=None)
def test_offload_monotone_in_payload(a_kb, b_kb, vit_base):
    link = NetworkLink("l", bandwidth_bps=80e6, round_trip_seconds=0.01)
    policy = OffloadPolicy(vit_base, JETSON, A100, link)
    small, large = sorted((a_kb, b_kb))
    # If the small payload already stays on the edge, so does the large.
    if policy.decide(small * 1e3).placement is Placement.EDGE:
        assert policy.decide(large * 1e3).placement is Placement.EDGE


# ----------------------------------------------------------------------
# Traces: histograms conserve mass for arbitrary traces.
# ----------------------------------------------------------------------
@given(times=st.lists(st.floats(0, 99.9), min_size=1, max_size=60),
       bins=st.integers(1, 20))
@settings(max_examples=50, deadline=None)
def test_trace_histogram_conserves_mass(times, bins):
    trace = ArrivalTrace("t", tuple(sorted(times)), duration=100.0)
    hist = trace.rate_histogram(bins=bins)
    width = 100.0 / bins
    assert sum(r * width for r in hist) == pytest.approx(len(times))


# ----------------------------------------------------------------------
# Placement: budgets hold for random demand mixes.
# ----------------------------------------------------------------------
@given(
    loads=st.lists(st.floats(10, 8000), min_size=1, max_size=8),
    batch=st.sampled_from([8, 32, 64]),
)
@settings(max_examples=30, deadline=None)
def test_placement_budgets_hold(loads, batch, vit_tiny):
    from repro.predict.placement import ModelDemand, PlacementPlanner

    planner = PlacementPlanner(A100, max_devices=4, compute_cap=0.7)
    demands = [ModelDemand(vit_tiny, batch, load) for load in loads]
    plan = planner.place(demands)
    for device in plan.devices:
        assert device.memory_bytes <= A100.usable_gpu_memory_bytes
        assert device.compute_fraction <= 0.7 + 1e-9
    placed = sum(len(d.models) for d in plan.devices)
    assert placed + len(plan.unplaced) == len(demands)
