"""Tests for repro.serving.traces and the metrics exporter."""

import numpy as np
import pytest

from repro.serving.batcher import BatcherConfig
from repro.serving.exporter import export_metrics, parse_metrics
from repro.serving.metrics import summarize_responses
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer
from repro.serving.traces import (
    ArrivalTrace,
    TraceReplayer,
    burst_trace,
    diurnal_trace,
    sparse_diurnal_trace,
)


class TestArrivalTrace:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            ArrivalTrace("t", (2.0, 1.0), duration=5.0)

    def test_duration_enforced(self):
        with pytest.raises(ValueError, match="duration"):
            ArrivalTrace("t", (1.0, 6.0), duration=5.0)

    def test_mean_rate(self):
        trace = ArrivalTrace("t", (1.0, 2.0, 3.0, 4.0), duration=8.0)
        assert trace.mean_rate == 0.5

    def test_rate_histogram_conserves_count(self):
        trace = diurnal_trace(duration=86400, peak_rate=2.0,
                              base_rate=0.1, seed=1)
        hist = trace.rate_histogram(bins=24)
        total = sum(r * 3600 for r in hist)
        assert total == pytest.approx(len(trace), rel=1e-9)


class TestDiurnalTrace:
    def test_daylight_busier_than_night(self):
        trace = diurnal_trace(duration=86400, peak_rate=5.0,
                              base_rate=0.1, seed=2)
        hist = trace.rate_histogram(bins=24)
        night = np.mean(hist[0:5])
        midday = np.mean(hist[11:14])
        assert midday > 10 * night

    def test_peak_near_solar_noon(self):
        trace = diurnal_trace(duration=86400, peak_rate=5.0,
                              base_rate=0.05, seed=3)
        hist = trace.rate_histogram(bins=24)
        assert 10 <= int(np.argmax(hist)) <= 15

    def test_deterministic(self):
        a = diurnal_trace(seed=9, peak_rate=1.0)
        b = diurnal_trace(seed=9, peak_rate=1.0)
        assert a.arrival_times == b.arrival_times

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_trace(peak_rate=1.0, base_rate=2.0)
        with pytest.raises(ValueError):
            diurnal_trace(duration=1000.0)  # daylight window outside


class TestSparseDiurnalTrace:
    def test_nighttime_floor_keeps_the_night_nearly_silent(self):
        trace = sparse_diurnal_trace(duration=86400, peak_rate=2.0,
                                     night_rate=0.01, seed=6)
        # Daylight defaults to (0.25, 0.8) x duration.
        times = np.asarray(trace.arrival_times)
        night = np.sum((times < 21600) | (times >= 69120))
        day = len(times) - night
        assert day > 50 * max(night, 1)
        # Night arrivals hover around the floor: 0.01 rps over the
        # ~9.6 night hours is ~345 expected, give or take Poisson.
        assert night < 3 * 0.01 * (86400 - 47520)

    def test_zero_floor_means_a_truly_dark_night(self):
        trace = sparse_diurnal_trace(duration=86400, peak_rate=2.0,
                                     night_rate=0.0, seed=7)
        times = np.asarray(trace.arrival_times)
        assert np.all((times >= 21600) & (times < 69120))

    def test_deterministic(self):
        a = sparse_diurnal_trace(duration=7200, peak_rate=6.0,
                                 night_rate=0.02, seed=1)
        b = sparse_diurnal_trace(duration=7200, peak_rate=6.0,
                                 night_rate=0.02, seed=1)
        assert a.arrival_times == b.arrival_times
        c = sparse_diurnal_trace(duration=7200, peak_rate=6.0,
                                 night_rate=0.02, seed=2)
        assert a.arrival_times != c.arrival_times

    def test_peak_rides_inside_the_daylight_window(self):
        trace = sparse_diurnal_trace(duration=86400, peak_rate=5.0,
                                     night_rate=0.02, seed=8)
        hist = trace.rate_histogram(bins=24)
        assert 7 <= int(np.argmax(hist)) <= 17
        assert max(hist) == pytest.approx(5.0, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError, match="must be positive"):
            sparse_diurnal_trace(peak_rate=0.0)
        with pytest.raises(ValueError, match=">= 0"):
            sparse_diurnal_trace(peak_rate=2.0, night_rate=-0.1)
        with pytest.raises(ValueError, match="cannot exceed"):
            sparse_diurnal_trace(peak_rate=2.0, night_rate=3.0)
        with pytest.raises(ValueError, match="daylight"):
            sparse_diurnal_trace(duration=1000.0,
                                 daylight=(500.0, 1500.0))

    def test_carries_v2_name(self):
        trace = sparse_diurnal_trace(duration=3600, seed=0)
        assert trace.name == "sparse_diurnal/v2"


class TestBurstTrace:
    def test_bursts_dominate_arrivals(self):
        trace = burst_trace(duration=3600, background_rate=0.2,
                            bursts=3, burst_rate=100.0,
                            burst_seconds=20.0, seed=4)
        # ~3x100x20 = 6000 burst arrivals vs ~700 background.
        assert len(trace) > 4000
        hist = trace.rate_histogram(bins=60)
        assert max(hist) > 20 * np.median(hist)

    def test_no_bursts_is_plain_poisson(self):
        trace = burst_trace(duration=1000, background_rate=2.0, bursts=0,
                            seed=5)
        assert trace.mean_rate == pytest.approx(2.0, rel=0.2)


class TestTraceReplayer:
    def _server(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.001,
            batcher=BatcherConfig(max_batch_size=16,
                                  max_queue_delay=0.002)))
        return server

    def test_replay_submits_every_arrival(self):
        server = self._server()
        trace = burst_trace(duration=60, background_rate=5.0, bursts=1,
                            burst_rate=50.0, burst_seconds=5.0, seed=6)
        replayer = TraceReplayer(server, "m")
        replayer.schedule(trace)
        responses = server.run()
        assert replayer.submitted == len(trace)
        assert len(responses) == len(trace)

    def test_time_scale_compresses_the_run(self):
        server = self._server()
        trace = ArrivalTrace("t", (10.0, 20.0, 30.0), duration=40.0)
        TraceReplayer(server, "m", time_scale=0.01).schedule(trace)
        server.run()
        assert server.sim.now < 1.0

    def test_validation(self):
        server = self._server()
        with pytest.raises(ValueError):
            TraceReplayer(server, "m", images_per_request=0)
        with pytest.raises(ValueError):
            TraceReplayer(server, "m", time_scale=0.0)


class TestMetricsExporter:
    def _run_server(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "vit_tiny", lambda n: 0.005,
            batcher=BatcherConfig(max_batch_size=8,
                                  max_queue_delay=0.001)))
        for _ in range(20):
            server.submit(Request("vit_tiny"))
        server.run()
        return server

    def test_exposition_format_roundtrip(self):
        server = self._run_server()
        text = export_metrics(server)
        parsed = parse_metrics(text)
        key = ("harvest_request_total", (("status", "ok"),))
        assert parsed[key] == 20.0

    def test_instance_counters_present(self):
        server = self._run_server()
        parsed = parse_metrics(export_metrics(server))
        busy = parsed[("harvest_instance_busy_seconds_total",
                       (("instance", "0"), ("model", "vit_tiny")))]
        assert busy > 0

    def test_latency_quantiles_ordered(self):
        server = self._run_server()
        parsed = parse_metrics(export_metrics(server))

        def q(val):
            return parsed[("harvest_latency_seconds",
                           (("quantile", val),))]

        assert q("0.5") <= q("0.95") <= q("0.99")

    def test_help_and_type_comments_present(self):
        text = export_metrics(self._run_server())
        assert "# HELP harvest_request_total" in text
        assert "# TYPE harvest_request_total counter" in text

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_metrics("metric_name not_a_number")


class TestTraceRegressions:
    """Regressions from the v2 arrival-trace bugfix sweep."""

    def test_burst_envelope_covers_dense_background(self):
        # Nightly-upload shape: background above the burst rate.  The
        # thinning envelope used to clip at burst_rate, realizing ~5/s
        # where the model says ~38/s.
        trace = burst_trace(duration=2000.0, background_rate=40.0,
                            bursts=2, burst_rate=5.0,
                            burst_seconds=50.0, seed=7)
        expected = (40.0 * 1900.0 + 5.0 * 100.0) / 2000.0
        assert trace.mean_rate == pytest.approx(expected, rel=0.05)

    def test_burst_window_must_fit_duration(self):
        # Used to draw burst starts from a negative-span uniform.
        with pytest.raises(ValueError, match="burst_seconds"):
            burst_trace(duration=10.0, bursts=1, burst_seconds=30.0)

    def test_burst_rate_validation(self):
        with pytest.raises(ValueError, match="rates"):
            burst_trace(background_rate=-0.5)
        with pytest.raises(ValueError, match="rates"):
            burst_trace(burst_rate=0.0)

    def test_nonpositive_duration_rejected(self):
        # Used to surface later as ZeroDivisionError from mean_rate.
        for bad in (0.0, -3.0):
            with pytest.raises(ValueError, match="duration"):
                ArrivalTrace("t", (), duration=bad)

    def test_diurnal_docs_match_the_sine_implementation(self):
        # Docstrings promised a "cosine bump" while rate() implements a
        # half-sine arc.
        import repro.serving.traces as traces
        for doc in (traces.__doc__, diurnal_trace.__doc__):
            assert "cosine" not in doc
            assert "sine" in doc

    def test_generated_traces_carry_v2_names(self):
        from repro.serving.traces import step_trace
        assert diurnal_trace(duration=86400, peak_rate=1.0,
                             base_rate=0.1, seed=1).name == "diurnal/v2"
        assert burst_trace(duration=60, bursts=0, seed=1).name == "burst/v2"
        assert step_trace(duration=60, seed=1).name == "step/v2"


class TestBatchedReplay:
    def _server(self):
        server = TritonLikeServer()
        server.register(ModelConfig(
            "m", lambda n: 0.001,
            batcher=BatcherConfig(max_batch_size=16,
                                  max_queue_delay=0.002)))
        return server

    def test_schedule_returns_stream_handle(self):
        server = self._server()
        trace = ArrivalTrace("t", (0.5, 1.0, 1.5), duration=2.0)
        stream = TraceReplayer(server, "m").schedule(trace)
        assert stream is not None
        assert stream.remaining == 3
        server.run()
        assert stream.remaining == 0
        assert len(server.responses) == 3

    def test_empty_trace_schedules_nothing(self):
        server = self._server()
        stream = TraceReplayer(server, "m").schedule(
            ArrivalTrace("t", (), duration=1.0))
        assert stream is None
        assert server.sim.peek_time() is None
