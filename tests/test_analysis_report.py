"""Tests for repro.analysis.report and repro.analysis.compare."""

import pytest

from repro.analysis.compare import (
    paper_comparison,
    render_comparison,
)
from repro.analysis.report import full_report, render_report


class TestRenderReport:
    @pytest.mark.parametrize("artifact", [
        "table1", "table2", "table3", "fig5", "fig6", "fig7", "fig8"])
    def test_every_artifact_renders(self, artifact):
        text = render_report(artifact)
        assert len(text) > 50

    def test_unknown_artifact_raises(self):
        with pytest.raises(KeyError, match="available"):
            render_report("fig9")

    def test_full_report_contains_all_sections(self):
        text = full_report()
        for marker in ("Table 1", "Table 2", "Table 3", "fig5", "fig6",
                       "fig7", "fig8"):
            assert marker in text


class TestPaperComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return paper_comparison()

    def test_covers_all_experiment_families(self, rows):
        assert {r.experiment for r in rows} == {"table1", "table3",
                                                "sec4", "fig5"}

    def test_every_anchor_within_tolerance(self, rows):
        # The headline reproduction check: every printed number in the
        # paper is matched within 2% (conv share within 1 point).
        for row in rows:
            tolerance = 0.02
            assert row.relative_error < tolerance or \
                abs(row.model - row.paper) < 1.0, \
                f"{row.quantity}: paper={row.paper} model={row.model}"

    def test_fig5_anchors_essentially_exact(self, rows):
        fig5_rows = [r for r in rows if r.experiment == "fig5"]
        assert len(fig5_rows) == 12
        for row in fig5_rows:
            assert row.relative_error < 0.002, row.quantity

    def test_render_comparison(self, rows):
        text = render_comparison(rows)
        assert "rel_err_pct" in text
        assert "ViT Tiny" in text or "vit_tiny" in text
