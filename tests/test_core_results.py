"""Tests for repro.core.results."""

import pytest

from repro.core.results import ResultTable, render_table


class TestResultTable:
    def test_columns_from_first_row(self):
        table = ResultTable("t", [{"a": 1, "b": 2}])
        assert table.columns == ["a", "b"]

    def test_heterogeneous_rows_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            ResultTable("t", [{"a": 1}, {"b": 2}])

    def test_column_extraction(self):
        table = ResultTable("t", [{"a": 1}, {"a": 3}])
        assert table.column("a") == [1, 3]

    def test_missing_column_raises(self):
        table = ResultTable("t", [{"a": 1}])
        with pytest.raises(KeyError, match="available"):
            table.column("z")

    def test_where_filters(self):
        table = ResultTable("t", [
            {"p": "A100", "v": 1}, {"p": "V100", "v": 2},
            {"p": "A100", "v": 3}])
        filtered = table.where(p="A100")
        assert filtered.column("v") == [1, 3]

    def test_where_multiple_conditions(self):
        table = ResultTable("t", [
            {"p": "A", "m": "x", "v": 1}, {"p": "A", "m": "y", "v": 2}])
        assert table.where(p="A", m="y").column("v") == [2]

    def test_empty_table_columns(self):
        assert ResultTable("t", []).columns == []


class TestRenderTable:
    def test_contains_title_and_headers(self):
        text = render_table("My Table", [{"col": 1.5}])
        assert "== My Table ==" in text
        assert "col" in text
        assert "1.50" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_table("empty", [])

    def test_boolean_formatting(self):
        text = render_table("t", [{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_large_floats_use_scientific(self):
        text = render_table("t", [{"v": 1.23456e8}])
        assert "1.23e+08" in text

    def test_alignment_consistent(self):
        text = render_table("t", [{"name": "a", "v": 1},
                                  {"name": "longer", "v": 22}])
        lines = text.splitlines()
        assert len(lines[2]) == len(lines[3])  # separator matches rows
