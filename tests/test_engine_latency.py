"""Tests for repro.engine.latency — the Fig. 6 laws."""

import pytest

from repro.engine.calibration import LATENCY_TARGET_SECONDS, batch_grid
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100, JETSON, V100


class TestLatencyCurve:
    def test_latency_increases_with_batch(self, vit_small):
        model = LatencyModel(vit_small, A100)
        lats = [model.latency(b) for b in (1, 4, 16, 64, 256, 1024)]
        assert lats == sorted(lats)

    def test_actual_latency_above_theoretical(self, all_models):
        # The solid lines sit above the dashed ideal everywhere.
        for graph in all_models:
            model = LatencyModel(graph, A100)
            for b in (1, 8, 64, 512):
                assert model.latency(b) > model.theoretical_latency(b)

    def test_theoretical_latency_linear_in_batch(self, vit_tiny):
        model = LatencyModel(vit_tiny, V100)
        assert model.theoretical_latency(128) == pytest.approx(
            128 * model.theoretical_latency(1))

    def test_initial_nonlinear_region(self, vit_tiny):
        # "low MFU at small batch sizes creates an initial nonlinear
        # region": latency grows far slower than batch at the start.
        model = LatencyModel(vit_tiny, A100)
        assert model.latency(8) < 2.0 * model.latency(1)

    def test_asymptotically_linear(self, vit_tiny):
        model = LatencyModel(vit_tiny, A100)
        assert model.latency(1024) == pytest.approx(
            2 * model.latency(512), rel=0.05)

    def test_point_consistency(self, resnet50):
        model = LatencyModel(resnet50, JETSON)
        point = model.point(16)
        assert point.latency_seconds == pytest.approx(
            16 / point.throughput)
        assert point.achieved_tflops == pytest.approx(
            JETSON.practical_tflops * point.mfu)

    def test_sweep_returns_grid_points(self, vit_base):
        model = LatencyModel(vit_base, A100)
        grid = (1, 2, 4, 8)
        points = model.sweep(grid)
        assert tuple(p.batch_size for p in points) == grid


class TestOperatingRegion:
    """Section 4.1: "On A100 hardware, this requires batch sizes exceeding
    16; on V100, batch size 8 suffices."""

    def test_a100_needs_larger_batch_than_its_latency_budget_alone(self):
        from repro.models.vit import build_vit

        graph = build_vit("vit_tiny")
        model = LatencyModel(graph, A100)
        grid = batch_grid("a100")
        optimal = model.optimal_operating_batch(grid,
                                                saturation_fraction=0.8)
        assert optimal is not None and optimal >= 16

    def test_v100_saturates_with_smaller_batch_than_a100(self, vit_small):
        a100 = LatencyModel(vit_small, A100)
        v100 = LatencyModel(vit_small, V100)
        a_opt = a100.optimal_operating_batch(batch_grid("a100"),
                                             saturation_fraction=0.8)
        v_opt = v100.optimal_operating_batch(batch_grid("v100"),
                                             saturation_fraction=0.8)
        assert v_opt <= a_opt

    def test_meets_60qps_flag(self, vit_base):
        model = LatencyModel(vit_base, A100)
        points = model.sweep(batch_grid("a100"))
        ok = [p for p in points if p.meets_60qps]
        too_slow = [p for p in points if not p.meets_60qps]
        assert ok and too_slow
        assert max(p.batch_size for p in ok) < min(
            p.batch_size for p in too_slow)

    def test_max_batch_within_latency(self, vit_base):
        model = LatencyModel(vit_base, A100)
        best = model.max_batch_within_latency(batch_grid("a100"))
        assert model.latency(best) <= LATENCY_TARGET_SECONDS
        grid = batch_grid("a100")
        nxt = grid[grid.index(best) + 1]
        assert model.latency(nxt) > LATENCY_TARGET_SECONDS

    def test_unreachable_target_returns_none(self, vit_base):
        model = LatencyModel(vit_base, JETSON)
        assert model.max_batch_within_latency((8, 16),
                                              target_seconds=1e-6) is None

    def test_jetson_narrow_margins_for_vit_base(self, vit_base):
        # ViT Base on the Jetson cannot reach saturation within 16.7 ms.
        model = LatencyModel(vit_base, JETSON)
        optimal = model.optimal_operating_batch(
            (1, 2, 4, 8), saturation_fraction=0.9)
        assert optimal is None
