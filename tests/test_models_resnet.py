"""Tests for repro.models.resnet — the Table 3 CNN anchors."""

import pytest

from repro.models.layers import Conv2d, LayerCategory
from repro.models.resnet import STAGES, BottleneckConfig, build_resnet50


class TestTable3Anchors:
    def test_parameter_count(self, resnet50):
        # Table 3: 25.56M (the torchvision ImageNet-1k count, 25,557,032).
        assert resnet50.total_params() == 25_557_032

    def test_gflops_per_image(self, resnet50):
        # Table 3: 4.09 GFLOPs/image at 224x224.
        assert resnet50.reported_gflops() == pytest.approx(4.09, rel=0.01)

    def test_input_size(self, resnet50):
        assert resnet50.input_shape == (3, 224, 224)

    def test_architecture_label(self, resnet50):
        assert resnet50.architecture == "cnn"

    def test_convolution_dominates_compute(self, resnet50):
        # Section 4.0.2: "convolution operations account for 99.5% of
        # ResNet50's overall computational intensity."
        breakdown = resnet50.compute_breakdown()
        assert breakdown[LayerCategory.CONV] > 0.985


class TestTopology:
    def test_stage_structure_is_3463(self):
        assert [blocks for blocks, _ in STAGES] == [3, 4, 6, 3]

    def test_bottleneck_expansion_is_four(self):
        cfg = BottleneckConfig(in_channels=64, width=64, stride=1,
                               in_hw=(56, 56))
        assert cfg.out_channels == 256

    def test_first_block_of_each_later_stage_downsamples(self):
        cfg = BottleneckConfig(in_channels=256, width=128, stride=2,
                               in_hw=(56, 56))
        assert cfg.has_downsample
        assert cfg.out_hw == (28, 28)

    def test_identity_block_has_no_downsample(self):
        cfg = BottleneckConfig(in_channels=256, width=64, stride=1,
                               in_hw=(56, 56))
        assert not cfg.has_downsample

    def test_conv_layer_count(self, resnet50):
        # 1 stem + 16 blocks x 3 convs + 4 downsample convs = 53 convs
        # (the "50" counts convs + fc differently; torchvision has 53
        # conv layers).
        convs = [l for l in resnet50.layers if isinstance(l, Conv2d)]
        assert len(convs) == 53

    def test_final_feature_width(self, resnet50):
        fc = resnet50.layers[-1]
        assert fc.in_features == 2048

    def test_spatial_reduction_chain(self, resnet50):
        # 224 -> 7 after five stride-2 reductions.
        from repro.models.layers import GlobalAvgPool

        gap = next(l for l in resnet50.layers
                   if isinstance(l, GlobalAvgPool))
        assert gap.in_hw == (7, 7)


class TestBuilderOptions:
    def test_custom_classes_shrink_head_only(self, resnet50):
        small_head = build_resnet50(num_classes=10)
        delta = resnet50.total_params() - small_head.total_params()
        assert delta == 990 * 2048 + 990

    def test_smaller_input_size(self):
        graph = build_resnet50(img_size=64)
        assert graph.input_shape == (3, 64, 64)
        assert graph.reported_gflops() < 4.09

    def test_indivisible_input_rejected(self):
        with pytest.raises(ValueError, match="divisible by 32"):
            build_resnet50(img_size=100)

    def test_flops_scale_with_input_area(self, resnet50):
        half = build_resnet50(img_size=128)
        ratio = resnet50.reported_gflops() / half.reported_gflops()
        # Conv FLOPs scale with output area: (224/128)^2 ~= 3.06 (fc is
        # area-independent so the ratio is slightly below).
        assert ratio == pytest.approx((224 / 128) ** 2, rel=0.05)
