"""Tests for repro.serving.trace_export — Perfetto JSON + critical path."""

import json

import pytest

from repro.serving.trace_export import (
    chrome_trace_events,
    critical_path,
    critical_path_summary,
    export_chrome_trace,
    render_critical_path,
    validate_chrome_trace,
)
from repro.serving.tracectx import TraceContext


def _simple_trace(trace_id=1, start=0.0, latency=0.1):
    ctx = TraceContext(trace_id, start=start)
    ctx.baggage["model"] = "m"
    wait = ctx.begin("queue_wait", start, category="queue")
    ctx.end(wait, start + latency * 0.4)
    run = ctx.begin("execute", start + latency * 0.4,
                    category="execute")
    ctx.end(run, start + latency)
    ctx.instant("batch_dispatch", start + latency * 0.4,
                category="queue", batch_images=4)
    ctx.close(start + latency, status="ok")
    return ctx


class TestChromeTraceEvents:
    def test_metadata_then_spans(self):
        events = chrome_trace_events([_simple_trace()])
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "harvest-continuum"
        assert events[1]["ph"] == "M"
        assert events[1]["name"] == "thread_name"
        assert "m" in events[1]["args"]["name"]
        assert "[ok]" in events[1]["args"]["name"]

    def test_intervals_are_complete_events_in_microseconds(self):
        events = chrome_trace_events([_simple_trace(latency=0.1)])
        [wait] = [e for e in events if e.get("name") == "queue_wait"]
        assert wait["ph"] == "X"
        assert wait["ts"] == 0
        assert wait["dur"] == 40_000  # 40 ms
        [root] = [e for e in events if e.get("name") == "request"]
        assert root["dur"] == 100_000

    def test_decision_marks_are_instants(self):
        events = chrome_trace_events([_simple_trace()])
        [mark] = [e for e in events
                  if e.get("name") == "batch_dispatch"]
        assert mark["ph"] == "i" and mark["s"] == "t"
        assert mark["args"]["batch_images"] == 4

    def test_zero_duration_interval_stays_complete_event(self):
        # A queue_wait that dispatched instantly is still an interval,
        # not a decision mark.
        ctx = TraceContext(1, start=0.0)
        wait = ctx.begin("queue_wait", 0.0, category="queue")
        ctx.end(wait, 0.0)
        ctx.close(0.01)
        events = chrome_trace_events([ctx])
        [e] = [e for e in events if e.get("name") == "queue_wait"]
        assert e["ph"] == "X" and e["dur"] == 0

    def test_unclosed_spans_skipped(self):
        ctx = TraceContext(1, start=0.0)
        ctx.begin("execute", 0.0)  # never ended (still in flight)
        ctx.close(0.05)
        events = chrome_trace_events([ctx])
        assert not [e for e in events if e.get("name") == "execute"]


class TestExportDeterminism:
    def test_byte_identical_across_runs(self):
        a = export_chrome_trace([_simple_trace(), _simple_trace(2, 0.2)])
        b = export_chrome_trace([_simple_trace(), _simple_trace(2, 0.2)])
        assert a == b
        assert a.endswith("\n")

    def test_output_round_trips_json(self):
        text = export_chrome_trace([_simple_trace()])
        payload = json.loads(text)
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)


class TestValidateChromeTrace:
    def test_accepts_exporter_output(self):
        text = export_chrome_trace([_simple_trace()])
        payload = validate_chrome_trace(text)
        assert len(payload["traceEvents"]) == 6

    def test_rejects_non_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            validate_chrome_trace("{nope")

    def test_rejects_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace(json.dumps({"foo": []}))

    def test_rejects_unknown_phase(self):
        payload = {"traceEvents": [{"ph": "Z"}]}
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(json.dumps(payload))

    def test_rejects_negative_duration(self):
        payload = {"traceEvents": [
            {"ph": "X", "name": "a", "cat": "c", "ts": 0, "dur": -1}]}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(json.dumps(payload))

    def test_rejects_metadata_without_name(self):
        payload = {"traceEvents": [
            {"ph": "M", "name": "process_name", "args": {}}]}
        with pytest.raises(ValueError, match="args.name"):
            validate_chrome_trace(json.dumps(payload))


class TestCriticalPath:
    def test_gaps_book_to_untracked(self):
        ctx = TraceContext(1, start=0.0)
        span = ctx.begin("execute", 0.02)
        ctx.end(span, 0.08)
        ctx.close(0.1)
        path = critical_path(ctx)
        assert path["execute"] == pytest.approx(0.06)
        assert path["untracked"] == pytest.approx(0.04)
        assert sum(path.values()) == pytest.approx(ctx.latency)

    def test_latest_started_covering_span_wins(self):
        # A retry's queue wait overlaps the tail of the failed attempt:
        # the stage the request most recently entered bounds progress.
        ctx = TraceContext(1, start=0.0)
        first = ctx.begin("execute", 0.0)
        ctx.end(first, 0.06)
        wait = ctx.begin("queue_wait", 0.04)
        ctx.end(wait, 0.08)
        ctx.close(0.08)
        path = critical_path(ctx)
        assert path["execute"] == pytest.approx(0.04)
        assert path["queue_wait"] == pytest.approx(0.04)

    def test_open_trace_rejected(self):
        with pytest.raises(ValueError, match="open trace"):
            critical_path(TraceContext(1))

    def test_zero_latency_trace_is_empty(self):
        ctx = TraceContext(1, start=0.5)
        ctx.close(0.5, status="rejected")
        assert critical_path(ctx) == {}

    def test_instants_do_not_consume_time(self):
        ctx = TraceContext(1, start=0.0)
        span = ctx.begin("execute", 0.0)
        ctx.end(span, 0.1)
        ctx.instant("route", 0.05)
        ctx.close(0.1)
        assert critical_path(ctx) == {"execute": pytest.approx(0.1)}


class TestCriticalPathSummary:
    def _traces(self):
        # Latencies 10ms..100ms: p95 witness is the 100ms trace.
        out = []
        for i in range(1, 11):
            out.append(_simple_trace(trace_id=i, latency=0.01 * i))
        return out

    def test_quantile_witnesses(self):
        summary = critical_path_summary(self._traces())
        assert summary["p95"]["trace_id"] == 10
        assert summary["p95"]["latency_seconds"] == pytest.approx(0.1)
        assert summary["p50"]["trace_id"] == 5

    def test_overall_aggregates_everything(self):
        summary = critical_path_summary(self._traces())
        total = sum(0.01 * i for i in range(1, 11))
        assert summary["overall"]["latency_seconds"] == \
            pytest.approx(total)

    def test_tracked_fraction_meets_attribution_bar(self):
        # Acceptance: >= 95% of the p95 witness attributed to named
        # spans (the instrumented layers leave no untracked gaps).
        summary = critical_path_summary(self._traces())
        assert summary["p95"]["tracked_fraction"] >= 0.95

    def test_no_closed_traces_rejected(self):
        with pytest.raises(ValueError, match="no closed"):
            critical_path_summary([TraceContext(1)])

    def test_render_contains_stages_and_totals(self):
        text = render_critical_path(
            critical_path_summary(self._traces()))
        lines = text.splitlines()
        assert "p95" in lines[0] and "overall" in lines[0]
        assert any(line.startswith("execute") for line in lines)
        assert any(line.startswith("queue_wait") for line in lines)
        assert lines[-2].startswith("total")
        assert lines[-1].startswith("tracked")


class TestExplainTail:
    def _setup(self, exemplars=True):
        from repro.serving.observability import MetricsRegistry

        reg = MetricsRegistry()
        h = reg.histogram("continuum_latency_seconds",
                          buckets=(0.05, 0.1, 0.5))
        if exemplars:
            h.enable_exemplars()
        traces = []
        for i in range(1, 10):
            ctx = _simple_trace(trace_id=i, latency=0.04)
            traces.append(ctx)
            h.observe(ctx.latency, trace_id=str(i), model="m")
        slow = _simple_trace(trace_id=10, start=2.0, latency=0.3)
        traces.append(slow)
        h.observe(slow.latency, trace_id="10", model="m")
        return reg, traces

    def test_locates_tail_and_joins_exemplar_witness(self):
        from repro.serving.trace_export import explain_tail

        reg, traces = self._setup()
        report = explain_tail(reg, traces)
        assert report["observations"] == 10
        # 9 of 10 land in the first bucket; p99 needs all 10, so the
        # tail starts past the second bound.
        assert report["threshold_seconds"] == pytest.approx(0.1)
        assert report["tail_observations"] == 1
        [exemplar] = report["tail_exemplars"]
        assert exemplar["trace_id"] == "10"
        assert exemplar["value"] == pytest.approx(0.3)
        [witness] = report["exemplar_witnesses"]
        assert witness["trace_id"] == 10
        assert witness["top_stage"] == "execute"

    def test_stage_shares_sorted_and_sum_to_one(self):
        from repro.serving.trace_export import explain_tail

        reg, traces = self._setup()
        report = explain_tail(reg, traces)
        shares = [entry["share"] for entry in report["stages"]]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(1.0)
        assert report["stages"][0]["stage"] == "execute"

    def test_falls_back_to_quantile_witness_without_exemplars(self):
        from repro.serving.trace_export import explain_tail

        reg, traces = self._setup(exemplars=False)
        report = explain_tail(reg, traces)
        assert report["tail_exemplars"] == []
        assert report["exemplar_witnesses"] == []
        assert report["stages"]  # still attributed, via the witness
        assert report["witness"]["stages"]

    def test_regime_section_from_fluid_intervals(self):
        from repro.serving.fluid import FluidInterval
        from repro.serving.trace_export import explain_tail

        reg, traces = self._setup()
        intervals = [FluidInterval(entered=1.0, resumed=3.0,
                                   integrated_requests=100,
                                   restored_requests=2,
                                   entry_backlog_images=512)]
        report = explain_tail(reg, traces, intervals=intervals,
                              sim_end=10.0)
        assert report["regime"] == {
            "fluid_intervals": 1, "fluid_seconds": 2.0,
            "sim_seconds": 10.0, "fluid_share": 0.2}

    def test_validation(self):
        from repro.serving.observability import MetricsRegistry
        from repro.serving.trace_export import explain_tail

        reg, traces = self._setup()
        with pytest.raises(ValueError, match="quantile"):
            explain_tail(reg, traces, quantile=1.0)
        with pytest.raises(ValueError, match="no closed traces"):
            explain_tail(reg, [TraceContext(1)])
        with pytest.raises(KeyError, match="not in the registry"):
            explain_tail(MetricsRegistry(), traces)

    def test_render_attribution_deterministic_text(self):
        from repro.serving.fluid import FluidInterval
        from repro.serving.trace_export import (explain_tail,
                                                render_attribution)

        reg, traces = self._setup()
        intervals = [FluidInterval(1.0, 3.0, 100, 2, 512)]
        report = explain_tail(reg, traces, intervals=intervals,
                              sim_end=10.0)
        text = render_attribution(report)
        assert "why is p99 high" in text
        assert "tail starts past 100 ms (1 of 10 observations)" in text
        assert "p99 witness: trace 10" in text
        assert "tail stage breakdown:" in text
        assert "execute" in text
        assert "le=0.5      trace 10" in text
        assert "regime: 1 fluid stretch, 2.000 of 10.000 sim-s" in text
        assert text == render_attribution(
            explain_tail(reg, traces, intervals=intervals, sim_end=10.0))
