"""Tests for the two-tier cache hierarchy (repro.cache.tiers)."""

import pytest

from repro.cache.keys import FrameFingerprint
from repro.cache.store import CacheStore
from repro.cache.tiers import (
    CLOUD_TENSOR,
    EDGE_RESULT,
    CacheHierarchy,
    CacheTier,
)
from repro.serving.observability import MetricsRegistry
from repro.serving.tracectx import TraceContext


def fp(bits: int) -> FrameFingerprint:
    return FrameFingerprint(dhash=bits, blocks=0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_tier(name=EDGE_RESULT, stage="uplink", registry=None,
              clock=None, **store_kwargs):
    store = CacheStore(1024, clock or FakeClock(), **store_kwargs)
    return CacheTier(name, store, stage=stage, registry=registry)


class TestCacheTier:
    def test_lookup_outcomes_counted_in_registry(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        tier = make_tier(registry=registry, clock=clock,
                         ttl_seconds=1.0)
        tier.insert(fp(1), "v", 10)
        assert tier.lookup(fp(1)) == "v"
        assert tier.lookup(fp(2)) is None
        clock.now = 2.0
        assert tier.lookup(fp(1)) is None  # expired -> stale
        requests = registry.get("cache_requests_total")
        assert requests.value(tier=EDGE_RESULT, outcome="hit") == 1
        assert requests.value(tier=EDGE_RESULT, outcome="miss") == 1
        assert requests.value(tier=EDGE_RESULT, outcome="stale") == 1

    def test_gauges_mirror_residency(self):
        registry = MetricsRegistry()
        tier = make_tier(registry=registry)
        tier.insert(fp(1), "v", 100)
        assert registry.get("cache_bytes").value(
            tier=EDGE_RESULT) == 100
        assert registry.get("cache_entries").value(
            tier=EDGE_RESULT) == 1

    def test_evictions_counted(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        store = CacheStore(20, clock)
        tier = CacheTier(EDGE_RESULT, store, stage="uplink",
                         registry=registry)
        tier.insert(fp(1), "a", 10)
        tier.insert(fp(2), "b", 10)
        tier.insert(fp(3), "c", 10)
        assert registry.get("cache_evictions_total").value(
            tier=EDGE_RESULT) == 1

    def test_lookup_emits_trace_instant(self):
        tier = make_tier()
        tier.insert(fp(1), "v", 10)
        ctx = TraceContext(1, start=0.0)
        tier.lookup(fp(1), trace=ctx, now=0.5)
        tier.lookup(fp(9), trace=ctx, now=0.6)
        marks = ctx.find("cache_lookup")
        assert [m.args["outcome"] for m in marks] == ["hit", "miss"]
        assert marks[0].args["tier"] == EDGE_RESULT
        assert marks[0].start == 0.5 and marks[0].closed

    def test_hit_ratio_and_summary(self):
        tier = make_tier(stage="uplink+serving")
        tier.insert(fp(1), "v", 10)
        tier.lookup(fp(1))
        tier.lookup(fp(2))
        assert tier.hit_ratio == 0.5
        summary = tier.summary()
        assert summary["tier"] == EDGE_RESULT
        assert summary["stage"] == "uplink+serving"
        assert summary["lookups"] == 2 and summary["hits"] == 1
        assert summary["entries"] == 1 and summary["used_bytes"] == 10

    def test_works_without_registry(self):
        tier = make_tier(registry=None)
        tier.insert(fp(1), "v", 10)
        assert tier.lookup(fp(1)) == "v"


class TestCacheHierarchy:
    def make_hierarchy(self):
        return CacheHierarchy(
            edge=make_tier(EDGE_RESULT, stage="uplink"),
            cloud=make_tier(CLOUD_TENSOR, stage="preprocess"))

    def test_tiers_addressed_by_name(self):
        h = self.make_hierarchy()
        assert h.edge.name == EDGE_RESULT
        assert h.cloud.name == CLOUD_TENSOR
        assert h.tier(EDGE_RESULT) is h.edge

    def test_unknown_tier_name_rejected(self):
        with pytest.raises(KeyError, match="unknown cache tier"):
            self.make_hierarchy().tier("l3")

    def test_missing_tier_is_silent_miss(self):
        h = CacheHierarchy(edge=make_tier())
        assert h.lookup(CLOUD_TENSOR, fp(1)) is None
        assert not h.insert(CLOUD_TENSOR, fp(1), "v", 10)
        assert not h.peek(CLOUD_TENSOR, fp(1))

    def test_missing_fingerprint_is_silent_miss(self):
        h = self.make_hierarchy()
        assert h.lookup(EDGE_RESULT, None) is None
        assert not h.insert(EDGE_RESULT, None, "v", 10)

    def test_lookup_and_insert_route_to_the_named_tier(self):
        h = self.make_hierarchy()
        h.insert(EDGE_RESULT, fp(1), "result", 10)
        h.insert(CLOUD_TENSOR, fp(1), "tensor", 10)
        assert h.lookup(EDGE_RESULT, fp(1)) == "result"
        assert h.lookup(CLOUD_TENSOR, fp(1)) == "tensor"

    def test_summaries_edge_first(self):
        h = self.make_hierarchy()
        names = [row["tier"] for row in h.summaries()]
        assert names == [EDGE_RESULT, CLOUD_TENSOR]

    def test_summaries_skip_disabled_tiers(self):
        h = CacheHierarchy(cloud=make_tier(CLOUD_TENSOR,
                                           stage="preprocess"))
        assert [row["tier"] for row in h.summaries()] == [CLOUD_TENSOR]


class TestExportedMetrics:
    def test_scrape_carries_cache_series(self):
        from repro.serving.exporter import export_registry

        registry = MetricsRegistry()
        tier = make_tier(registry=registry)
        tier.insert(fp(1), "v", 10)
        tier.lookup(fp(1))
        text = export_registry(registry)
        assert 'cache_requests_total{outcome="hit"' in text \
            or 'cache_requests_total{tier=' in text
        assert "cache_bytes" in text
        assert "cache_entries" in text
