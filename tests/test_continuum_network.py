"""Tests for repro.continuum.network."""

import numpy as np
import pytest

from repro.continuum.network import (
    LINKS,
    NetworkLink,
    get_link,
    register_link,
)
from repro.serving.events import Simulator
from repro.serving.tracectx import TraceContext


class TestNetworkLink:
    def test_transfer_time_components(self):
        link = NetworkLink("t", bandwidth_bps=8e6, round_trip_seconds=0.1,
                           overhead_factor=1.0)
        # 1 MB at 8 Mbps = 1 s serialization + 50 ms half-RTT.
        assert link.transfer_seconds(1e6) == pytest.approx(1.05)

    def test_overhead_factor_inflates_payload(self):
        base = NetworkLink("a", 8e6, 0.0, overhead_factor=1.0)
        lossy = NetworkLink("b", 8e6, 0.0, overhead_factor=1.5)
        assert lossy.transfer_seconds(1e6) == pytest.approx(
            1.5 * base.transfer_seconds(1e6))

    def test_request_response_includes_both_directions(self):
        link = get_link("farm_wifi")
        rr = link.request_response_seconds(1e6)
        assert rr > link.transfer_seconds(1e6)

    def test_sustainable_rate(self):
        link = NetworkLink("t", bandwidth_bps=80e6, round_trip_seconds=0.0,
                           overhead_factor=1.0)
        # 100 KB images at 80 Mbps -> 100 images/s.
        assert link.sustainable_images_per_second(1e5) == pytest.approx(
            100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink("x", bandwidth_bps=0, round_trip_seconds=0.0)
        with pytest.raises(ValueError):
            NetworkLink("x", bandwidth_bps=1, round_trip_seconds=-1)
        with pytest.raises(ValueError):
            NetworkLink("x", bandwidth_bps=1, round_trip_seconds=0,
                        overhead_factor=0.9)
        with pytest.raises(ValueError):
            get_link("farm_wifi").transfer_seconds(-1)
        with pytest.raises(ValueError):
            get_link("farm_wifi").sustainable_images_per_second(0)


class TestPresets:
    def test_six_presets(self):
        assert set(LINKS) == {"field_lte", "field_lte_lossy",
                              "farm_wifi", "farm_wifi_lossy",
                              "station_ethernet", "local"}

    def test_lossy_variants_share_the_clean_parameters(self):
        for clean, lossy in (("field_lte", "field_lte_lossy"),
                             ("farm_wifi", "farm_wifi_lossy")):
            a, b = get_link(clean), get_link(lossy)
            assert a.bandwidth_bps == b.bandwidth_bps
            assert a.round_trip_seconds == b.round_trip_seconds
            assert b.loss_probability > 0 and b.jitter_seconds > 0
            # Loss makes the same payload strictly more expensive.
            assert b.transfer_seconds(1e6) > a.transfer_seconds(1e6)

    def test_bandwidth_ordering(self):
        assert (get_link("field_lte").bandwidth_bps
                < get_link("farm_wifi").bandwidth_bps
                < get_link("station_ethernet").bandwidth_bps
                < get_link("local").bandwidth_bps)

    def test_lte_cannot_sustain_60fps_4k_raw(self):
        # The online-scenario transmission challenge: raw 4K frames
        # (24.9 MB) cannot stream at camera rate over field LTE.
        lte = get_link("field_lte")
        frame_bytes = 3840 * 2160 * 3
        assert lte.sustainable_images_per_second(frame_bytes) < 1.0

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_link("5g")


class TestRegisterLink:
    def test_mixed_case_name_stays_reachable(self):
        # Regression: LINKS used to store link.name verbatim while
        # get_link lowercased lookups, so any non-lowercase registration
        # became unreachable.
        link = NetworkLink("Field_5G", bandwidth_bps=100e6,
                           round_trip_seconds=0.020)
        register_link(link)
        try:
            assert get_link("field_5g") is link
            assert get_link("Field_5G") is link
            assert "Field_5G" not in LINKS
        finally:
            del LINKS["field_5g"]

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_link(NetworkLink("FARM_WIFI", bandwidth_bps=1e6,
                                      round_trip_seconds=0.1))

    def test_replace_opt_in(self):
        original = get_link("local")
        try:
            faster = NetworkLink("local", bandwidth_bps=80e9,
                                 round_trip_seconds=0.0,
                                 overhead_factor=1.0)
            assert register_link(faster, replace=True) is faster
            assert get_link("local") is faster
        finally:
            register_link(original, replace=True)


class TestLossAndJitter:
    def test_retransmit_expansion(self):
        link = NetworkLink("t", 8e6, 0.0, loss_probability=0.2)
        assert link.retransmit_expansion == pytest.approx(1.25)
        assert get_link("field_lte").retransmit_expansion == 1.0

    def test_loss_expands_expected_serialization(self):
        clean = NetworkLink("a", 8e6, 0.0, overhead_factor=1.0)
        lossy = NetworkLink("b", 8e6, 0.0, overhead_factor=1.0,
                            loss_probability=0.5)
        assert lossy.serialization_seconds(1e6) == pytest.approx(
            2.0 * clean.serialization_seconds(1e6))

    def test_loss_lowers_sustainable_rate(self):
        clean = NetworkLink("a", 80e6, 0.0, overhead_factor=1.0)
        lossy = NetworkLink("b", 80e6, 0.0, overhead_factor=1.0,
                            loss_probability=0.5)
        assert lossy.sustainable_images_per_second(1e5) == \
            pytest.approx(0.5 * clean.sustainable_images_per_second(1e5))

    def test_packet_count(self):
        link = NetworkLink("t", 8e6, 0.0, overhead_factor=1.0,
                           mtu_bytes=1500.0)
        assert link.packet_count(0.0) == 1
        assert link.packet_count(1500.0) == 1
        assert link.packet_count(1501.0) == 2

    def test_lossless_links_consume_no_randomness(self):
        link = NetworkLink("t", 8e6, 0.0)
        rng = np.random.default_rng(7)
        before = rng.bit_generator.state["state"].copy()
        assert link.sample_retransmits(1e6, rng) == 0
        assert link.sample_jitter(rng) == 0.0
        assert rng.bit_generator.state["state"] == before

    def test_same_seed_same_sample_stream(self):
        link = get_link("field_lte_lossy")
        streams = []
        for _ in range(2):
            rng = np.random.default_rng(42)
            streams.append([link.sample_transfer(256e3, rng)
                            for _ in range(50)])
        assert streams[0] == streams[1]

    def test_sampled_loss_matches_configured_rate(self):
        # Across seeds the empirical per-packet retransmit rate should
        # track loss/(1-loss) (expected extra transmissions per packet).
        link = NetworkLink("t", 8e6, 0.0, overhead_factor=1.0,
                           loss_probability=0.02)
        packets = link.packet_count(1e6)
        rates = []
        for seed in range(5):
            rng = np.random.default_rng(seed)
            total = sum(link.sample_retransmits(1e6, rng)
                        for _ in range(40))
            rates.append(total / (40 * packets))
        expected = 0.02 / 0.98
        assert np.mean(rates) == pytest.approx(expected, rel=0.15)

    def test_sampled_duration_centers_on_expected(self):
        link = get_link("field_lte_lossy")
        rng = np.random.default_rng(0)
        durations = [link.sample_transfer(256e3, rng)[0]
                     for _ in range(200)]
        assert np.mean(durations) == pytest.approx(
            link.transfer_seconds(256e3), rel=0.05)

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            NetworkLink("x", 1e6, 0.0, loss_probability=1.0)
        with pytest.raises(ValueError):
            NetworkLink("x", 1e6, 0.0, loss_probability=-0.1)
        with pytest.raises(ValueError):
            NetworkLink("x", 1e6, 0.0, jitter_seconds=-0.1)
        with pytest.raises(ValueError):
            NetworkLink("x", 1e6, 0.0, mtu_bytes=0)


class TestTransferHandle:
    def _schedule(self, rng=None):
        sim = Simulator()
        link = get_link("field_lte")
        trace = TraceContext(1)
        arrived = []
        handle = link.schedule_transfer(sim, 1e6, lambda: arrived.append(
            sim.now), trace=trace, direction="uplink", rng=rng)
        return sim, trace, arrived, handle

    def test_transfer_arrives_and_closes_span(self):
        sim, trace, arrived, handle = self._schedule()
        sim.run()
        assert arrived == [pytest.approx(
            get_link("field_lte").transfer_seconds(1e6))]
        assert handle.fired and not handle.cancelled
        span = trace.find("uplink")[0]
        assert span.end is not None
        assert "cancelled" not in span.args

    def test_cancelled_transfer_never_leaks_an_open_span(self):
        # Regression: cancelling the arrival event directly left the
        # uplink span open forever, so the trace export silently dropped
        # the leg.  The Transfer handle must close it on cancel.
        sim, trace, arrived, handle = self._schedule()
        sim.schedule(0.1, handle.cancel)
        sim.run()
        assert arrived == []
        assert handle.cancelled
        open_spans = [s for s in trace.children() if s.end is None]
        assert open_spans == []
        span = trace.find("uplink")[0]
        assert span.args["cancelled"] is True
        assert span.duration == pytest.approx(0.1)

    def test_cancel_after_arrival_is_a_noop(self):
        sim, trace, arrived, handle = self._schedule()
        sim.run()
        handle.cancel()
        assert handle.fired and not handle.cancelled
        assert "cancelled" not in trace.find("uplink")[0].args

    def test_sampled_schedule_records_retransmits(self):
        lossy = NetworkLink("t", 8e6, 0.0, overhead_factor=1.0,
                            loss_probability=0.3)
        sim = Simulator()
        trace = TraceContext(1)
        rng = np.random.default_rng(3)
        lossy.schedule_transfer(sim, 1e6, lambda: None, trace=trace,
                                rng=rng)
        sim.run()
        span = trace.find("uplink")[0]
        assert span.args["retransmits"] > 0
        # The sampled wire time stretches with the retransmit count.
        assert span.duration > lossy.serialization_seconds(1e6) / \
            lossy.retransmit_expansion
