"""Tests for repro.continuum.network."""

import pytest

from repro.continuum.network import LINKS, NetworkLink, get_link


class TestNetworkLink:
    def test_transfer_time_components(self):
        link = NetworkLink("t", bandwidth_bps=8e6, round_trip_seconds=0.1,
                           overhead_factor=1.0)
        # 1 MB at 8 Mbps = 1 s serialization + 50 ms half-RTT.
        assert link.transfer_seconds(1e6) == pytest.approx(1.05)

    def test_overhead_factor_inflates_payload(self):
        base = NetworkLink("a", 8e6, 0.0, overhead_factor=1.0)
        lossy = NetworkLink("b", 8e6, 0.0, overhead_factor=1.5)
        assert lossy.transfer_seconds(1e6) == pytest.approx(
            1.5 * base.transfer_seconds(1e6))

    def test_request_response_includes_both_directions(self):
        link = get_link("farm_wifi")
        rr = link.request_response_seconds(1e6)
        assert rr > link.transfer_seconds(1e6)

    def test_sustainable_rate(self):
        link = NetworkLink("t", bandwidth_bps=80e6, round_trip_seconds=0.0,
                           overhead_factor=1.0)
        # 100 KB images at 80 Mbps -> 100 images/s.
        assert link.sustainable_images_per_second(1e5) == pytest.approx(
            100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkLink("x", bandwidth_bps=0, round_trip_seconds=0.0)
        with pytest.raises(ValueError):
            NetworkLink("x", bandwidth_bps=1, round_trip_seconds=-1)
        with pytest.raises(ValueError):
            NetworkLink("x", bandwidth_bps=1, round_trip_seconds=0,
                        overhead_factor=0.9)
        with pytest.raises(ValueError):
            get_link("farm_wifi").transfer_seconds(-1)
        with pytest.raises(ValueError):
            get_link("farm_wifi").sustainable_images_per_second(0)


class TestPresets:
    def test_four_presets(self):
        assert set(LINKS) == {"field_lte", "farm_wifi",
                              "station_ethernet", "local"}

    def test_bandwidth_ordering(self):
        assert (get_link("field_lte").bandwidth_bps
                < get_link("farm_wifi").bandwidth_bps
                < get_link("station_ethernet").bandwidth_bps
                < get_link("local").bandwidth_bps)

    def test_lte_cannot_sustain_60fps_4k_raw(self):
        # The online-scenario transmission challenge: raw 4K frames
        # (24.9 MB) cannot stream at camera rate over field LTE.
        lte = get_link("field_lte")
        frame_bytes = 3840 * 2160 * 3
        assert lte.sustainable_images_per_second(frame_bytes) < 1.0

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_link("5g")
