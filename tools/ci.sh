#!/usr/bin/env sh
# Tier-1 gate: byte-compile every module, then run the full test suite.
# Mirrors .github/workflows/ci.yml so the same check runs locally.
set -eu
cd "$(dirname "$0")/.."
python -m compileall -q src
PYTHONPATH=src python -m pytest -x -q
