#!/usr/bin/env sh
# Tier-1 gate: byte-compile every module, then run the full test suite.
# Mirrors .github/workflows/ci.yml so the same check runs locally.
set -eu
cd "$(dirname "$0")/.."
python -m compileall -q src
PYTHONPATH=src python -m pytest -x -q
# Trace smoke: a short traced continuum replay must exit 0 and the
# written Perfetto file must pass the Chrome trace-event schema check.
TRACE_OUT="$(mktemp -t harvest_trace.XXXXXX)"
trap 'rm -f "$TRACE_OUT"' EXIT
PYTHONPATH=src python -m repro trace --duration 6 --step-start 1 \
    --step-end 3 --step-rate 700 --base-rate 60 --seed 2 \
    --out "$TRACE_OUT" > /dev/null
PYTHONPATH=src python - "$TRACE_OUT" <<'EOF'
import sys
from repro.serving.trace_export import validate_chrome_trace

payload = validate_chrome_trace(open(sys.argv[1]).read())
assert payload["traceEvents"], "trace smoke produced no events"
print(f"trace smoke ok: {len(payload['traceEvents'])} events")
EOF
# Cache smoke + determinism: the cache replay must exit 0 and two
# identical invocations must produce byte-identical stdout and JSON.
CACHE_DIR="$(mktemp -d -t harvest_cache.XXXXXX)"
trap 'rm -f "$TRACE_OUT"; rm -rf "$CACHE_DIR"' EXIT
PYTHONPATH=src python -m repro cache --frames 80 --seed 1 \
    --scene-change-rates 0.0,0.05,0.5 \
    --out "$CACHE_DIR/cache.json" > "$CACHE_DIR/a.txt"
cp "$CACHE_DIR/cache.json" "$CACHE_DIR/first.json"
PYTHONPATH=src python -m repro cache --frames 80 --seed 1 \
    --scene-change-rates 0.0,0.05,0.5 \
    --out "$CACHE_DIR/cache.json" > "$CACHE_DIR/b.txt"
cmp "$CACHE_DIR/a.txt" "$CACHE_DIR/b.txt"
cmp "$CACHE_DIR/first.json" "$CACHE_DIR/cache.json"
echo "cache smoke ok: deterministic across runs"
# Network smoke + determinism: the contended-uplink replay must exit 0,
# two identical invocations must produce byte-identical stdout, JSON
# and Chrome trace, and the exported trace must pass the schema check.
NET_DIR="$(mktemp -d -t harvest_network.XXXXXX)"
trap 'rm -f "$TRACE_OUT"; rm -rf "$CACHE_DIR" "$NET_DIR"' EXIT
PYTHONPATH=src python -m repro network --frames 15 --seed 1 \
    --broker-messages 60 --outage-start 5 --outage-seconds 3 \
    --out "$NET_DIR/network.json" \
    --trace-out "$NET_DIR/network.trace.json" > "$NET_DIR/a.txt"
cp "$NET_DIR/network.json" "$NET_DIR/first.json"
cp "$NET_DIR/network.trace.json" "$NET_DIR/first.trace.json"
PYTHONPATH=src python -m repro network --frames 15 --seed 1 \
    --broker-messages 60 --outage-start 5 --outage-seconds 3 \
    --out "$NET_DIR/network.json" \
    --trace-out "$NET_DIR/network.trace.json" > "$NET_DIR/b.txt"
cmp "$NET_DIR/a.txt" "$NET_DIR/b.txt"
cmp "$NET_DIR/first.json" "$NET_DIR/network.json"
cmp "$NET_DIR/first.trace.json" "$NET_DIR/network.trace.json"
PYTHONPATH=src python - "$NET_DIR/network.trace.json" <<'EOF'
import sys
from repro.serving.trace_export import validate_chrome_trace

payload = validate_chrome_trace(open(sys.argv[1]).read())
uplinks = [e for e in payload["traceEvents"]
           if e.get("name") == "uplink"]
assert uplinks, "network smoke produced no uplink spans"
print(f"network smoke ok: deterministic, {len(uplinks)} uplink spans")
EOF
# Bench smoke + perf-regression gate: the quick BENCH_core suite must
# verify (baseline and optimized runs agree) and hold the committed
# quick-mode speedup floors/bands.
PYTHONPATH=src python -m repro bench --quick \
    --check benchmarks/results/BENCH_core_quick.json
echo "bench smoke ok: quick suite within committed bounds"
# Fluid smoke + parity gate: the quick BENCH_fluid suite must hold the
# DES-vs-hybrid parity contract (exact throughput, tail quantiles in
# tolerance — verified inside the harness) and the committed quick-mode
# speedup floors and frontier wall-clock ceiling.
PYTHONPATH=src python -m repro fluid --quick \
    --check benchmarks/results/BENCH_fluid_quick.json
echo "fluid smoke ok: parity verified, quick suite within bounds"
# Profile smoke + determinism: the profiled replay must exit 0 and two
# identical invocations must produce byte-identical stdout, report
# JSON, speedscope JSON, and folded stacks.
PROF_DIR="$(mktemp -d -t harvest_profile.XXXXXX)"
trap 'rm -f "$TRACE_OUT"; rm -rf "$CACHE_DIR" "$NET_DIR" "$PROF_DIR"' EXIT
PYTHONPATH=src python -m repro profile --duration 4 \
    --fluid-duration 40 --burst-rate 900 --seed 1 \
    --out "$PROF_DIR/profile.json" \
    --speedscope "$PROF_DIR/profile.speedscope.json" \
    --folded-out "$PROF_DIR/profile.folded" > "$PROF_DIR/a.txt"
cp "$PROF_DIR/profile.json" "$PROF_DIR/first.json"
cp "$PROF_DIR/profile.speedscope.json" "$PROF_DIR/first.speedscope.json"
cp "$PROF_DIR/profile.folded" "$PROF_DIR/first.folded"
PYTHONPATH=src python -m repro profile --duration 4 \
    --fluid-duration 40 --burst-rate 900 --seed 1 \
    --out "$PROF_DIR/profile.json" \
    --speedscope "$PROF_DIR/profile.speedscope.json" \
    --folded-out "$PROF_DIR/profile.folded" > "$PROF_DIR/b.txt"
cmp "$PROF_DIR/a.txt" "$PROF_DIR/b.txt"
cmp "$PROF_DIR/first.json" "$PROF_DIR/profile.json"
cmp "$PROF_DIR/first.speedscope.json" "$PROF_DIR/profile.speedscope.json"
cmp "$PROF_DIR/first.folded" "$PROF_DIR/profile.folded"
echo "profile smoke ok: deterministic across runs"
# Profiler overhead gate: the quick BENCH_profile suite must verify the
# zero-instrumentation-cost contract (bare vs attached-but-disabled vs
# enabled scrapes byte-identical) and hold the committed overhead
# floors.
PYTHONPATH=src python -m repro profile-bench --quick \
    --check benchmarks/results/BENCH_profile_quick.json
echo "profile-bench smoke ok: zero-cost contract verified, within bounds"
# FaaS smoke + determinism: the serverless replay must exit 0 and two
# identical invocations must produce byte-identical stdout and JSON.
FAAS_DIR="$(mktemp -d -t harvest_faas.XXXXXX)"
trap 'rm -f "$TRACE_OUT"; rm -rf "$CACHE_DIR" "$NET_DIR" "$PROF_DIR" "$FAAS_DIR"' EXIT
PYTHONPATH=src python -m repro faas --duration 3600 --seed 1 \
    --out "$FAAS_DIR/faas.json" > "$FAAS_DIR/a.txt"
cp "$FAAS_DIR/faas.json" "$FAAS_DIR/first.json"
PYTHONPATH=src python -m repro faas --duration 3600 --seed 1 \
    --out "$FAAS_DIR/faas.json" > "$FAAS_DIR/b.txt"
cmp "$FAAS_DIR/a.txt" "$FAAS_DIR/b.txt"
cmp "$FAAS_DIR/first.json" "$FAAS_DIR/faas.json"
echo "faas smoke ok: deterministic across runs"
# FaaS bench gate: the quick BENCH_faas suite must verify (serverless
# and provisioned replays serve every arrival, scale-to-zero actually
# reaps) and hold the committed quick-mode speedup floors/bands.
PYTHONPATH=src python -m repro faas-bench --quick \
    --check benchmarks/results/BENCH_faas_quick.json
echo "faas-bench smoke ok: quick suite within committed bounds"
# Sweep smoke + cross-worker determinism: the same sweep run with one
# worker and with a two-process pool must produce byte-identical
# stdout, JSON, and merged metrics scrape — the engine's determinism
# contract, checked end to end through the CLI.
SWEEP_DIR="$(mktemp -d -t harvest_sweep.XXXXXX)"
trap 'rm -f "$TRACE_OUT"; rm -rf "$CACHE_DIR" "$NET_DIR" "$PROF_DIR" "$FAAS_DIR" "$SWEEP_DIR"' EXIT
PYTHONPATH=src python -m repro sweep --replications 4 --duration 600 \
    --seed 7 --jobs 1 --out "$SWEEP_DIR/sweep.json" \
    --metrics-out "$SWEEP_DIR/sweep.prom" > "$SWEEP_DIR/a.txt"
cp "$SWEEP_DIR/sweep.json" "$SWEEP_DIR/first.json"
cp "$SWEEP_DIR/sweep.prom" "$SWEEP_DIR/first.prom"
PYTHONPATH=src python -m repro sweep --replications 4 --duration 600 \
    --seed 7 --jobs 2 --out "$SWEEP_DIR/sweep.json" \
    --metrics-out "$SWEEP_DIR/sweep.prom" > "$SWEEP_DIR/b.txt"
cmp "$SWEEP_DIR/a.txt" "$SWEEP_DIR/b.txt"
cmp "$SWEEP_DIR/first.json" "$SWEEP_DIR/sweep.json"
cmp "$SWEEP_DIR/first.prom" "$SWEEP_DIR/sweep.prom"
echo "sweep smoke ok: byte-identical across 1-worker and 2-worker runs"
# Sweep bench gate: the quick BENCH_sweep suite must verify the merged
# scrape/profile/summary equal the sequential run's and hold the
# committed floors (core-count aware: 2.5x only where >=4 effective
# cores exist, an overhead bound below that).
PYTHONPATH=src python -m repro sweep-bench --quick \
    --check benchmarks/results/BENCH_sweep_quick.json
echo "sweep-bench smoke ok: merge determinism verified, within bounds"
