"""Legacy setup shim: enables `pip install -e .` on hosts without the
`wheel` package (PEP 517 editable installs need bdist_wheel)."""
from setuptools import setup

setup()
