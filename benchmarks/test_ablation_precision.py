"""Ablation: engine precision (FP32 vs FP16/BF16 vs INT8).

Section 3.1: "Lower-precision formats like INT8 or FP16 offer faster
inference but may reduce accuracy."  The ablation prices the same model
at each format via the roofline compute ceiling and the memory model.
"""

import pytest

from repro.hardware.platform import A100, V100
from repro.hardware.precision import Precision
from repro.hardware.roofline import RooflineModel
from repro.models.trt import TRTEngineBuilder
from repro.models.zoo import get_model


def test_ablation_precision_compute_ceiling(benchmark, write_artifact):
    def sweep():
        out = {}
        for precision in (Precision.FP32, Precision.TF32,
                          Precision.BF16, Precision.INT8):
            roofline = RooflineModel(A100, precision)
            out[precision.value] = roofline.compute_ceiling_tflops
        return out

    ceilings = benchmark(sweep)
    write_artifact("ablation_precision_ceilings", "\n".join(
        f"{p:5s}: {c:7.1f} TFLOPS" for p, c in ceilings.items()))
    assert ceilings["fp32"] < ceilings["tf32"] < ceilings["bf16"] \
        < ceilings["int8"]
    assert ceilings["int8"] == pytest.approx(2 * ceilings["bf16"])


def test_ablation_precision_memory(benchmark, write_artifact):
    graph = get_model("vit_base").graph

    def build_all():
        return {
            p.value: TRTEngineBuilder(A100, p).build(graph)
            for p in (Precision.FP32, Precision.BF16, Precision.INT8)
        }

    specs = benchmark(build_all)
    write_artifact("ablation_precision_memory", "\n".join(
        f"{p}: weights {s.weight_bytes / 1e6:7.1f} MB, "
        f"act/img {s.activation_bytes_per_image / 1e6:5.2f} MB"
        for p, s in specs.items()))
    assert specs["fp32"].weight_bytes == pytest.approx(
        2 * specs["bf16"].weight_bytes)
    assert specs["bf16"].weight_bytes == pytest.approx(
        2 * specs["int8"].weight_bytes)


def test_ablation_unsupported_precision_fails_like_trtexec(benchmark):
    def try_build():
        try:
            TRTEngineBuilder(V100, Precision.BF16)
            return False
        except ValueError:
            return True

    assert benchmark(try_build)
