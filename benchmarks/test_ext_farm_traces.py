"""Extension: serving a realistic farm day (trace-driven workloads).

Replays a diurnal field-hours trace and a survey-upload burst trace into
manifest-built serving stacks — the online scenario as the cluster
actually sees it, rather than constant-rate Poisson.
"""

import pytest

from repro.continuum.deployment import build_stack, load_manifest
from repro.serving.metrics import summarize_responses
from repro.serving.traces import (
    TraceReplayer,
    burst_trace,
    diurnal_trace,
)


def _station_manifest():
    return load_manifest({
        "name": "station", "platform": "a100", "scenario": "online",
        "models": [{"model": "vit_small", "dataset": "plant_village",
                    "max_batch_size": 64, "max_queue_delay_ms": 3.0,
                    "instances": 2}],
    })


def test_diurnal_day_on_the_cluster(benchmark, write_artifact):
    def run():
        server = build_stack(_station_manifest())
        # A day compressed 100x so the event count stays bounded; rates
        # scale up 100x accordingly (peak 1 -> 100 rps effective).
        trace = diurnal_trace(duration=86400, peak_rate=1.0,
                              base_rate=0.02, seed=21)
        replayer = TraceReplayer(server, "vit_small", time_scale=0.01)
        replayer.schedule(trace)
        server.run()
        return server, trace

    server, trace = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize_responses(server.responses)
    write_artifact("ext_farm_diurnal", (
        f"{len(trace)} requests over a compressed day\n"
        f"served {stats.count} p95={stats.p95_latency * 1e3:.1f}ms "
        f"mean={stats.mean_latency * 1e3:.1f}ms"))
    assert stats.count == len(trace)
    # The station absorbs the diurnal peak without tail blowup.
    assert stats.p95_latency < 0.5


def test_survey_upload_bursts(benchmark, write_artifact):
    def run():
        server = build_stack(_station_manifest())
        trace = burst_trace(duration=3600, background_rate=1.0,
                            bursts=3, burst_rate=250.0,
                            burst_seconds=20.0, seed=22)
        replayer = TraceReplayer(server, "vit_small", time_scale=0.1,
                                 images_per_request=4)
        replayer.schedule(trace)
        server.run()
        return server, trace

    server, trace = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = summarize_responses(server.responses)
    write_artifact("ext_farm_bursts", (
        f"{len(trace)} burst-pattern requests, {stats.images} images\n"
        f"p95={stats.p95_latency * 1e3:.1f}ms "
        f"max={stats.max_latency * 1e3:.1f}ms"))
    assert stats.count == len(trace)
    # Bursts queue briefly but drain: the tail stays bounded even
    # though the instantaneous burst rate exceeds capacity.
    assert stats.p95_latency < 1.0
