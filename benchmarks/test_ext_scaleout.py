"""Extension: scale-out (the Section 3 "prepared for future scale-out").

Data-parallel scaling curves (the Table 1 nodes' second GPU and beyond)
and load-balanced multi-node serving on the simulator.
"""

import pytest

from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.scale.balancer import (
    JoinShortestQueuePolicy,
    LoadBalancer,
    RoundRobinPolicy,
)
from repro.scale.parallel import DataParallelGroup
from repro.serving.batcher import BatcherConfig
from repro.serving.events import Simulator
from repro.serving.metrics import summarize_responses
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer


def test_scaling_curve(benchmark, write_artifact):
    group = DataParallelGroup(get_model("vit_base").graph, A100)

    def curve():
        return group.scaling_curve(8, batch_per_replica=64)

    points = benchmark(curve)
    write_artifact("ext_scaleout_curve", "\n".join(
        f"{p.replicas} replicas: {p.throughput:9.0f} img/s "
        f"(eff {p.scaling_efficiency:.1%})" for p in points))
    assert points[1].throughput > 1.9 * points[0].throughput  # 2nd GPU
    assert points[7].throughput > 6.5 * points[0].throughput
    effs = [p.scaling_efficiency for p in points]
    assert effs == sorted(effs, reverse=True)


def _run_balanced(nodes: int, policy, rate: float, n: int = 6000):
    latency = LatencyModel(get_model("vit_tiny").graph, A100)
    sim = Simulator()
    backends = []
    for _ in range(nodes):
        server = TritonLikeServer(sim)
        server.register(ModelConfig(
            "m", lambda k: latency.latency(max(1, k)),
            batcher=BatcherConfig(max_batch_size=256,
                                  max_queue_delay=0.002)))
        backends.append(server)
    balancer = LoadBalancer(backends, policy)
    for i in range(n):
        sim.schedule_at(i / rate, lambda: balancer.submit(Request("m")))
    responses = balancer.run()
    return summarize_responses(responses, warmup_fraction=0.1), balancer


def test_two_nodes_absorb_over_capacity_load(benchmark, write_artifact):
    def compare():
        one, _ = _run_balanced(1, RoundRobinPolicy(), rate=30000)
        two, balancer = _run_balanced(2, RoundRobinPolicy(), rate=30000)
        return one, two, balancer

    one, two, balancer = benchmark.pedantic(compare, rounds=1,
                                            iterations=1)
    write_artifact("ext_scaleout_serving", (
        f"1 node : {one.throughput_ips:8.0f} img/s "
        f"p95={one.p95_latency * 1e3:8.1f}ms\n"
        f"2 nodes: {two.throughput_ips:8.0f} img/s "
        f"p95={two.p95_latency * 1e3:8.1f}ms\n"
        f"routing: {balancer.routing_counts()}"))
    # One A100 saturates ~20k img/s; 30k offered overloads it (queues
    # grow, tail explodes).  Two nodes keep up.
    assert two.throughput_ips > 1.3 * one.throughput_ips
    assert two.p95_latency < one.p95_latency / 2
    counts = balancer.routing_counts()
    assert abs(counts[0] - counts[1]) <= 1


def test_jsq_beats_round_robin_under_skew(benchmark, write_artifact):
    # With heterogeneous backends (one busy with background work), the
    # queue-aware policy avoids the hot node.
    def compare():
        latency = LatencyModel(get_model("vit_tiny").graph, A100)
        results = {}
        for name, policy in (("rr", RoundRobinPolicy()),
                             ("jsq", JoinShortestQueuePolicy())):
            sim = Simulator()
            backends = []
            for _ in range(2):
                server = TritonLikeServer(sim)
                server.register(ModelConfig(
                    "m", lambda k: latency.latency(max(1, k)),
                    batcher=BatcherConfig(max_batch_size=256,
                                          max_queue_delay=0.002)))
                backends.append(server)
            # Skew: preload node 0 with a long backlog.
            for _ in range(2000):
                backends[0].submit(Request("m"))
            balancer = LoadBalancer(backends, policy)
            for i in range(3000):
                sim.schedule_at(0.001 + i / 15000.0,
                                lambda: balancer.submit(Request("m")))
            balancer.run()
            late = [r for r in balancer.backends[0].responses
                    + balancer.backends[1].responses
                    if r.request.arrival_time > 0]
            results[name] = summarize_responses(late,
                                                warmup_fraction=0.1)
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    write_artifact("ext_scaleout_jsq", "\n".join(
        f"{name}: p95={s.p95_latency * 1e3:8.1f}ms "
        f"mean={s.mean_latency * 1e3:8.1f}ms"
        for name, s in results.items()))
    assert results["jsq"].p95_latency < results["rr"].p95_latency
