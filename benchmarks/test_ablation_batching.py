"""Ablation: dynamic batching on/off and queue-delay sweep.

The Triton semantics the paper's tuning depends on: batching converts
queue delay into batch efficiency.  With batching disabled, each request
executes alone at the low-MFU end of the Fig. 5 curve.
"""

import pytest

from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def _run_serving(batcher: BatcherConfig, rate: float = 2000,
                 n: int = 2000):
    latency = LatencyModel(get_model("vit_tiny").graph, A100)
    server = TritonLikeServer()
    server.register(ModelConfig("m", lambda n: latency.latency(max(1, n)),
                                batcher=batcher))
    client = OpenLoopClient(server, "m", rate_per_second=rate,
                           num_requests=n, seed=2)
    client.start()
    server.run()
    return summarize_responses(server.responses, warmup_fraction=0.1)


def test_ablation_batching_on_vs_off(benchmark, write_artifact):
    def compare():
        on = _run_serving(BatcherConfig(max_batch_size=64,
                                        max_queue_delay=0.002))
        off = _run_serving(BatcherConfig(enabled=False), rate=500, n=500)
        return on, off

    on, off = benchmark.pedantic(compare, rounds=1, iterations=1)
    write_artifact("ablation_batching", (
        f"batching on : {on.throughput_ips:8.0f} img/s "
        f"p95={on.p95_latency * 1e3:.2f}ms\n"
        f"batching off: {off.throughput_ips:8.0f} img/s "
        f"p95={off.p95_latency * 1e3:.2f}ms"))
    # Unbatched serving caps near the BS=1 service rate (~770 img/s on
    # the A100 ViT Tiny curve); batching sustains the offered 2000 rps.
    assert on.throughput_ips > 2 * off.throughput_ips


def test_ablation_queue_delay_sweep(benchmark, write_artifact):
    def sweep():
        out = {}
        for delay in (0.0005, 0.002, 0.008, 0.032):
            stats = _run_serving(BatcherConfig(max_batch_size=256,
                                               max_queue_delay=delay))
            out[delay] = stats
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"delay={d * 1e3:5.1f}ms  thr={s.throughput_ips:8.0f} img/s"
             f"  p95={s.p95_latency * 1e3:6.2f}ms  "
             f"queue={s.mean_queue_delay * 1e3:5.2f}ms"
             for d, s in results.items()]
    write_artifact("ablation_queue_delay", "\n".join(lines))
    delays = sorted(results)
    # Longer delay budgets form larger batches -> higher tail latency.
    assert results[delays[0]].p95_latency < results[delays[-1]].p95_latency
    # All configurations keep up with the offered load.
    for stats in results.values():
        assert stats.throughput_ips == pytest.approx(2000, rel=0.2)
