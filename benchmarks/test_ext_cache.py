"""Extension: content-aware caching for redundant field imagery.

Replays the ``repro cache`` scenario — a fixed-mount CRSA camera whose
consecutive frames are near-duplicates — at three scene-change rates and
records the committed baseline ``results/BENCH_cache.json``.  The
structural claim under test: the edge tier's hit ratio decays
monotonically as the scene changes faster, and at the paper-motivated
5% change rate the cache still absorbs >= 80% of lookups and beats the
cache-disabled p95.
"""

import json

from repro.cli import main

RATES = "0.0,0.05,0.5"


def test_cache_hit_ratio_decays_with_scene_change(benchmark,
                                                  results_dir):
    out_file = results_dir / "BENCH_cache.json"

    def run():
        assert main(["cache", "--scene-change-rates", RATES,
                     "--out", str(out_file)]) == 0
        return json.loads(out_file.read_text())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = payload["rates"]
    assert [row["scene_change_rate"] for row in rows] == [0.0, 0.05,
                                                          0.5]

    ratios = [row["edge_hit_ratio"] for row in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert ratios[0] > ratios[-1]  # strictly worse at 10x the churn

    static, slow, fast = rows
    assert slow["edge_hit_ratio"] >= 0.8
    assert slow["uplink_bytes_saved"] > 0
    for row in rows:
        assert row["cached_p95_ms"] < row["uncached_p95_ms"]
    # Saved uplink bytes track the hit count one-to-one.
    assert static["uplink_bytes_saved"] > slow["uplink_bytes_saved"] \
        > fast["uplink_bytes_saved"]
