"""Ablation: multi-instance vs single large-batch deployment.

The Conclusion's recommendation: "Beyond this threshold, increasing batch
size yields diminishing returns, making multi-instance strategies more
effective for improving responsiveness."
"""

import pytest

from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def _run(instances: int, max_batch: int, rate: float = 15000,
         n: int = 6000):
    latency = LatencyModel(get_model("vit_tiny").graph, A100)
    server = TritonLikeServer()
    server.register(ModelConfig(
        "m", lambda k: latency.latency(max(1, k)),
        batcher=BatcherConfig(max_batch_size=max_batch,
                              max_queue_delay=0.002),
        instances=instances))
    client = OpenLoopClient(server, "m", rate_per_second=rate,
                           num_requests=n, seed=7)
    client.start()
    server.run()
    return summarize_responses(server.responses, warmup_fraction=0.1)


def test_ablation_multi_instance_responsiveness(benchmark,
                                                write_artifact):
    def compare():
        return {
            "1x256": _run(instances=1, max_batch=256),
            "2x128": _run(instances=2, max_batch=128),
            "4x64": _run(instances=4, max_batch=64),
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    write_artifact("ablation_multi_instance", "\n".join(
        f"{cfg}: thr={s.throughput_ips:8.0f} img/s  "
        f"p95={s.p95_latency * 1e3:6.2f}ms"
        for cfg, s in results.items()))

    # All configurations sustain the offered load; responsiveness
    # improves with instance count at equal aggregate batch capacity.
    for stats in results.values():
        assert stats.throughput_ips == pytest.approx(15000, rel=0.2)
    assert results["2x128"].p95_latency < results["1x256"].p95_latency

    # Memory check: the multi-instance deployment still fits the A100.
    from repro.engine.oom import EngineMemoryModel

    model = EngineMemoryModel(get_model("vit_tiny").graph, A100)
    assert 4 * model.engine_bytes(64) < A100.usable_gpu_memory_bytes
