"""Extension: per-layer roofline analysis (Section 3.1) and the INT8
speedup path.

Two analyses the paper discusses but does not plot: where each layer
type sits on the roofline (and how batching moves it), and what INT8
buys — including the deployment it rescues.
"""

import pytest

from repro.analysis.layer_roofline import (
    model_layer_roofline,
    roofline_summary,
)
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100, JETSON
from repro.hardware.precision import Precision
from repro.models.zoo import get_model, list_models


def test_layer_roofline_report(benchmark, write_artifact):
    def compute():
        out = {}
        for entry in list_models():
            for batch in (1, 64):
                out[(entry.name, batch)] = roofline_summary(
                    entry.graph, A100, batch_size=batch)
        return out

    summaries = benchmark(compute)
    lines = []
    for (model, batch), s in sorted(summaries.items()):
        cats = ", ".join(f"{k}={v:.2f}" for k, v in sorted(
            s["time_by_category"].items(), key=lambda kv: -kv[1])[:3])
        lines.append(f"{model:10s} @BS{batch:<3d} compute-bound "
                     f"{s['compute_bound_time_fraction']:.2f} | {cats}")
    write_artifact("ext_layer_roofline", "\n".join(lines))

    # Batching moves every model toward the compute roof.
    for entry in list_models():
        assert summaries[(entry.name, 64)][
            "compute_bound_time_fraction"] >= summaries[
            (entry.name, 1)]["compute_bound_time_fraction"]
    # The §4.0.2 split shows up as *time*: convs dominate ResNet50,
    # dense matmuls dominate the ViTs.
    assert max(summaries[("resnet50", 64)]["time_by_category"],
               key=summaries[("resnet50", 64)]["time_by_category"].get
               ) == "conv"
    assert max(summaries[("vit_base", 64)]["time_by_category"],
               key=summaries[("vit_base", 64)]["time_by_category"].get
               ) == "linear"


def test_int8_rescues_vit_base_realtime_on_jetson(benchmark,
                                                  write_artifact):
    # Section 3.1: "Lower-precision formats like INT8 or FP16 offer
    # faster inference but may reduce accuracy."  The payoff case: at
    # the calibrated BF16 rates ViT Base misses the 16.7 ms line at
    # every batch on the Jetson; INT8's 2x rate brings BS 1-2 inside it.
    graph = get_model("vit_base").graph

    def compute():
        bf16 = LatencyModel(graph, JETSON)
        int8 = LatencyModel(graph, JETSON, precision=Precision.INT8)
        return {
            "bf16_bs1_ms": bf16.latency(1) * 1e3,
            "int8_bs1_ms": int8.latency(1) * 1e3,
            "int8_bs2_ms": int8.latency(2) * 1e3,
        }

    out = benchmark(compute)
    write_artifact("ext_int8_rescue", "\n".join(
        f"{k}: {v:.2f}" for k, v in out.items()))
    assert out["bf16_bs1_ms"] > 1000 / 60        # misses 60 QPS
    assert out["int8_bs1_ms"] < 1000 / 60        # INT8 makes it
    assert out["int8_bs1_ms"] == pytest.approx(out["bf16_bs1_ms"] / 2)

    # The accuracy cost of that rescue, measured on real forwards:
    from repro.models.quantization import evaluate_quantization

    report = evaluate_quantization("vit_tiny", bits=8, batch=4)
    assert report.top1_agreement >= 0.75
