"""Fig. 8 bench: end-to-end pipeline latency/throughput.

Regenerates every (platform, model, dataset) cell at the paper's batch
labels, checks the bottleneck structure the paper reports, and
cross-checks the analytic overlap model against the serving simulator.
"""

import pytest

from repro.analysis.figures import fig8
from repro.analysis.report import render_series
from repro.continuum.pipeline import EndToEndPipeline
from repro.core.sweeps import e2e_sweep
from repro.data.datasets import get_dataset
from repro.hardware.platform import A100, JETSON, V100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import ClosedLoopClient
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def test_fig8_regeneration(benchmark, write_artifact):
    series = benchmark(fig8)
    write_artifact("fig8_end_to_end", render_series(series))
    names = {(s.panel, s.name) for s in series}
    assert ("Jetson", "vit_base@BS2 throughput") in names
    assert ("A100", "vit_base@BS64 throughput") in names
    assert ("V100", "vit_small@BS32 latency") in names


def test_fig8_bottleneck_structure(benchmark, write_artifact):
    def sweep_all():
        return {p.name: e2e_sweep(p) for p in (A100, V100, JETSON)}

    cells = benchmark(sweep_all)
    lines = []
    for platform, results in cells.items():
        for r in results:
            lines.append(
                f"{platform:6s} {r.model:10s}@BS{r.batch_size:<3d} "
                f"{r.dataset:14s} lat={r.latency_seconds * 1e3:8.1f}ms "
                f"thr={r.throughput:8.1f} ({r.bottleneck})")
    write_artifact("fig8_cells", "\n".join(lines))

    # A100: ViT Base/Small engine-bound, ViT Tiny preprocess-bound.
    a100 = {(r.model, r.dataset): r for r in cells["A100"]}
    assert a100[("vit_base", "plant_village")].bottleneck == "engine"
    assert a100[("vit_small", "plant_village")].bottleneck == "engine"
    assert a100[("vit_tiny", "plant_village")].bottleneck == "preprocess"
    # V100: everything preprocess-bound on the large datasets.
    v100 = {(r.model, r.dataset): r for r in cells["V100"]}
    assert v100[("vit_tiny", "plant_village")].bottleneck == "preprocess"
    assert v100[("resnet50", "plant_village")].bottleneck == "preprocess"
    # Jetson: ViT Base throughput collapses relative to engine-only.
    jetson = {(r.model, r.dataset): r for r in cells["Jetson"]}
    assert jetson[("vit_base", "plant_village")].throughput < 250


def test_fig8_simulator_cross_check(benchmark, write_artifact):
    # The analytic overlap model's steady-state throughput must agree
    # with the discrete-event Triton simulation of the same two-stage
    # pipeline (within scheduling slack).
    graph = get_model("vit_small").graph
    platform = A100
    dataset = get_dataset("plant_village")
    pipeline = EndToEndPipeline(graph, platform)
    analytic = pipeline.evaluate(dataset)
    batch = analytic.batch_size
    pre_time = analytic.preprocess_latency_seconds
    eng_time = analytic.engine_latency_seconds

    def simulate():
        server = TritonLikeServer()
        server.register(ModelConfig(
            "pre", lambda n: pre_time * n / batch,
            batcher=BatcherConfig(max_batch_size=batch,
                                  max_queue_delay=0.001)))
        server.register(ModelConfig(
            "model", lambda n: eng_time * n / batch,
            batcher=BatcherConfig(max_batch_size=batch,
                                  max_queue_delay=0.001),
            preprocess_model="pre"))
        client = ClosedLoopClient(server, "model", concurrency=4 * batch,
                                  num_requests=40 * batch)
        client.start()
        server.run()
        return summarize_responses(client.completed,
                                   warmup_fraction=0.25)

    stats = benchmark.pedantic(simulate, rounds=1, iterations=1)
    write_artifact("fig8_simulator_cross_check",
                   f"analytic={analytic.throughput:.0f} img/s  "
                   f"simulated={stats.throughput_ips:.0f} img/s")
    assert stats.throughput_ips == pytest.approx(analytic.throughput,
                                                 rel=0.15)
