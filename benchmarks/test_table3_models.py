"""Table 3 bench: model specs, upper bounds, and real forward passes."""

import numpy as np
import pytest

from repro.analysis.tables import table3
from repro.models.functional import MacTally, build_functional
from repro.models.zoo import list_models


def test_table3_regeneration(benchmark, write_artifact):
    table = benchmark(table3)
    write_artifact("table3_models", table.render())
    rows = {r["model"]: r for r in table.rows}
    # The Table 3 anchors.
    assert rows["ViT Tiny"]["params_millions"] == pytest.approx(5.39,
                                                                rel=0.005)
    assert rows["ResNet50"]["gflops_per_image"] == pytest.approx(
        4.09, rel=0.01)
    assert rows["ViT Base"]["upper_bound_a100"] == pytest.approx(
        14013, rel=0.015)
    assert rows["ViT Small"]["upper_bound_jetson"] == pytest.approx(
        2085, rel=0.015)


def test_table3_analytic_accounting_speed(benchmark):
    # Building + fully accounting all four graphs; exercises the layer
    # algebra end to end.
    def account():
        out = {}
        for entry in list_models():
            graph = entry.builder()
            out[entry.name] = (graph.total_params(),
                               graph.reported_gflops(),
                               graph.compute_breakdown())
        return out

    result = benchmark(account)
    assert result["resnet50"][0] == 25_557_032


def test_table3_real_vit_tiny_forward(benchmark, write_artifact):
    # A real NumPy inference of ViT Tiny, MAC-tallied: the executable
    # twin of the Table 3 GFLOPs column.
    model = build_functional("vit_tiny")
    x = np.random.default_rng(0).standard_normal(
        (1, 3, 32, 32)).astype(np.float32)

    def forward():
        tally = MacTally()
        model(x, tally=tally)
        return tally.macs

    macs = benchmark.pedantic(forward, rounds=2, iterations=1)
    gmacs = macs / 1e9
    write_artifact("table3_vit_tiny_forward",
                   f"executed {gmacs:.3f} GMACs per image")
    assert gmacs == pytest.approx(1.669, rel=0.01)
