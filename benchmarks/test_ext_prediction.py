"""Extension: the performance-prediction toolkit (the paper's future
work) — backtesting, what-if previews, and capacity plans."""

import pytest

from repro.data.datasets import get_dataset
from repro.hardware.platform import A100, JETSON, V100
from repro.models.zoo import get_model
from repro.predict.capacity import CapacityPlanner, WorkloadSpec
from repro.predict.validation import backtest_platform, backtest_summary
from repro.predict.whatif import define_platform, preview_platform


def test_backtest_all_pairings(benchmark, write_artifact):
    summary = benchmark(backtest_summary)
    write_artifact("ext_prediction_backtest", "\n".join(
        f"{pair}: mean error {err:.1%}" for pair, err in summary.items()))
    # The toolkit's honest error bar: cross-platform transfer of MFU
    # structure predicts the paper's anchors within 25%.
    for pair, error in summary.items():
        assert error < 0.25, pair
    # Edge<->cloud transfer in at least one direction is under 10%.
    assert min(summary.values()) < 0.10


def test_backtest_per_model_detail(benchmark, write_artifact):
    results = benchmark.pedantic(
        lambda: backtest_platform("jetson", "a100"), rounds=1,
        iterations=1)
    write_artifact("ext_prediction_jetson_detail", "\n".join(
        f"{r.model:10s} @BS{r.batch:<5d} paper "
        f"{r.paper_images_per_second:8.1f}  predicted "
        f"{r.predicted_images_per_second:8.1f}  ({r.relative_error:.1%})"
        for r in results))
    assert all(r.relative_error < 0.3 for r in results)


def test_whatif_orin_nx_preview(benchmark, write_artifact):
    nx = define_platform(
        "OrinNX16", "edge", peak_tflops=50.0, precision="fp16",
        gpu_memory_gb=16, memory_bandwidth_gbps=102.4, cpu_cores=8,
        unified_memory=True, power_watts=40)

    rows = benchmark(lambda: preview_platform(nx))
    write_artifact("ext_prediction_whatif", "\n".join(
        f"{r['model']:10s} peak {r['peak_throughput']:7.0f} img/s "
        f"(x{r['speedup_vs_jetson']:.2f} vs Jetson), "
        f"recommend BS{r['recommended_batch']}" for r in rows))
    # A ~3x-FLOPS Orin NX should land near 3x the Nano across the zoo.
    for row in rows:
        assert 2.0 < row["speedup_vs_jetson"] < 4.5


def test_capacity_plan_comparison(benchmark, write_artifact):
    workload = WorkloadSpec(images_per_second=3000,
                            latency_slo_seconds=1 / 30,
                            dataset=get_dataset("corn_growth"),
                            duty_cycle=0.3)
    graph = get_model("resnet50").graph

    def plan():
        return CapacityPlanner(workload).compare(
            graph, [A100, V100, JETSON])

    plans = benchmark(plan)
    write_artifact("ext_prediction_capacity", "\n".join(
        f"{p.platform:6s} devices={p.devices:3d} "
        f"inst/dev={p.instances_per_device:2d} "
        f"thr={p.total_throughput:9.0f} img/s "
        f"Wh/day={p.watt_hours_per_day or 0:9.0f} "
        f"{'ok' if p.meets_slo else 'infeasible'}"
        for p in plans))
    assert plans[0].meets_slo
    assert plans[0].platform in ("A100", "V100")
    jetson = next(p for p in plans if p.platform == "Jetson")
    assert jetson.devices > plans[0].devices
