"""Extension ablation: static batching vs the SLO autotuner under a
load step.

A static queue-delay setting tuned for light load blows its SLO when the
survey-upload burst lands; the AIMD controller tracks it.
"""

import numpy as np
import pytest

from repro.core.autotune import SLOAutotuner
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.request import Request
from repro.serving.server import ModelConfig, TritonLikeServer

TARGET_P95 = 0.012


def _run(autotune: bool):
    latency = LatencyModel(get_model("vit_small").graph, A100)
    server = TritonLikeServer()
    server.register(ModelConfig(
        "m", lambda n: latency.latency(max(1, n)),
        batcher=BatcherConfig(max_batch_size=256,
                              max_queue_delay=0.02)))
    if autotune:
        tuner = SLOAutotuner(server, "m",
                             target_p95_seconds=TARGET_P95,
                             interval_seconds=0.2)
        tuner.start(duration=6.0)
    # Load step: 500 rps for 2 s, then 4000 rps for 4 s.
    t = 0.0
    while t < 2.0:
        server.sim.schedule_at(t, lambda: server.submit(Request("m")))
        t += 1 / 500
    while t < 6.0:
        server.sim.schedule_at(t, lambda: server.submit(Request("m")))
        t += 1 / 4000
    server.run()
    heavy_phase = [r.latency for r in server.responses
                   if r.request.arrival_time > 3.0]
    return float(np.percentile(heavy_phase, 95))


def test_autotuner_tracks_a_load_step(benchmark, write_artifact):
    def compare():
        return _run(autotune=False), _run(autotune=True)

    static_p95, tuned_p95 = benchmark.pedantic(compare, rounds=1,
                                               iterations=1)
    write_artifact("ext_autotune", (
        f"static 20ms queue delay: heavy-phase p95 = "
        f"{static_p95 * 1e3:.2f} ms\n"
        f"SLO autotuner ({TARGET_P95 * 1e3:.0f} ms target): "
        f"heavy-phase p95 = {tuned_p95 * 1e3:.2f} ms"))
    assert static_p95 > TARGET_P95       # the static config misses
    assert tuned_p95 < static_p95        # the controller helps
    assert tuned_p95 <= TARGET_P95 * 1.2  # and lands near the target
