"""Extension: the process-parallel sweep engine's speedup and contract.

Runs ``repro sweep-bench`` (full mode, 4-worker pool) through the CLI
and records ``results/BENCH_sweep_cli.json``.  Structural claims:

* the determinism contract held — the harness's verify step compares
  the pooled run's merged scrape/profile/summary byte-for-byte against
  the sequential run's, so a nonzero exit here *is* the contract test;
* the measured speedup clears the core-count-aware floor, and on a
  host with at least four effective cores that floor is the 2.5x
  acceptance bar (on smaller hosts the bar degrades honestly — a pool
  cannot beat physics — and this test asserts the overhead bound
  instead, with the core count recorded in the results document);
* sequential and pooled runs of ``repro sweep`` emit byte-identical
  tables and merged metrics, end to end through the CLI.
"""

import json

from repro.cli import main


def test_sweep_speedup_and_determinism(benchmark, results_dir,
                                       tmp_path, capsys):
    out_file = results_dir / "BENCH_sweep_cli.json"

    def run():
        assert main(["sweep-bench", "--jobs", "4",
                     "--out", str(out_file)]) == 0
        capsys.readouterr()
        return json.loads(out_file.read_text())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    entry = payload["scenarios"]["sweep_parallel_replay"]

    # The harness verified merged output before timing anything; the
    # document must carry the context a reader (or a stricter host's
    # regression check) needs to interpret the ratio.
    assert payload["jobs"] == 4
    assert payload["cpu_count"] >= 1
    assert entry["cpu_count"] == payload["cpu_count"]

    # The core-count-aware gate: 2.5x is the acceptance bar where at
    # least four effective cores exist; below that the floor bounds
    # pool overhead instead.
    effective = min(4, payload["cpu_count"])
    if effective >= 4:
        assert entry["min_speedup"] == 2.5
    assert entry["speedup"] >= entry["min_speedup"]

    # End-to-end byte-identity of the user-facing sweep across worker
    # counts (the same check CI runs via cmp, inside one process).
    outputs = {}
    for jobs in ("1", "4"):
        prom = tmp_path / f"sweep{jobs}.prom"
        assert main(["sweep", "--replications", "4", "--duration",
                     "600", "--jobs", jobs,
                     "--metrics-out", str(prom)]) == 0
        table = [line for line in capsys.readouterr().out.splitlines()
                 if not line.startswith("wrote ")]  # paths differ
        outputs[jobs] = (table, prom.read_text())
    assert outputs["1"] == outputs["4"]
