"""Extension ablation: GPU-accelerated CRSA preprocessing.

The paper: "GPU-accelerated optimization for CPU-bound frameworks remains
planned as future work."  This bench implements and evaluates it: the
DALIWarp framework runs the perspective correction on the GPU and is
compared against the CV2 CPU path on every platform.
"""

import numpy as np
import pytest

from repro.data.datasets import get_dataset
from repro.data.synthetic import synth_crsa_frame
from repro.hardware.platform import A100, JETSON, V100
from repro.preprocessing.frameworks import DALIWarp, OpenCVCPU


def test_gpu_warp_vs_cv2(benchmark, write_artifact):
    crsa = get_dataset("crsa")

    def sweep():
        rows = []
        for platform in (A100, V100, JETSON):
            gpu = DALIWarp(224).estimate(crsa, platform, batch_size=1)
            cpu = OpenCVCPU(224).estimate(crsa, platform)
            rows.append((platform.name, cpu.per_image_seconds,
                         gpu.per_image_seconds))
        return rows

    rows = benchmark(sweep)
    write_artifact("ext_gpu_warp", "\n".join(
        f"{name:6s} CV2 {cpu * 1e3:8.1f} ms -> GPU {gpu * 1e3:8.1f} ms "
        f"({cpu / gpu:4.1f}x)" for name, cpu, gpu in rows))
    speedups = {name: cpu / gpu for name, cpu, gpu in rows}
    # Strong speedups everywhere; cloud crosses the real-time line.
    assert speedups["A100"] > 20
    assert speedups["Jetson"] > 2.5
    a100_gpu = next(gpu for name, _, gpu in rows if name == "A100")
    assert a100_gpu < 1 / 60


def test_gpu_warp_functional_equivalence(benchmark):
    # The GPU framework's functional path produces the same rectified
    # output as the CPU framework (same ops, different executor).
    crsa = get_dataset("crsa")
    frame = synth_crsa_frame(192, 108)

    def run_both():
        gpu_out = DALIWarp(32).run([frame], crsa)
        cpu_out = OpenCVCPU(32).run([frame], crsa)
        return gpu_out, cpu_out

    gpu_out, cpu_out = benchmark.pedantic(run_both, rounds=1,
                                          iterations=1)
    np.testing.assert_allclose(gpu_out, cpu_out, atol=1e-5)


def test_gpu_warp_memory_contention_on_jetson(benchmark, write_artifact):
    # The warp's frame double-buffers claim unified memory: check the
    # footprint stays deployable next to a ViT-Tiny engine.
    crsa = get_dataset("crsa")

    def footprint():
        return DALIWarp(224).estimate(crsa, JETSON,
                                      batch_size=4).memory_bytes

    memory = benchmark(footprint)
    write_artifact("ext_gpu_warp_memory",
                   f"DALIWarp@BS4 on Jetson: {memory / 1e9:.2f} GB")
    from repro.engine.oom import EngineMemoryModel
    from repro.models.zoo import get_model

    engine = EngineMemoryModel(get_model("vit_tiny").graph, JETSON)
    assert memory + engine.engine_bytes(8) < \
        JETSON.usable_gpu_memory_bytes
