"""Table 2 bench: dataset inventory + synthetic generator throughput."""

import numpy as np
import pytest

from repro.analysis.tables import table2
from repro.data.datasets import list_datasets
from repro.data.loader import DataLoader


def test_table2_regeneration(benchmark, write_artifact):
    table = benchmark(table2)
    write_artifact("table2_datasets", table.render())
    assert len(table.rows) == 6
    samples = {r["dataset"]: r["samples"] for r in table.rows}
    assert samples["Plant Village"] == 43430
    assert samples["CRSA"] == 992


def test_table2_loader_throughput(benchmark, write_artifact):
    # Generator performance: streaming a small epoch of each dataset
    # (CRSA scaled down; full 4K frames are exercised elsewhere).
    def stream_all():
        total = 0
        for spec in list_datasets():
            scale = 0.05 if spec.name == "crsa" else 0.5
            for batch in DataLoader(spec, batch_size=4, epoch_size=8,
                                    scale=scale):
                total += len(batch)
        return total

    total = benchmark(stream_all)
    assert total == 6 * 8
    write_artifact("table2_loader", f"streamed {total} samples")


def test_table2_size_statistics(benchmark, write_artifact):
    def stats():
        return {spec.name: DataLoader(spec, batch_size=1)
                .size_statistics(512) for spec in list_datasets()}

    result = benchmark(stats)
    lines = [f"{name}: mean {s['mean_width']:.0f}x{s['mean_height']:.0f} "
             f"({s['mean_pixels'] / 1e3:.1f} kpx)"
             for name, s in result.items()]
    write_artifact("table2_size_stats", "\n".join(lines))
    assert result["plant_village"]["mean_pixels"] == pytest.approx(
        256 * 256)
    assert result["crsa"]["mean_pixels"] == pytest.approx(3840 * 2160)
    # Variable-size sets really vary.
    assert result["weed_soybean"]["p95_pixels"] > \
        result["weed_soybean"]["mean_pixels"]
