"""Extension: edge-cloud offload — where does the continuum boundary sit?

The paper's continuum premise priced out: per (model, link), the payload
size below which uploading to the cluster beats classifying on the
vehicle's Jetson.
"""

import pytest

from repro.continuum.network import get_link
from repro.continuum.offload import OffloadPolicy, Placement
from repro.data.datasets import list_datasets
from repro.hardware.platform import A100, JETSON
from repro.models.zoo import list_models


def test_offload_crossover_matrix(benchmark, write_artifact):
    def compute():
        rows = []
        for entry in list_models():
            for link_name in ("field_lte", "farm_wifi",
                              "station_ethernet"):
                policy = OffloadPolicy(entry.graph, JETSON, A100,
                                       get_link(link_name))
                rows.append((entry.name, link_name,
                             policy.crossover_image_bytes()))
        return rows

    rows = benchmark(compute)
    write_artifact("ext_offload_crossover", "\n".join(
        f"{model:10s} over {link:16s}: "
        + (f"cloud wins below {bytes_ / 1e3:9.1f} kB"
           if bytes_ is not None else "edge always wins")
        for model, link, bytes_ in rows))
    by_key = {(m, l): b for m, l, b in rows}
    # Heavier models push the boundary up (more to gain from the A100).
    wifi_tiny = by_key[("vit_tiny", "farm_wifi")]
    wifi_base = by_key[("vit_base", "farm_wifi")]
    assert wifi_base is not None
    assert wifi_tiny is None or wifi_tiny < wifi_base
    # Better links push the boundary up for every model that has one.
    for entry in list_models():
        lte = by_key[(entry.name, "field_lte")]
        ether = by_key[(entry.name, "station_ethernet")]
        if lte is not None and ether is not None:
            assert ether > lte


def test_offload_decisions_per_dataset(benchmark, write_artifact):
    # Place each evaluated dataset's modal image on the continuum for
    # ViT Base over farm Wi-Fi.
    from repro.models.zoo import get_model

    policy = OffloadPolicy(get_model("vit_base").graph, JETSON, A100,
                           get_link("farm_wifi"))

    def decide_all():
        out = []
        for dataset in list_datasets():
            payload = dataset.encoded_bytes_at_mode()
            out.append((dataset.name, payload, policy.decide(payload)))
        return out

    rows = benchmark(decide_all)
    write_artifact("ext_offload_datasets", "\n".join(
        f"{name:14s} {payload / 1e3:9.1f} kB -> {d.placement.value:5s} "
        f"(edge {d.edge_latency_seconds * 1e3:6.1f} ms, cloud "
        f"{d.cloud_latency_seconds * 1e3:6.1f} ms)"
        for name, payload, d in rows))
    decisions = {name: d.placement for name, _, d in rows}
    # Small compressed crops upload; the raw 4K CRSA frame stays local.
    assert decisions["spittle_bug"] is Placement.CLOUD
    assert decisions["crsa"] is Placement.EDGE
