"""Fig. 5 bench: TFLOPS vs batch size on all three platforms.

Checks the legend anchors (throughput at the largest batch), the OOM
cutoffs on the Jetson, and the qualitative curve properties the paper
describes (monotone MFU with diminishing returns, gap to the practical
bound).
"""

import pytest

from repro.analysis.figures import fig5
from repro.analysis.report import render_series
from repro.engine.calibration import THROUGHPUT_ANCHORS


def test_fig5_regeneration(benchmark, write_artifact):
    series = benchmark(fig5)
    write_artifact("fig5_engine_scaling", render_series(series))

    display = {"vit_tiny": "ViT Tiny", "vit_small": "ViT Small",
               "vit_base": "ViT Base", "resnet50": "ResNet50"}
    for (plat, model), (batch, thr) in THROUGHPUT_ANCHORS.items():
        panel = {"a100": "A100", "v100": "V100", "jetson": "Jetson"}[plat]
        s = next(s for s in series
                 if s.panel == panel and s.name == display[model])
        assert s.meta["max_batch"] == batch, (plat, model)
        assert s.meta["throughput_at_max"] == pytest.approx(thr,
                                                            rel=0.001)


def test_fig5_jetson_oom_cutoffs(benchmark):
    series = benchmark.pedantic(lambda: fig5("jetson"), rounds=1,
                                iterations=1)
    cutoffs = {s.name: max(s.x) for s in series
               if s.name not in ("theoretical", "practical_bound")}
    assert cutoffs == {"ViT Tiny": 196, "ViT Small": 64, "ViT Base": 8,
                       "ResNet50": 64}


def test_fig5_curves_monotone_below_bound(benchmark):
    series = benchmark.pedantic(lambda: fig5("a100"), rounds=1,
                                iterations=1)
    bound = next(s for s in series if s.name == "practical_bound").y[0]
    for s in series:
        if s.name in ("theoretical", "practical_bound"):
            continue
        assert list(s.y) == sorted(s.y), s.name
        assert max(s.y) < bound, s.name
