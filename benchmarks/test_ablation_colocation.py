"""Ablation: unified-memory co-location on the Jetson (Fig. 8c's cause).

Sweeps the memory a co-resident preprocessing instance reserves and
tracks the engine's feasible batch and throughput — the mechanism behind
"combined memory consumption from preprocessing and inference constrains
the model engine's available batch size", exposed as a curve instead of
the paper's single operating point.
"""

import pytest

from repro.engine.calibration import JETSON_E2E_ENGINE_BUDGET_BYTES
from repro.engine.latency import LatencyModel
from repro.engine.oom import max_batch_size
from repro.hardware.memory import OutOfMemoryError, pool_for_platform
from repro.hardware.platform import JETSON
from repro.models.zoo import get_model, list_models


def test_colocation_sweep(benchmark, write_artifact):
    def sweep():
        rows = []
        total = JETSON.usable_gpu_memory_bytes
        for reserve_gb in (0.0, 0.5, 1.0, 1.5, 2.15, 3.0):
            budget = total - reserve_gb * 1e9
            for entry in list_models():
                graph = entry.graph
                try:
                    batch = max_batch_size(graph, JETSON,
                                           budget_bytes=budget)
                    thr = LatencyModel(graph, JETSON).throughput(batch)
                except OutOfMemoryError:
                    batch, thr = 0, 0.0
                rows.append((reserve_gb, entry.name, batch, thr))
        return rows

    rows = benchmark(sweep)
    write_artifact("ablation_colocation", "\n".join(
        f"reserve {g:4.2f} GB  {m:10s} maxBS={b:4d} thr={t:7.1f} img/s"
        for g, m, b, t in rows))

    by_key = {(g, m): (b, t) for g, m, b, t in rows}
    # No reservation reproduces the Fig. 5c limits...
    assert by_key[(0.0, "vit_base")][0] == 8
    assert by_key[(0.0, "vit_small")][0] == 64
    # ...the paper's operating reservation reproduces Fig. 8c...
    assert by_key[(2.15, "vit_base")][0] == 2
    assert by_key[(2.15, "vit_small")][0] == 32
    # ...and batch (hence throughput) degrades monotonically with
    # reservation for every model.
    for entry in list_models():
        batches = [by_key[(g, entry.name)][0]
                   for g in (0.0, 0.5, 1.0, 1.5, 2.15, 3.0)]
        assert batches == sorted(batches, reverse=True), entry.name
    # Even at a 3 GB reservation ViT Base limps along at BS 2 — its
    # eviction point sits past the paper's operating regime.
    assert by_key[(3.0, "vit_base")][0] == 2
    assert by_key[(3.0, "vit_small")][0] < by_key[(0.0, "vit_small")][0]


def test_colocation_pool_accounting(benchmark, write_artifact):
    # Walk the same story through the actual allocator: reserve the
    # preprocessing buffers in the unified pool, then grow the engine
    # until OOM.
    graph = get_model("vit_small").graph

    def walk():
        pool = pool_for_platform(JETSON)
        preproc = pool.allocate(2.15e9, tag="preprocessing")
        from repro.engine.oom import EngineMemoryModel

        memory = EngineMemoryModel(graph, JETSON)
        batch = 0
        alloc = None
        for candidate in (1, 2, 4, 8, 16, 32, 64):
            nbytes = memory.engine_bytes(candidate)
            # Rebuilding an engine frees the old one first (the TensorRT
            # teardown/rebuild cycle), so check fit with it released.
            if alloc is not None:
                pool.free(alloc)
                alloc = None
            if not pool.can_fit(nbytes):
                break
            alloc = pool.allocate(nbytes, tag="engine")
            batch = candidate
        if batch and alloc is None:  # rebuild at the last fitting size
            alloc = pool.allocate(memory.engine_bytes(batch),
                                  tag="engine")
        pool.free(preproc)
        return batch, pool.breakdown()

    batch, breakdown = benchmark(walk)
    write_artifact("ablation_colocation_pool",
                   f"engine grew to BS{batch} with 2.15 GB preprocessing "
                   f"resident; live tags now: {breakdown}")
    assert batch == 32  # the Fig. 8c ViT Small label
    assert "engine" in breakdown and "preprocessing" not in breakdown
