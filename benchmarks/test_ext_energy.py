"""Extension: energy characterization across the continuum.

The conclusion's "balancing latency requirements with energy efficiency":
joules/image per (model, platform, batch), the continuum's energy
trade-off, and battery planning for the field vehicle.
"""

import pytest

from repro.engine.calibration import batch_grid
from repro.engine.oom import max_batch_size
from repro.hardware.platform import A100, JETSON, V100
from repro.hardware.power import EnergyModel
from repro.models.zoo import list_models


def test_energy_matrix(benchmark, write_artifact):
    def compute():
        rows = []
        for platform in (A100, V100, JETSON):
            for entry in list_models():
                graph = entry.graph
                limit = max_batch_size(graph, platform)
                model = EnergyModel(graph, platform)
                point = model.point(limit)
                rows.append(point)
        return rows

    rows = benchmark(compute)
    write_artifact("ext_energy_matrix", "\n".join(
        f"{p.platform:6s} {p.model:10s} @BS{p.batch_size:<4d} "
        f"{p.watts:6.1f} W  {p.throughput:8.0f} img/s  "
        f"{p.joules_per_image * 1e3:8.2f} mJ/img" for p in rows))

    by_key = {(p.platform, p.model): p for p in rows}
    # The continuum energy result: the 25 W Jetson beats the cloud on
    # energy per image for every model despite losing on throughput.
    for entry in list_models():
        jetson = by_key[("Jetson", entry.name)]
        a100 = by_key[("A100", entry.name)]
        assert jetson.joules_per_image < a100.joules_per_image
        assert jetson.throughput < a100.throughput


def test_energy_improves_with_batch_then_plateaus(benchmark,
                                                  write_artifact):
    graph = next(e.graph for e in list_models() if e.name == "resnet50")

    def sweep():
        model = EnergyModel(graph, JETSON)
        grid = tuple(b for b in batch_grid("jetson") if b <= 64)
        return model.sweep(grid)

    points = benchmark(sweep)
    write_artifact("ext_energy_batch_sweep", "\n".join(
        f"BS{p.batch_size:<4d} {p.joules_per_image * 1e3:7.2f} mJ/img"
        for p in points))
    energies = [p.joules_per_image for p in points]
    assert energies == sorted(energies, reverse=True)
    # Diminishing returns: the last doubling buys < 20% improvement.
    assert energies[-2] / energies[-1] < 1.2


def test_battery_planning(benchmark, write_artifact):
    graph = next(e.graph for e in list_models() if e.name == "vit_tiny")

    def plan():
        model = EnergyModel(graph, JETSON)
        return model.field_battery_images(battery_wh=500, batch_size=64)

    images = benchmark(plan)
    write_artifact("ext_energy_battery",
                   f"500 Wh vehicle battery -> {images:,.0f} ViT-Tiny "
                   "classifications")
    # A day's field work is comfortably covered.
    assert images > 1e6
