"""Extension: serverless execution on the sparse nighttime farm trace.

Replays the ``repro faas`` scenario — a vision function on a
container-based FaaS platform serving the sparse diurnal trace — and
records ``results/BENCH_faas_cli.json`` (the harness references live
in ``results/BENCH_faas*.json``, written by ``repro faas-bench``).
The structural claims under test: nighttime gaps exceed the keep-alive
window so scale-to-zero forces cold starts, cold-start p99 inflates at
least 2x over warm p99, the GB-second meter bills every invocation,
and the what-if analysis reports a finite break-even QPS that the
daylight peak actually crosses.
"""

import json

from repro.cli import main


def test_serverless_cold_starts_and_cost_crossover(benchmark,
                                                   results_dir):
    out_file = results_dir / "BENCH_faas_cli.json"

    def run():
        assert main(["faas", "--out", str(out_file)]) == 0
        return json.loads(out_file.read_text())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    latency = payload["latency"]
    scale = payload["scale_to_zero"]
    cost = payload["cost"]
    whatif = payload["whatif"]

    # Scale-to-zero: the nighttime floor leaves gaps longer than the
    # keep-alive window, so instances are reaped and later arrivals
    # cold-start.  Warm daytime traffic dominates the invocation mix.
    assert scale["reaps"] > 0
    assert latency["cold_starts"] > 0
    assert latency["warm_starts"] > latency["cold_starts"]
    assert latency["invocations"] == payload["scenario"]["arrivals"]

    # Cold-start inflation: the acceptance bar is p99 >= 2x warm p99;
    # a multi-second sandbox + artifact fetch against a ~20 ms forward
    # clears it by orders of magnitude.
    assert latency["cold_p99"] >= 2.0 * latency["warm_p99"]
    assert latency["inflation_x"] >= 2.0

    # The GB-second meter: every invocation billed, plus provisioned
    # pinning accrued while the SLO-burn policy held a warm floor.
    assert cost["invocations"] == latency["invocations"]
    assert cost["gb_seconds"] > 0
    assert cost["total_usd"] > 0
    assert payload["policy"]["alerts"] > 0
    assert payload["policy"]["events"]

    # The crossover: a finite break-even QPS, with the daylight peak
    # above it (provisioned wins at noon) while the sparse trace as a
    # whole still favors serverless — both regimes appear.
    assert 0 < whatif["break_even_qps"] < float("inf")
    assert whatif["peak_rate"] > whatif["break_even_qps"]
    assert whatif["cheaper"] == "serverless"
    assert 0 < whatif["crossover_hours"] \
        < payload["scenario"]["duration"] / 3600.0
