"""Fig. 4 bench: image-size density distributions per dataset."""

import pytest

from repro.analysis.figures import fig4


def test_fig4_regeneration(benchmark, write_artifact):
    series = benchmark(lambda: fig4(samples=20000))
    lines = []
    for s in series:
        kind = "uniform" if s.meta["uniform"] else "variable"
        lines.append(f"{s.name}: {kind}, mode {s.meta['mode_label']}")
    write_artifact("fig4_distributions", "\n".join(lines))

    by_panel = {s.panel: s for s in series}
    # The figure's printed mode labels.
    assert by_panel["plant_village"].meta["mode_label"] == "256x256"
    assert by_panel["fruits_360"].meta["mode_label"] == "100x100"
    assert by_panel["corn_growth"].meta["mode_label"] == "224x224"
    assert by_panel["crsa"].meta["mode_label"] == "3840x2160"
    w, _ = map(int, by_panel["weed_soybean"].meta["mode_label"].split("x"))
    assert w == pytest.approx(233, rel=0.15)
    w2, _ = map(int, by_panel["spittle_bug"].meta["mode_label"].split("x"))
    assert w2 == pytest.approx(61, abs=12)


def test_fig4_density_peaks_at_mode(benchmark):
    series = benchmark.pedantic(lambda: fig4(samples=30000), rounds=1,
                                iterations=1)
    weed = next(s for s in series if s.panel == "weed_soybean")
    density = weed.meta["density"]
    # The densest cell carries normalized weight 1 and its neighbourhood
    # holds most of the mass near the mode.
    assert max(density) == pytest.approx(1.0)
    assert sum(d > 0.2 for d in density) < len(density) * 0.2
