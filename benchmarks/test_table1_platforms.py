"""Table 1 bench: platform inventory + GEMM practical-FLOPS benchmark.

Regenerates the Table 1 rows (modeled sweeps for the three paper
platforms) and runs the *real* NumPy GEMM microbenchmark on this host to
demonstrate the measurement methodology.
"""

import pytest

from repro.analysis.tables import table1
from repro.hardware.gemm import GemmBenchmark
from repro.hardware.platform import list_platforms


def test_table1_regeneration(benchmark, write_artifact):
    table = benchmark(table1)
    write_artifact("table1_platforms", table.render())
    assert [r["platform"] for r in table.rows] == ["A100", "V100",
                                                   "Jetson"]
    # Efficiency range from the paper's text (cloud platforms).
    effs = {r["platform"]: r["efficiency_pct"] for r in table.rows}
    assert effs["A100"] == pytest.approx(75.74, abs=1.0)
    assert effs["V100"] == pytest.approx(82.68, abs=1.0)


def test_table1_modeled_gemm_sweeps(benchmark, write_artifact):
    def run():
        bench = GemmBenchmark()
        return {p.name: bench.run_modeled(p) for p in list_platforms()}

    sweeps = benchmark(run)
    lines = []
    for name, sweep in sweeps.items():
        lines.append(f"{name}: practical={sweep.practical_tflops:.1f} "
                     f"TFLOPS efficiency={sweep.efficiency * 100:.2f}%")
        for r in sweep.results:
            lines.append(f"  n={r.size:5d}  {r.achieved_tflops:7.1f} "
                         f"TFLOPS  ({r.efficiency * 100:5.1f}%)")
    write_artifact("table1_gemm_sweeps", "\n".join(lines))
    for platform in list_platforms():
        assert sweeps[platform.name].practical_tflops == pytest.approx(
            platform.practical_tflops, rel=0.02)


def test_table1_real_host_gemm(benchmark, write_artifact):
    # The actual measurement on this machine: methodology demonstration.
    bench = GemmBenchmark(sizes=(128, 256, 512), repeats=2)
    sweep = benchmark.pedantic(lambda: bench.run_host(max_size=512),
                               rounds=1, iterations=1)
    write_artifact("table1_host_gemm", "\n".join(
        f"n={r.size}: {r.achieved_tflops * 1e3:.1f} GFLOPS "
        f"(eff {r.efficiency * 100:.0f}%)" for r in sweep.results))
    assert sweep.practical_tflops > 0
