"""Fig. 7 bench: preprocessing latency/throughput across frameworks.

Also exercises the *functional* preprocessing path: the modeled DALI/
PyTorch pipelines really execute their NumPy ops on synthetic batches.
"""

import numpy as np
import pytest

from repro.analysis.figures import fig7
from repro.analysis.report import render_series
from repro.core.sweeps import preprocessing_sweep
from repro.data.datasets import get_dataset
from repro.data.synthetic import SyntheticSampler
from repro.hardware.platform import A100, JETSON, V100
from repro.preprocessing.frameworks import DALI


def test_fig7_regeneration(benchmark, write_artifact):
    series = benchmark(fig7)
    write_artifact("fig7_preprocessing", render_series(series))
    # Per-platform panels with the five framework configurations.
    for panel in ("A100", "V100", "Jetson"):
        names = {s.name for s in series if s.panel == panel}
        assert "DALI 224 latency" in names
        assert "PyTorch throughput" in names


def test_fig7_shape_claims(benchmark, write_artifact):
    def sweep_all():
        return {p.name: preprocessing_sweep(p)
                for p in (A100, V100, JETSON)}

    cells = benchmark(sweep_all)
    lines = []
    for platform, estimates in cells.items():
        for e in estimates:
            lines.append(
                f"{platform:6s} {e.framework:9s} {e.dataset:14s} "
                f"lat={e.batch_latency_seconds * 1e3:9.2f}ms "
                f"thr={e.throughput:9.1f} img/s")
    write_artifact("fig7_cells", "\n".join(lines))

    # DALI ordering per dataset per platform.
    for platform, estimates in cells.items():
        datasets = {e.dataset for e in estimates
                    if e.framework.startswith("DALI")}
        for dataset in datasets:
            t = {e.framework: e.per_image_seconds for e in estimates
                 if e.dataset == dataset}
            assert t["DALI 32"] < t["DALI 96"] < t["DALI 224"], \
                (platform, dataset)

    # Platform throughput magnitudes (axis scales: A100 ~12k, V100
    # ~2.5k).  Compared on the representative 256x256 JPEG dataset —
    # tiny-image datasets (Fruits-360, Spittle Bug) dodge the V100's
    # decode weakness and the paper itself flags Fruits-360 as an
    # anomalous outlier on the A100.
    def dali32_pv(platform):
        return next(e.throughput for e in cells[platform]
                    if e.framework == "DALI 32"
                    and e.dataset == "plant_village")

    assert dali32_pv("A100") > 3 * dali32_pv("V100")
    a100_best = max(e.throughput for e in cells["A100"])
    assert a100_best == pytest.approx(12000, rel=0.5)

    # CV2/CRSA latency magnitude (the ~500 ms A100 latency axis).
    cv2 = next(e for e in cells["A100"] if e.framework == "CV2")
    assert 0.2 < cv2.per_image_seconds < 1.0


def test_fig7_functional_preprocessing_throughput(benchmark,
                                                  write_artifact):
    # Actually run the DALI-32 pipeline ops on a real synthetic batch.
    dataset = get_dataset("spittle_bug")
    sampler = SyntheticSampler(dataset, seed=0)
    images = [img for img, _ in sampler.sample(16)]
    fw = DALI(32)

    out = benchmark(lambda: fw.run(images, dataset))
    assert out.shape == (16, 3, 32, 32)
    assert np.isfinite(out).all()
    write_artifact("fig7_functional", f"processed {out.shape} batch")
