"""Extension: contended, lossy uplink with an edge cache relief valve.

Replays the ``repro network`` scenario — four co-located field cameras
fair-sharing one lossy LTE uplink — and records the committed baseline
``results/BENCH_network.json``.  The structural claims under test: the
shared bottleneck widens uplink spans well past the uncontended
transfer time, QoS 1 trades drops for duplicates, and the edge cache
cuts the contended p95 by thinning the flows on the wire.
"""

import json

from repro.cli import main


def test_edge_cache_relieves_contended_uplink(benchmark, results_dir):
    out_file = results_dir / "BENCH_network.json"

    def run():
        assert main(["network", "--out", str(out_file)]) == 0
        return json.loads(out_file.read_text())

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    uncached = payload["uncached"]
    cached = payload["cached"]
    scenario = payload["scenario"]

    # Contention: four lockstep senders on one link stretch every
    # transfer toward 4x the solo serialization time.
    assert scenario["endpoints"] == 4
    assert scenario["loss_probability"] == 0.01
    assert uncached["peak_concurrency"] == scenario["endpoints"]
    solo_ms = scenario["image_kb"] * 1024.0 * 8.0 \
        / (scenario["bandwidth_mbps"] * 1e6) * 1e3
    assert uncached["uplink_spans"]["mean_ms"] > 2.5 * solo_ms

    # Loss: a 1% lossy link retransmits on a ~256-packet payload.
    assert uncached["retransmits"] > 0

    # The cache thins the flows on the wire, so the *misses* get
    # faster too — contended p95 drops, not just the hit latency.
    assert cached["served"] == uncached["served"]
    assert cached["p95_ms"] < uncached["p95_ms"]
    assert payload["p95_speedup"] > 1.2
    assert cached["uplink_spans"]["transfers"] \
        < uncached["uplink_spans"]["transfers"]
    assert cached["uplink_spans"]["mean_ms"] \
        < uncached["uplink_spans"]["mean_ms"]
    assert cached["uplink_bytes_saved"] > 0

    # Broker QoS semantics over the same lossy link: QoS 0 pays loss
    # in drops, QoS 1 delivers everything at the cost of duplicates.
    qos0, qos1 = payload["broker"]["qos0"], payload["broker"]["qos1"]
    assert qos0["dropped"] > 0 and qos0["duplicates"] == 0
    assert qos1["dropped"] == 0
    assert qos1["delivered"] == qos1["published"]
    assert qos1["retries"] > 0
