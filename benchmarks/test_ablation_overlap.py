"""Ablation: preprocessing/inference overlap on vs off.

Fig. 8's "effective preprocessing-inference latency overlap" effect: with
decoupled backend stages, steady-state throughput is the bottleneck
stage; serialized (no-overlap) execution pays the sum of both stages.
"""

import pytest

from repro.continuum.pipeline import EndToEndPipeline
from repro.data.datasets import get_dataset
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import ClosedLoopClient
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def _simulate(overlap: bool):
    graph = get_model("vit_base").graph
    pipeline = EndToEndPipeline(graph, A100)
    analytic = pipeline.evaluate(get_dataset("corn_growth"))
    batch = analytic.batch_size
    pre = analytic.preprocess_latency_seconds
    eng = analytic.engine_latency_seconds

    server = TritonLikeServer()
    if overlap:
        server.register(ModelConfig(
            "pre", lambda n: pre * n / batch,
            batcher=BatcherConfig(max_batch_size=batch,
                                  max_queue_delay=0.001)))
        server.register(ModelConfig(
            "model", lambda n: eng * n / batch,
            batcher=BatcherConfig(max_batch_size=batch,
                                  max_queue_delay=0.001),
            preprocess_model="pre"))
    else:
        # Serialized: one backend does both stages per batch.
        server.register(ModelConfig(
            "model", lambda n: (pre + eng) * n / batch,
            batcher=BatcherConfig(max_batch_size=batch,
                                  max_queue_delay=0.001)))
    client = ClosedLoopClient(server, "model", concurrency=4 * batch,
                              num_requests=30 * batch)
    client.start()
    server.run()
    return summarize_responses(client.completed, warmup_fraction=0.25), \
        analytic


def test_ablation_overlap(benchmark, write_artifact):
    def compare():
        with_overlap, analytic = _simulate(overlap=True)
        without, _ = _simulate(overlap=False)
        return with_overlap, without, analytic

    with_overlap, without, analytic = benchmark.pedantic(
        compare, rounds=1, iterations=1)
    write_artifact("ablation_overlap", (
        f"overlap    : {with_overlap.throughput_ips:8.0f} img/s\n"
        f"serialized : {without.throughput_ips:8.0f} img/s\n"
        f"analytic   : {analytic.throughput:8.0f} img/s "
        f"(bottleneck={analytic.bottleneck})"))

    # Overlap approaches the bottleneck-stage rate; serialization pays
    # the stage sum (the paper's "approaching the model engine's
    # theoretical upper bound" only holds with overlap).
    assert with_overlap.throughput_ips > 1.2 * without.throughput_ips
    assert with_overlap.throughput_ips == pytest.approx(
        analytic.throughput, rel=0.15)
    expected_serialized = analytic.batch_size / (
        analytic.preprocess_latency_seconds
        + analytic.engine_latency_seconds)
    assert without.throughput_ips == pytest.approx(expected_serialized,
                                                   rel=0.15)
