"""Extension: farm-localized training and the accuracy-latency frontier.

The paper's motivation made measurable: train linear probes on each
backbone over the same synthetic farm task, place the zoo on the
(accuracy, latency) plane, and run the semi-supervised loop the paper's
framework ships.
"""

import numpy as np
import pytest

from repro.data.synthetic import synth_labeled_images
from repro.hardware.platform import JETSON
from repro.training.features import FeatureExtractor
from repro.training.linear_probe import LinearProbe, train_test_split
from repro.training.pseudo_label import self_training
from repro.training.tradeoff import accuracy_latency_frontier, pareto_front


def test_accuracy_latency_frontier(benchmark, write_artifact):
    def run():
        return accuracy_latency_frontier(
            JETSON, model_names=("vit_tiny", "vit_small"),
            classes=3, samples=90, image_size=40, signal_strength=0.5,
            seed=4)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    front = pareto_front(points)
    write_artifact("ext_training_frontier", "\n".join(
        f"{p.model:10s} dim={p.feature_dim:5d} "
        f"acc={p.test_accuracy:.3f} lat={p.latency_seconds * 1e3:7.1f}ms "
        f"train~{p.training_seconds_estimate:.2f}s"
        for p in points) + f"\npareto front: {[p.model for p in front]}")
    # Both probes beat 3-class chance decisively.
    for p in points:
        assert p.test_accuracy > 0.55
    # The latency axis orders by model size (the trade-off's other arm).
    by_name = {p.model: p for p in points}
    assert by_name["vit_tiny"].latency_seconds < \
        by_name["vit_small"].latency_seconds
    assert front  # a non-empty Pareto front exists


def test_semi_supervised_labeling_gain(benchmark, write_artifact):
    # The HARVEST-2.0 labeling-effort story on frozen features: a tiny
    # labeled set plus confident pseudo-labels from the pool.
    rng = np.random.default_rng(11)
    images, labels = synth_labeled_images(120, 3, 32, rng,
                                          signal_strength=0.35)
    extractor = FeatureExtractor("vit_tiny")
    features = extractor.extract(list(images))

    def run():
        return self_training(
            features[:12], labels[:12], features[12:84],
            features[84:], labels[84:], classes=3,
            y_unlabeled_true=labels[12:84], confidence=0.8,
            probe_kwargs={"epochs": 150})

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact("ext_training_self_training", (
        f"baseline {result.baseline_accuracy:.3f} -> "
        f"self-trained {result.final_accuracy:.3f} "
        f"({result.pseudo_labels_used} pseudo-labels, precision "
        f"{result.pseudo_label_precision:.2f})"))
    assert result.pseudo_labels_used > 0
    assert result.final_accuracy >= result.baseline_accuracy - 0.05
    assert result.pseudo_label_precision > 0.5


def test_signal_strength_controls_task_difficulty(benchmark,
                                                  write_artifact):
    # Harness sanity: the synthetic task's difficulty knob works, so
    # frontier differences are attributable to the models.
    rng = np.random.default_rng(12)

    def run():
        out = {}
        for strength in (0.0, 0.5):
            images, labels = synth_labeled_images(
                160, 3, 24, np.random.default_rng(12),
                signal_strength=strength)
            flat = images.reshape(len(images), -1).astype(np.float32)
            flat = (flat - flat.mean(0)) / (flat.std(0) + 1e-6)
            xtr, ytr, xte, yte = train_test_split(
                flat, labels, 0.3, np.random.default_rng(13))
            probe = LinearProbe(flat.shape[1], 3, epochs=150,
                                weight_decay=1e-2)
            out[strength] = probe.fit(xtr, ytr, xte, yte).test_accuracy
        return out

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact("ext_training_difficulty", "\n".join(
        f"signal={s}: pixel-probe accuracy {a:.3f}"
        for s, a in accs.items()))
    assert accs[0.0] < 0.6      # no signal -> near chance
    assert accs[0.5] > 0.8      # signal -> learnable
