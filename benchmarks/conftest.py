"""Benchmark harness configuration.

Each benchmark regenerates one table/figure of the paper and writes the
rendered artifact to ``benchmarks/results/`` so `pytest benchmarks/
--benchmark-only` leaves the full reproduction report on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_artifact(results_dir):
    def _write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text)

    return _write
