"""Extension: preprocessing/training-distribution mismatch (Section 3.2).

"Models require preprocessing consistent with their training-time
distribution; otherwise, input mismatch may lead to unexpected outputs."
The bench quantifies it on real forward passes: run the same images
through the correct pipeline and through common mis-configurations
(wrong normalization statistics, skipped normalization, nearest-style
double resize), and measure logit drift and top-1 decision flips.
"""

import numpy as np
import pytest

from repro.data.synthetic import synth_labeled_images
from repro.models.functional import build_functional
from repro.preprocessing import ops
from repro.preprocessing.pipelines import (
    IMAGENET_MEAN,
    IMAGENET_STD,
    model_pipeline,
)


def _forward(model, images, preprocess):
    batch = np.stack([preprocess(img) for img in images])
    return model(batch)


def test_preprocessing_mismatch_drift(benchmark, write_artifact):
    rng = np.random.default_rng(17)
    images, _ = synth_labeled_images(24, 3, 48, rng,
                                     signal_strength=0.5)
    images = list(images)
    model = build_functional("vit_tiny")
    correct = model_pipeline(32)

    def wrong_stats(img):
        resized = correct.steps[0].fn(img)
        cropped = correct.steps[1].fn(resized)
        # A classic bug: 0.5/0.5 stats instead of the ImageNet ones.
        normalized = ops.normalize(cropped, np.full(3, 0.5, np.float32),
                                   np.full(3, 0.5, np.float32))
        return ops.to_chw(normalized)

    def no_normalize(img):
        resized = correct.steps[0].fn(img)
        cropped = correct.steps[1].fn(resized)
        return ops.to_chw(cropped.astype(np.float32) / 255.0)

    def run_all():
        reference = _forward(model, images, correct)
        return {
            "wrong_stats": _forward(model, images, wrong_stats),
            "no_normalize": _forward(model, images, no_normalize),
        }, reference

    variants, reference = benchmark.pedantic(run_all, rounds=1,
                                             iterations=1)
    lines = []
    flips = {}
    for name, logits in variants.items():
        drift = float(np.mean(np.abs(logits - reference)))
        flip = float(np.mean(logits.argmax(1) != reference.argmax(1)))
        flips[name] = flip
        lines.append(f"{name:14s} mean|dlogit|={drift:8.4f} "
                     f"top-1 flips={flip:.0%}")
    write_artifact("ext_preprocessing_mismatch", "\n".join(lines))

    # The Section 3.2 warning holds hard: either normalization bug
    # flips a majority of top-1 decisions ("unexpected outputs").
    assert flips["wrong_stats"] > 0.5
    assert flips["no_normalize"] > 0.5


def test_resize_convention_mismatch_is_milder(benchmark, write_artifact):
    # Resize-convention drift (no 256/224-style overscan) perturbs
    # outputs less than normalization bugs — geometry is nearly right.
    rng = np.random.default_rng(18)
    images, _ = synth_labeled_images(16, 3, 48, rng,
                                     signal_strength=0.5)
    images = list(images)
    model = build_functional("vit_tiny")
    correct = model_pipeline(32)

    def direct_resize(img):
        resized = ops.resize_bilinear(img, 32, 32)  # no overscan+crop
        normalized = ops.normalize(resized, IMAGENET_MEAN, IMAGENET_STD)
        return ops.to_chw(normalized)

    def run():
        reference = _forward(model, images, correct)
        variant = _forward(model, images, direct_resize)
        flip = float(np.mean(variant.argmax(1) != reference.argmax(1)))
        drift = float(np.mean(np.abs(variant - reference)))
        return flip, drift

    flip, drift = benchmark.pedantic(run, rounds=1, iterations=1)
    write_artifact("ext_preprocessing_resize",
                   f"direct-resize variant: mean|dlogit|={drift:.4f} "
                   f"top-1 flips={flip:.0%}")
    assert flip <= 0.5  # geometry-only drift stays moderate
