"""Fig. 6 bench: request latency vs batch size with the 60-QPS line."""

import pytest

from repro.analysis.figures import fig6
from repro.analysis.report import render_series
from repro.engine.calibration import LATENCY_TARGET_SECONDS, batch_grid
from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100, V100
from repro.models.zoo import get_model


def test_fig6_regeneration(benchmark, write_artifact):
    series = benchmark(fig6)
    write_artifact("fig6_latency", render_series(series))
    panels = {s.panel for s in series}
    assert panels == {"A100", "V100", "Jetson"}
    # Every model series sits above its dashed theoretical line.
    for s in series:
        if s.name == "60qps_threshold":
            continue
        for actual, ideal in zip(s.y, s.meta["theoretical_ms"]):
            assert actual > ideal


def test_fig6_operating_points(benchmark, write_artifact):
    # The Section 4.1 operating-region analysis: largest batch meeting
    # 16.7 ms per (platform, model).
    def compute():
        out = {}
        for platform in (A100, V100):
            for name in ("vit_tiny", "vit_small", "vit_base", "resnet50"):
                model = LatencyModel(get_model(name).graph, platform)
                out[(platform.name, name)] = model.max_batch_within_latency(
                    batch_grid(platform.name))
        return out

    points = benchmark(compute)
    write_artifact("fig6_operating_points", "\n".join(
        f"{p} {m}: max batch within 16.7ms = {b}"
        for (p, m), b in sorted(points.items())))
    # A100 sustains larger batches within the target than V100 for every
    # model (more compute -> shorter batch latency).
    for name in ("vit_tiny", "vit_small", "vit_base", "resnet50"):
        assert points[("A100", name)] >= points[("V100", name)]
    # ViT Base fits far fewer images in the deadline than ViT Tiny.
    assert points[("A100", "vit_base")] < points[("A100", "vit_tiny")]


def test_fig6_threshold_crossing_exists(benchmark):
    series = benchmark.pedantic(lambda: fig6("a100"), rounds=1,
                                iterations=1)
    for s in series:
        if s.name == "60qps_threshold":
            continue
        below = [y for y in s.y if y <= LATENCY_TARGET_SECONDS * 1e3]
        above = [y for y in s.y if y > LATENCY_TARGET_SECONDS * 1e3]
        assert below and above, s.name
