"""Extension: resilience under faults and overload.

What a field-grade deployment needs beyond throughput plots: goodput and
tail latency with instance failures injected, and bounded-queue
backpressure versus unbounded queueing when offered load exceeds
capacity.
"""

from collections import Counter

import pytest

from repro.engine.latency import LatencyModel
from repro.hardware.platform import A100
from repro.models.zoo import get_model
from repro.serving.batcher import BatcherConfig
from repro.serving.client import OpenLoopClient
from repro.serving.faults import FaultModel
from repro.serving.metrics import summarize_responses
from repro.serving.server import ModelConfig, TritonLikeServer


def _run(fault_probability=0.0, max_queue_size=0, rate=5000, n=4000,
         retries=2, instances=2):
    latency = LatencyModel(get_model("vit_tiny").graph, A100)
    server = TritonLikeServer()
    server.register(ModelConfig(
        "m", lambda k: latency.latency(max(1, k)),
        batcher=BatcherConfig(max_batch_size=128, max_queue_delay=0.002,
                              max_queue_size=max_queue_size),
        fault_model=(FaultModel(fault_probability, detect_seconds=0.02,
                                seed=9)
                     if fault_probability else None),
        max_retries=retries,
        instances=instances))
    client = OpenLoopClient(server, "m", rate_per_second=rate,
                           num_requests=n, seed=13)
    client.start()
    server.run()
    return server


def test_fault_injection_costs_tail_latency_not_goodput(benchmark,
                                                        write_artifact):
    def compare():
        clean = _run(fault_probability=0.0)
        faulty = _run(fault_probability=0.05)
        return clean, faulty

    clean, faulty = benchmark.pedantic(compare, rounds=1, iterations=1)
    clean_ok = [r for r in clean.responses if r.ok]
    faulty_ok = [r for r in faulty.responses if r.ok]
    clean_stats = summarize_responses(clean_ok, warmup_fraction=0.1)
    faulty_stats = summarize_responses(faulty_ok, warmup_fraction=0.1)
    statuses = Counter(r.status for r in faulty.responses)
    write_artifact("ext_resilience_faults", (
        f"clean : p95={clean_stats.p95_latency * 1e3:7.2f}ms "
        f"goodput={clean_stats.throughput_ips:7.0f} img/s\n"
        f"faulty: p95={faulty_stats.p95_latency * 1e3:7.2f}ms "
        f"goodput={faulty_stats.throughput_ips:7.0f} img/s "
        f"statuses={dict(statuses)}"))
    # Retries recover nearly all requests at 5% per-batch fault rate...
    assert statuses["ok"] >= 0.99 * len(faulty.responses)
    # ...but the detection windows show up in the tail.
    assert faulty_stats.p95_latency > clean_stats.p95_latency


def test_backpressure_bounds_latency_under_overload(benchmark,
                                                    write_artifact):
    def compare():
        # 30k rps against a single instance's ~22k img/s capacity:
        # unbounded queues grow without limit; a bounded queue sheds
        # load and keeps served latency sane.
        unbounded = _run(rate=30000, n=9000, max_queue_size=0,
                         instances=1)
        bounded = _run(rate=30000, n=9000, max_queue_size=512,
                       instances=1)
        return unbounded, bounded

    unbounded, bounded = benchmark.pedantic(compare, rounds=1,
                                            iterations=1)
    unbounded_stats = summarize_responses(
        [r for r in unbounded.responses if r.ok], warmup_fraction=0.1)
    bounded_ok = [r for r in bounded.responses if r.ok]
    bounded_stats = summarize_responses(bounded_ok, warmup_fraction=0.1)
    rejected = sum(1 for r in bounded.responses if r.status == "rejected")
    write_artifact("ext_resilience_backpressure", (
        f"unbounded: p95={unbounded_stats.p95_latency * 1e3:9.1f}ms\n"
        f"bounded  : p95={bounded_stats.p95_latency * 1e3:9.1f}ms "
        f"rejected={rejected}/{len(bounded.responses)}"))
    assert rejected > 0
    assert bounded_stats.p95_latency < unbounded_stats.p95_latency / 2
