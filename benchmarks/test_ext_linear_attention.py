"""Extension: the RWKV-class linear-attention alternative (Section 3.1).

"attention layers scale quadratically with respect to input sequence
length ... Recent work seeks to address this limitation through
state-based architectures such as RWKV."  The bench quantifies the
crossover and prices linear-attention ViTs on the paper's platforms.
"""

import numpy as np
import pytest

from repro.engine.mfu import MFUModel
from repro.hardware.platform import A100, JETSON
from repro.models.functional import init_vit_weights
from repro.models.linear_attention import (
    attention_cost_crossover,
    build_linear_vit,
    linear_vit_forward,
)
from repro.models.vit import VIT_CONFIGS, build_vit


def test_crossover_table(benchmark, write_artifact):
    rows = benchmark(attention_cost_crossover)
    write_artifact("ext_linattn_crossover", "\n".join(
        f"T={r['tokens']:6d}  softmax {r['softmax_gmacs']:10.4f} GMACs  "
        f"linear {r['linear_gmacs']:10.4f} GMACs  "
        f"{'linear wins' if r['linear_wins'] else 'softmax wins'}"
        for r in rows))
    # Crossover at T = head_dim (64 for the ViT family).
    assert not rows[0]["linear_wins"]     # T = 33
    assert all(r["linear_wins"] for r in rows[1:])
    # Quadratic separation grows without bound.
    last = rows[-1]
    assert last["softmax_gmacs"] / last["linear_gmacs"] > 100


def test_linear_vit_model_costs(benchmark, write_artifact):
    def build_both():
        return {name: (build_vit(name), build_linear_vit(name))
                for name in ("vit_tiny", "vit_base")}

    graphs = benchmark(build_both)
    lines = []
    for name, (softmax, linear) in graphs.items():
        lines.append(
            f"{name}: softmax {softmax.total_macs() / 1e9:.3f} GMACs, "
            f"linear {linear.total_macs() / 1e9:.3f} GMACs, "
            f"params equal: "
            f"{softmax.total_params() == linear.total_params()}")
    write_artifact("ext_linattn_models", "\n".join(lines))
    for softmax, linear in graphs.values():
        assert linear.total_macs() < softmax.total_macs()
        assert linear.total_params() == softmax.total_params()


def test_linear_vit_large_image_advantage(benchmark, write_artifact):
    # The motivating case: the 3840x2160 CRSA frame processed at native
    # patch resolution would need ~32k tokens; compare attention costs
    # at ViT-Base dims.
    import dataclasses

    from repro.models.vit import ViTConfig

    def compare():
        # 1024x1024 crop at patch 16 -> 4096 tokens + cls.
        cfg = ViTConfig("vit_base_1k", img_size=1024, patch_size=16,
                        dim=768, depth=12, heads=12)
        softmax = build_vit(cfg)
        linear = build_linear_vit(cfg)
        return softmax.total_macs(), linear.total_macs()

    softmax_macs, linear_macs = benchmark(compare)
    write_artifact("ext_linattn_large_image",
                   f"1024px ViT-Base: softmax {softmax_macs / 1e9:.0f} "
                   f"GMACs vs linear {linear_macs / 1e9:.0f} GMACs "
                   f"({softmax_macs / linear_macs:.2f}x)")
    assert softmax_macs > 1.15 * linear_macs


def test_linear_vit_functional_forward(benchmark):
    cfg = VIT_CONFIGS["vit_tiny"]
    weights = init_vit_weights(cfg)
    x = np.random.default_rng(0).standard_normal(
        (1, 3, 32, 32)).astype(np.float32)

    out = benchmark.pedantic(
        lambda: linear_vit_forward(cfg, weights, x), rounds=2,
        iterations=1)
    assert out.shape == (1, 39)
    assert np.isfinite(out).all()
