"""Frozen-backbone feature extraction.

Farm-side adaptation keeps the pretrained backbone fixed and trains only
a head — the "agile deployment with fast training times" path.  The
extractor batches images through the functional model's penultimate
layer, resizing through the standard preprocessing pipeline first.
"""

from __future__ import annotations

import numpy as np

from repro.models.functional import FunctionalModel, build_functional
from repro.preprocessing.pipelines import model_pipeline


class FeatureExtractor:
    """Embeds images with a frozen backbone.

    Parameters
    ----------
    model_name:
        Zoo name; the backbone's weights are the (seeded) pretrained
        stand-ins.
    batch_size:
        Forward-pass batching (memory/runtime control on the host).
    """

    def __init__(self, model_name: str, seed: int = 0,
                 batch_size: int = 32):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model: FunctionalModel = build_functional(model_name,
                                                       seed=seed)
        self.model_name = model_name
        self.batch_size = batch_size
        self.input_size = self.model.input_shape[1]
        self._pipeline = model_pipeline(self.input_size)

    @property
    def feature_dim(self) -> int:
        """Embedding width (192/384/768 for the ViTs, 2048 for ResNet50)."""
        probe = np.zeros((1, *self.model.input_shape), np.float32)
        return self.model.features(probe).shape[1]

    def preprocess(self, images: "list[np.ndarray] | np.ndarray",
                   ) -> np.ndarray:
        """(H, W, C) uint8 images -> model-input batch (N, C, s, s)."""
        if isinstance(images, np.ndarray) and images.ndim == 4:
            images = list(images)
        if not len(images):
            raise ValueError("empty image set")
        return np.stack([self._pipeline(img) for img in images])

    def extract(self, images: "list[np.ndarray] | np.ndarray",
                ) -> np.ndarray:
        """Embeddings ``(N, D)`` for raw images (preprocess + forward)."""
        batch = self.preprocess(images)
        chunks = []
        for start in range(0, batch.shape[0], self.batch_size):
            chunk = batch[start:start + self.batch_size]
            chunks.append(self.model.features(chunk))
        features = np.concatenate(chunks, axis=0)
        # Standardize: linear probes behave far better on zero-mean,
        # unit-scale features (and it costs one pass).
        mean = features.mean(axis=0, keepdims=True)
        std = features.std(axis=0, keepdims=True) + 1e-6
        return ((features - mean) / std).astype(np.float32)
