"""Farm-localized fine-tuning (the HARVEST-2.0 training lifecycle).

The paper's framework "provides farmers with an end-to-end AI training
and deployment platform, enabling landholders to easily train localized
AI models with their own data" with "semi-supervised learning techniques
[that] mitigate the time and expert effort required for labeling".
This package supplies that lifecycle's inference-adjacent half — the
fast, farm-side adaptation path (frozen backbone + trained head), which
is also what makes the paper's central *accuracy-latency trade-off*
measurable in this reproduction:

* :mod:`repro.training.features` — frozen-backbone embedding extraction;
* :mod:`repro.training.linear_probe` — softmax-regression heads trained
  with full-batch gradient descent (real NumPy backprop);
* :mod:`repro.training.pseudo_label` — semi-supervised self-training:
  confident pseudo-labels recruit the unlabeled pool;
* :mod:`repro.training.tradeoff` — the accuracy-vs-latency frontier
  across the model zoo on a platform, the quantity "model selection"
  trades over.
"""

from repro.training.features import FeatureExtractor
from repro.training.linear_probe import (
    LinearProbe,
    ProbeResult,
    train_test_split,
)
from repro.training.pseudo_label import SelfTrainingResult, self_training
from repro.training.tradeoff import (
    FrontierPoint,
    accuracy_latency_frontier,
)

__all__ = [
    "FeatureExtractor",
    "LinearProbe",
    "ProbeResult",
    "train_test_split",
    "SelfTrainingResult",
    "self_training",
    "FrontierPoint",
    "accuracy_latency_frontier",
]
