"""Linear-probe heads: real NumPy training.

Multinomial logistic regression over frozen features, trained by
full-batch gradient descent with momentum and L2 regularization — actual
backpropagation (the softmax cross-entropy gradient), deterministic
given the seed, fast enough for the "agile deployment with fast training
times" story on a laptop.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.functional import softmax


@dataclasses.dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probe fit."""

    train_accuracy: float
    test_accuracy: float
    final_loss: float
    epochs_run: int


def train_test_split(x: np.ndarray, y: np.ndarray, test_fraction: float,
                     rng: np.random.Generator,
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray]:
    """Shuffled split; both sides non-empty."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y lengths differ")
    n = x.shape[0]
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError("not enough samples to split")
    order = rng.permutation(n)
    test_idx, train_idx = order[:n_test], order[n_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


class LinearProbe:
    """Softmax-regression head over frozen features."""

    def __init__(self, feature_dim: int, classes: int,
                 learning_rate: float = 0.5, momentum: float = 0.9,
                 weight_decay: float = 1e-4, epochs: int = 200,
                 seed: int = 0):
        if feature_dim < 1 or classes < 2:
            raise ValueError("need feature_dim >= 1 and classes >= 2")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if learning_rate <= 0 or epochs < 1:
            raise ValueError("learning rate and epochs must be positive")
        self.classes = classes
        self.feature_dim = feature_dim
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.epochs = epochs
        rng = np.random.default_rng(seed)
        self.weight = (rng.standard_normal((classes, feature_dim))
                       * 0.01).astype(np.float64)
        self.bias = np.zeros(classes, np.float64)
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    def _loss_and_grads(self, x: np.ndarray, y_onehot: np.ndarray):
        logits = x @ self.weight.T + self.bias
        probs = softmax(logits, axis=1)
        n = x.shape[0]
        eps = 1e-12
        loss = -np.mean(np.sum(y_onehot * np.log(probs + eps), axis=1))
        loss += 0.5 * self.weight_decay * float(np.sum(self.weight ** 2))
        delta = (probs - y_onehot) / n
        grad_w = delta.T @ x + self.weight_decay * self.weight
        grad_b = delta.sum(axis=0)
        return loss, grad_w, grad_b

    def fit(self, x: np.ndarray, y: np.ndarray,
            x_test: np.ndarray | None = None,
            y_test: np.ndarray | None = None,
            tolerance: float = 1e-6) -> ProbeResult:
        """Full-batch GD with momentum; early stop on loss plateau."""
        x = np.asarray(x, np.float64)
        y = np.asarray(y)
        if x.shape[1] != self.feature_dim:
            raise ValueError(
                f"features are {x.shape[1]}-d, probe expects "
                f"{self.feature_dim}")
        if y.min() < 0 or y.max() >= self.classes:
            raise ValueError("labels outside the class range")
        y_onehot = np.eye(self.classes)[y]
        velocity_w = np.zeros_like(self.weight)
        velocity_b = np.zeros_like(self.bias)
        previous = np.inf
        epochs_run = 0
        for epoch in range(self.epochs):
            loss, grad_w, grad_b = self._loss_and_grads(x, y_onehot)
            self.loss_history.append(loss)
            velocity_w = self.momentum * velocity_w - \
                self.learning_rate * grad_w
            velocity_b = self.momentum * velocity_b - \
                self.learning_rate * grad_b
            self.weight += velocity_w
            self.bias += velocity_b
            epochs_run = epoch + 1
            if abs(previous - loss) < tolerance:
                break
            previous = loss
        train_acc = self.accuracy(x, y)
        test_acc = (self.accuracy(x_test, y_test)
                    if x_test is not None and y_test is not None
                    else float("nan"))
        return ProbeResult(train_acc, test_acc,
                           self.loss_history[-1], epochs_run)

    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class posteriors for a feature batch."""
        return softmax(np.asarray(x, np.float64) @ self.weight.T
                       + self.bias, axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Argmax class predictions."""
        return self.predict_proba(x).argmax(axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy on (features, labels)."""
        return float(np.mean(self.predict(x) == np.asarray(y)))
