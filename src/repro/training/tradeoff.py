"""The accuracy-latency frontier: the paper's model-selection axis.

"Flexible deployment enables diverse applications but complicates model
selection due to the accuracy latency trade off."  With the training
substrate the trade-off is measurable: train a linear probe on each
backbone's frozen features over the same synthetic farm task, then place
each model on the (accuracy, latency) plane for a target platform.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.data.synthetic import synth_labeled_images
from repro.engine.latency import LatencyModel
from repro.engine.oom import max_batch_size
from repro.hardware.platform import PlatformSpec
from repro.models.zoo import get_model
from repro.training.features import FeatureExtractor
from repro.training.linear_probe import LinearProbe, train_test_split


@dataclasses.dataclass(frozen=True)
class FrontierPoint:
    """One model placed on the accuracy-latency plane."""

    model: str
    feature_dim: int
    test_accuracy: float
    latency_seconds: float      # per-request at the operating batch
    throughput: float
    batch_size: int
    training_seconds_estimate: float



def accuracy_latency_frontier(
    platform: PlatformSpec,
    model_names: tuple[str, ...] = ("vit_tiny", "vit_small", "resnet50"),
    classes: int = 4,
    samples: int = 240,
    image_size: int = 48,
    signal_strength: float = 0.6,
    batch_size: int | None = None,
    seed: int = 0,
) -> list[FrontierPoint]:
    """Measure the frontier on a synthetic farm task.

    ``image_size`` is the raw capture size (preprocessing resizes to
    each model's input); defaults keep the run laptop-fast.  ViT Base is
    excluded from the default list purely for runtime (224² NumPy
    forward passes over hundreds of images); pass it explicitly when
    budget allows.
    """
    rng = np.random.default_rng(seed)
    images, labels = synth_labeled_images(samples, classes, image_size,
                                          rng,
                                          signal_strength=signal_strength)
    points = []
    for name in model_names:
        extractor = FeatureExtractor(name, seed=seed)
        features = extractor.extract(list(images))
        x_train, y_train, x_test, y_test = train_test_split(
            features, labels, test_fraction=0.3,
            rng=np.random.default_rng(seed + 1))
        probe = LinearProbe(extractor.feature_dim, classes, seed=seed)
        result = probe.fit(x_train, y_train, x_test, y_test)

        graph = get_model(name).graph
        operating = (batch_size if batch_size is not None
                     else min(64, max_batch_size(graph, platform)))
        latency_model = LatencyModel(graph, platform)

        # Head-training cost on the platform: feature extraction is one
        # inference pass over the training set; GD epochs on the head
        # are negligible next to it.
        extract_seconds = x_train.shape[0] / latency_model.throughput(
            operating)
        points.append(FrontierPoint(
            model=name,
            feature_dim=extractor.feature_dim,
            test_accuracy=result.test_accuracy,
            latency_seconds=latency_model.latency(operating),
            throughput=latency_model.throughput(operating),
            batch_size=operating,
            training_seconds_estimate=extract_seconds,
        ))
    return points


def pareto_front(points: list[FrontierPoint]) -> list[FrontierPoint]:
    """Models not dominated on (higher accuracy, lower latency)."""
    front = []
    for p in points:
        dominated = any(
            q.test_accuracy >= p.test_accuracy
            and q.latency_seconds <= p.latency_seconds
            and (q.test_accuracy > p.test_accuracy
                 or q.latency_seconds < p.latency_seconds)
            for q in points)
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.latency_seconds)
