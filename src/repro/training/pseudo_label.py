"""Semi-supervised self-training (pseudo-labeling).

The paper: HARVEST-2.0 is "combined with semi-supervised learning
techniques [to mitigate] the time and expert effort required for
labeling".  The classical self-training loop implemented here: fit on
the small labeled set, pseudo-label the unlabeled pool where the head is
confident, recruit those samples, refit, repeat.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.training.linear_probe import LinearProbe


@dataclasses.dataclass(frozen=True)
class SelfTrainingResult:
    """Outcome of the self-training loop."""

    baseline_accuracy: float        # supervised-only, on the test set
    final_accuracy: float           # after self-training
    rounds_run: int
    pseudo_labels_used: int
    pseudo_label_precision: float   # vs. the (held-back) true labels

    @property
    def improvement(self) -> float:
        """Accuracy gained over the supervised-only baseline."""
        return self.final_accuracy - self.baseline_accuracy


def self_training(x_labeled: np.ndarray, y_labeled: np.ndarray,
                  x_unlabeled: np.ndarray, x_test: np.ndarray,
                  y_test: np.ndarray, classes: int,
                  y_unlabeled_true: np.ndarray | None = None,
                  confidence: float = 0.9, rounds: int = 3,
                  probe_kwargs: dict | None = None,
                  seed: int = 0) -> SelfTrainingResult:
    """Run the self-training loop.

    ``y_unlabeled_true`` is only used for reporting pseudo-label
    precision (the experimenter's view); the algorithm never sees it.
    """
    if not 0.5 <= confidence < 1.0:
        raise ValueError("confidence threshold must be in [0.5, 1)")
    if rounds < 1:
        raise ValueError("need at least one round")
    probe_kwargs = dict(probe_kwargs or {})
    dim = x_labeled.shape[1]

    def fit_probe(x, y) -> LinearProbe:
        probe = LinearProbe(dim, classes, seed=seed, **probe_kwargs)
        probe.fit(x, y)
        return probe

    baseline = fit_probe(x_labeled, y_labeled)
    baseline_acc = baseline.accuracy(x_test, y_test)

    x_train = x_labeled
    y_train = y_labeled
    pool = np.arange(x_unlabeled.shape[0])
    used_indices: list[int] = []
    probe = baseline
    rounds_run = 0
    for _ in range(rounds):
        if pool.size == 0:
            break
        probs = probe.predict_proba(x_unlabeled[pool])
        conf = probs.max(axis=1)
        confident = conf >= confidence
        if not confident.any():
            break
        picked = pool[confident]
        pseudo = probs[confident].argmax(axis=1)
        x_train = np.concatenate([x_train, x_unlabeled[picked]])
        y_train = np.concatenate([y_train, pseudo])
        used_indices.extend(picked.tolist())
        pool = pool[~confident]
        probe = fit_probe(x_train, y_train)
        rounds_run += 1

    final_acc = probe.accuracy(x_test, y_test)
    if y_unlabeled_true is not None and used_indices:
        # Precision of the recruited pseudo-labels: what fraction were
        # actually correct (recomputed from the final training set tail).
        recruited = np.asarray(used_indices)
        pseudo_tail = y_train[y_labeled.shape[0]:]
        precision = float(np.mean(
            pseudo_tail == y_unlabeled_true[recruited]))
    else:
        precision = float("nan")
    return SelfTrainingResult(
        baseline_accuracy=baseline_acc,
        final_accuracy=final_acc,
        rounds_run=rounds_run,
        pseudo_labels_used=len(used_indices),
        pseudo_label_precision=precision,
    )
