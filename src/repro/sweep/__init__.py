"""Process-parallel sweep engine with deterministic merge.

This package fans embarrassingly-parallel simulation grids across host
processes — a different axis of parallelism from
:mod:`repro.scale.parallel`, which *models* data-parallel replica
groups inside one simulation.  Here the simulations themselves are the
unit of work: each shard is one seeded run, executed in a worker
process, whose metrics fold back into a single deterministic result.

The three-layer contract:

* :mod:`repro.sweep.spec` — declare the grid.  :class:`SweepSpec`
  names a worker by import path (spawn-safe) and derives per-shard
  seeds from ``(base_seed, shard_index)`` only, so results never
  depend on worker count or completion order.
* :mod:`repro.sweep.runner` — execute it.  :class:`SweepRunner` fans
  shards over a ``ProcessPoolExecutor`` (longest expected job first),
  captures per-shard faults as structured :class:`ShardError` values
  with one bounded retry, and re-sorts outcomes by shard index.
* :mod:`repro.sweep.merge` — reduce it.  Mergeable summaries compute
  quantiles by bucket re-accumulation (never quantile averaging), and
  registry/profiler folds are commutative, so 1-worker and 16-worker
  sweeps produce byte-identical scrapes, tables, and folded profiles.
"""

from repro.sweep.merge import (
    BucketSummary,
    merge_profiles,
    merge_registries,
    merge_summaries,
    normal_ci,
)
from repro.sweep.runner import (
    ShardError,
    ShardOutcome,
    SweepError,
    SweepResult,
    SweepRunner,
)
from repro.sweep.spec import Shard, SweepSpec, derive_seed, resolve_worker

__all__ = [
    "BucketSummary",
    "Shard",
    "ShardError",
    "ShardOutcome",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "derive_seed",
    "merge_profiles",
    "merge_registries",
    "merge_summaries",
    "normal_ci",
    "resolve_worker",
]
