"""Fan a deterministic sweep out over a process pool, safely.

``SweepRunner`` executes a :class:`~repro.sweep.spec.SweepSpec` with
``jobs`` worker processes (inline in this process when ``jobs <= 1`` —
same code path, no pool) and returns a :class:`SweepResult` whose
shard outcomes are **always in shard-index order**, whatever order the
pool completed them in.  That re-sort, plus per-shard derived seeds,
is the determinism contract: a 1-worker and a 16-worker run of the
same spec produce byte-identical merged output.

Fault handling is structured, bounded, and pool-preserving:

* a shard that raises is captured *inside* the worker process —
  traceback text and all — and comes back as a :class:`ShardError`
  carrying the shard's params, so no exception object ever has to
  survive pickling through the result queue (unpicklable exceptions
  are the classic way to wedge a ``ProcessPoolExecutor``);
* each failed shard is retried once (``retries=1``), re-running with
  *exactly* the same derived seed — a retry can never change what a
  successful shard computes;
* an optional sweep-wide ``timeout_seconds`` converts stuck shards to
  ``ShardError`` outcomes and tears the pool down (terminating its
  processes) instead of waiting forever;
* a broken pool (a worker hard-killed mid-run) marks the unfinished
  shards failed rather than raising out of the collection loop.

This is **host-process** parallelism across *independent simulations*
— one process per shard, no shared state, results merged after the
fact.  It is orthogonal to :mod:`repro.scale.parallel`, which *models*
data-parallel replica groups inside a single simulation.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
import traceback as traceback_module
from concurrent.futures.process import BrokenProcessPool

from repro.sweep.spec import Shard, SweepSpec, resolve_worker


def _execute_shard(worker_path: str, index: int, params: dict) -> tuple:
    """Pool entry point: run one shard, never raise.

    Returns ``(index, wall_seconds, payload, error_fields_or_None)``.
    Exceptions are rendered to strings here, in the worker process,
    because the exception *object* may not survive the pickle trip
    home — its string form always does.
    """
    start = time.perf_counter()
    try:
        worker = resolve_worker(worker_path)
        payload = worker(dict(params))
        return index, time.perf_counter() - start, payload, None
    except Exception as exc:
        fields = (type(exc).__name__, str(exc),
                  traceback_module.format_exc())
        return index, time.perf_counter() - start, None, fields


@dataclasses.dataclass(frozen=True)
class ShardError:
    """A shard's structured failure: what ran, with what, and why.

    ``traceback`` is the worker-side traceback text of the *last*
    attempt; ``attempts`` counts how many times the shard ran.  The
    params (seed included) are attached so the failure is reproducible
    with ``resolve_worker(spec.worker)(error.params)``.
    """

    shard_index: int
    seed: int
    params: dict
    error_type: str
    message: str
    traceback: str
    attempts: int

    def summary(self) -> str:
        """One-line human rendering: shard, seed, attempts, error."""
        return (f"shard {self.shard_index} (seed {self.seed}) failed "
                f"after {self.attempts} attempt"
                f"{'s' if self.attempts != 1 else ''}: "
                f"{self.error_type}: {self.message}")


@dataclasses.dataclass(frozen=True)
class ShardOutcome:
    """One shard's result slot, success or failure."""

    index: int
    seed: int
    params: dict
    #: The worker's return value (None on failure).
    value: object | None
    #: Structured failure (None on success).
    error: ShardError | None
    attempts: int
    #: Worker-measured wall seconds of the last attempt (0.0 when the
    #: shard never ran, e.g. a timeout before dispatch).  Wall time is
    #: nondeterministic — report it, never merge on it.
    wall_seconds: float

    @property
    def ok(self) -> bool:
        """True when the shard produced a value (no :class:`ShardError`)."""
        return self.error is None


class SweepError(RuntimeError):
    """Raised by :meth:`SweepResult.raise_on_error` when shards failed."""

    def __init__(self, errors: list[ShardError]):
        self.errors = errors
        lines = [error.summary() for error in errors]
        super().__init__(
            f"{len(errors)} sweep shard(s) failed:\n" + "\n".join(lines))


@dataclasses.dataclass
class SweepResult:
    """All shard outcomes of one sweep, in shard-index order."""

    shards: list[ShardOutcome]
    #: Parent-measured wall seconds for the whole sweep.
    wall_seconds: float
    jobs: int

    def values(self) -> list[object]:
        """Successful shard payloads, in shard-index order.

        Failed shards are *skipped* here — check :meth:`errors` (or
        call :meth:`raise_on_error`) before merging if partial results
        would corrupt the reduction.
        """
        return [s.value for s in self.shards if s.ok]

    def errors(self) -> list[ShardError]:
        """Every shard failure, in shard-index order."""
        return [s.error for s in self.shards if s.error is not None]

    def raise_on_error(self) -> "SweepResult":
        """Raise :class:`SweepError` if any shard failed; else self."""
        errors = self.errors()
        if errors:
            raise SweepError(errors)
        return self


class SweepRunner:
    """Execute a :class:`SweepSpec` across processes, deterministically.

    Parameters
    ----------
    jobs:
        Worker process count.  ``jobs <= 1`` runs every shard inline in
        this process — the same ``_execute_shard`` path, so retry and
        fault semantics are identical and tests of either mode cover
        both.
    mp_context:
        A ``multiprocessing`` context (e.g.
        ``multiprocessing.get_context("spawn")``).  ``None`` uses the
        platform default (``fork`` on Linux — cheapest); the engine is
        spawn-safe by construction either way.
    retries:
        Bounded re-runs per failed shard (default 1).  Retries reuse
        the shard's derived seed, so a flaky-environment retry that
        succeeds is indistinguishable from a first-try success.
    timeout_seconds:
        Optional wall-clock budget for the whole sweep.  On expiry the
        pool is shut down (worker processes terminated), and every
        unfinished shard becomes a ``ShardError`` outcome.
    """

    def __init__(self, jobs: int = 1, mp_context=None, retries: int = 1,
                 timeout_seconds: float | None = None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        self.jobs = jobs
        self.mp_context = mp_context
        self.retries = retries
        self.timeout_seconds = timeout_seconds

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Run every shard; return outcomes in shard-index order."""
        shards = spec.shards()
        start = time.perf_counter()
        if not shards:
            return SweepResult(shards=[], wall_seconds=0.0,
                               jobs=self.jobs)
        # Longest expected job first: submission order only.  The tie
        # break on index keeps scheduling itself reproducible.
        order = sorted(shards,
                       key=lambda s: (-spec.cost_of(s), s.index))
        if self.jobs == 1 or len(shards) == 1:
            outcomes = [self._run_inline(spec, shard)
                        for shard in order]
        else:
            outcomes = self._run_pool(spec, order)
        outcomes.sort(key=lambda outcome: outcome.index)
        return SweepResult(shards=outcomes,
                           wall_seconds=time.perf_counter() - start,
                           jobs=self.jobs)

    # ------------------------------------------------------------------
    def _run_inline(self, spec: SweepSpec, shard: Shard) -> ShardOutcome:
        attempts = 0
        while True:
            attempts += 1
            index, wall, payload, error = _execute_shard(
                spec.worker, shard.index, shard.params)
            if error is None:
                return ShardOutcome(
                    index=shard.index, seed=shard.seed,
                    params=shard.params, value=payload, error=None,
                    attempts=attempts, wall_seconds=wall)
            if attempts > self.retries:
                error_type, message, trace = error
                return ShardOutcome(
                    index=shard.index, seed=shard.seed,
                    params=shard.params, value=None,
                    error=ShardError(
                        shard_index=shard.index, seed=shard.seed,
                        params=shard.params, error_type=error_type,
                        message=message, traceback=trace,
                        attempts=attempts),
                    attempts=attempts, wall_seconds=wall)

    # ------------------------------------------------------------------
    def _run_pool(self, spec: SweepSpec,
                  order: list[Shard]) -> list[ShardOutcome]:
        deadline = (None if self.timeout_seconds is None
                    else time.perf_counter() + self.timeout_seconds)
        by_index = {shard.index: shard for shard in order}
        attempts: dict[int, int] = {shard.index: 0 for shard in order}
        outcomes: dict[int, ShardOutcome] = {}
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.jobs, len(order)),
            mp_context=self.mp_context)
        pending: dict = {}
        clean_shutdown = True
        try:
            for shard in order:
                attempts[shard.index] += 1
                future = executor.submit(_execute_shard, spec.worker,
                                         shard.index, shard.params)
                pending[future] = shard
            while pending:
                remaining = (None if deadline is None
                             else max(0.0, deadline - time.perf_counter()))
                done, _ = concurrent.futures.wait(
                    pending, timeout=remaining,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                if not done:  # sweep timeout expired
                    clean_shutdown = False
                    self._fail_pending(pending, attempts, outcomes,
                                       "TimeoutError",
                                       f"sweep exceeded its "
                                       f"{self.timeout_seconds}s budget")
                    self._terminate(executor)
                    break
                for future in done:
                    shard = pending[future]
                    try:
                        index, wall, payload, error = future.result()
                    except BrokenProcessPool:
                        # Leave the shard in ``pending`` so the outer
                        # handler records the real failure reason.
                        raise
                    except Exception as exc:
                        # The payload failed to unpickle (or similar
                        # transport fault): structured failure, and the
                        # pool itself is still alive.
                        error = (type(exc).__name__, str(exc),
                                 traceback_module.format_exc())
                        index, wall, payload = shard.index, 0.0, None
                    del pending[future]
                    if error is None:
                        outcomes[index] = ShardOutcome(
                            index=index, seed=shard.seed,
                            params=shard.params, value=payload,
                            error=None, attempts=attempts[index],
                            wall_seconds=wall)
                    elif attempts[index] <= self.retries:
                        attempts[index] += 1
                        retry = executor.submit(
                            _execute_shard, spec.worker, shard.index,
                            shard.params)
                        pending[retry] = shard
                    else:
                        error_type, message, trace = error
                        outcomes[index] = ShardOutcome(
                            index=index, seed=shard.seed,
                            params=shard.params, value=None,
                            error=ShardError(
                                shard_index=index, seed=shard.seed,
                                params=shard.params,
                                error_type=error_type, message=message,
                                traceback=trace,
                                attempts=attempts[index]),
                            attempts=attempts[index], wall_seconds=wall)
        except BrokenProcessPool as exc:
            # A worker died hard (OOM-kill, segfault): everything not
            # yet completed fails structurally instead of hanging or
            # raising past the already-collected results.
            clean_shutdown = False
            self._fail_pending(pending, attempts, outcomes,
                               "BrokenProcessPool", str(exc))
        finally:
            # A completed sweep joins the pool properly — leaving the
            # management thread to die asynchronously makes the
            # interpreter's atexit hook poke a closed wakeup pipe
            # ("Exception ignored" noise at exit).  Only a timed-out or
            # broken pool, whose workers were terminated, is abandoned
            # without waiting.
            executor.shutdown(wait=clean_shutdown, cancel_futures=True)
        # Shards that never got an outcome (pathological teardown
        # races) fail explicitly — the result always has every index.
        for index, shard in by_index.items():
            if index not in outcomes:
                outcomes[index] = self._synthetic_failure(
                    shard, attempts[index], "RuntimeError",
                    "shard lost during pool teardown")
        return list(outcomes.values())

    def _fail_pending(self, pending: dict, attempts: dict,
                      outcomes: dict, error_type: str,
                      message: str) -> None:
        for future, shard in pending.items():
            future.cancel()
            outcomes[shard.index] = self._synthetic_failure(
                shard, attempts[shard.index], error_type, message)
        pending.clear()

    @staticmethod
    def _synthetic_failure(shard: Shard, attempts: int,
                           error_type: str, message: str) -> ShardOutcome:
        return ShardOutcome(
            index=shard.index, seed=shard.seed, params=shard.params,
            value=None,
            error=ShardError(
                shard_index=shard.index, seed=shard.seed,
                params=shard.params, error_type=error_type,
                message=message, traceback="", attempts=attempts),
            attempts=attempts, wall_seconds=0.0)

    @staticmethod
    def _terminate(executor) -> None:
        """Kill worker processes so a stuck shard cannot outlive us."""
        processes = getattr(executor, "_processes", None)
        if not processes:
            return
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
