"""Declaring a sweep: the grid, the worker, and the seed contract.

A :class:`SweepSpec` names *what* to run — a worker function resolvable
by import path — and *over which points*: an explicit ``grid`` of
parameter dicts, a cartesian product of ``axes``, or both, each point
optionally replicated ``replications`` times with an independent
derived seed (Monte Carlo seed replication for the sampled
faas/network regimes).

The worker is a string (``"repro.sweep.workloads:replay_sparse_diurnal"``)
rather than a callable on purpose: a callable would drag its closure
through pickle into every pool worker, which breaks under the ``spawn``
start method and quietly captures parent state under ``fork``.  An
import path re-resolves inside the worker process, so the same spec is
spawn-safe and fork-safe.

Seed derivation is the determinism anchor: ``derive_seed(base, index)``
hashes the base seed and the shard index with SHA-256, so a shard's
seed depends only on its position in the grid — never on worker count,
submission order, or completion order — and a retried shard reruns
with *exactly* the seed of its failed attempt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import itertools
from collections.abc import Callable, Mapping, Sequence


def derive_seed(base: int, shard_index: int) -> int:
    """Derive shard ``shard_index``'s seed from the sweep's base seed.

    SHA-256 over the ``"base:index"`` string, truncated to 63 bits (so
    it stays a non-negative int for every RNG API).  Stable across
    processes, platforms, and Python versions — unlike ``hash()``,
    which ``PYTHONHASHSEED`` randomizes per interpreter.

    >>> derive_seed(7, 0) == derive_seed(7, 0)
    True
    >>> derive_seed(7, 0) != derive_seed(7, 1)
    True
    """
    if shard_index < 0:
        raise ValueError("shard_index must be >= 0")
    digest = hashlib.sha256(
        f"{int(base)}:{int(shard_index)}".encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_worker(path: str) -> Callable[[dict], object]:
    """Resolve a ``"module:function"`` (or ``"module.function"``) path.

    Raises ``ValueError`` when the path does not name an importable
    module-level callable — the shape required for the function to be
    re-resolvable inside a spawned worker process.
    """
    module_name, sep, attr = path.partition(":")
    if not sep:
        module_name, _, attr = path.rpartition(".")
    if not module_name or not attr:
        raise ValueError(
            f"worker path {path!r} must look like 'pkg.module:function'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ValueError(
            f"cannot import worker module {module_name!r}: {exc}"
        ) from exc
    worker = getattr(module, attr, None)
    if worker is None:
        raise ValueError(
            f"module {module_name!r} has no attribute {attr!r}")
    if not callable(worker):
        raise ValueError(f"worker {path!r} is not callable")
    return worker


@dataclasses.dataclass(frozen=True)
class Shard:
    """One unit of sweep work: a grid point × replication.

    ``params`` is the complete dict handed to the worker; it already
    carries ``seed`` (derived), ``shard_index``, and ``replication``.
    """

    index: int
    seed: int
    params: dict


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """An embarrassingly-parallel simulation grid.

    Parameters
    ----------
    worker:
        Import path of the shard function (``"pkg.module:function"``).
        It receives one ``params`` dict and returns a picklable result.
    grid:
        Explicit parameter points (list of dicts).  When ``axes`` is
        also given, each grid point is crossed with the axes product.
    axes:
        ``{name: values}`` — the cartesian product (in the given axis
        order, last axis fastest) generates one point per combination.
    base_params:
        Defaults merged under every point.
    replications:
        Seed-replication count per point: each point runs this many
        times, every replication an independent shard with its own
        derived seed.
    base_seed:
        Root of the seed derivation (see :func:`derive_seed`).
    expected_cost:
        Optional ``params -> float`` estimating a shard's runtime.
        The runner submits costlier shards first (longest expected job
        first), which shortens the tail when shard costs are skewed.
        Scheduling only — results are merged in shard-index order, so
        a bad estimate can slow the sweep but never change its output.
    """

    worker: str
    grid: Sequence[Mapping] | None = None
    axes: Mapping[str, Sequence] | None = None
    base_params: Mapping = dataclasses.field(default_factory=dict)
    replications: int = 1
    base_seed: int = 0
    expected_cost: Callable[[dict], float] | None = None

    def __post_init__(self) -> None:
        if self.replications < 1:
            raise ValueError("replications must be >= 1")
        if self.grid is not None and len(self.grid) == 0:
            raise ValueError("an explicit grid cannot be empty")
        # With neither grid nor axes the spec is a pure seed-replication
        # set over one implicit point — replications is the whole grid.
        resolve_worker(self.worker)  # fail at declaration, not dispatch

    def points(self) -> list[dict]:
        """The parameter points before replication, in grid order."""
        bases = [dict(p) for p in self.grid] if self.grid else [{}]
        if not self.axes:
            return [{**self.base_params, **base} for base in bases]
        names = list(self.axes)
        out = []
        for base in bases:
            for combo in itertools.product(
                    *(self.axes[name] for name in names)):
                out.append({**self.base_params, **base,
                            **dict(zip(names, combo))})
        return out

    def shards(self) -> list[Shard]:
        """Every shard, in index order (point-major, replication-minor).

        The index — and therefore the derived seed — depends only on
        the spec itself, never on how the runner schedules the work.
        """
        shards = []
        index = 0
        for point in self.points():
            for replication in range(self.replications):
                seed = derive_seed(self.base_seed, index)
                params = dict(point)
                params["seed"] = seed
                params["shard_index"] = index
                params["replication"] = replication
                shards.append(Shard(index=index, seed=seed,
                                    params=params))
                index += 1
        return shards

    def cost_of(self, shard: Shard) -> float:
        """Expected cost of one shard (0 when no estimator is set)."""
        if self.expected_cost is None:
            return 0.0
        return float(self.expected_cost(shard.params))
