"""Spawn-safe sweep workers.

Every function here is a module-level callable taking one ``params``
dict and returning a picklable result — the shape
:func:`repro.sweep.spec.resolve_worker` demands, so a
:class:`~repro.sweep.spec.SweepSpec` can name them by import path
(``"repro.sweep.workloads:replay_sparse_diurnal"``) and re-resolve them
inside ``spawn``- or ``fork``-started pool workers without pickling a
closure.

:func:`replay_sparse_diurnal` is the production workload behind
``repro sweep``; the ``_probe``/``_always_fails``/``_flaky_once``/
``_sleep_forever`` workers exist for the runner's fault-path and
determinism tests (module-level here because test-module functions are
not importable from spawned workers).
"""

from __future__ import annotations

import os
import time

#: Summary bounds for the replay workload: dense through the
#: 10-100 ms band where a batched edge server's latencies actually
#: live, so merged quantiles resolve the batching-delay structure
#: instead of collapsing into one coarse bucket.
LATENCY_BOUNDS: tuple[float, ...] = (
    0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04, 0.045,
    0.05, 0.055, 0.06, 0.065, 0.07, 0.075, 0.08, 0.09, 0.1,
    0.125, 0.15, 0.2, 0.3, 0.5, 1.0, 2.0, 5.0,
)


def _quantile(values: list[float], frac: float) -> float:
    """Exact nearest-rank quantile over one shard's raw samples."""
    if not values:
        return 0.0
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       round(frac * (len(ordered) - 1)))]


def replay_sparse_diurnal(params: dict) -> dict:
    """Replay one seeded sparse-diurnal day against a Triton-like server.

    The sweep's canonical shard: builds the paper's orchard-gateway
    arrival pattern (quiet nights, scouting-flight mornings) for the
    shard's derived ``seed``, serves it, and returns mergeable pieces —
    a metrics registry, a sim-time profiler, and a
    :class:`~repro.sweep.merge.BucketSummary` over request latencies —
    alongside scalar per-shard fields for the sweep table.

    Recognized ``params`` (beyond the runner-injected ``seed`` /
    ``shard_index`` / ``replication``): ``duration``, ``peak_rate``,
    ``night_rate``, ``service_time_base``, ``service_time_per_image``,
    ``instances``, ``max_batch_size``, ``max_queue_delay``.
    """
    from repro.serving.batcher import BatcherConfig
    from repro.serving.observability import MetricsRegistry
    from repro.serving.profiler import SimProfiler
    from repro.serving.events import Simulator
    from repro.serving.server import ModelConfig, TritonLikeServer
    from repro.serving.traces import TraceReplayer, sparse_diurnal_trace
    from repro.sweep.merge import BucketSummary

    seed = int(params["seed"])
    trace = sparse_diurnal_trace(
        duration=float(params.get("duration", 3600.0)),
        peak_rate=float(params.get("peak_rate", 2.0)),
        night_rate=float(params.get("night_rate", 0.01)),
        seed=seed)

    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)
    server = TritonLikeServer(sim, registry=registry)
    profiler = SimProfiler(clock=lambda: sim.now)
    server.attach_profiler(profiler)
    base = float(params.get("service_time_base", 0.012))
    per_image = float(params.get("service_time_per_image", 0.004))
    server.register(ModelConfig(
        "infer", service_time=lambda n: base + per_image * n,
        batcher=BatcherConfig(
            max_batch_size=int(params.get("max_batch_size", 8)),
            max_queue_delay=float(params.get("max_queue_delay", 0.05))),
        instances=int(params.get("instances", 1))))
    TraceReplayer(server, "infer").schedule(trace)
    server.run()

    latencies = [r.latency for r in server.responses if r.ok]
    # Per-shard quantiles are exact (the raw samples are right here);
    # only cross-shard aggregation goes through the mergeable summary.
    summary = BucketSummary.from_values(latencies, LATENCY_BOUNDS)
    return {
        "seed": seed,
        "shard_index": int(params["shard_index"]),
        "replication": int(params.get("replication", 0)),
        "arrivals": len(trace),
        "completed": len(latencies),
        "sim_seconds": sim.now,
        "events": sim.events_processed,
        "p50": _quantile(latencies, 0.50),
        "p95": _quantile(latencies, 0.95),
        "p99": _quantile(latencies, 0.99),
        "summary": summary,
        "registry": registry,
        "profiler": profiler,
    }


# ---------------------------------------------------------------------
# Deterministic micro-workers for runner tests (importable from spawned
# processes, unlike functions defined inside test modules).
# ---------------------------------------------------------------------

def _probe(params: dict) -> dict:
    """Echo worker: derived seed, pid, and a seed-dependent value."""
    return {
        "shard_index": params["shard_index"],
        "seed": params["seed"],
        "value": (params["seed"] % 1000) * params.get("scale", 1),
        "pid": os.getpid(),
    }


def _probe_or_fail(params: dict) -> dict:
    """Echo worker that raises when ``params['fail_on']`` is truthy."""
    if params.get("fail_on"):
        raise RuntimeError(
            f"shard {params['shard_index']} told to fail")
    return _probe(params)


def _always_fails(params: dict) -> dict:
    """Raise on every attempt (exercises retry exhaustion)."""
    raise RuntimeError(
        f"shard {params['shard_index']} failed as designed")


def _flaky_once(params: dict) -> dict:
    """Fail the first attempt per shard, succeed on the retry.

    A marker file (under ``params['marker_dir']``) records that the
    first attempt happened, so the retry — which reruns with the *same*
    derived seed — succeeds and proves retry determinism across process
    boundaries.
    """
    marker = os.path.join(
        params["marker_dir"], f"shard-{params['shard_index']}.attempted")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write(str(params["seed"]))
        raise RuntimeError("first attempt fails by design")
    with open(marker, encoding="utf-8") as fh:
        first_seed = int(fh.read())
    return {"shard_index": params["shard_index"],
            "seed": params["seed"],
            "first_attempt_seed": first_seed,
            "seeds_match": first_seed == params["seed"]}


def _sleep_forever(params: dict) -> dict:
    """Block far past any test timeout (exercises pool teardown)."""
    time.sleep(params.get("sleep_seconds", 3600.0))
    return {"shard_index": params["shard_index"]}


def _unpicklable_failure(params: dict) -> dict:
    """Raise an exception that cannot cross the process boundary.

    A classic ``ProcessPoolExecutor`` wedge: an exception holding an
    unpicklable payload kills the result pipe.  The runner stringifies
    tracebacks worker-side, so this must surface as a normal
    ``ShardError``.
    """
    class _Local(Exception):
        def __init__(self) -> None:
            super().__init__("unpicklable by design")
            self.payload = lambda: None

    raise _Local()
