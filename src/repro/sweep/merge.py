"""Deterministic reductions over sweep shard results.

Every reduction here is commutative; counts, maxima, and bucket-walk
quantiles are exactly associative too, while floating-point *sums*
(histogram sums, summary means) are associative only to the ULP.  The
engine therefore always folds in shard-index order —
:meth:`~repro.sweep.runner.SweepResult.values` is index-sorted — which
is what makes merged output byte-identical for any worker count or
completion order:

* :class:`BucketSummary` — mergeable latency summary statistics.
  Quantiles come from **bucket re-accumulation** (merge the counts,
  then walk the cumulative distribution), never from averaging the
  shards' quantiles: the mean of eight p95s is not a p95, and gets
  worse the more skewed the shards are.
* :func:`merge_registries` — fold shard
  :class:`~repro.serving.observability.MetricsRegistry` objects into a
  fresh one (counters add, gauges keep the freshest reading,
  histograms add per bucket with layout validation).
* :func:`merge_profiles` — fold shard
  :class:`~repro.serving.profiler.SimProfiler` objects into one
  profiler whose folded stacks equal a single-process run's.
* :func:`normal_ci` — a deterministic aggregate confidence interval
  across per-shard scalars (normal approximation; no bootstrap RNG,
  so sweep tables reproduce byte for byte).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Iterable, Sequence

#: Default latency bounds (seconds) for :class:`BucketSummary` —
#: matches :data:`repro.serving.observability.DEFAULT_BUCKETS` so a
#: summary and a registry histogram built from the same samples agree.
DEFAULT_SUMMARY_BOUNDS: tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
    0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
)

#: z-scores for the confidence levels the CLI exposes.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclasses.dataclass
class BucketSummary:
    """Mergeable summary statistics over one metric's samples.

    Holds fixed-bound bucket counts plus exact sum/count/min/max, so
    shards can be reduced without ever re-touching raw samples.  The
    quantile error is bounded by bucket width (Prometheus semantics:
    a quantile reports its bucket's upper bound, sharpened by the
    exact observed min/max) — and crucially it is *identical* whether
    the samples were accumulated in one process or merged from sixteen.
    """

    bounds: tuple[float, ...]
    counts: list[int]
    total: float = 0.0
    count: int = 0
    minimum: float = math.inf
    maximum: float = -math.inf

    @classmethod
    def empty(cls, bounds: Sequence[float] = DEFAULT_SUMMARY_BOUNDS,
              ) -> "BucketSummary":
        bounds = tuple(sorted(bounds))
        if not bounds:
            raise ValueError("a summary needs at least one bound")
        return cls(bounds=bounds, counts=[0] * (len(bounds) + 1))

    @classmethod
    def from_values(cls, values: Iterable[float],
                    bounds: Sequence[float] = DEFAULT_SUMMARY_BOUNDS,
                    ) -> "BucketSummary":
        summary = cls.empty(bounds)
        for value in values:
            summary.observe(float(value))
        return summary

    def observe(self, value: float) -> None:
        """Record one sample (first bound >= value, overflow last)."""
        from bisect import bisect_left

        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "BucketSummary") -> "BucketSummary":
        """Fold another summary in; ``ValueError`` on layout conflict."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"summary bucket layouts conflict: {self.bounds} vs "
                f"{other.bounds}")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.count += other.count
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def mean(self) -> float:
        """Exact mean of every observed sample (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile by cumulative bucket re-accumulation.

        Walks the merged cumulative counts to the first bucket holding
        the ``q``-th sample and reports its upper bound, clamped into
        the exact observed ``[minimum, maximum]`` range (the overflow
        bucket has no finite bound; the recorded maximum is its
        witness).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target and count:
                bound = (self.bounds[index]
                         if index < len(self.bounds) else self.maximum)
                return max(self.minimum, min(bound, self.maximum))
        return self.maximum

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (used by the sweep CLI)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


def merge_registries(registries: Iterable) -> object:
    """Fold shard registries into a fresh ``MetricsRegistry``.

    The originals are untouched; the merged registry's
    :func:`~repro.serving.exporter.export_registry` scrape is
    byte-identical for any ordering of ``registries`` over the same
    shard set.
    """
    from repro.serving.observability import MetricsRegistry

    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged


def merge_profiles(profilers: Iterable) -> object:
    """Fold shard profilers into a fresh ``SimProfiler``.

    The merged profiler's sim-axis folded stacks equal those of one
    process that had run every shard back to back.
    """
    from repro.serving.profiler import SimProfiler

    merged = SimProfiler()
    for profiler in profilers:
        merged.merge(profiler)
    return merged


def merge_summaries(summaries: Iterable[BucketSummary]) -> BucketSummary:
    """Fold shard :class:`BucketSummary` objects into a fresh one."""
    merged: BucketSummary | None = None
    for summary in summaries:
        if merged is None:
            merged = BucketSummary.empty(summary.bounds)
        merged.merge(summary)
    if merged is None:
        raise ValueError("merge_summaries needs at least one summary")
    return merged


def normal_ci(values: Sequence[float], confidence: float = 0.95,
              ) -> tuple[float, float]:
    """``(mean, half_width)`` of a normal-approximation CI.

    Deterministic by construction (closed form, no resampling) so
    sweep tables reproduce byte for byte; with fewer than two values
    the half-width is 0.  ``confidence`` must be one of 0.90 / 0.95 /
    0.99 — the z-table the CLI exposes.
    """
    z = _Z_SCORES.get(round(confidence, 2))
    if z is None:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_SCORES)}")
    values = [float(v) for v in values]
    if not values:
        raise ValueError("normal_ci needs at least one value")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(variance / n)
