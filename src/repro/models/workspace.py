"""Reusable scratch buffers and pre-packed GEMM operands.

The functional models in :mod:`repro.models.functional` are allocation
-bound, not FLOP-bound, at characterization batch sizes: every conv
re-materializes its im2col patch matrix, every linear re-transposes its
weight for the GEMM, and every attention re-splits QKV into heads.  The
arithmetic is identical across calls — only the *buffers* churn.  This
module factors the churn out:

* :class:`WorkspaceArena` — a ``(shape, dtype)``-keyed pool of scratch
  arrays.  A forward pass asks for its im2col/attention workspaces by
  shape; steady-state repeated inference (the serving replay pattern)
  reuses the same buffers with zero new allocations.
* :class:`WeightPack` — per-model GEMM-ready operands built once at
  model build time: linear weights stored pre-transposed and
  contiguous (``W.T``), conv weights stored as the flattened
  ``(C·k², out_c)`` matrix the im2col GEMM consumes.  Lookup is by the
  identity of the original weight array, so the op-level API
  (``linear(x, weight, ...)``) is unchanged — ops that receive a pack
  swap in the packed operand, ops that don't fall back to the seed
  math.

Nothing here changes results: the packed operand holds the same values
as the on-the-fly transpose it replaces, and arena buffers are fully
overwritten before use.
"""

from __future__ import annotations

import numpy as np


class WorkspaceArena:
    """A ``(shape, dtype)``-keyed pool of reusable scratch arrays.

    ``take`` hands out a buffer that the caller must fully overwrite;
    the buffer stays parked under its key, so the next ``take`` with
    the same shape returns the same memory.  Callers must therefore
    finish consuming a buffer before requesting the same shape again —
    the functional ops satisfy this by construction (each workspace is
    reduced into a fresh array before the next layer runs).
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}

    def __len__(self) -> int:
        """Distinct buffers currently pooled."""
        return len(self._buffers)

    @property
    def pooled_bytes(self) -> int:
        """Total bytes resident in the pool."""
        return sum(b.nbytes for b in self._buffers.values())

    def take(self, shape: tuple[int, ...],
             dtype=np.float32) -> np.ndarray:
        """An uninitialized scratch array of the given shape/dtype."""
        key = (shape, np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = self._buffers[key] = np.empty(shape, dtype)
        return buf


class WeightPack:
    """GEMM-ready operands for one model's weight dict, built once.

    Packs every 2D ``*.weight`` as a contiguous transpose (the ``x @
    W.T`` right operand) and every 4D conv kernel as the contiguous
    ``(in_c·k², out_c)`` matrix the im2col GEMM multiplies by.  Ops
    resolve packs by the original array's identity (:func:`id`), which
    stays valid because the pack keeps the source dict alive.
    """

    __slots__ = ("weights", "arena", "_linear_t", "_conv_mat")

    def __init__(self, weights: dict[str, np.ndarray],
                 arena: WorkspaceArena | None = None):
        self.weights = weights
        self.arena = arena if arena is not None else WorkspaceArena()
        self._linear_t: dict[int, np.ndarray] = {}
        self._conv_mat: dict[int, np.ndarray] = {}
        for name, w in weights.items():
            if not name.endswith((".weight", ".conv")):
                continue
            if w.ndim == 2:
                self._linear_t[id(w)] = np.ascontiguousarray(w.T)
            elif w.ndim == 4:
                out_c = w.shape[0]
                self._conv_mat[id(w)] = np.ascontiguousarray(
                    w.reshape(out_c, -1).T)

    def linear_operand(self, weight: np.ndarray) -> np.ndarray | None:
        """The pre-transposed operand for ``weight``, if packed."""
        return self._linear_t.get(id(weight))

    def conv_operand(self, weight: np.ndarray) -> np.ndarray | None:
        """The flattened im2col operand for ``weight``, if packed."""
        return self._conv_mat.get(id(weight))

    @property
    def packed_count(self) -> int:
        """Number of operands held by the pack."""
        return len(self._linear_t) + len(self._conv_mat)
