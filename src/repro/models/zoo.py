"""Model registry and the Table 3 reproduction.

The zoo maps model names to lazily-built :class:`ModelGraph` instances plus
the paper-reported reference values, so tests and the analysis harness can
compare analytic results against the paper in one place.
"""

from __future__ import annotations

import dataclasses
import functools
from collections.abc import Callable

from repro.models.graph import ModelGraph
from repro.models.resnet import build_resnet50
from repro.models.vit import build_vit


@dataclasses.dataclass(frozen=True)
class ModelEntry:
    """A zoo entry: builder plus the paper's Table 3 reference values."""

    name: str
    display_name: str
    builder: Callable[[], ModelGraph]
    paper_params_millions: float
    paper_gflops_per_image: float
    paper_input_size: int
    architecture: str

    @functools.cached_property
    def graph(self) -> ModelGraph:
        return self.builder()


MODEL_ZOO: dict[str, ModelEntry] = {
    entry.name: entry
    for entry in (
        ModelEntry("vit_tiny", "ViT Tiny", lambda: build_vit("vit_tiny"),
                   paper_params_millions=5.39,
                   paper_gflops_per_image=1.37,
                   paper_input_size=32, architecture="transformer"),
        ModelEntry("vit_small", "ViT Small", lambda: build_vit("vit_small"),
                   paper_params_millions=21.40,
                   paper_gflops_per_image=5.47,
                   paper_input_size=32, architecture="transformer"),
        ModelEntry("vit_base", "ViT Base", lambda: build_vit("vit_base"),
                   paper_params_millions=85.80,
                   paper_gflops_per_image=16.86,
                   paper_input_size=224, architecture="transformer"),
        ModelEntry("resnet50", "ResNet50", lambda: build_resnet50(),
                   paper_params_millions=25.56,
                   paper_gflops_per_image=4.09,
                   paper_input_size=224, architecture="cnn"),
    )
}

#: Table 3 column order.
MODEL_ORDER: tuple[str, ...] = ("vit_tiny", "vit_small", "vit_base", "resnet50")


def get_model(name: str) -> ModelEntry:
    """Look up a zoo entry by name (case-insensitive)."""
    try:
        return MODEL_ZOO[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from None


def list_models() -> list[ModelEntry]:
    """Zoo entries in Table 3 column order."""
    return [MODEL_ZOO[name] for name in MODEL_ORDER]


def table3_rows(platforms=None) -> list[dict]:
    """Regenerate Table 3: per-model specs and throughput upper bounds.

    ``platforms`` defaults to the three Table 1 platforms.  The throughput
    upper bound is practical platform FLOPS divided by the model's
    per-image FLOPs (Section 3.1).
    """
    from repro.hardware.platform import list_platforms

    if platforms is None:
        platforms = list_platforms()
    rows = []
    for entry in list_models():
        graph = entry.graph
        row = {
            "model": entry.display_name,
            "params_millions": graph.total_params() / 1e6,
            "architecture": graph.architecture,
            "gflops_per_image": graph.reported_gflops(),
            "input_size": graph.input_shape[1],
            "paper_params_millions": entry.paper_params_millions,
            "paper_gflops_per_image": entry.paper_gflops_per_image,
        }
        for platform in platforms:
            bound = platform.throughput_upper_bound(graph.flops_per_image())
            row[f"upper_bound_{platform.name.lower()}"] = bound
        rows.append(row)
    return rows
