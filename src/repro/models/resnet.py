"""ResNet50 builder (He et al. [15]).

Standard torchvision topology: a 7×7/2 stem, 3×3/2 max pool, four stages
of bottleneck blocks ([3, 4, 6, 3] with widths 64/128/256/512, expansion
4), global average pooling, and a 1000-way linear head (the paper's
25.56M-parameter count matches the ImageNet-1k head, i.e. a pretrained
backbone fine-tuned with its original classifier width).

Table 3 anchors: 25.56M parameters, 4.09 GFLOPs/image at 224×224, and the
Section 4.0.2 claim that "convolution operations account for 99.5% of
ResNet50's overall computational intensity".
"""

from __future__ import annotations

import dataclasses

from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Add,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    LayerSpec,
    Linear,
    Pool2d,
)


@dataclasses.dataclass(frozen=True)
class BottleneckConfig:
    """One bottleneck block: 1×1 reduce, 3×3, 1×1 expand (+ downsample)."""

    in_channels: int
    width: int
    stride: int
    in_hw: tuple[int, int]

    @property
    def out_channels(self) -> int:
        """Block output channels (width x expansion 4)."""
        return self.width * 4

    @property
    def out_hw(self) -> tuple[int, int]:
        """Spatial size after the block's stride."""
        h, w = self.in_hw
        return (h // self.stride, w // self.stride)

    @property
    def has_downsample(self) -> bool:
        """Whether the identity path needs a projection."""
        return self.stride != 1 or self.in_channels != self.out_channels


def _conv_bn(prefix: str, in_ch: int, out_ch: int, in_hw: tuple[int, int],
             kernel: int, stride: int, padding: int,
             relu: bool = True) -> list[LayerSpec]:
    conv = Conv2d(f"{prefix}.conv", in_channels=in_ch, out_channels=out_ch,
                  in_hw=in_hw, kernel_size=kernel, stride=stride,
                  padding=padding, bias=False)
    layers: list[LayerSpec] = [
        conv,
        BatchNorm2d(f"{prefix}.bn", channels=out_ch, in_hw=conv.out_hw),
    ]
    if relu:
        layers.append(Activation(f"{prefix}.relu", kind="relu",
                                 shape=(out_ch, *conv.out_hw)))
    return layers


def _bottleneck(prefix: str, cfg: BottleneckConfig) -> list[LayerSpec]:
    layers: list[LayerSpec] = []
    # 1x1 reduce
    layers += _conv_bn(f"{prefix}.1", cfg.in_channels, cfg.width,
                       cfg.in_hw, kernel=1, stride=1, padding=0)
    # 3x3 (carries the stride, torchvision style)
    layers += _conv_bn(f"{prefix}.2", cfg.width, cfg.width,
                       cfg.in_hw, kernel=3, stride=cfg.stride, padding=1)
    # 1x1 expand, no relu before the residual add
    layers += _conv_bn(f"{prefix}.3", cfg.width, cfg.out_channels,
                       cfg.out_hw, kernel=1, stride=1, padding=0, relu=False)
    if cfg.has_downsample:
        layers += _conv_bn(f"{prefix}.downsample", cfg.in_channels,
                           cfg.out_channels, cfg.in_hw, kernel=1,
                           stride=cfg.stride, padding=0, relu=False)
    layers.append(Add(f"{prefix}.residual",
                      shape=(cfg.out_channels, *cfg.out_hw)))
    layers.append(Activation(f"{prefix}.relu_out", kind="relu",
                             shape=(cfg.out_channels, *cfg.out_hw)))
    return layers


#: (blocks, width) per stage — the "50" in ResNet50.
STAGES: tuple[tuple[int, int], ...] = ((3, 64), (4, 128), (6, 256), (3, 512))


def build_resnet50(img_size: int = 224, num_classes: int = 1000) -> ModelGraph:
    """Build the ResNet50 layer graph.

    ``img_size`` must be divisible by 32 (five stride-2 reductions).
    """
    if img_size % 32:
        raise ValueError(f"img_size must be divisible by 32, got {img_size}")

    layers: list[LayerSpec] = []
    hw = (img_size, img_size)
    # Stem: 7x7/2 conv, BN, ReLU, 3x3/2 max pool.
    layers += _conv_bn("stem", 3, 64, hw, kernel=7, stride=2, padding=3)
    hw = (img_size // 2, img_size // 2)
    pool = Pool2d("stem.maxpool", kind="max", channels=64, in_hw=hw,
                  kernel_size=3, stride=2, padding=1)
    layers.append(pool)
    hw = pool.out_hw

    in_ch = 64
    for stage_idx, (blocks, width) in enumerate(STAGES, start=1):
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 1) else 1
            cfg = BottleneckConfig(in_channels=in_ch, width=width,
                                   stride=stride, in_hw=hw)
            layers += _bottleneck(f"layer{stage_idx}.{block_idx}", cfg)
            in_ch = cfg.out_channels
            hw = cfg.out_hw

    layers.append(GlobalAvgPool("avgpool", channels=in_ch, in_hw=hw))
    layers.append(Linear("fc", in_features=in_ch, out_features=num_classes))
    return ModelGraph("resnet50", "cnn", (3, img_size, img_size), layers)
