"""TensorRT-like engine builder: precision conversion and operator fusion.

The paper converts ONNX models "internally ... to the inference-oriented
TensorRT format".  The builder here performs the two transformations that
matter for the characterization:

* **precision conversion** — weights and activations are narrowed to the
  requested format, checked against platform support (e.g. requesting BF16
  on the V100 fails exactly like ``trtexec`` would);
* **operator fusion** — the classical inference fusions that reduce layer
  launches: Conv+BN(+ReLU) folding and Linear+GELU pointwise fusion.
  Fusion does not change MACs but shrinks elementwise work and the number
  of intermediate tensors, which the memory model consumes.

The output :class:`BuiltEngineSpec` is a static plan: fused layer list,
weight bytes, per-image activation bytes, and the supported batch range.
"""

from __future__ import annotations

import dataclasses

from repro.hardware.platform import PlatformSpec
from repro.hardware.precision import Precision, parse_precision
from repro.models import layers as L
from repro.models.graph import ModelGraph


@dataclasses.dataclass(frozen=True)
class FusedLayer:
    """One engine layer after fusion (1..n source layers)."""

    name: str
    source_layers: tuple[str, ...]
    category: L.LayerCategory
    macs: float
    elementwise_flops: float
    activation_elements: int


@dataclasses.dataclass(frozen=True)
class BuiltEngineSpec:
    """A built engine plan — the static artifact `trtexec` would emit."""

    model_name: str
    platform_name: str
    precision: Precision
    max_batch_size: int
    fused_layers: tuple[FusedLayer, ...]
    weight_bytes: float
    activation_bytes_per_image: float
    flops_per_image: float

    @property
    def num_layers(self) -> int:
        """Fused layer count of the built plan."""
        return len(self.fused_layers)

    def memory_bytes(self, batch_size: int) -> float:
        """Device memory at a given batch (weights + live activations)."""
        if not 1 <= batch_size <= self.max_batch_size:
            raise ValueError(
                f"batch {batch_size} outside engine profile "
                f"[1, {self.max_batch_size}]")
        return (self.weight_bytes
                + batch_size * self.activation_bytes_per_image)


class TRTEngineBuilder:
    """Builds :class:`BuiltEngineSpec` plans from model graphs.

    Parameters
    ----------
    platform:
        Target device; precision support is validated against it.
    precision:
        Engine format.  Defaults to the platform's benchmark precision
        (BF16 on A100/Jetson, FP16 on V100 — the paper's setup).
    """

    #: Pointwise ops fusable into a preceding matmul/conv layer.
    _FUSABLE_AFTER = (L.BatchNorm2d, L.Activation)

    def __init__(self, platform: PlatformSpec,
                 precision: Precision | str | None = None):
        self.platform = platform
        precision = (platform.benchmark_precision if precision is None
                     else parse_precision(precision))
        if not platform.supports(precision):
            raise ValueError(
                f"{platform.name} lacks hardware support for "
                f"{precision.value}; supported: "
                f"{sorted(p.value for p in platform.theoretical_tflops)}")
        self.precision = precision

    # ------------------------------------------------------------------
    def fuse(self, graph: ModelGraph) -> list[FusedLayer]:
        """Greedy forward fusion of pointwise ops into producers.

        A BatchNorm/Activation immediately following a Conv2d or Linear is
        folded into it (Conv+BN+ReLU becomes one engine layer).  Chains
        are followed transitively, mirroring TensorRT's CBR fusion.
        """
        fused: list[FusedLayer] = []
        layers = list(graph.layers)
        i = 0
        while i < len(layers):
            layer = layers[i]
            group = [layer]
            if isinstance(layer, (L.Conv2d, L.Linear, L.PatchEmbed)):
                j = i + 1
                while j < len(layers) and isinstance(
                        layers[j], self._FUSABLE_AFTER):
                    group.append(layers[j])
                    j += 1
                i = j
            else:
                i += 1
            # BN folding removes the normalization arithmetic entirely;
            # fused activations keep their flops but not their tensor.
            elementwise = sum(
                g.elementwise_flops() for g in group[1:]
                if not isinstance(g, L.BatchNorm2d))
            fused.append(FusedLayer(
                name=group[0].name if len(group) == 1 else
                "+".join(g.name.rsplit(".", 1)[-1] for g in group),
                source_layers=tuple(g.name for g in group),
                category=group[0].category,
                macs=group[0].macs(),
                elementwise_flops=group[0].elementwise_flops() + elementwise,
                activation_elements=group[-1].activation_elements(),
            ))
        return fused

    # ------------------------------------------------------------------
    def build(self, graph: ModelGraph, max_batch_size: int = 1024,
              available_memory_bytes: float | None = None) -> BuiltEngineSpec:
        """Build an engine plan.

        Raises :class:`~repro.hardware.memory.OutOfMemoryError`-compatible
        ``ValueError`` if even batch 1 cannot fit the optional memory cap
        (callers normally use :mod:`repro.engine.oom` for batch limits).
        """
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        fused = tuple(self.fuse(graph))
        weight_bytes = graph.weight_bytes(self.precision.bytes)
        peak_elems = max(f.activation_elements for f in fused)
        act_bytes = 2.0 * peak_elems * self.precision.bytes  # ping-pong
        if available_memory_bytes is not None:
            if weight_bytes + act_bytes > available_memory_bytes:
                raise ValueError(
                    f"engine for {graph.name} does not fit in "
                    f"{available_memory_bytes / 1e9:.2f} GB at batch 1")
        return BuiltEngineSpec(
            model_name=graph.name,
            platform_name=self.platform.name,
            precision=self.precision,
            max_batch_size=max_batch_size,
            fused_layers=fused,
            weight_bytes=weight_bytes,
            activation_bytes_per_image=act_bytes,
            flops_per_image=graph.flops_per_image(),
        )
