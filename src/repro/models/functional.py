"""Real NumPy forward passes for the evaluated models.

The analytic :class:`~repro.models.graph.ModelGraph` predicts cost; this
module is its executable twin — actual arithmetic for every op, vectorized
with NumPy per the HPC guides (im2col convolution so the inner loop is one
BLAS GEMM, batched attention via einsum-free matmuls, no Python-level
pixel loops).

Weights are procedurally initialized (seeded) since the paper's trained
checkpoints are farm-specific and private; the characterization never
depends on weight values, only on shapes and arithmetic.  An optional
:class:`MacTally` records the multiply-accumulates actually executed so
tests can cross-check the analytic accounting against the real compute.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.models.resnet import STAGES, BottleneckConfig
from repro.models.vit import ViTConfig, VIT_CONFIGS
from repro.models.workspace import WeightPack, WorkspaceArena


class MacTally:
    """Accumulates the MACs actually performed by the low-level ops."""

    def __init__(self) -> None:
        self.macs = 0.0

    def add(self, macs: float) -> None:
        """Accumulate multiply-accumulate operations."""
        self.macs += macs


class _NullKernelScope:
    """No-op context for forward passes run without a profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullKernelScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_KERNEL_SCOPE = _NullKernelScope()

#: Optional :class:`~repro.serving.profiler.SimProfiler` attributing
#: wall-clock cost to ``kernel;<op>`` phases of the forward passes.
#: Module-level (not a parameter) so the hot call signatures stay
#: untouched; ``None`` keeps the default path free of profiler work
#: beyond one global read per phase.
_KERNEL_PROFILER = None


def set_kernel_profiler(profiler) -> None:
    """Install (or clear, with ``None``) the kernel-phase profiler."""
    global _KERNEL_PROFILER
    _KERNEL_PROFILER = profiler


def _kernel_scope(op: str):
    prof = _KERNEL_PROFILER
    if prof is None:
        return _NULL_KERNEL_SCOPE
    return prof.scope("kernel", op)


# ----------------------------------------------------------------------
# Low-level ops (all batched: leading axis is the batch)
# ----------------------------------------------------------------------

def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           tally: MacTally | None = None,
           pack: WeightPack | None = None) -> np.ndarray:
    """``y = x @ W^T + b`` over the last axis.

    ``weight`` is ``(out, in)`` (PyTorch convention).  With a
    :class:`~repro.models.workspace.WeightPack` the GEMM consumes the
    pre-transposed contiguous operand instead of transposing per call;
    the values are identical either way.
    """
    if x.shape[-1] != weight.shape[1]:
        raise ValueError(
            f"linear: input features {x.shape[-1]} != weight in "
            f"{weight.shape[1]}")
    operand = (pack.linear_operand(weight) if pack is not None else None)
    y = x @ (operand if operand is not None else weight.T)
    if bias is not None:
        y = y + bias
    if tally is not None:
        tally.add(x.size / x.shape[-1] * weight.size)
    return y


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int,
           arena: WorkspaceArena | None = None,
           ) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into GEMM-ready patches.

    Returns ``(patches, out_h, out_w)`` where ``patches`` has shape
    ``(N, out_h * out_w, C * kernel²)``.  Uses a strided view (no copy)
    before the final reshape, per the guides' views-not-copies advice.
    With an :class:`~repro.models.workspace.WorkspaceArena` both the
    padded input and the patch matrix land in pooled buffers, so
    repeated same-shape calls (every serving replay) allocate nothing.
    The returned patches alias the arena buffer: consume them before
    the next same-shape call.
    """
    n, c, h, w = x.shape
    if padding:
        if arena is not None:
            padded = arena.take(
                (n, c, h + 2 * padding, w + 2 * padding), x.dtype)
            padded.fill(0)
            padded[:, :, padding:-padding, padding:-padding] = x
            x = padded
        else:
            x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                           (padding, padding)))
        h, w = h + 2 * padding, w + 2 * padding
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("im2col: output spatial size collapsed")
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    gathered = view.transpose(0, 2, 3, 1, 4, 5)
    if arena is None:
        patches = gathered.reshape(n, out_h * out_w, c * kernel * kernel)
    else:
        patches = arena.take(
            (n, out_h * out_w, c * kernel * kernel), x.dtype)
        np.copyto(
            patches.reshape(n, out_h, out_w, c, kernel, kernel),
            gathered)
    return patches, out_h, out_w


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None,
           stride: int = 1, padding: int = 0,
           tally: MacTally | None = None,
           pack: WeightPack | None = None) -> np.ndarray:
    """2D convolution; ``weight`` is ``(out_c, in_c, k, k)``.

    With a :class:`~repro.models.workspace.WeightPack` the im2col GEMM
    reads the pre-flattened contiguous operand and its patch matrix
    comes from the pack's arena; the arithmetic is unchanged.
    """
    out_c, in_c, k, _ = weight.shape
    if x.shape[1] != in_c:
        raise ValueError(
            f"conv2d: input channels {x.shape[1]} != weight in_c {in_c}")
    arena = pack.arena if pack is not None else None
    patches, out_h, out_w = im2col(x, k, stride, padding, arena=arena)
    operand = (pack.conv_operand(weight) if pack is not None else None)
    if operand is None:
        operand = weight.reshape(out_c, -1).T
    y = patches @ operand  # (N, OH*OW, out_c)
    if bias is not None:
        y = y + bias
    if tally is not None:
        tally.add(x.shape[0] * out_h * out_w * float(weight.size))
    return y.transpose(0, 2, 1).reshape(x.shape[0], out_c, out_h, out_w)


def batchnorm2d(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                mean: np.ndarray, var: np.ndarray,
                eps: float = 1e-5) -> np.ndarray:
    """Inference-mode batch norm with running statistics."""
    scale = gamma / np.sqrt(var + eps)
    shift = beta - mean * scale
    return x * scale[:, None, None] + shift[:, None, None]


def layernorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              eps: float = 1e-6) -> np.ndarray:
    """Layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * gamma + beta


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU (the ViT default).

    The cube is spelled ``x * x * x``: NumPy routes ``x ** 3`` through
    the generic scalar ``pow`` loop, which costs ~50x more than two
    multiplies and dominated the whole ViT forward.
    """
    c = math.sqrt(2.0 / math.pi)
    inner = x * x
    inner *= x
    inner *= 0.044715
    inner += x
    inner *= c
    np.tanh(inner, out=inner)
    inner += 1.0
    inner *= x
    inner *= 0.5
    return inner


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along an axis."""
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def maxpool2d(x: np.ndarray, kernel: int, stride: int,
              padding: int = 0,
              arena: WorkspaceArena | None = None) -> np.ndarray:
    """Max pooling over (N, C, H, W)."""
    n, c, _, _ = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)),
                   constant_values=-np.inf)
    merged = x.reshape(n * c, 1, *x.shape[2:])
    patches, out_h, out_w = im2col(merged, kernel, stride, 0, arena=arena)
    return patches.max(axis=-1).reshape(n, c, out_h, out_w)


def global_avgpool(x: np.ndarray) -> np.ndarray:
    """Global average pooling to (N, C)."""
    return x.mean(axis=(2, 3))


def attention(qkv: np.ndarray, heads: int,
              tally: MacTally | None = None,
              arena: WorkspaceArena | None = None) -> np.ndarray:
    """Multi-head scaled dot-product attention from packed QKV.

    ``qkv`` has shape ``(N, T, 3*D)``; returns ``(N, T, D)``.

    The slow path splits QKV and reshapes each third to heads (three
    gather copies); with an arena the qkv→heads rearrangement is fused
    into one ``copyto`` through a 5-axis view, the score matrix lands
    in a pooled buffer, and the softmax runs in place.  Same math, two
    fewer copies and zero steady-state allocations for the largest
    intermediate (the ``N·heads·T²`` scores).
    """
    n, t, three_d = qkv.shape
    if three_d % 3:
        raise ValueError("qkv last axis must be 3*D")
    d = three_d // 3
    if d % heads:
        raise ValueError(f"dim {d} not divisible by heads {heads}")
    head_dim = d // heads
    if tally is not None:
        tally.add(2.0 * n * t * t * d)  # QK^T and AV
    if arena is not None:
        split = arena.take((3, n, heads, t, head_dim), qkv.dtype)
        np.copyto(split, qkv.reshape(n, t, 3, heads, head_dim)
                  .transpose(2, 0, 3, 1, 4))
        q, k, v = split[0], split[1], split[2]
        scores = arena.take((n, heads, t, t), qkv.dtype)
        np.matmul(q, k.transpose(0, 1, 3, 2), out=scores)
        scores /= math.sqrt(head_dim)
        scores -= scores.max(axis=-1, keepdims=True)
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        ctx = scores @ v  # (N, heads, T, head_dim)
        return np.ascontiguousarray(
            ctx.transpose(0, 2, 1, 3)).reshape(n, t, d)
    q, k, v = np.split(qkv, 3, axis=-1)

    def to_heads(a: np.ndarray) -> np.ndarray:
        return a.reshape(n, t, heads, head_dim).transpose(0, 2, 1, 3)

    q, k, v = to_heads(q), to_heads(k), to_heads(v)
    scores = (q @ k.transpose(0, 1, 3, 2)) / math.sqrt(head_dim)
    weights = softmax(scores, axis=-1)
    ctx = weights @ v  # (N, heads, T, head_dim)
    return ctx.transpose(0, 2, 1, 3).reshape(n, t, d)


# ----------------------------------------------------------------------
# Weight initialization
# ----------------------------------------------------------------------

def _init(rng: np.random.Generator, *shape: int) -> np.ndarray:
    fan_in = math.prod(shape[1:]) if len(shape) > 1 else shape[0]
    std = 1.0 / math.sqrt(max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def init_vit_weights(cfg: ViTConfig, seed: int = 0) -> dict[str, np.ndarray]:
    """Procedural ViT weights keyed by parameter name."""
    rng = np.random.default_rng(seed)
    d, hidden = cfg.dim, cfg.mlp_hidden
    w: dict[str, np.ndarray] = {
        "patch_embed.weight": _init(rng, d, cfg.in_channels,
                                    cfg.patch_size, cfg.patch_size),
        "patch_embed.bias": np.zeros(d, np.float32),
        "cls_token": _init(rng, 1, d),
        "pos_embed": _init(rng, cfg.tokens, d),
        "norm.gamma": np.ones(d, np.float32),
        "norm.beta": np.zeros(d, np.float32),
        "head.weight": _init(rng, cfg.num_classes, d),
        "head.bias": np.zeros(cfg.num_classes, np.float32),
    }
    for i in range(cfg.depth):
        p = f"block{i}"
        w[f"{p}.norm1.gamma"] = np.ones(d, np.float32)
        w[f"{p}.norm1.beta"] = np.zeros(d, np.float32)
        w[f"{p}.qkv.weight"] = _init(rng, 3 * d, d)
        w[f"{p}.qkv.bias"] = np.zeros(3 * d, np.float32)
        w[f"{p}.proj.weight"] = _init(rng, d, d)
        w[f"{p}.proj.bias"] = np.zeros(d, np.float32)
        w[f"{p}.norm2.gamma"] = np.ones(d, np.float32)
        w[f"{p}.norm2.beta"] = np.zeros(d, np.float32)
        w[f"{p}.fc1.weight"] = _init(rng, hidden, d)
        w[f"{p}.fc1.bias"] = np.zeros(hidden, np.float32)
        w[f"{p}.fc2.weight"] = _init(rng, d, hidden)
        w[f"{p}.fc2.bias"] = np.zeros(d, np.float32)
    return w


def vit_forward(cfg: ViTConfig, weights: dict[str, np.ndarray],
                x: np.ndarray, tally: MacTally | None = None,
                return_features: bool = False,
                pack: WeightPack | None = None) -> np.ndarray:
    """ViT inference: ``(N, C, H, W) -> (N, num_classes)`` logits.

    ``return_features=True`` returns the penultimate class-token
    embedding ``(N, D)`` instead — the representation the fine-tuning
    substrate trains localized heads on.  ``pack=None`` runs the
    allocation-per-op reference path; a
    :class:`~repro.models.workspace.WeightPack` (what
    :func:`build_functional` attaches) runs the pre-packed/arena fast
    path with identical results and identical ``tally`` accounting.
    """
    n, c, h, wd = x.shape
    if (c, h, wd) != (cfg.in_channels, cfg.img_size, cfg.img_size):
        raise ValueError(
            f"expected input (N, {cfg.in_channels}, {cfg.img_size}, "
            f"{cfg.img_size}), got {x.shape}")
    # Patch embedding is a stride=kernel conv.
    arena = pack.arena if pack is not None else None
    with _kernel_scope("patch_embed"):
        tokens = conv2d(x, weights["patch_embed.weight"],
                        weights["patch_embed.bias"],
                        stride=cfg.patch_size, tally=tally, pack=pack)
        tokens = tokens.reshape(n, cfg.dim, -1).transpose(0, 2, 1)
        cls = np.broadcast_to(weights["cls_token"], (n, 1, cfg.dim))
        seq = np.concatenate([cls, tokens], axis=1) + weights["pos_embed"]

    for i in range(cfg.depth):
        p = f"block{i}"
        with _kernel_scope("attention"):
            y = layernorm(seq, weights[f"{p}.norm1.gamma"],
                          weights[f"{p}.norm1.beta"])
            qkv = linear(y, weights[f"{p}.qkv.weight"],
                         weights[f"{p}.qkv.bias"], tally=tally, pack=pack)
            ctx = attention(qkv, cfg.heads, tally=tally, arena=arena)
            seq = seq + linear(ctx, weights[f"{p}.proj.weight"],
                               weights[f"{p}.proj.bias"], tally=tally,
                               pack=pack)
        with _kernel_scope("mlp"):
            y = layernorm(seq, weights[f"{p}.norm2.gamma"],
                          weights[f"{p}.norm2.beta"])
            y = gelu(linear(y, weights[f"{p}.fc1.weight"],
                            weights[f"{p}.fc1.bias"], tally=tally,
                            pack=pack))
            seq = seq + linear(y, weights[f"{p}.fc2.weight"],
                               weights[f"{p}.fc2.bias"], tally=tally,
                               pack=pack)

    with _kernel_scope("head"):
        seq = layernorm(seq, weights["norm.gamma"], weights["norm.beta"])
        if return_features:
            return seq[:, 0]
        return linear(seq[:, 0], weights["head.weight"],
                      weights["head.bias"], tally=tally, pack=pack)


# ----------------------------------------------------------------------
# ResNet50
# ----------------------------------------------------------------------

def _resnet_block_configs(img_size: int) -> list[tuple[str, BottleneckConfig]]:
    configs = []
    hw = (img_size // 4, img_size // 4)  # after stem conv + maxpool
    in_ch = 64
    for stage_idx, (blocks, width) in enumerate(STAGES, start=1):
        for block_idx in range(blocks):
            stride = 2 if (block_idx == 0 and stage_idx > 1) else 1
            cfg = BottleneckConfig(in_channels=in_ch, width=width,
                                   stride=stride, in_hw=hw)
            configs.append((f"layer{stage_idx}.{block_idx}", cfg))
            in_ch = cfg.out_channels
            hw = cfg.out_hw
    return configs


def init_resnet50_weights(img_size: int = 224, num_classes: int = 1000,
                          seed: int = 0) -> dict[str, np.ndarray]:
    """Procedural ResNet50 weights keyed by parameter name."""
    rng = np.random.default_rng(seed)

    def bn(prefix: str, ch: int) -> dict[str, np.ndarray]:
        return {
            f"{prefix}.gamma": np.ones(ch, np.float32),
            f"{prefix}.beta": np.zeros(ch, np.float32),
            f"{prefix}.mean": np.zeros(ch, np.float32),
            f"{prefix}.var": np.ones(ch, np.float32),
        }

    w: dict[str, np.ndarray] = {"stem.conv": _init(rng, 64, 3, 7, 7)}
    w.update(bn("stem.bn", 64))
    for name, cfg in _resnet_block_configs(img_size):
        w[f"{name}.1.conv"] = _init(rng, cfg.width, cfg.in_channels, 1, 1)
        w.update(bn(f"{name}.1.bn", cfg.width))
        w[f"{name}.2.conv"] = _init(rng, cfg.width, cfg.width, 3, 3)
        w.update(bn(f"{name}.2.bn", cfg.width))
        w[f"{name}.3.conv"] = _init(rng, cfg.out_channels, cfg.width, 1, 1)
        w.update(bn(f"{name}.3.bn", cfg.out_channels))
        if cfg.has_downsample:
            w[f"{name}.downsample.conv"] = _init(
                rng, cfg.out_channels, cfg.in_channels, 1, 1)
            w.update(bn(f"{name}.downsample.bn", cfg.out_channels))
    w["fc.weight"] = _init(rng, num_classes, 2048)
    w["fc.bias"] = np.zeros(num_classes, np.float32)
    return w


def resnet50_forward(weights: dict[str, np.ndarray], x: np.ndarray,
                     img_size: int = 224,
                     tally: MacTally | None = None,
                     return_features: bool = False,
                     pack: WeightPack | None = None) -> np.ndarray:
    """ResNet50 inference: ``(N, 3, H, W) -> (N, num_classes)`` logits.

    ``return_features=True`` returns the pooled 2048-d embedding.
    ``pack`` as in :func:`vit_forward`: pre-packed conv operands and
    pooled im2col buffers, same results.
    """
    if x.shape[1:] != (3, img_size, img_size):
        raise ValueError(
            f"expected input (N, 3, {img_size}, {img_size}), got {x.shape}")

    def apply_bn(prefix: str, t: np.ndarray) -> np.ndarray:
        return batchnorm2d(t, weights[f"{prefix}.gamma"],
                           weights[f"{prefix}.beta"],
                           weights[f"{prefix}.mean"],
                           weights[f"{prefix}.var"])

    arena = pack.arena if pack is not None else None
    y = conv2d(x, weights["stem.conv"], stride=2, padding=3, tally=tally,
               pack=pack)
    y = relu(apply_bn("stem.bn", y))
    y = maxpool2d(y, kernel=3, stride=2, padding=1, arena=arena)

    for name, cfg in _resnet_block_configs(img_size):
        identity = y
        y = relu(apply_bn(f"{name}.1.bn",
                          conv2d(y, weights[f"{name}.1.conv"], tally=tally,
                                 pack=pack)))
        y = relu(apply_bn(f"{name}.2.bn",
                          conv2d(y, weights[f"{name}.2.conv"],
                                 stride=cfg.stride, padding=1, tally=tally,
                                 pack=pack)))
        y = apply_bn(f"{name}.3.bn",
                     conv2d(y, weights[f"{name}.3.conv"], tally=tally,
                            pack=pack))
        if cfg.has_downsample:
            identity = apply_bn(
                f"{name}.downsample.bn",
                conv2d(identity, weights[f"{name}.downsample.conv"],
                       stride=cfg.stride, tally=tally, pack=pack))
        y = relu(y + identity)

    pooled = global_avgpool(y)
    if return_features:
        return pooled
    return linear(pooled, weights["fc.weight"], weights["fc.bias"],
                  tally=tally, pack=pack)


# ----------------------------------------------------------------------
# Facade
# ----------------------------------------------------------------------

@dataclasses.dataclass
class FunctionalModel:
    """A runnable model: config-resolved forward plus its weights.

    ``pack`` (attached by :func:`build_functional`) routes calls down
    the pre-packed/arena fast path; a directly-constructed model
    without one runs the reference path unchanged.
    """

    name: str
    weights: dict[str, np.ndarray]
    _forward: object
    input_shape: tuple[int, int, int]
    num_classes: int
    pack: WeightPack | None = None

    def __call__(self, x: np.ndarray,
                 tally: MacTally | None = None) -> np.ndarray:
        if self.pack is None:
            return self._forward(self.weights, x, tally)
        return self._forward(self.weights, x, tally, False, self.pack)

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate embeddings ``(N, D)`` for fine-tuning."""
        if self.pack is None:
            return self._forward(self.weights, x, None, True)
        return self._forward(self.weights, x, None, True, self.pack)

    def weight_elements(self) -> int:
        """Total stored weight elements (BN running stats excluded)."""
        return sum(
            a.size for k, a in self.weights.items()
            if not (k.endswith(".mean") or k.endswith(".var")))


def build_functional(name: str, seed: int = 0,
                     num_classes: int | None = None,
                     packed: bool = True) -> FunctionalModel:
    """Instantiate a runnable model by zoo name.

    ``packed=True`` (the default) builds the model's
    :class:`~repro.models.workspace.WeightPack` once up front so every
    forward runs the pre-packed fast path; ``packed=False`` keeps the
    reference allocation-per-op behaviour (the benchmark baseline).

    >>> m = build_functional("vit_tiny")
    >>> m(np.zeros((1, 3, 32, 32), np.float32)).shape
    (1, 39)
    """
    if name in VIT_CONFIGS:
        cfg = VIT_CONFIGS[name]
        if num_classes is not None:
            cfg = dataclasses.replace(cfg, num_classes=num_classes)
        weights = init_vit_weights(cfg, seed)

        def fwd(w, x, tally=None, return_features=False, pack=None,
                _cfg=cfg):
            return vit_forward(_cfg, w, x, tally, return_features, pack)

        return FunctionalModel(name, weights, fwd,
                               (cfg.in_channels, cfg.img_size, cfg.img_size),
                               cfg.num_classes,
                               pack=WeightPack(weights) if packed else None)
    if name == "resnet50":
        classes = 1000 if num_classes is None else num_classes
        weights = init_resnet50_weights(num_classes=classes, seed=seed)

        def fwd(w, x, tally=None, return_features=False, pack=None):
            return resnet50_forward(w, x, tally=tally,
                                    return_features=return_features,
                                    pack=pack)

        return FunctionalModel(name, weights, fwd, (3, 224, 224), classes,
                               pack=WeightPack(weights) if packed else None)
    raise KeyError(f"unknown model {name!r}")
