"""Model graphs: ordered layer lists with whole-model cost accounting.

A :class:`ModelGraph` is the analytic twin of a deployed network: it
aggregates the per-layer accounting of :mod:`repro.models.layers` into the
quantities the characterization needs — total parameters (Table 3 row 1),
reported GFLOPs/image (row 3), FLOP breakdown by layer category
(Section 4.0.2), and activation footprints (the OOM model).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from repro.models.layers import LayerCategory, LayerSpec


@dataclasses.dataclass(frozen=True)
class GraphSummary:
    """Headline numbers of a model (one Table 3 column)."""

    name: str
    architecture: str
    params: int
    reported_gflops: float
    total_gmacs: float
    input_shape: tuple[int, ...]

    @property
    def params_millions(self) -> float:
        """Parameter count in millions."""
        return self.params / 1e6


class ModelGraph:
    """An ordered sequence of layers forming one inference network.

    Parameters
    ----------
    name:
        Zoo name, e.g. ``"vit_tiny"``.
    architecture:
        ``"transformer"`` or ``"cnn"`` (Table 3 "Architecture" row).
    input_shape:
        Per-image input, channel-first ``(C, H, W)``.
    layers:
        Layers in execution order.
    """

    def __init__(self, name: str, architecture: str,
                 input_shape: tuple[int, int, int],
                 layers: Iterable[LayerSpec]):
        if architecture not in ("transformer", "cnn"):
            raise ValueError(f"unknown architecture {architecture!r}")
        self.name = name
        self.architecture = architecture
        self.input_shape = tuple(input_shape)
        self.layers: tuple[LayerSpec, ...] = tuple(layers)
        if not self.layers:
            raise ValueError("a model graph needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate layer names: {dupes}")

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    # ------------------------------------------------------------------
    # Parameter / FLOP accounting
    # ------------------------------------------------------------------
    def total_params(self) -> int:
        """Trainable parameters (Table 3 "Parameter")."""
        return sum(layer.params() for layer in self.layers)

    def total_macs(self) -> float:
        """All multiply-accumulates per image, attention matmuls included."""
        return sum(layer.macs() for layer in self.layers)

    def reported_gflops(self) -> float:
        """GFLOPs/image in the Table 3 convention.

        One MAC counted as one FLOP; attention score/context matmuls
        excluded (the fvcore/ptflops profiler behaviour the paper's
        numbers follow — see DESIGN.md).
        """
        macs = sum(layer.macs() for layer in self.layers
                   if layer.category is not LayerCategory.ATTENTION)
        return macs / 1e9

    def flops_per_image(self) -> float:
        """FLOPs/image used by the *performance* model.

        The engine's throughput law divides platform FLOPS by this number,
        so it uses the same convention as the paper's upper-bound math
        (Table 3), i.e. :meth:`reported_gflops` in absolute FLOPs.
        """
        return self.reported_gflops() * 1e9

    def compute_breakdown(self) -> dict[LayerCategory, float]:
        """Fraction of total compute per layer category.

        Compute = MACs plus elementwise FLOPs, which is the denominator
        under which the paper's splits hold: ViT-Tiny ≈ 81.73% MLP /
        18.23% attention; ResNet50 ≈ 99.5% convolution.
        """
        totals: dict[LayerCategory, float] = {}
        for layer in self.layers:
            work = layer.macs() + layer.elementwise_flops()
            if work:
                totals[layer.category] = totals.get(layer.category, 0.0) + work
        grand = sum(totals.values())
        return {cat: v / grand for cat, v in totals.items()}

    def mlp_attention_split(self) -> tuple[float, float]:
        """(MLP fraction, attention fraction) over matmul compute only.

        The paper's Section 4.0.2 split for transformer models: "the
        majority of computation is consumed by MLP layers, accounting for
        81.73% in ViT Tiny, while attention layers account for 18.23%".
        MLP = every dense matmul (QKV, projections, FFN, head); attention
        = the score/context matmuls.
        """
        mlp = sum(layer.macs() for layer in self.layers
                  if layer.category is LayerCategory.LINEAR)
        attn = sum(layer.macs() for layer in self.layers
                   if layer.category is LayerCategory.ATTENTION)
        total = mlp + attn
        if total == 0:
            raise ValueError(f"{self.name} has no matmul layers")
        return mlp / total, attn / total

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def weight_bytes(self, bytes_per_param: int) -> float:
        """Total weight storage at the given element width."""
        return float(self.total_params()) * bytes_per_param

    def peak_activation_elements(self) -> int:
        """Largest single intermediate tensor (elements, per image).

        With ping-pong buffer reuse (the TensorRT execution model) live
        activation memory is bounded by the two largest adjacent tensors;
        the engine memory model uses this as its base unit.
        """
        return max(layer.activation_elements() for layer in self.layers)

    def sum_activation_elements(self) -> int:
        """Total elements across all layer outputs (no-reuse upper bound)."""
        return sum(layer.activation_elements() for layer in self.layers)

    def activation_bytes_per_image(self, bytes_per_elem: int,
                                   reuse: bool = True) -> float:
        """Per-image activation footprint.

        ``reuse=True`` models ping-pong buffers (2× the peak tensor,
        appropriate for discrete-GPU TensorRT engines); ``reuse=False``
        is the keep-everything upper bound.
        """
        if reuse:
            elems = 2 * self.peak_activation_elements()
        else:
            elems = self.sum_activation_elements()
        return float(elems) * bytes_per_elem

    # ------------------------------------------------------------------
    def summary(self) -> GraphSummary:
        """Headline numbers (one Table 3 column)."""
        return GraphSummary(
            name=self.name,
            architecture=self.architecture,
            params=self.total_params(),
            reported_gflops=self.reported_gflops(),
            total_gmacs=self.total_macs() / 1e9,
            input_shape=self.input_shape,
        )

    def layer_table(self) -> list[dict]:
        """Per-layer accounting rows (for reports and debugging)."""
        return [
            {
                "name": layer.name,
                "category": layer.category.value,
                "params": layer.params(),
                "macs": layer.macs(),
                "elementwise_flops": layer.elementwise_flops(),
                "output_shape": layer.output_shape,
            }
            for layer in self.layers
        ]

    def __repr__(self) -> str:
        s = self.summary()
        return (f"ModelGraph({self.name!r}, {self.architecture}, "
                f"{s.params_millions:.2f}M params, "
                f"{s.reported_gflops:.2f} GFLOPs/img)")
