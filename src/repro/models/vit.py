"""Vision Transformer builders (ViT Tiny / Small / Base).

Architecture follows Dosovitskiy et al. [11]: patch embedding, class token,
learnable position embedding, ``depth`` pre-norm transformer blocks
(LayerNorm → multi-head self-attention → residual → LayerNorm → MLP →
residual), final LayerNorm, and a linear classification head on the class
token.

Configurations reproduce Table 3: ViT Tiny and Small take 32×32 inputs
(the paper trains them on the small-image agricultural datasets) with a
patch size of 2, giving 257 tokens; ViT Base is the standard 224×224 /
patch-16 variant with 197 tokens.  With those token counts the analytic
parameter and GFLOP totals land on the paper's numbers (5.39M/1.37,
21.40M/5.47, 85.80M/16.86).

The classification head defaults to 39 classes (Plant Village, the largest
evaluated dataset) — the paper's ViT parameter counts are consistent with a
~39-class head rather than an ImageNet-1k head.
"""

from __future__ import annotations

import dataclasses

from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Add,
    AttentionMatmul,
    LayerNorm,
    LayerSpec,
    Linear,
    PatchEmbed,
    PositionEmbedding,
    Softmax,
    TokenConcat,
)


@dataclasses.dataclass(frozen=True)
class ViTConfig:
    """Hyperparameters of one ViT variant."""

    name: str
    img_size: int
    patch_size: int
    dim: int
    depth: int
    heads: int
    mlp_ratio: float = 4.0
    in_channels: int = 3
    num_classes: int = 39

    def __post_init__(self) -> None:
        if self.img_size % self.patch_size:
            raise ValueError(
                f"{self.name}: img_size {self.img_size} not divisible by "
                f"patch_size {self.patch_size}")
        if self.dim % self.heads:
            raise ValueError(
                f"{self.name}: dim {self.dim} not divisible by heads "
                f"{self.heads}")

    @property
    def tokens(self) -> int:
        """Sequence length including the class token."""
        return (self.img_size // self.patch_size) ** 2 + 1

    @property
    def mlp_hidden(self) -> int:
        """Feed-forward hidden width (mlp_ratio x dim)."""
        return int(self.dim * self.mlp_ratio)


VIT_CONFIGS: dict[str, ViTConfig] = {
    "vit_tiny": ViTConfig("vit_tiny", img_size=32, patch_size=2,
                          dim=192, depth=12, heads=3),
    "vit_small": ViTConfig("vit_small", img_size=32, patch_size=2,
                           dim=384, depth=12, heads=6),
    "vit_base": ViTConfig("vit_base", img_size=224, patch_size=16,
                          dim=768, depth=12, heads=12),
}


def _block_layers(cfg: ViTConfig, idx: int) -> list[LayerSpec]:
    """One pre-norm transformer encoder block."""
    t, d = cfg.tokens, cfg.dim
    p = f"block{idx}"
    return [
        LayerNorm(f"{p}.norm1", tokens=t, dim=d),
        Linear(f"{p}.attn.qkv", in_features=d, out_features=3 * d, tokens=t),
        AttentionMatmul(f"{p}.attn.matmul", tokens=t, dim=d, heads=cfg.heads),
        Softmax(f"{p}.attn.softmax", tokens=t, heads=cfg.heads),
        Linear(f"{p}.attn.proj", in_features=d, out_features=d, tokens=t),
        Add(f"{p}.residual1", shape=(t, d)),
        LayerNorm(f"{p}.norm2", tokens=t, dim=d),
        Linear(f"{p}.mlp.fc1", in_features=d, out_features=cfg.mlp_hidden,
               tokens=t),
        Activation(f"{p}.mlp.gelu", kind="gelu", shape=(t, cfg.mlp_hidden)),
        Linear(f"{p}.mlp.fc2", in_features=cfg.mlp_hidden, out_features=d,
               tokens=t),
        Add(f"{p}.residual2", shape=(t, d)),
    ]


def build_vit(variant: str | ViTConfig, num_classes: int | None = None) -> ModelGraph:
    """Build the layer graph for a ViT variant.

    Parameters
    ----------
    variant:
        One of ``"vit_tiny"``, ``"vit_small"``, ``"vit_base"``, or a custom
        :class:`ViTConfig`.
    num_classes:
        Override the head width (e.g. 2 for the Sugar Cane-Spittle Bug
        dataset).  The default keeps the config's value.
    """
    if isinstance(variant, str):
        try:
            cfg = VIT_CONFIGS[variant]
        except KeyError:
            raise KeyError(
                f"unknown ViT variant {variant!r}; available: "
                f"{sorted(VIT_CONFIGS)}") from None
    else:
        cfg = variant
    if num_classes is not None:
        cfg = dataclasses.replace(cfg, num_classes=num_classes)

    layers: list[LayerSpec] = [
        PatchEmbed("patch_embed", in_channels=cfg.in_channels, dim=cfg.dim,
                   img_hw=(cfg.img_size, cfg.img_size),
                   patch_size=cfg.patch_size),
        TokenConcat("cls_token", tokens=cfg.tokens - 1, dim=cfg.dim),
        PositionEmbedding("pos_embed", tokens=cfg.tokens, dim=cfg.dim),
    ]
    for i in range(cfg.depth):
        layers.extend(_block_layers(cfg, i))
    layers.extend([
        LayerNorm("norm", tokens=cfg.tokens, dim=cfg.dim),
        Linear("head", in_features=cfg.dim, out_features=cfg.num_classes,
               tokens=1),
    ])
    return ModelGraph(cfg.name, "transformer",
                      (cfg.in_channels, cfg.img_size, cfg.img_size), layers)
