"""ONNX-like intermediate representation for model graphs.

The paper's models "are provided in the platform-neutral ONNX format and
internally converted to the inference-oriented TensorRT format".  This
module is the platform-neutral half: a JSON-serializable IR round-tripping
:class:`~repro.models.graph.ModelGraph` losslessly, so the serving layer
can load model definitions from a model repository on disk exactly the way
Triton loads ONNX files.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.models import layers as L
from repro.models.graph import ModelGraph

IR_VERSION = 1

#: Layer registry: IR "op_type" -> spec class.  Field names in the IR match
#: the dataclass fields, so (de)serialization is generic.
_OP_TYPES: dict[str, type[L.LayerSpec]] = {
    "Conv2d": L.Conv2d,
    "BatchNorm2d": L.BatchNorm2d,
    "Linear": L.Linear,
    "AttentionMatmul": L.AttentionMatmul,
    "Softmax": L.Softmax,
    "LayerNorm": L.LayerNorm,
    "Activation": L.Activation,
    "Pool2d": L.Pool2d,
    "GlobalAvgPool": L.GlobalAvgPool,
    "Add": L.Add,
    "PatchEmbed": L.PatchEmbed,
    "TokenConcat": L.TokenConcat,
    "PositionEmbedding": L.PositionEmbedding,
}


def _register_extension_ops() -> None:
    """Extension layer types (imported lazily to avoid a cycle)."""
    from repro.models.linear_attention import LinearAttentionMatmul

    _OP_TYPES.setdefault("LinearAttentionMatmul", LinearAttentionMatmul)
    _CLASS_TO_OP.setdefault(LinearAttentionMatmul, "LinearAttentionMatmul")
_CLASS_TO_OP = {cls: op for op, cls in _OP_TYPES.items()}


class IRError(ValueError):
    """Raised when an IR document is malformed or version-incompatible."""


@dataclasses.dataclass(frozen=True)
class ModelIR:
    """A validated, JSON-ready model document."""

    version: int
    name: str
    architecture: str
    input_shape: tuple[int, int, int]
    nodes: tuple[dict[str, Any], ...]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form of the document."""
        return {
            "ir_version": self.version,
            "name": self.name,
            "architecture": self.architecture,
            "input_shape": list(self.input_shape),
            "nodes": [dict(node) for node in self.nodes],
        }


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return list(value)
    return value


def to_ir(graph: ModelGraph) -> ModelIR:
    """Lower a :class:`ModelGraph` to the IR."""
    _register_extension_ops()
    nodes = []
    for layer in graph.layers:
        cls = type(layer)
        if cls not in _CLASS_TO_OP:
            raise IRError(f"layer type {cls.__name__} has no IR op_type")
        attrs = {
            field.name: _encode_value(getattr(layer, field.name))
            for field in dataclasses.fields(layer)
        }
        nodes.append({"op_type": _CLASS_TO_OP[cls], **attrs})
    return ModelIR(IR_VERSION, graph.name, graph.architecture,
                   graph.input_shape, tuple(nodes))


def _decode_node(node: dict[str, Any]) -> L.LayerSpec:
    _register_extension_ops()
    node = dict(node)
    op_type = node.pop("op_type", None)
    if op_type not in _OP_TYPES:
        raise IRError(f"unknown op_type {op_type!r}")
    cls = _OP_TYPES[op_type]
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = set(node) - fields
    if unknown:
        raise IRError(f"{op_type}: unexpected fields {sorted(unknown)}")
    missing = fields - set(node)
    # Fields with defaults may be omitted.
    required = {
        f.name for f in dataclasses.fields(cls)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING
    }
    if missing & required:
        raise IRError(f"{op_type}: missing fields {sorted(missing & required)}")
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in node.items()
    }
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise IRError(f"{op_type}: {exc}") from exc


def from_ir(ir: ModelIR | dict[str, Any]) -> ModelGraph:
    """Reconstruct a :class:`ModelGraph` from the IR (dict or ModelIR)."""
    doc = ir.to_dict() if isinstance(ir, ModelIR) else ir
    version = doc.get("ir_version")
    if version != IR_VERSION:
        raise IRError(f"unsupported ir_version {version!r} "
                      f"(this build reads {IR_VERSION})")
    for key in ("name", "architecture", "input_shape", "nodes"):
        if key not in doc:
            raise IRError(f"missing top-level field {key!r}")
    layers = [_decode_node(node) for node in doc["nodes"]]
    return ModelGraph(doc["name"], doc["architecture"],
                      tuple(doc["input_shape"]), layers)


def dumps(graph: ModelGraph, indent: int | None = None) -> str:
    """Serialize a graph to a JSON string."""
    return json.dumps(to_ir(graph).to_dict(), indent=indent)


def loads(payload: str) -> ModelGraph:
    """Deserialize a graph from a JSON string."""
    try:
        doc = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise IRError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise IRError("IR document must be a JSON object")
    return from_ir(doc)
