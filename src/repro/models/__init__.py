"""Model substrate: layer graphs, analytic cost accounting, real forward.

The paper evaluates four vision models (Table 3): ViT Tiny, ViT Small,
ViT Base, and ResNet50.  This package builds each model **from scratch** as
an explicit layer graph (:mod:`repro.models.graph`) whose per-layer
parameter counts, multiply-accumulate counts, and activation footprints are
computed analytically (:mod:`repro.models.layers`) — these reproduce the
Table 3 columns and the Section 4 FLOP-breakdown claims.

A real NumPy forward pass for every layer lives in
:mod:`repro.models.functional`, an ONNX-like intermediate representation
with (de)serialization in :mod:`repro.models.ir`, and a TensorRT-like
engine *builder* (precision conversion + operator fusion) in
:mod:`repro.models.trt`.

FLOP conventions
----------------
The paper's "GFLOPs/Image" column follows the common profiler convention
(one MAC counted as one FLOP, attention score/context matmuls excluded —
the fvcore/ptflops behaviour).  :meth:`ModelGraph.reported_gflops` uses
that convention so the Table 3 numbers match; :meth:`ModelGraph.total_macs`
counts everything.
"""

from repro.models.layers import (
    LayerCategory,
    LayerSpec,
    Conv2d,
    Linear,
    AttentionMatmul,
    BatchNorm2d,
    LayerNorm,
    Activation,
    Pool2d,
    GlobalAvgPool,
    Add,
    PatchEmbed,
    TokenConcat,
    PositionEmbedding,
    Softmax,
)
from repro.models.graph import ModelGraph, GraphSummary
from repro.models.vit import build_vit, ViTConfig, VIT_CONFIGS
from repro.models.resnet import build_resnet50, BottleneckConfig
from repro.models.zoo import (
    ModelEntry,
    MODEL_ZOO,
    get_model,
    list_models,
    table3_rows,
)
from repro.models.ir import ModelIR, to_ir, from_ir, dumps, loads
from repro.models.trt import TRTEngineBuilder, BuiltEngineSpec
from repro.models.functional import (
    FunctionalModel,
    MacTally,
    build_functional,
)

__all__ = [
    "LayerCategory",
    "LayerSpec",
    "Conv2d",
    "Linear",
    "AttentionMatmul",
    "BatchNorm2d",
    "LayerNorm",
    "Activation",
    "Pool2d",
    "GlobalAvgPool",
    "Add",
    "PatchEmbed",
    "TokenConcat",
    "PositionEmbedding",
    "Softmax",
    "ModelGraph",
    "GraphSummary",
    "build_vit",
    "ViTConfig",
    "VIT_CONFIGS",
    "build_resnet50",
    "BottleneckConfig",
    "ModelEntry",
    "MODEL_ZOO",
    "get_model",
    "list_models",
    "table3_rows",
    "ModelIR",
    "to_ir",
    "from_ir",
    "dumps",
    "loads",
    "TRTEngineBuilder",
    "BuiltEngineSpec",
    "FunctionalModel",
    "MacTally",
    "build_functional",
]
