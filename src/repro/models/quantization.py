"""Post-training quantization for the functional execution path.

Section 3.1: "Lower-precision formats like INT8 or FP16 offer faster
inference but may reduce accuracy."  The performance side of that
trade-off lives in the engine/roofline models; this module supplies the
*accuracy* side: symmetric per-tensor fake quantization of weights (and
optionally activations), so the INT8 ablation can measure how far the
quantized logits drift from FP32 on real forward passes.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.functional import FunctionalModel, build_functional


@dataclasses.dataclass(frozen=True)
class QuantizationReport:
    """Agreement between a quantized model and its FP32 reference."""

    model: str
    bits: int
    top1_agreement: float       # fraction of images with the same argmax
    mean_abs_logit_error: float
    weight_sqnr_db: float       # signal-to-quantization-noise, weights


def quantize_tensor(x: np.ndarray, bits: int = 8,
                    ) -> tuple[np.ndarray, float]:
    """Symmetric per-tensor quantization: returns (int values, scale).

    ``x ≈ q * scale`` with ``q`` in ``[-(2^(b-1)-1), 2^(b-1)-1]``.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must be in [2, 16]")
    qmax = 2 ** (bits - 1) - 1
    peak = float(np.max(np.abs(x)))
    if peak == 0.0:
        return np.zeros_like(x, dtype=np.int32), 1.0
    scale = peak / qmax
    q = np.clip(np.rint(x / scale), -qmax, qmax).astype(np.int32)
    return q, scale


def fake_quantize(x: np.ndarray, bits: int = 8) -> np.ndarray:
    """Quantize-dequantize round trip (float output, quantized grid)."""
    q, scale = quantize_tensor(x, bits)
    return (q * scale).astype(np.float32)


def quantize_weights(weights: dict[str, np.ndarray],
                     bits: int = 8) -> dict[str, np.ndarray]:
    """Fake-quantize every weight tensor; BN statistics and biases stay
    in float (the TensorRT INT8 convention)."""
    out = {}
    for name, tensor in weights.items():
        keep_float = (name.endswith(".bias") or name.endswith(".mean")
                      or name.endswith(".var") or name.endswith(".beta")
                      or name.endswith(".gamma"))
        out[name] = tensor if keep_float else fake_quantize(tensor, bits)
    return out


def sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB."""
    noise = float(np.mean((reference - quantized) ** 2))
    signal = float(np.mean(reference ** 2))
    if noise == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal / noise)


def quantized_model(name: str, bits: int = 8,
                    seed: int = 0) -> FunctionalModel:
    """A functional model whose weights sit on the INT-``bits`` grid."""
    model = build_functional(name, seed=seed)
    model.weights.update(quantize_weights(model.weights, bits))
    return model


def evaluate_quantization(name: str, bits: int = 8, batch: int = 8,
                          seed: int = 0) -> QuantizationReport:
    """Compare quantized vs FP32 logits on a synthetic batch.

    Synthetic inputs are drawn from the normalized-image distribution
    (zero-mean, unit-ish variance) so activation magnitudes are realistic.
    """
    reference = build_functional(name, seed=seed)
    quantized = quantized_model(name, bits=bits, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((batch, *reference.input_shape)
                            ).astype(np.float32)
    ref_logits = reference(x)
    q_logits = quantized(x)
    agreement = float(np.mean(
        ref_logits.argmax(axis=1) == q_logits.argmax(axis=1)))
    error = float(np.mean(np.abs(ref_logits - q_logits)))

    # Weight SQNR aggregated over the quantized tensors.
    sqnrs = []
    for key, tensor in reference.weights.items():
        q_tensor = quantized.weights[key]
        if q_tensor is not tensor and tensor.size > 1:
            value = sqnr_db(tensor, q_tensor)
            if np.isfinite(value):
                sqnrs.append(value)
    return QuantizationReport(
        model=name,
        bits=bits,
        top1_agreement=agreement,
        mean_abs_logit_error=error,
        weight_sqnr_db=float(np.mean(sqnrs)) if sqnrs else float("inf"),
    )
