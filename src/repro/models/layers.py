"""Layer specifications with analytic parameter/MAC/activation accounting.

Every layer type the four evaluated models need is described by a
:class:`LayerSpec` subclass that knows, per single image:

* ``params()`` — trainable parameter count,
* ``macs()`` — multiply-accumulate operations (the unit behind the paper's
  "GFLOPs/Image" column),
* ``elementwise_flops()`` — non-MAC arithmetic (normalization, activation
  functions, pooling, residual adds); needed for the ResNet "convolution
  operations account for 99.5% of computational intensity" claim, which
  only holds when elementwise work is in the denominator,
* ``output_shape`` / ``activation_elements()`` — for the memory model.

Shapes are per-image, channel-first: ``(C, H, W)`` for spatial tensors and
``(T, D)`` for token tensors.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import math


class LayerCategory(str, enum.Enum):
    """Buckets used for the paper's FLOP-breakdown claims (Section 4.0.2).

    The paper attributes QKV/output projections and the feed-forward
    network to "MLP layers" (all dense matmuls) and only the attention
    score/context matmuls to "attention layers" — that taxonomy is the one
    under which ViT-Tiny is 81.73% MLP / 18.23% attention.
    """

    CONV = "conv"
    LINEAR = "linear"          # dense matmuls: QKV, projections, MLP, head
    ATTENTION = "attention"    # QK^T and AV matmuls only
    NORM = "norm"
    ACTIVATION = "activation"
    POOL = "pool"
    EMBED = "embed"
    ELEMENTWISE = "elementwise"


Shape = tuple[int, ...]


def _elements(shape: Shape) -> int:
    return math.prod(shape)


@dataclasses.dataclass(frozen=True)
class LayerSpec(abc.ABC):
    """Base class for all layer specifications."""

    name: str

    @property
    @abc.abstractmethod
    def category(self) -> LayerCategory:
        """Breakdown bucket this layer's work is attributed to."""

    @property
    @abc.abstractmethod
    def input_shape(self) -> Shape:
        """Per-image input tensor shape."""

    @property
    @abc.abstractmethod
    def output_shape(self) -> Shape:
        """Per-image output tensor shape."""

    @abc.abstractmethod
    def params(self) -> int:
        """Trainable parameters."""

    @abc.abstractmethod
    def macs(self) -> float:
        """Multiply-accumulate ops per image."""

    def elementwise_flops(self) -> float:
        """Non-MAC arithmetic ops per image (default: none)."""
        return 0.0

    def activation_elements(self) -> int:
        """Output tensor elements per image."""
        return _elements(self.output_shape)

    def weight_bytes(self, bytes_per_param: int) -> float:
        """Weight storage at the given element width."""
        return self.params() * bytes_per_param


# ----------------------------------------------------------------------
# Convolutional layers
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Conv2d(LayerSpec):
    """2D convolution over a ``(C, H, W)`` input."""

    in_channels: int
    out_channels: int
    in_hw: tuple[int, int]
    kernel_size: int
    stride: int = 1
    padding: int = 0
    bias: bool = False

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel_size,
               self.stride) < 1:
            raise ValueError(f"{self.name}: conv dimensions must be >= 1")
        if self.out_hw[0] < 1 or self.out_hw[1] < 1:
            raise ValueError(f"{self.name}: output spatial size collapsed")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.CONV

    @property
    def out_hw(self) -> tuple[int, int]:
        """Output (height, width) after stride/padding."""
        h, w = self.in_hw
        k, s, p = self.kernel_size, self.stride, self.padding
        return ((h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1)

    @property
    def input_shape(self) -> Shape:
        return (self.in_channels, *self.in_hw)

    @property
    def output_shape(self) -> Shape:
        return (self.out_channels, *self.out_hw)

    def params(self) -> int:
        weights = self.out_channels * self.in_channels * self.kernel_size ** 2
        return weights + (self.out_channels if self.bias else 0)

    def macs(self) -> float:
        oh, ow = self.out_hw
        return (self.out_channels * oh * ow
                * self.in_channels * self.kernel_size ** 2)


@dataclasses.dataclass(frozen=True)
class BatchNorm2d(LayerSpec):
    """Batch normalization (inference mode: scale + shift per channel)."""

    channels: int
    in_hw: tuple[int, int]

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.NORM

    @property
    def input_shape(self) -> Shape:
        return (self.channels, *self.in_hw)

    output_shape = input_shape

    def params(self) -> int:
        return 2 * self.channels  # gamma, beta (running stats are buffers)

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        return 2.0 * _elements(self.input_shape)  # one mul + one add / elem


# ----------------------------------------------------------------------
# Token / transformer layers
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Linear(LayerSpec):
    """Dense layer applied to the last axis of ``(T, D_in)`` or ``(D_in,)``."""

    in_features: int
    out_features: int
    tokens: int = 1
    bias: bool = True

    def __post_init__(self) -> None:
        if min(self.in_features, self.out_features, self.tokens) < 1:
            raise ValueError(f"{self.name}: linear dimensions must be >= 1")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.LINEAR

    @property
    def input_shape(self) -> Shape:
        return (self.tokens, self.in_features)

    @property
    def output_shape(self) -> Shape:
        return (self.tokens, self.out_features)

    def params(self) -> int:
        return self.in_features * self.out_features + (
            self.out_features if self.bias else 0)

    def macs(self) -> float:
        return float(self.tokens) * self.in_features * self.out_features


@dataclasses.dataclass(frozen=True)
class AttentionMatmul(LayerSpec):
    """The two batched matmuls of scaled dot-product attention.

    Covers Q @ K^T (scores, ``T×T`` per head) and softmax(scores) @ V
    (context).  Each is ``T² · head_dim`` MACs per head, so together
    ``2 · T² · D`` MACs with ``D = heads · head_dim``.

    These are the ops that "scale quadratically with respect to input
    sequence length" (Section 3.1) and the ops the profiler convention
    behind Table 3 leaves out.
    """

    tokens: int
    dim: int
    heads: int

    def __post_init__(self) -> None:
        if self.dim % self.heads != 0:
            raise ValueError(
                f"{self.name}: dim {self.dim} not divisible by heads "
                f"{self.heads}")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.ATTENTION

    @property
    def input_shape(self) -> Shape:
        return (self.tokens, self.dim)

    output_shape = input_shape

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 2.0 * self.tokens ** 2 * self.dim

    def activation_elements(self) -> int:
        # Score matrix per head plus the context tensor.
        return self.heads * self.tokens ** 2 + self.tokens * self.dim


@dataclasses.dataclass(frozen=True)
class Softmax(LayerSpec):
    """Softmax over attention scores (elementwise exp/sum/div)."""

    tokens: int
    heads: int

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.ACTIVATION

    @property
    def input_shape(self) -> Shape:
        return (self.heads, self.tokens, self.tokens)

    output_shape = input_shape

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        return 3.0 * _elements(self.input_shape)  # exp, sum, divide


@dataclasses.dataclass(frozen=True)
class LayerNorm(LayerSpec):
    """Layer normalization over the feature axis of ``(T, D)``."""

    tokens: int
    dim: int

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.NORM

    @property
    def input_shape(self) -> Shape:
        return (self.tokens, self.dim)

    output_shape = input_shape

    def params(self) -> int:
        return 2 * self.dim

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        return 5.0 * _elements(self.input_shape)  # mean/var/norm/scale/shift


@dataclasses.dataclass(frozen=True)
class Activation(LayerSpec):
    """Pointwise nonlinearity (ReLU, GELU)."""

    kind: str  # "relu" | "gelu"
    shape: Shape

    def __post_init__(self) -> None:
        if self.kind not in ("relu", "gelu"):
            raise ValueError(f"{self.name}: unknown activation {self.kind!r}")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.ACTIVATION

    @property
    def input_shape(self) -> Shape:
        return self.shape

    output_shape = input_shape

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        per_elem = 1.0 if self.kind == "relu" else 8.0  # tanh-approx GELU
        return per_elem * _elements(self.shape)


# ----------------------------------------------------------------------
# Pooling / structural layers
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class Pool2d(LayerSpec):
    """Max or average pooling over ``(C, H, W)``."""

    kind: str  # "max" | "avg"
    channels: int
    in_hw: tuple[int, int]
    kernel_size: int
    stride: int
    padding: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("max", "avg"):
            raise ValueError(f"{self.name}: unknown pool kind {self.kind!r}")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.POOL

    @property
    def out_hw(self) -> tuple[int, int]:
        """Output (height, width) after stride/padding."""
        h, w = self.in_hw
        k, s, p = self.kernel_size, self.stride, self.padding
        return ((h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1)

    @property
    def input_shape(self) -> Shape:
        return (self.channels, *self.in_hw)

    @property
    def output_shape(self) -> Shape:
        return (self.channels, *self.out_hw)

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        oh, ow = self.out_hw
        return float(self.channels * oh * ow * self.kernel_size ** 2)


@dataclasses.dataclass(frozen=True)
class GlobalAvgPool(LayerSpec):
    """Global average pooling ``(C, H, W) -> (C,)``."""

    channels: int
    in_hw: tuple[int, int]

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.POOL

    @property
    def input_shape(self) -> Shape:
        return (self.channels, *self.in_hw)

    @property
    def output_shape(self) -> Shape:
        return (self.channels,)

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        return float(_elements(self.input_shape))


@dataclasses.dataclass(frozen=True)
class Add(LayerSpec):
    """Residual addition of two tensors of identical shape."""

    shape: Shape

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.ELEMENTWISE

    @property
    def input_shape(self) -> Shape:
        return self.shape

    output_shape = input_shape

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        return float(_elements(self.shape))


# ----------------------------------------------------------------------
# Embedding layers (ViT front end)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PatchEmbed(LayerSpec):
    """Non-overlapping patch projection ``(C, H, W) -> (T_patches, D)``.

    Implemented (and counted) as a conv with kernel = stride = patch size.
    """

    in_channels: int
    dim: int
    img_hw: tuple[int, int]
    patch_size: int

    def __post_init__(self) -> None:
        h, w = self.img_hw
        if h % self.patch_size or w % self.patch_size:
            raise ValueError(
                f"{self.name}: image {self.img_hw} not divisible by patch "
                f"size {self.patch_size}")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.CONV

    @property
    def num_patches(self) -> int:
        """Token count before the class token."""
        h, w = self.img_hw
        return (h // self.patch_size) * (w // self.patch_size)

    @property
    def input_shape(self) -> Shape:
        return (self.in_channels, *self.img_hw)

    @property
    def output_shape(self) -> Shape:
        return (self.num_patches, self.dim)

    def params(self) -> int:
        return (self.dim * self.in_channels * self.patch_size ** 2
                + self.dim)  # projection + bias

    def macs(self) -> float:
        return (float(self.num_patches) * self.dim
                * self.in_channels * self.patch_size ** 2)


@dataclasses.dataclass(frozen=True)
class TokenConcat(LayerSpec):
    """Prepend the learnable class token: ``(T, D) -> (T+1, D)``."""

    tokens: int
    dim: int

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.EMBED

    @property
    def input_shape(self) -> Shape:
        return (self.tokens, self.dim)

    @property
    def output_shape(self) -> Shape:
        return (self.tokens + 1, self.dim)

    def params(self) -> int:
        return self.dim

    def macs(self) -> float:
        return 0.0


@dataclasses.dataclass(frozen=True)
class PositionEmbedding(LayerSpec):
    """Learnable additive position embedding over ``(T, D)``."""

    tokens: int
    dim: int

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.EMBED

    @property
    def input_shape(self) -> Shape:
        return (self.tokens, self.dim)

    output_shape = input_shape

    def params(self) -> int:
        return self.tokens * self.dim

    def macs(self) -> float:
        return 0.0

    def elementwise_flops(self) -> float:
        return float(self.tokens * self.dim)
