"""Linear-complexity attention variant (the paper's RWKV pointer).

Section 3.1: "attention layers scale quadratically with respect to input
sequence length, making them less suitable for large image inputs.
Recent work seeks to address this limitation through state-based
architectures such as RWKV."

This module builds that alternative for the ViT family: the softmax
attention matmuls are replaced by kernelized linear attention
(Katharopoulos et al. style, the stateless formulation of the RWKV-class
recurrence),

    out = φ(Q) · (φ(K)ᵀ V) / (φ(Q) · Σφ(K)),   φ(x) = elu(x) + 1,

whose cost is ``2·T·d·head_dim`` MACs — **linear** in token count — at
the price of the softmax's sharp selectivity.  The extension experiment
(`benchmarks/test_ext_linear_attention.py`) reproduces the crossover the
paper alludes to: quadratic attention wins at ViT-Tiny's 257 tokens,
linear attention wins as image (and hence token) count grows.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.models.graph import ModelGraph
from repro.models.layers import LayerCategory, LayerSpec, Shape
from repro.models.vit import VIT_CONFIGS, ViTConfig, _block_layers
from repro.models.layers import (
    Activation,
    Add,
    AttentionMatmul,
    LayerNorm,
    Linear,
    PatchEmbed,
    PositionEmbedding,
    Softmax,
    TokenConcat,
)


@dataclasses.dataclass(frozen=True)
class LinearAttentionMatmul(LayerSpec):
    """Kernelized linear attention: φ(K)ᵀV accumulation + φ(Q) readout.

    Two ``T × head_dim × head_dim`` matmuls per head:
    ``2 · T · d · head_dim`` MACs total — linear in T, versus the
    softmax path's ``2 · T² · d``.
    """

    tokens: int
    dim: int
    heads: int

    def __post_init__(self) -> None:
        if self.dim % self.heads != 0:
            raise ValueError(
                f"{self.name}: dim {self.dim} not divisible by heads "
                f"{self.heads}")

    @property
    def category(self) -> LayerCategory:
        return LayerCategory.ATTENTION

    @property
    def head_dim(self) -> int:
        """Per-head feature width."""
        return self.dim // self.heads

    @property
    def input_shape(self) -> Shape:
        return (self.tokens, self.dim)

    output_shape = input_shape

    def params(self) -> int:
        return 0

    def macs(self) -> float:
        return 2.0 * self.tokens * self.dim * self.head_dim

    def elementwise_flops(self) -> float:
        # φ on Q and K, plus the normalizer divide.
        return 5.0 * self.tokens * self.dim

    def activation_elements(self) -> int:
        # The per-head (head_dim × head_dim) state plus the output.
        return self.heads * self.head_dim ** 2 + self.tokens * self.dim


def build_linear_vit(variant: "str | ViTConfig",
                     num_classes: int | None = None) -> ModelGraph:
    """A ViT with every softmax attention swapped for linear attention.

    The rest of the architecture (and hence the parameter count) is
    unchanged; only the parameter-free mixing op differs.
    """
    if isinstance(variant, str):
        try:
            cfg = VIT_CONFIGS[variant]
        except KeyError:
            raise KeyError(
                f"unknown ViT variant {variant!r}; available: "
                f"{sorted(VIT_CONFIGS)}") from None
    else:
        cfg = variant
    if num_classes is not None:
        cfg = dataclasses.replace(cfg, num_classes=num_classes)

    layers: list[LayerSpec] = [
        PatchEmbed("patch_embed", in_channels=cfg.in_channels, dim=cfg.dim,
                   img_hw=(cfg.img_size, cfg.img_size),
                   patch_size=cfg.patch_size),
        TokenConcat("cls_token", tokens=cfg.tokens - 1, dim=cfg.dim),
        PositionEmbedding("pos_embed", tokens=cfg.tokens, dim=cfg.dim),
    ]
    for i in range(cfg.depth):
        for layer in _block_layers(cfg, i):
            if isinstance(layer, AttentionMatmul):
                layers.append(LinearAttentionMatmul(
                    layer.name.replace("matmul", "linear"),
                    tokens=cfg.tokens, dim=cfg.dim, heads=cfg.heads))
            elif isinstance(layer, Softmax):
                continue  # no softmax in the kernelized form
            else:
                layers.append(layer)
    layers.extend([
        LayerNorm("norm", tokens=cfg.tokens, dim=cfg.dim),
        Linear("head", in_features=cfg.dim, out_features=cfg.num_classes,
               tokens=1),
    ])
    return ModelGraph(f"{cfg.name}_linattn", "transformer",
                      (cfg.in_channels, cfg.img_size, cfg.img_size),
                      layers)


# ----------------------------------------------------------------------
# Functional path
# ----------------------------------------------------------------------

def _elu_plus_one(x: np.ndarray) -> np.ndarray:
    return np.where(x > 0, x + 1.0, np.exp(np.minimum(x, 0.0)))


def linear_attention(qkv: np.ndarray, heads: int) -> np.ndarray:
    """Kernelized linear attention from packed QKV: ``(N, T, 3D) -> (N, T, D)``.

    Cost is O(T · d · head_dim): the φ(K)ᵀV state is accumulated once and
    read out per query token.
    """
    n, t, three_d = qkv.shape
    if three_d % 3:
        raise ValueError("qkv last axis must be 3*D")
    d = three_d // 3
    if d % heads:
        raise ValueError(f"dim {d} not divisible by heads {heads}")
    head_dim = d // heads
    q, k, v = np.split(qkv, 3, axis=-1)

    def to_heads(a: np.ndarray) -> np.ndarray:
        return a.reshape(n, t, heads, head_dim).transpose(0, 2, 1, 3)

    q = _elu_plus_one(to_heads(q))
    k = _elu_plus_one(to_heads(k))
    v = to_heads(v)
    # State: (N, H, head_dim, head_dim); normalizer: (N, H, head_dim).
    state = k.transpose(0, 1, 3, 2) @ v
    z = k.sum(axis=2)
    out = q @ state                                   # (N, H, T, hd)
    denom = np.einsum("nhtd,nhd->nht", q, z)[..., None]
    out = out / np.maximum(denom, 1e-9)
    return out.transpose(0, 2, 1, 3).reshape(n, t, d)


def linear_vit_forward(cfg: ViTConfig, weights: dict[str, np.ndarray],
                       x: np.ndarray) -> np.ndarray:
    """Forward pass of the linear-attention ViT (same weights as ViT)."""
    from repro.models import functional as F

    n = x.shape[0]
    if x.shape[1:] != (cfg.in_channels, cfg.img_size, cfg.img_size):
        raise ValueError(
            f"expected input (N, {cfg.in_channels}, {cfg.img_size}, "
            f"{cfg.img_size}), got {x.shape}")
    tokens = F.conv2d(x, weights["patch_embed.weight"],
                      weights["patch_embed.bias"], stride=cfg.patch_size)
    tokens = tokens.reshape(n, cfg.dim, -1).transpose(0, 2, 1)
    cls = np.broadcast_to(weights["cls_token"], (n, 1, cfg.dim))
    seq = np.concatenate([cls, tokens], axis=1) + weights["pos_embed"]
    for i in range(cfg.depth):
        p = f"block{i}"
        y = F.layernorm(seq, weights[f"{p}.norm1.gamma"],
                        weights[f"{p}.norm1.beta"])
        qkv = F.linear(y, weights[f"{p}.qkv.weight"],
                       weights[f"{p}.qkv.bias"])
        seq = seq + F.linear(linear_attention(qkv, cfg.heads),
                             weights[f"{p}.proj.weight"],
                             weights[f"{p}.proj.bias"])
        y = F.layernorm(seq, weights[f"{p}.norm2.gamma"],
                        weights[f"{p}.norm2.beta"])
        y = F.gelu(F.linear(y, weights[f"{p}.fc1.weight"],
                            weights[f"{p}.fc1.bias"]))
        seq = seq + F.linear(y, weights[f"{p}.fc2.weight"],
                             weights[f"{p}.fc2.bias"])
    seq = F.layernorm(seq, weights["norm.gamma"], weights["norm.beta"])
    return F.linear(seq[:, 0], weights["head.weight"],
                    weights["head.bias"])


def attention_cost_crossover(dim: int = 192, heads: int = 3,
                             token_counts: tuple[int, ...] = (
                                 33, 65, 257, 1025, 4097, 16385),
                             ) -> list[dict]:
    """MACs of softmax vs linear attention across sequence lengths.

    The extension experiment: where does the quadratic path lose?
    Crossover sits at T = head_dim (d/heads): beyond it the softmax
    matmuls cost more than the kernelized state.
    """
    rows = []
    for t in token_counts:
        softmax_macs = AttentionMatmul("sm", tokens=t, dim=dim,
                                       heads=heads).macs()
        linear_macs = LinearAttentionMatmul("lin", tokens=t, dim=dim,
                                            heads=heads).macs()
        rows.append({
            "tokens": t,
            "softmax_gmacs": softmax_macs / 1e9,
            "linear_gmacs": linear_macs / 1e9,
            "linear_wins": linear_macs < softmax_macs,
        })
    return rows
