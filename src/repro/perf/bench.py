"""The BENCH_core harness: time each optimized layer against its seed.

``run_bench`` executes every scenario from :mod:`repro.perf.scenarios`
— first verifying that baseline and optimized runs agree, then timing
both (best of N repeats, which rejects scheduler noise better than the
mean) — and returns a JSON-serializable results document.

``check_regression`` compares a fresh run against a committed
reference: every scenario must hold its absolute ``min_speedup`` floor
and stay within a relative tolerance band of the recorded speedup.
Two references are committed under ``benchmarks/results/``:
``BENCH_core.json`` (full workloads — the acceptance measurement) and
``BENCH_core_quick.json`` (shrunken workloads with their own floors).
CI runs ``repro bench --quick --check
benchmarks/results/BENCH_core_quick.json`` so an optimization that
quietly rots fails the build instead of the next paper figure.

``run_fluid_bench`` is the same harness over the BENCH_fluid suite:
the hybrid fluid/DES engine vs the exact replay on saturated traces,
with the parity contract as the verification step and its own
committed references (``BENCH_fluid.json`` / ``BENCH_fluid_quick.json``,
gated by ``repro fluid --quick --check ...`` in CI).

``run_profile_bench`` prices the observability layer itself (the
BENCH_profile suite): the same serving replay bare, with a profiler
attached but disabled, and with it enabled.  Verification compares
metrics scrapes byte for byte across modes, and the committed
references (``BENCH_profile.json`` / ``BENCH_profile_quick.json``,
gated by ``repro profile-bench --quick --check ...`` in CI) bound the
overhead each mode may cost.

``run_faas_bench`` prices the serverless execution model (the
BENCH_faas suite): the same sparse diurnal trace through a provisioned
replica and through :class:`~repro.faas.backend.FaaSBackend`, plus
never-reap vs scale-to-zero keep-alive.  Verification checks both
models served the same requests (and that reaping actually happened),
and the committed references (``BENCH_faas.json`` /
``BENCH_faas_quick.json``, gated by ``repro faas-bench --quick
--check ...`` in CI) bound the serverless bookkeeping overhead.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.perf.scenarios import Scenario, build_scenarios

#: Absolute speedup floors committed with the baseline — the acceptance
#: bars for the optimization pass.  The regression check enforces them
#: on every run, independent of the recorded speedups.
MIN_SPEEDUPS: dict[str, float] = {
    "simulator_core": 1.2,
    "instrumented_serving": 2.0,
    "vit_tiny_forward": 1.5,
    "preprocess_warp": 1.0,
}

#: Floors for ``--quick`` runs: the shrunken workloads amortize fixed
#: setup cost over far less work, so the same code shows smaller
#: speedups (and the tiny warp loop barely exercises the grid cache).
#: Quick mode is a CI smoke gate, not the acceptance measurement.
QUICK_MIN_SPEEDUPS: dict[str, float] = {
    "simulator_core": 1.2,
    "instrumented_serving": 1.4,
    "vit_tiny_forward": 1.5,
    "preprocess_warp": 0.85,
}

#: Relative band around the recorded speedup (0.5 = may lose up to half
#: the recorded advantage before failing).  Generous on purpose: CI
#: machines are noisy, and the absolute floors do the hard gating.
DEFAULT_TOLERANCE = 0.5

#: Floors for the BENCH_fluid suite: the hybrid fluid/DES engine vs the
#: exact tuple-heap replay on saturated traces.  The diurnal workload
#: spends most of its day saturated, so nearly all arrivals integrate
#: analytically; the step workload has a larger exact fraction.
FLUID_MIN_SPEEDUPS: dict[str, float] = {
    "fluid_step_parity": 3.0,
    "fluid_burst_day": 1.5,
}

#: Quick-mode floors for BENCH_fluid (shrunken traces amortize the
#: regime handoffs over less saturated work, and the short burst day
#: spends most of its hour unsaturated where both engines run the same
#: exact path — its quick speedup is mostly noise-bounded).
QUICK_FLUID_MIN_SPEEDUPS: dict[str, float] = {
    "fluid_step_parity": 2.0,
    "fluid_burst_day": 1.1,
}

#: Floors for the BENCH_profile suite.  These bound *overhead*, not
#: gains: baseline is the bare replay, "optimized" the instrumented
#: one, so 1.0 means the instrumentation is free.  Attached-but-
#: disabled must stay within noise of free (the zero-cost contract);
#: the enabled profiler pays real perf_counter calls per batch and may
#: cost up to half the run before the gate trips.
PROFILE_MIN_SPEEDUPS: dict[str, float] = {
    "profile_off_overhead": 0.85,
    "profile_on_overhead": 0.5,
}

#: Quick-mode floors for BENCH_profile: the shrunken replay amortizes
#: interpreter warm-up over less work, so both ratios sit closer to
#: the noise floor.
QUICK_PROFILE_MIN_SPEEDUPS: dict[str, float] = {
    "profile_off_overhead": 0.8,
    "profile_on_overhead": 0.45,
}

#: Floors for the BENCH_faas suite.  Like BENCH_profile these bound
#: *overhead*: the serverless backend pays per-instance spawn/reap
#: bookkeeping where the provisioned server batches into a static
#: pool, so its replay of the same trace may be slower — the floor
#: bounds how much.  The scale-to-zero scenario compares two
#: serverless runs (never-reap vs reaping), whose cost should be
#: near parity.
FAAS_MIN_SPEEDUPS: dict[str, float] = {
    "faas_vs_provisioned": 0.3,
    "faas_scale_to_zero": 0.5,
}

#: Quick-mode floors for BENCH_faas (the shrunken trace amortizes
#: setup over fewer arrivals, pushing both ratios toward noise).
QUICK_FAAS_MIN_SPEEDUPS: dict[str, float] = {
    "faas_vs_provisioned": 0.25,
    "faas_scale_to_zero": 0.4,
}


def _best_time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_scenario(scenario: Scenario, repeats: int,
                 floors: dict[str, float] | None = None) -> dict:
    """Verify agreement, then time both sides of one scenario."""
    if floors is None:
        floors = MIN_SPEEDUPS
    base_result = scenario.baseline()
    opt_result = scenario.optimized()
    scenario.verify(base_result, opt_result)
    baseline_s = _best_time(scenario.baseline, repeats)
    optimized_s = _best_time(scenario.optimized, repeats)
    return {
        "layer": scenario.layer,
        "description": scenario.description,
        "baseline_seconds": baseline_s,
        "optimized_seconds": optimized_s,
        "speedup": baseline_s / optimized_s if optimized_s > 0
        else float("inf"),
        "min_speedup": floors.get(scenario.name, 1.0),
        "repeats": repeats,
    }


def run_bench(quick: bool = False, repeats: int | None = None) -> dict:
    """Run the full BENCH_core suite; returns the results document."""
    if repeats is None:
        repeats = 2 if quick else 4
    floors = QUICK_MIN_SPEEDUPS if quick else MIN_SPEEDUPS
    results: dict = {"suite": "BENCH_core", "quick": quick,
                     "scenarios": {}}
    for scenario in build_scenarios(quick=quick):
        results["scenarios"][scenario.name] = run_scenario(
            scenario, repeats, floors)
    return results


def run_fluid_bench(quick: bool = False,
                    repeats: int | None = None) -> dict:
    """Run the BENCH_fluid suite; returns the results document.

    Every scenario's ``verify`` *is* the DES-vs-fluid parity contract
    (exact throughput, latency quantiles within tolerance), so a
    passing run certifies correctness before any timing counts.
    Default repeats are low — the full baseline replays ~1M arrivals
    through the exact engine, which is precisely the cost this suite
    exists to measure.
    """
    from repro.perf.scenarios import (build_fluid_scenarios,
                                      run_fluid_frontier)

    if repeats is None:
        repeats = 2 if quick else 1
    floors = QUICK_FLUID_MIN_SPEEDUPS if quick else FLUID_MIN_SPEEDUPS
    results: dict = {"suite": "BENCH_fluid", "quick": quick,
                     "scenarios": {}}
    for scenario in build_fluid_scenarios(quick=quick):
        results["scenarios"][scenario.name] = run_scenario(
            scenario, repeats, floors)
    results["frontier"] = run_fluid_frontier(quick=quick)
    return results


def run_profile_bench(quick: bool = False,
                      repeats: int | None = None) -> dict:
    """Run the BENCH_profile suite; returns the results document.

    Each scenario's verify step compares the metrics scrape of the
    bare and instrumented runs byte for byte, so a passing run
    certifies the zero-instrumentation-cost contract before any
    timing counts.
    """
    from repro.perf.scenarios import build_profile_scenarios

    if repeats is None:
        repeats = 2 if quick else 4
    floors = QUICK_PROFILE_MIN_SPEEDUPS if quick else PROFILE_MIN_SPEEDUPS
    results: dict = {"suite": "BENCH_profile", "quick": quick,
                     "scenarios": {}}
    for scenario in build_profile_scenarios(quick=quick):
        results["scenarios"][scenario.name] = run_scenario(
            scenario, repeats, floors)
    return results


def run_faas_bench(quick: bool = False,
                   repeats: int | None = None) -> dict:
    """Run the BENCH_faas suite; returns the results document.

    Each scenario's verify step checks the execution models agree on
    *what* was served (equal ok-response counts; the scale-to-zero
    scenario additionally proves reaping happened and forced extra
    cold starts) before any timing counts.
    """
    from repro.perf.scenarios import build_faas_scenarios

    if repeats is None:
        repeats = 2 if quick else 4
    floors = QUICK_FAAS_MIN_SPEEDUPS if quick else FAAS_MIN_SPEEDUPS
    results: dict = {"suite": "BENCH_faas", "quick": quick,
                     "scenarios": {}}
    for scenario in build_faas_scenarios(quick=quick):
        results["scenarios"][scenario.name] = run_scenario(
            scenario, repeats, floors)
    return results


def write_results(results: dict, path: str | Path) -> None:
    """Write a results document as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rounded = json.loads(json.dumps(results))
    for entry in rounded.get("scenarios", {}).values():
        for field in ("baseline_seconds", "optimized_seconds", "speedup"):
            entry[field] = round(entry[field], 4)
    frontier = rounded.get("frontier")
    if frontier is not None:
        for field in ("wall_seconds", "p95", "p99"):
            frontier[field] = round(frontier[field], 4)
    path.write_text(json.dumps(rounded, indent=2, sort_keys=True) + "\n")


def load_results(path: str | Path) -> dict:
    """Load a previously written results document."""
    return json.loads(Path(path).read_text())


def check_regression(current: dict, reference: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Failure messages (empty = pass) for ``current`` vs ``reference``.

    A scenario fails when it is missing, below its absolute
    ``min_speedup`` floor, or below ``reference_speedup * (1 -
    tolerance)``.  Quick and full runs are not comparable (workload
    sizes differ), so a mode mismatch fails outright.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    if bool(current.get("quick")) != bool(reference.get("quick")):
        mode = "quick" if reference.get("quick") else "full"
        return [f"mode mismatch: reference is a {mode}-mode run; "
                f"re-run with{'' if mode == 'quick' else 'out'} --quick "
                "or point --check at the matching reference"]
    failures: list[str] = []
    for name, ref in sorted(reference.get("scenarios", {}).items()):
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = ref.get("min_speedup", MIN_SPEEDUPS.get(name, 1.0))
        band = ref["speedup"] * (1.0 - tolerance)
        required = max(floor, band)
        if cur["speedup"] < required:
            failures.append(
                f"{name}: speedup {cur['speedup']:.2f}x below required "
                f"{required:.2f}x (floor {floor:.2f}x, reference "
                f"{ref['speedup']:.2f}x - {tolerance:.0%} band)")
    ref_frontier = reference.get("frontier")
    if ref_frontier is not None:
        cur_frontier = current.get("frontier")
        if cur_frontier is None:
            failures.append(
                f"{ref_frontier['name']}: missing from current run")
        else:
            ceiling = ref_frontier["max_seconds"]
            if cur_frontier["wall_seconds"] > ceiling:
                failures.append(
                    f"{ref_frontier['name']}: wall time "
                    f"{cur_frontier['wall_seconds']:.1f}s exceeds the "
                    f"committed {ceiling:.1f}s ceiling")
            if cur_frontier["arrivals"] != ref_frontier["arrivals"]:
                failures.append(
                    f"{ref_frontier['name']}: arrival count "
                    f"{cur_frontier['arrivals']} != reference "
                    f"{ref_frontier['arrivals']} (workload drifted)")
    return failures


def render_results(results: dict) -> str:
    """One table row per scenario, aligned for terminal output."""
    header = (f"{'scenario':<22} {'layer':<16} {'baseline':>10} "
              f"{'optimized':>10} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for name, entry in sorted(results["scenarios"].items()):
        lines.append(
            f"{name:<22} {entry['layer']:<16} "
            f"{entry['baseline_seconds'] * 1e3:>8.1f}ms "
            f"{entry['optimized_seconds'] * 1e3:>8.1f}ms "
            f"{entry['speedup']:>7.2f}x")
    frontier = results.get("frontier")
    if frontier is not None:
        lines.append(
            f"{frontier['name']:<22} {frontier['layer']:<16} "
            f"{'(infeasible)':>10} "
            f"{frontier['wall_seconds'] * 1e3:>8.1f}ms "
            f"{frontier['arrivals']:>7} arrivals, "
            f"{frontier['fluid_intervals']} fluid stretches "
            f"(ceiling {frontier['max_seconds']:.0f}s)")
    return "\n".join(lines)
