"""The BENCH_core harness: time each optimized layer against its seed.

``run_bench`` executes every scenario from :mod:`repro.perf.scenarios`
— first verifying that baseline and optimized runs agree, then timing
both (best of N repeats, which rejects scheduler noise better than the
mean) — and returns a JSON-serializable results document.

``check_regression`` compares a fresh run against a committed
reference: every scenario must hold its absolute ``min_speedup`` floor
and stay within a relative tolerance band of the recorded speedup.
Two references are committed under ``benchmarks/results/``:
``BENCH_core.json`` (full workloads — the acceptance measurement) and
``BENCH_core_quick.json`` (shrunken workloads with their own floors).
CI runs ``repro bench --quick --check
benchmarks/results/BENCH_core_quick.json`` so an optimization that
quietly rots fails the build instead of the next paper figure.

``run_fluid_bench`` is the same harness over the BENCH_fluid suite:
the hybrid fluid/DES engine vs the exact replay on saturated traces,
with the parity contract as the verification step and its own
committed references (``BENCH_fluid.json`` / ``BENCH_fluid_quick.json``,
gated by ``repro fluid --quick --check ...`` in CI).

``run_profile_bench`` prices the observability layer itself (the
BENCH_profile suite): the same serving replay bare, with a profiler
attached but disabled, and with it enabled.  Verification compares
metrics scrapes byte for byte across modes, and the committed
references (``BENCH_profile.json`` / ``BENCH_profile_quick.json``,
gated by ``repro profile-bench --quick --check ...`` in CI) bound the
overhead each mode may cost.

``run_faas_bench`` prices the serverless execution model (the
BENCH_faas suite): the same sparse diurnal trace through a provisioned
replica and through :class:`~repro.faas.backend.FaaSBackend`, plus
never-reap vs scale-to-zero keep-alive.  Verification checks both
models served the same requests (and that reaping actually happened),
and the committed references (``BENCH_faas.json`` /
``BENCH_faas_quick.json``, gated by ``repro faas-bench --quick
--check ...`` in CI) bound the serverless bookkeeping overhead.

``run_sweep_bench`` prices the sweep engine itself (the BENCH_sweep
suite): the same seed-replicated sparse-diurnal grid run sequentially
and through :class:`~repro.sweep.SweepRunner` with a worker pool.
Verification asserts the merged metrics scrape and folded profile are
byte-identical to the sequential run's — the determinism contract —
before the wall-clock ratio counts.  The speedup floor is core-count
aware: 2.5x where at least four effective cores exist, an
overhead-bound floor below that (``cpu_count`` rides along in the
results so a multicore host enforces the real bar even against a
reference recorded on fewer cores).

Every suite runner takes ``jobs``: with ``jobs > 1`` the scenarios
themselves fan out across processes via the sweep engine (each worker
rebuilds its scenario from ``(suite, name)`` — spawn-safe).  Timings
then share the machine, so parallel dispatch is for fast iteration;
committed references should come from sequential runs.
"""

from __future__ import annotations

import importlib
import json
import os
import time
from pathlib import Path

from repro.perf.scenarios import Scenario

#: Absolute speedup floors committed with the baseline — the acceptance
#: bars for the optimization pass.  The regression check enforces them
#: on every run, independent of the recorded speedups.
MIN_SPEEDUPS: dict[str, float] = {
    "simulator_core": 1.2,
    "instrumented_serving": 2.0,
    "vit_tiny_forward": 1.5,
    "preprocess_warp": 1.0,
}

#: Floors for ``--quick`` runs: the shrunken workloads amortize fixed
#: setup cost over far less work, so the same code shows smaller
#: speedups (and the tiny warp loop barely exercises the grid cache).
#: Quick mode is a CI smoke gate, not the acceptance measurement.
QUICK_MIN_SPEEDUPS: dict[str, float] = {
    "simulator_core": 1.2,
    "instrumented_serving": 1.4,
    "vit_tiny_forward": 1.5,
    "preprocess_warp": 0.85,
}

#: Relative band around the recorded speedup (0.5 = may lose up to half
#: the recorded advantage before failing).  Generous on purpose: CI
#: machines are noisy, and the absolute floors do the hard gating.
DEFAULT_TOLERANCE = 0.5

#: Floors for the BENCH_fluid suite: the hybrid fluid/DES engine vs the
#: exact tuple-heap replay on saturated traces.  The diurnal workload
#: spends most of its day saturated, so nearly all arrivals integrate
#: analytically; the step workload has a larger exact fraction.
FLUID_MIN_SPEEDUPS: dict[str, float] = {
    "fluid_step_parity": 3.0,
    "fluid_burst_day": 1.5,
}

#: Quick-mode floors for BENCH_fluid (shrunken traces amortize the
#: regime handoffs over less saturated work, and the short burst day
#: spends most of its hour unsaturated where both engines run the same
#: exact path — its quick speedup is mostly noise-bounded).
QUICK_FLUID_MIN_SPEEDUPS: dict[str, float] = {
    "fluid_step_parity": 2.0,
    "fluid_burst_day": 1.1,
}

#: Floors for the BENCH_profile suite.  These bound *overhead*, not
#: gains: baseline is the bare replay, "optimized" the instrumented
#: one, so 1.0 means the instrumentation is free.  Attached-but-
#: disabled must stay within noise of free (the zero-cost contract);
#: the enabled profiler pays real perf_counter calls per batch and may
#: cost up to half the run before the gate trips.
PROFILE_MIN_SPEEDUPS: dict[str, float] = {
    "profile_off_overhead": 0.85,
    "profile_on_overhead": 0.5,
}

#: Quick-mode floors for BENCH_profile: the shrunken replay amortizes
#: interpreter warm-up over less work, so both ratios sit closer to
#: the noise floor.
QUICK_PROFILE_MIN_SPEEDUPS: dict[str, float] = {
    "profile_off_overhead": 0.8,
    "profile_on_overhead": 0.45,
}

#: Floors for the BENCH_faas suite.  Like BENCH_profile these bound
#: *overhead*: the serverless backend pays per-instance spawn/reap
#: bookkeeping where the provisioned server batches into a static
#: pool, so its replay of the same trace may be slower — the floor
#: bounds how much.  The scale-to-zero scenario compares two
#: serverless runs (never-reap vs reaping), whose cost should be
#: near parity.
FAAS_MIN_SPEEDUPS: dict[str, float] = {
    "faas_vs_provisioned": 0.3,
    "faas_scale_to_zero": 0.5,
}

#: Quick-mode floors for BENCH_faas (the shrunken trace amortizes
#: setup over fewer arrivals, pushing both ratios toward noise).
QUICK_FAAS_MIN_SPEEDUPS: dict[str, float] = {
    "faas_vs_provisioned": 0.25,
    "faas_scale_to_zero": 0.4,
}

#: The BENCH_sweep acceptance bar where parallelism can physically pay:
#: at least four effective cores (``min(jobs, cpu_count)``).
SWEEP_MIN_SPEEDUP = 2.5

#: Scenario builder per suite key — the seam both the sequential loop
#: and the process-pool dispatch share (workers re-resolve the builder
#: by name, so a Scenario's closures never cross a process boundary).
_SUITE_BUILDERS: dict[str, tuple[str, str]] = {
    "core": ("repro.perf.scenarios", "build_scenarios"),
    "fluid": ("repro.perf.scenarios", "build_fluid_scenarios"),
    "profile": ("repro.perf.scenarios", "build_profile_scenarios"),
    "faas": ("repro.perf.scenarios", "build_faas_scenarios"),
    "sweep": ("repro.perf.scenarios", "build_sweep_scenarios"),
}

#: Rough relative runtimes for longest-expected-job-first dispatch when
#: scenarios fan out across processes.  Scheduling hints only — a wrong
#: value changes the tail, never the results.
_SCENARIO_COST_HINTS: dict[str, float] = {
    "fluid_burst_day": 10.0,
    "fluid_step_parity": 6.0,
    "instrumented_serving": 4.0,
    "faas_vs_provisioned": 3.0,
    "faas_scale_to_zero": 3.0,
    "profile_on_overhead": 2.0,
    "profile_off_overhead": 2.0,
    "simulator_core": 2.0,
}


def _best_time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_scenario(scenario: Scenario, repeats: int,
                 floors: dict[str, float] | None = None) -> dict:
    """Verify agreement, then time both sides of one scenario."""
    if floors is None:
        floors = MIN_SPEEDUPS
    base_result = scenario.baseline()
    opt_result = scenario.optimized()
    scenario.verify(base_result, opt_result)
    baseline_s = _best_time(scenario.baseline, repeats)
    optimized_s = _best_time(scenario.optimized, repeats)
    return {
        "layer": scenario.layer,
        "description": scenario.description,
        "baseline_seconds": baseline_s,
        "optimized_seconds": optimized_s,
        "speedup": baseline_s / optimized_s if optimized_s > 0
        else float("inf"),
        "min_speedup": floors.get(scenario.name, 1.0),
        "repeats": repeats,
    }


def _build_suite(suite: str, quick: bool, **kwargs) -> list[Scenario]:
    """Instantiate one suite's scenarios from its registered builder."""
    module_name, attr = _SUITE_BUILDERS[suite]
    builder = getattr(importlib.import_module(module_name), attr)
    return builder(quick=quick, **kwargs)


def _scenario_worker(params: dict) -> dict:
    """Sweep worker: rebuild one scenario by name and benchmark it.

    Runs inside a pool worker process, so the scenario — whose
    baseline/optimized closures cannot be pickled — is reconstructed
    from ``(suite, name)`` and the result is the plain
    :func:`run_scenario` dict.
    """
    suite, name = params["suite"], params["name"]
    for scenario in _build_suite(suite, params["quick"]):
        if scenario.name == name:
            return run_scenario(scenario, params["repeats"],
                                {name: params["floor"]})
    raise ValueError(f"suite {suite!r} has no scenario {name!r}")


def _run_scenario_set(suite: str, bench_name: str, quick: bool,
                      repeats: int, floors: dict[str, float],
                      jobs: int = 1,
                      builder_kwargs: dict | None = None) -> dict:
    """Shared driver behind every ``run_*_bench``: build, verify, time.

    ``jobs > 1`` dispatches the scenarios through the sweep engine
    (one shard per scenario, costliest first); ``jobs = 1`` runs them
    in order in-process.  Either way the results document is keyed by
    scenario name with the same entry shape.
    """
    results: dict = {"suite": bench_name, "quick": quick,
                     "scenarios": {}}
    scenarios = _build_suite(suite, quick, **(builder_kwargs or {}))
    if jobs <= 1 or len(scenarios) <= 1:
        for scenario in scenarios:
            results["scenarios"][scenario.name] = run_scenario(
                scenario, repeats, floors)
        return results

    from repro.sweep import SweepRunner, SweepSpec

    spec = SweepSpec(
        worker="repro.perf.bench:_scenario_worker",
        grid=[{"suite": suite, "name": s.name, "quick": quick,
               "repeats": repeats, "floor": floors.get(s.name, 1.0)}
              for s in scenarios],
        expected_cost=lambda p: _SCENARIO_COST_HINTS.get(p["name"], 1.0))
    sweep = SweepRunner(jobs=jobs).run(spec)
    sweep.raise_on_error()
    for shard, entry in zip(spec.shards(), sweep.values()):
        results["scenarios"][shard.params["name"]] = entry
    results["jobs"] = jobs
    return results


def run_bench(quick: bool = False, repeats: int | None = None,
              jobs: int = 1) -> dict:
    """Run the full BENCH_core suite; returns the results document."""
    if repeats is None:
        repeats = 2 if quick else 4
    floors = QUICK_MIN_SPEEDUPS if quick else MIN_SPEEDUPS
    return _run_scenario_set("core", "BENCH_core", quick, repeats,
                             floors, jobs=jobs)


def run_fluid_bench(quick: bool = False, repeats: int | None = None,
                    jobs: int = 1) -> dict:
    """Run the BENCH_fluid suite; returns the results document.

    Every scenario's ``verify`` *is* the DES-vs-fluid parity contract
    (exact throughput, latency quantiles within tolerance), so a
    passing run certifies correctness before any timing counts.
    Default repeats are low — the full baseline replays ~1M arrivals
    through the exact engine, which is precisely the cost this suite
    exists to measure.
    """
    from repro.perf.scenarios import run_fluid_frontier

    if repeats is None:
        repeats = 2 if quick else 1
    floors = QUICK_FLUID_MIN_SPEEDUPS if quick else FLUID_MIN_SPEEDUPS
    results = _run_scenario_set("fluid", "BENCH_fluid", quick, repeats,
                                floors, jobs=jobs)
    results["frontier"] = run_fluid_frontier(quick=quick)
    return results


def run_profile_bench(quick: bool = False, repeats: int | None = None,
                      jobs: int = 1) -> dict:
    """Run the BENCH_profile suite; returns the results document.

    Each scenario's verify step compares the metrics scrape of the
    bare and instrumented runs byte for byte, so a passing run
    certifies the zero-instrumentation-cost contract before any
    timing counts.
    """
    if repeats is None:
        repeats = 2 if quick else 4
    floors = QUICK_PROFILE_MIN_SPEEDUPS if quick else PROFILE_MIN_SPEEDUPS
    return _run_scenario_set("profile", "BENCH_profile", quick, repeats,
                             floors, jobs=jobs)


def run_faas_bench(quick: bool = False, repeats: int | None = None,
                   jobs: int = 1) -> dict:
    """Run the BENCH_faas suite; returns the results document.

    Each scenario's verify step checks the execution models agree on
    *what* was served (equal ok-response counts; the scale-to-zero
    scenario additionally proves reaping happened and forced extra
    cold starts) before any timing counts.
    """
    if repeats is None:
        repeats = 2 if quick else 4
    floors = QUICK_FAAS_MIN_SPEEDUPS if quick else FAAS_MIN_SPEEDUPS
    return _run_scenario_set("faas", "BENCH_faas", quick, repeats,
                             floors, jobs=jobs)


def sweep_min_speedup(jobs: int, cpu_count: int | None = None,
                      quick: bool = False) -> float:
    """The BENCH_sweep floor this host can honestly be held to.

    With at least four effective cores (``min(jobs, cpu_count)``) the
    acceptance bar is :data:`SWEEP_MIN_SPEEDUP`; with two or three the
    pool can still win but less; on one core a worker pool is pure
    overhead, so the floor only bounds how much (the determinism
    verify still runs in full).  Quick mode shaves each bar — its
    shards are too small to amortize worker spawn cost.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    effective = min(max(1, jobs), max(1, cpu_count))
    if effective >= 4:
        return 1.5 if quick else SWEEP_MIN_SPEEDUP
    if effective >= 2:
        return 1.05 if quick else 1.2
    return 0.4 if quick else 0.5


def run_sweep_bench(quick: bool = False, repeats: int | None = None,
                    jobs: int = 4) -> dict:
    """Run the BENCH_sweep suite; returns the results document.

    Baseline is the sequential (1-worker) sweep, optimized the same
    spec through a ``jobs``-worker pool.  The verify step asserts the
    merged scrape, folded profile, and summary statistics are
    byte-identical across the two — the engine's determinism contract
    — so the timing only ever measures *how fast*, never *whether it
    still agrees*.  ``cpu_count`` and the applied floor ride along in
    the document; see :func:`sweep_min_speedup` for how
    :func:`check_regression` holds multicore hosts to the real bar.
    """
    if repeats is None:
        repeats = 2 if quick else 3
    cpu_count = os.cpu_count() or 1
    floor = sweep_min_speedup(jobs, cpu_count, quick)
    results = _run_scenario_set(
        "sweep", "BENCH_sweep", quick, repeats,
        floors={"sweep_parallel_replay": floor},
        builder_kwargs={"jobs": jobs})
    results["jobs"] = jobs
    results["cpu_count"] = cpu_count
    for entry in results["scenarios"].values():
        entry["jobs"] = jobs
        entry["cpu_count"] = cpu_count
    return results


def write_results(results: dict, path: str | Path) -> None:
    """Write a results document as stable, diff-friendly JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rounded = json.loads(json.dumps(results))
    for entry in rounded.get("scenarios", {}).values():
        for field in ("baseline_seconds", "optimized_seconds", "speedup"):
            entry[field] = round(entry[field], 4)
    frontier = rounded.get("frontier")
    if frontier is not None:
        for field in ("wall_seconds", "p95", "p99"):
            frontier[field] = round(frontier[field], 4)
    path.write_text(json.dumps(rounded, indent=2, sort_keys=True) + "\n")


def load_results(path: str | Path) -> dict:
    """Load a previously written results document."""
    return json.loads(Path(path).read_text())


def check_regression(current: dict, reference: dict,
                     tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Failure messages (empty = pass) for ``current`` vs ``reference``.

    A scenario fails when it is missing, below its absolute
    ``min_speedup`` floor, or below ``reference_speedup * (1 -
    tolerance)``.  Quick and full runs are not comparable (workload
    sizes differ), so a mode mismatch fails outright.

    Core-count-aware scenarios (BENCH_sweep) record ``cpu_count`` and
    their host-applied ``min_speedup`` per entry.  The floor enforced
    is the *larger* of the reference's and the current run's — so a
    reference committed from a 1-core CI box cannot weaken the 2.5x
    bar on a 4-core host — while the relative band is skipped when the
    two runs saw different core counts (their speedups measure
    different machines, not different code).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must lie in [0, 1)")
    if bool(current.get("quick")) != bool(reference.get("quick")):
        mode = "quick" if reference.get("quick") else "full"
        return [f"mode mismatch: reference is a {mode}-mode run; "
                f"re-run with{'' if mode == 'quick' else 'out'} --quick "
                "or point --check at the matching reference"]
    failures: list[str] = []
    for name, ref in sorted(reference.get("scenarios", {}).items()):
        cur = current.get("scenarios", {}).get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = ref.get("min_speedup", MIN_SPEEDUPS.get(name, 1.0))
        floor = max(floor, cur.get("min_speedup", 0.0))
        cores_differ = (
            "cpu_count" in ref and "cpu_count" in cur
            and ref["cpu_count"] != cur["cpu_count"])
        band = (0.0 if cores_differ
                else ref["speedup"] * (1.0 - tolerance))
        required = max(floor, band)
        if cur["speedup"] < required:
            failures.append(
                f"{name}: speedup {cur['speedup']:.2f}x below required "
                f"{required:.2f}x (floor {floor:.2f}x, reference "
                f"{ref['speedup']:.2f}x - {tolerance:.0%} band)")
    ref_frontier = reference.get("frontier")
    if ref_frontier is not None:
        cur_frontier = current.get("frontier")
        if cur_frontier is None:
            failures.append(
                f"{ref_frontier['name']}: missing from current run")
        else:
            ceiling = ref_frontier["max_seconds"]
            if cur_frontier["wall_seconds"] > ceiling:
                failures.append(
                    f"{ref_frontier['name']}: wall time "
                    f"{cur_frontier['wall_seconds']:.1f}s exceeds the "
                    f"committed {ceiling:.1f}s ceiling")
            if cur_frontier["arrivals"] != ref_frontier["arrivals"]:
                failures.append(
                    f"{ref_frontier['name']}: arrival count "
                    f"{cur_frontier['arrivals']} != reference "
                    f"{ref_frontier['arrivals']} (workload drifted)")
    return failures


def render_results(results: dict) -> str:
    """One table row per scenario, aligned for terminal output."""
    header = (f"{'scenario':<22} {'layer':<16} {'baseline':>10} "
              f"{'optimized':>10} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for name, entry in sorted(results["scenarios"].items()):
        lines.append(
            f"{name:<22} {entry['layer']:<16} "
            f"{entry['baseline_seconds'] * 1e3:>8.1f}ms "
            f"{entry['optimized_seconds'] * 1e3:>8.1f}ms "
            f"{entry['speedup']:>7.2f}x")
    frontier = results.get("frontier")
    if frontier is not None:
        lines.append(
            f"{frontier['name']:<22} {frontier['layer']:<16} "
            f"{'(infeasible)':>10} "
            f"{frontier['wall_seconds'] * 1e3:>8.1f}ms "
            f"{frontier['arrivals']:>7} arrivals, "
            f"{frontier['fluid_intervals']} fluid stretches "
            f"(ceiling {frontier['max_seconds']:.0f}s)")
    return "\n".join(lines)
