"""Performance-regression harness for the hot-path optimization pass.

The optimization PR claims speedups in three layers — the discrete
-event simulator core, the serving instrumentation fast path, and the
NumPy model/preprocessing kernels.  This package makes those claims
*measured and enforced* rather than asserted:

* :mod:`repro.perf.legacy` — the preserved seed implementations
  (dataclass-event simulator, per-call-label metrics, allocation-per-op
  kernels) that every speedup is measured against;
* :mod:`repro.perf.scenarios` — deterministic, verified workloads that
  run the same work through both implementations;
* :mod:`repro.perf.bench` — the timing/report/regression-check driver
  behind the ``repro bench`` CLI; the committed reference lives at
  ``benchmarks/results/BENCH_core.json``.
"""

from repro.perf.bench import (
    DEFAULT_TOLERANCE,
    MIN_SPEEDUPS,
    QUICK_MIN_SPEEDUPS,
    check_regression,
    load_results,
    render_results,
    run_bench,
    write_results,
)
from repro.perf.scenarios import Scenario, build_scenarios

__all__ = [
    "DEFAULT_TOLERANCE",
    "MIN_SPEEDUPS",
    "QUICK_MIN_SPEEDUPS",
    "Scenario",
    "build_scenarios",
    "check_regression",
    "load_results",
    "render_results",
    "run_bench",
    "write_results",
]
