"""Preserved pre-optimization reference implementations.

The perf harness (:mod:`repro.perf.bench`) reports *speedups*, which
are only meaningful against a pinned baseline.  This module freezes the
seed implementations that the hot-path optimization pass replaced, so
the baseline is the actual old code running the actual new workloads —
not a guess:

* :class:`LegacySimulator` — the dataclass-event heap with an
  auxiliary cancelled-sequence set.  Drop-in API compatible with
  :class:`repro.serving.events.Simulator`, so the real serving stack
  runs on it unmodified.
* :class:`LegacyMetricsRegistry` — metrics whose every update rebuilds
  the sorted label key and whose histogram observe linear-scans the
  bucket bounds (the seed cost model).  Its metrics also accept the
  modern ``labels(...)`` call, returning shims that *still* pay the
  per-call label-key rebuild, so instrumented code written against the
  bound-handle API exercises seed-era costs.
* ``legacy_*`` kernels — the seed NumPy ops: per-call weight
  transposes, allocation-per-op im2col, split-and-reshape attention,
  and the ``x ** 3`` GELU.

These exist for measurement and for determinism cross-checks (the new
tuple-heap simulator must fire in exactly the order the dataclass heap
did); production code must not import them.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
from collections.abc import Callable, Iterable

import numpy as np

from repro.serving.observability import DEFAULT_BUCKETS, LabelKey


# ----------------------------------------------------------------------
# Seed simulator (dataclass events + cancelled-seq set)
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, order=True)
class LegacyEvent:
    """A scheduled callback (ordered by time, then insertion sequence)."""

    time: float
    seq: int
    callback: Callable[[], None] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)
    daemon: bool = dataclasses.field(default=False, compare=False)


class LegacySimulator:
    """The seed event loop, byte-for-byte in behaviour.

    Heap entries are frozen ordered dataclasses (every push/pop pays
    field-by-field ``__lt__``), cancellation goes through an auxiliary
    seq set (which leaks on cancel-after-fire), and every event pops
    individually.  API-compatible with the optimized simulator.
    """

    def __init__(self) -> None:
        self._heap: list[LegacyEvent] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._cancelled: set[int] = set()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None],
                 daemon: bool = False) -> LegacyEvent:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = LegacyEvent(self._now + delay, next(self._seq), callback,
                            daemon=daemon)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None],
                    daemon: bool = False) -> LegacyEvent:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time - self._now, callback, daemon=daemon)

    def cancel(self, event: LegacyEvent) -> None:
        """Cancel a pending event (no-op if it already fired)."""
        self._cancelled.add(event.seq)

    def run(self, until: float | None = None,
            max_events: int = 10_000_000) -> None:
        """Process events until the heap drains or ``until`` is reached."""
        processed = 0
        while self._heap:
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; "
                    "likely a self-scheduling loop")
            event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._heap, event)  # leave it for later
                self._now = until
                return
            self._now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
        if until is not None:
            self._now = max(self._now, until)

    def peek_time(self) -> float | None:
        """Time of the next pending event, or None when idle."""
        while self._heap and self._heap[0].seq in self._cancelled:
            self._cancelled.discard(heapq.heappop(self._heap).seq)
        return self._heap[0].time if self._heap else None

    def peek_foreground_time(self) -> float | None:
        """Time of the next pending *non-daemon* event, or None."""
        best: float | None = None
        for event in self._heap:
            if event.daemon or event.seq in self._cancelled:
                continue
            if best is None or event.time < best:
                best = event.time
        return best


# ----------------------------------------------------------------------
# Seed metrics (per-call label keys, linear-scan histograms)
# ----------------------------------------------------------------------

def _label_key(labels: dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _LegacyBound:
    """A ``labels(...)`` shim that still pays per-call label costs.

    The modern instrumentation binds handles once and updates them
    label-free; the seed code rebuilt the sorted label key on every
    update.  This shim lets the modern call sites run against legacy
    metrics while charging the seed cost: every method forwards to the
    parent's kwargs path, which rebuilds the key.
    """

    def __init__(self, parent, labels: dict[str, str]):
        self._parent = parent
        self._labels = labels

    def inc(self, amount: float = 1.0) -> None:
        self._parent.inc(amount, **self._labels)

    def set(self, value: float) -> None:
        self._parent.set(value, **self._labels)

    def add(self, amount: float) -> None:
        self._parent.add(amount, **self._labels)

    def observe(self, value: float) -> None:
        self._parent.observe(value, **self._labels)

    def value(self) -> float:
        return self._parent.value(**self._labels)


class _LegacyMetric:
    kind = "untyped"

    def __init__(self, name: str, help: str, clock: Callable[[], float]):
        self.name = name
        self.help = help
        self._clock = clock
        self.last_updated: dict[LabelKey, float] = {}

    def _touch(self, key: LabelKey) -> None:
        self.last_updated[key] = self._clock()

    def labels(self, **labels: str) -> _LegacyBound:
        """Modern-API entry point; returns a per-call-cost shim."""
        return _LegacyBound(self, labels)

    def label_sets(self) -> list[LabelKey]:
        return sorted(self.last_updated)


class LegacyCounter(_LegacyMetric):
    """Seed counter: per-call sorted label-key rebuild on every inc."""

    kind = "counter"

    def __init__(self, name: str, help: str, clock: Callable[[], float]):
        super().__init__(name, help, clock)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Seed-path inc: rebuilds the label key every call."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._touch(key)

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def items(self) -> list[tuple[LabelKey, float]]:
        """(labels, value) pairs in sorted label order."""
        return sorted(self._values.items())


class LegacyGauge(_LegacyMetric):
    """Seed gauge: per-call sorted label-key rebuild on every update."""

    kind = "gauge"

    def __init__(self, name: str, help: str, clock: Callable[[], float]):
        super().__init__(name, help, clock)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Seed-path set: rebuilds the label key every call."""
        key = _label_key(labels)
        self._values[key] = float(value)
        self._touch(key)

    def add(self, amount: float, **labels: str) -> None:
        """Seed-path add: rebuilds the label key every call."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount
        self._touch(key)

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def remove(self, **labels: str) -> bool:
        """Drop the labelled series; True when it existed."""
        key = _label_key(labels)
        existed = self._values.pop(key, None) is not None
        self.last_updated.pop(key, None)
        return existed

    def items(self) -> list[tuple[LabelKey, float]]:
        """(labels, value) pairs in sorted label order."""
        return sorted(self._values.items())


@dataclasses.dataclass
class _LegacyHistogramSeries:
    bucket_counts: list[int]
    sum: float = 0.0
    count: int = 0


class LegacyHistogram(_LegacyMetric):
    """Seed histogram: linear bucket scan + label-key rebuild per obs."""

    kind = "histogram"

    def __init__(self, name: str, help: str, clock: Callable[[], float],
                 buckets: Iterable[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, clock)
        self.buckets = tuple(sorted(buckets))
        self._series: dict[LabelKey, _LegacyHistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Seed-path observe: linear bucket scan per call."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = _LegacyHistogramSeries(
                [0] * (len(self.buckets) + 1))
            self._series[key] = series
        index = len(self.buckets)  # overflow (+Inf) bucket
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        series.bucket_counts[index] += 1
        series.sum += value
        series.count += 1
        self._touch(key)

    def count(self, **labels: str) -> int:
        """Observation count for the labelled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series is not None else 0

    def sum(self, **labels: str) -> float:
        """Observation sum for the labelled series."""
        series = self._series.get(_label_key(labels))
        return series.sum if series is not None else 0.0


class LegacyMetricsRegistry:
    """Seed-cost registry, API-compatible with MetricsRegistry."""

    def __init__(self, clock: Callable[[], float] = lambda: 0.0):
        self._clock = clock
        self._metrics: dict[str, _LegacyMetric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, self._clock, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> LegacyCounter:
        """Get or create a legacy counter."""
        return self._get_or_create(LegacyCounter, name, help)

    def gauge(self, name: str, help: str = "") -> LegacyGauge:
        """Get or create a legacy gauge."""
        return self._get_or_create(LegacyGauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  ) -> LegacyHistogram:
        """Get or create a legacy histogram."""
        return self._get_or_create(LegacyHistogram, name, help,
                                   buckets=buckets)

    def get(self, name: str):
        """Look up a metric by name (None if absent)."""
        return self._metrics.get(name)

    def metrics(self) -> list[_LegacyMetric]:
        """Registered metrics in name order."""
        return [self._metrics[k] for k in sorted(self._metrics)]


# ----------------------------------------------------------------------
# Seed kernels (per-call transposes, x**3 GELU, split attention)
# ----------------------------------------------------------------------

def legacy_linear(x: np.ndarray, weight: np.ndarray,
                  bias: np.ndarray | None = None) -> np.ndarray:
    """Seed linear: transpose the weight on every call."""
    y = x @ weight.T
    if bias is not None:
        y = y + bias
    return y


def legacy_im2col(x: np.ndarray, kernel: int, stride: int,
                  padding: int) -> tuple[np.ndarray, int, int]:
    """Seed im2col: fresh pad + fresh patch matrix per call."""
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
        h, w = h + 2 * padding, w + 2 * padding
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False)
    patches = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, out_h * out_w, c * kernel * kernel)
    return patches, out_h, out_w


def legacy_conv2d(x: np.ndarray, weight: np.ndarray,
                  bias: np.ndarray | None = None, stride: int = 1,
                  padding: int = 0) -> np.ndarray:
    """Seed conv: reshape-and-transpose the kernel on every call."""
    out_c = weight.shape[0]
    patches, out_h, out_w = legacy_im2col(x, weight.shape[2], stride,
                                          padding)
    y = patches @ weight.reshape(out_c, -1).T
    if bias is not None:
        y = y + bias
    return y.transpose(0, 2, 1).reshape(x.shape[0], out_c, out_h, out_w)


def legacy_gelu(x: np.ndarray) -> np.ndarray:
    """Seed GELU with the generic-pow ``x ** 3``."""
    c = math.sqrt(2.0 / math.pi)
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x ** 3)))


def _legacy_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


def legacy_attention(qkv: np.ndarray, heads: int) -> np.ndarray:
    """Seed attention: split + three reshape copies per call."""
    n, t, three_d = qkv.shape
    d = three_d // 3
    head_dim = d // heads
    q, k, v = np.split(qkv, 3, axis=-1)

    def to_heads(a: np.ndarray) -> np.ndarray:
        return a.reshape(n, t, heads, head_dim).transpose(0, 2, 1, 3)

    q, k, v = to_heads(q), to_heads(k), to_heads(v)
    scores = (q @ k.transpose(0, 1, 3, 2)) / math.sqrt(head_dim)
    weights = _legacy_softmax(scores, axis=-1)
    ctx = weights @ v
    return ctx.transpose(0, 2, 1, 3).reshape(n, t, d)


def legacy_resize_bilinear(image: np.ndarray, out_h: int,
                           out_w: int) -> np.ndarray:
    """Seed resize: rebuild the coordinate mesh on every call."""
    from repro.preprocessing.ops import _bilinear_gather

    h, w = image.shape[:2]
    scale_y, scale_x = h / out_h, w / out_w
    ys = (np.arange(out_h, dtype=np.float32) + 0.5) * scale_y - 0.5
    xs = (np.arange(out_w, dtype=np.float32) + 0.5) * scale_x - 0.5
    grid_x, grid_y = np.meshgrid(xs, ys)
    return _bilinear_gather(image, grid_x, grid_y).astype(np.float32)


def legacy_warp_perspective(image: np.ndarray, homography: np.ndarray,
                            out_h: int, out_w: int) -> np.ndarray:
    """Seed warp: rebuild the homogeneous coordinate stack per call."""
    from repro.preprocessing.ops import _bilinear_gather

    inv = np.linalg.inv(np.asarray(homography, dtype=np.float64))
    xs = np.arange(out_w, dtype=np.float64)
    ys = np.arange(out_h, dtype=np.float64)
    grid_x, grid_y = np.meshgrid(xs, ys)
    ones = np.ones_like(grid_x)
    coords = np.stack([grid_x, grid_y, ones], axis=0).reshape(3, -1)
    mapped = inv @ coords
    denom = mapped[2]
    with np.errstate(divide="ignore", invalid="ignore"):
        src_x = (mapped[0] / denom).reshape(out_h, out_w)
        src_y = (mapped[1] / denom).reshape(out_h, out_w)
    src_x = np.nan_to_num(src_x, nan=-1.0)
    src_y = np.nan_to_num(src_y, nan=-1.0)
    out = _bilinear_gather(image, src_x, src_y)
    h, w = image.shape[:2]
    inside = ((src_x >= -0.5) & (src_x <= w - 0.5)
              & (src_y >= -0.5) & (src_y <= h - 0.5))
    out *= inside[..., None]
    return out.astype(np.float32)


def legacy_vit_forward(cfg, weights: dict[str, np.ndarray],
                       x: np.ndarray) -> np.ndarray:
    """Seed ViT forward pass (the kernel-bench baseline)."""
    from repro.models.functional import layernorm

    n = x.shape[0]
    tokens = legacy_conv2d(x, weights["patch_embed.weight"],
                           weights["patch_embed.bias"],
                           stride=cfg.patch_size)
    tokens = tokens.reshape(n, cfg.dim, -1).transpose(0, 2, 1)
    cls = np.broadcast_to(weights["cls_token"], (n, 1, cfg.dim))
    seq = np.concatenate([cls, tokens], axis=1) + weights["pos_embed"]

    for i in range(cfg.depth):
        p = f"block{i}"
        y = layernorm(seq, weights[f"{p}.norm1.gamma"],
                      weights[f"{p}.norm1.beta"])
        qkv = legacy_linear(y, weights[f"{p}.qkv.weight"],
                            weights[f"{p}.qkv.bias"])
        ctx = legacy_attention(qkv, cfg.heads)
        seq = seq + legacy_linear(ctx, weights[f"{p}.proj.weight"],
                                  weights[f"{p}.proj.bias"])
        y = layernorm(seq, weights[f"{p}.norm2.gamma"],
                      weights[f"{p}.norm2.beta"])
        y = legacy_gelu(legacy_linear(y, weights[f"{p}.fc1.weight"],
                                      weights[f"{p}.fc1.bias"]))
        seq = seq + legacy_linear(y, weights[f"{p}.fc2.weight"],
                                  weights[f"{p}.fc2.bias"])

    seq = layernorm(seq, weights["norm.gamma"], weights["norm.beta"])
    return legacy_linear(seq[:, 0], weights["head.weight"],
                         weights["head.bias"])
