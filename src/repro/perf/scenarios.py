"""Deterministic workloads for the perf harness, one per optimized layer.

Each scenario pairs the same workload run two ways — the preserved seed
implementation (:mod:`repro.perf.legacy`) and the optimized code — and
verifies the two runs agree before their timings mean anything:

* ``simulator_core`` — pure event churn (schedules, ties, cancels,
  occasional foreground peeks) on the legacy dataclass-heap simulator
  vs. the tuple-heap one; verified by identical processed-event counts.
* ``instrumented_serving`` — the *real* serving stack (server, dynamic
  batcher, backend instances, open-loop client, time-series sampler)
  replayed on (legacy simulator + legacy per-call-label metrics) vs.
  (optimized simulator + bound-handle metrics); verified by identical
  response and event counts.
* ``vit_tiny_forward`` — the seed allocation-per-op ViT forward vs. the
  pre-packed/arena fast path; verified by ``allclose`` logits.
* ``preprocess_warp`` — per-frame mesh rebuilding vs. the cached
  sampling grids on a resize + perspective-warp frame loop; verified by
  ``allclose`` outputs.

All inputs are seeded; no wall-clock or RNG state leaks into the
workload, so any two runs time the same work.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.perf import legacy


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One benchmarked workload: baseline vs. optimized."""

    name: str
    layer: str
    description: str
    baseline: Callable[[], object]
    optimized: Callable[[], object]
    #: Raises AssertionError when the two runs' results diverge.
    verify: Callable[[object, object], None]


def _noop() -> None:
    return None


def _simulator_churn(sim, n_events: int) -> int:
    """Schedule-heavy workload with ties, cancels, and peeks."""
    cancelable = []

    def make_cb(i: int):
        def cb() -> None:
            if i % 5 == 0:
                cancelable.append(sim.schedule(0.25, _noop))
            if i % 7 == 0 and cancelable:
                sim.cancel(cancelable.pop())
            if i % 63 == 0:
                sim.peek_foreground_time()
        return cb

    for i in range(n_events):
        # i and i+1000 collide on the same timestamp: plenty of ties.
        sim.schedule_at((i % 1000) * 0.001, make_cb(i),
                        daemon=(i % 17 == 0))
    sim.run()
    return sim.events_processed


def _serving_replay(sim_cls, registry_cls, requests: int) -> tuple:
    """The real serving stack end to end on the given substrate."""
    from repro.serving.batcher import BatcherConfig
    from repro.serving.client import OpenLoopClient
    from repro.serving.observability import TimeSeriesSampler
    from repro.serving.server import ModelConfig, TritonLikeServer

    sim = sim_cls()
    registry = registry_cls(clock=lambda: sim.now)
    server = TritonLikeServer(sim, registry=registry)
    server.register(ModelConfig(
        "vit_tiny", lambda n: 0.0004 + 0.00012 * n,
        batcher=BatcherConfig(max_batch_size=16, max_queue_delay=0.002)))
    client = OpenLoopClient(server, "vit_tiny", rate_per_second=800.0,
                            num_requests=requests, seed=7)
    sampler = TimeSeriesSampler(server, interval=0.05)
    client.start()
    sampler.start()
    sim.run()
    return len(server.responses), sim.events_processed


def build_scenarios(quick: bool = False) -> list[Scenario]:
    """The BENCH_core scenario set (smaller workloads when ``quick``)."""
    from repro.models.functional import init_vit_weights, vit_forward
    from repro.models.vit import VIT_CONFIGS
    from repro.models.workspace import WeightPack
    from repro.preprocessing.ops import (ground_plane_homography,
                                         resize_bilinear,
                                         warp_perspective)
    from repro.serving.events import Simulator
    from repro.serving.observability import MetricsRegistry

    n_events = 20_000 if quick else 120_000
    n_requests = 400 if quick else 4_000
    batch = 2 if quick else 8
    n_frames = 4 if quick else 24

    def counts_equal(a, b) -> None:
        assert a == b, f"baseline/optimized diverged: {a} != {b}"

    scenarios = [
        Scenario(
            name="simulator_core",
            layer="simulator",
            description=(f"{n_events} events with ties, cancels and "
                         "daemon peeks"),
            baseline=lambda: _simulator_churn(legacy.LegacySimulator(),
                                              n_events),
            optimized=lambda: _simulator_churn(Simulator(), n_events),
            verify=counts_equal,
        ),
        Scenario(
            name="instrumented_serving",
            layer="instrumentation",
            description=(f"{n_requests}-request open-loop replay through "
                         "the instrumented serving stack"),
            baseline=lambda: _serving_replay(
                legacy.LegacySimulator, legacy.LegacyMetricsRegistry,
                n_requests),
            optimized=lambda: _serving_replay(
                Simulator, MetricsRegistry, n_requests),
            verify=counts_equal,
        ),
    ]

    cfg = VIT_CONFIGS["vit_tiny"]
    weights = init_vit_weights(cfg, seed=0)
    pack = WeightPack(weights)
    x = np.random.default_rng(11).standard_normal(
        (batch, cfg.in_channels, cfg.img_size, cfg.img_size)
    ).astype(np.float32)

    def logits_close(a, b) -> None:
        assert np.allclose(a, b, rtol=1e-4, atol=1e-5), \
            "packed forward diverged from the seed forward"

    scenarios.append(Scenario(
        name="vit_tiny_forward",
        layer="kernels",
        description=f"ViT-Tiny batch-{batch} forward pass",
        baseline=lambda: legacy.legacy_vit_forward(cfg, weights, x),
        optimized=lambda: vit_forward(cfg, weights, x, pack=pack),
        verify=logits_close,
    ))

    frame_rng = np.random.default_rng(5)
    frames = [frame_rng.integers(0, 255, size=(240, 320, 3))
              .astype(np.uint8) for _ in range(n_frames)]
    hom = ground_plane_homography(320, 240)

    def preprocess_loop(resize, warp) -> np.ndarray:
        acc = 0.0
        for frame in frames:
            warped = warp(frame, hom, 240, 320)
            acc += float(resize(warped, 224, 224).sum())
        return acc

    def sums_close(a, b) -> None:
        assert np.isclose(a, b, rtol=1e-6), \
            f"preprocess outputs diverged: {a} != {b}"

    scenarios.append(Scenario(
        name="preprocess_warp",
        layer="kernels",
        description=(f"{n_frames}-frame CRSA warp + resize loop "
                     "(320x240 -> 224x224)"),
        baseline=lambda: preprocess_loop(legacy.legacy_resize_bilinear,
                                         legacy.legacy_warp_perspective),
        optimized=lambda: preprocess_loop(resize_bilinear,
                                          warp_perspective),
        verify=sums_close,
    ))
    return scenarios
