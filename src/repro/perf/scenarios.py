"""Deterministic workloads for the perf harness, one per optimized layer.

Each scenario pairs the same workload run two ways — the preserved seed
implementation (:mod:`repro.perf.legacy`) and the optimized code — and
verifies the two runs agree before their timings mean anything:

* ``simulator_core`` — pure event churn (schedules, ties, cancels,
  occasional foreground peeks) on the legacy dataclass-heap simulator
  vs. the tuple-heap one; verified by identical processed-event counts.
* ``instrumented_serving`` — the *real* serving stack (server, dynamic
  batcher, backend instances, open-loop client, time-series sampler)
  replayed on (legacy simulator + legacy per-call-label metrics) vs.
  (optimized simulator + bound-handle metrics); verified by identical
  response and event counts.
* ``vit_tiny_forward`` — the seed allocation-per-op ViT forward vs. the
  pre-packed/arena fast path; verified by ``allclose`` logits.
* ``preprocess_warp`` — per-frame mesh rebuilding vs. the cached
  sampling grids on a resize + perspective-warp frame loop; verified by
  ``allclose`` outputs.

A second suite, :func:`build_fluid_scenarios` (``BENCH_fluid``), times
the hybrid fluid/DES engine (:mod:`repro.serving.fluid`) against the
exact tuple-heap replay on saturated farm traces — verification is the
parity contract itself: identical completion counts and latency
quantiles within a stated tolerance.

A third suite, :func:`build_profile_scenarios` (``BENCH_profile``),
prices the observability layer itself: the same serving replay with no
profiler, with a profiler attached but disabled (must be free — the
zero-cost contract), and with the profiler enabled (must stay cheap).
Verification asserts byte-identical metrics scrapes across all three,
so instrumenting a run can never change what it reports.

All inputs are seeded; no wall-clock or RNG state leaks into the
workload, so any two runs time the same work.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.perf import legacy


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One benchmarked workload: baseline vs. optimized."""

    name: str
    layer: str
    description: str
    baseline: Callable[[], object]
    optimized: Callable[[], object]
    #: Raises AssertionError when the two runs' results diverge.
    verify: Callable[[object, object], None]


def _noop() -> None:
    return None


def _simulator_churn(sim, n_events: int) -> int:
    """Schedule-heavy workload with ties, cancels, and peeks."""
    cancelable = []

    def make_cb(i: int):
        def cb() -> None:
            if i % 5 == 0:
                cancelable.append(sim.schedule(0.25, _noop))
            if i % 7 == 0 and cancelable:
                sim.cancel(cancelable.pop())
            if i % 63 == 0:
                sim.peek_foreground_time()
        return cb

    for i in range(n_events):
        # i and i+1000 collide on the same timestamp: plenty of ties.
        sim.schedule_at((i % 1000) * 0.001, make_cb(i),
                        daemon=(i % 17 == 0))
    sim.run()
    return sim.events_processed


def _serving_replay(sim_cls, registry_cls, requests: int) -> tuple:
    """The real serving stack end to end on the given substrate."""
    from repro.serving.batcher import BatcherConfig
    from repro.serving.client import OpenLoopClient
    from repro.serving.observability import TimeSeriesSampler
    from repro.serving.server import ModelConfig, TritonLikeServer

    sim = sim_cls()
    registry = registry_cls(clock=lambda: sim.now)
    server = TritonLikeServer(sim, registry=registry)
    server.register(ModelConfig(
        "vit_tiny", lambda n: 0.0004 + 0.00012 * n,
        batcher=BatcherConfig(max_batch_size=16, max_queue_delay=0.002)))
    client = OpenLoopClient(server, "vit_tiny", rate_per_second=800.0,
                            num_requests=requests, seed=7)
    sampler = TimeSeriesSampler(server, interval=0.05)
    client.start()
    sampler.start()
    sim.run()
    return len(server.responses), sim.events_processed


def _profiled_replay(requests: int, mode: str) -> tuple:
    """The serving replay with the profiler ``"none"``/``"off"``/``"on"``.

    Returns ``(responses, events_processed, scrape)`` — the scrape is
    part of the result on purpose: the verify step compares it byte for
    byte across modes, which *is* the zero-instrumentation-cost
    contract (attaching a profiler must not change what a run reports).
    """
    from repro.serving.batcher import BatcherConfig
    from repro.serving.client import OpenLoopClient
    from repro.serving.events import Simulator
    from repro.serving.exporter import export_registry
    from repro.serving.observability import (MetricsRegistry,
                                             TimeSeriesSampler)
    from repro.serving.profiler import SimProfiler
    from repro.serving.server import ModelConfig, TritonLikeServer

    sim = Simulator()
    registry = MetricsRegistry(clock=lambda: sim.now)
    server = TritonLikeServer(sim, registry=registry)
    server.register(ModelConfig(
        "vit_tiny", lambda n: 0.0004 + 0.00012 * n,
        batcher=BatcherConfig(max_batch_size=16, max_queue_delay=0.002)))
    if mode != "none":
        server.attach_profiler(SimProfiler(clock=lambda: sim.now,
                                           enabled=(mode == "on")))
    client = OpenLoopClient(server, "vit_tiny", rate_per_second=800.0,
                            num_requests=requests, seed=7)
    sampler = TimeSeriesSampler(server, interval=0.05)
    client.start()
    sampler.start()
    sim.run()
    return (len(server.responses), sim.events_processed,
            export_registry(registry))


def build_profile_scenarios(quick: bool = False) -> list[Scenario]:
    """The BENCH_profile suite: the profiler's own overhead.

    Both scenarios share the baseline (no profiler at all); the
    "optimized" side is the instrumented run, so the reported speedup
    is the *overhead ratio* — 1.0 means free, and the floors bound how
    far below free each mode may fall.
    """
    requests = 1500 if quick else 6000

    def replay(mode: str):
        def run() -> tuple:
            return _profiled_replay(requests, mode)
        return run

    def identical(a, b) -> None:
        assert a[0] == b[0], (
            f"response counts diverged: {a[0]} vs {b[0]}")
        assert a[1] == b[1], (
            f"event counts diverged: {a[1]} vs {b[1]}")
        assert a[2] == b[2], (
            "metrics scrape changed with the profiler attached")

    return [
        Scenario(
            name="profile_off_overhead",
            layer="observability",
            description="serving replay: bare vs profiler attached "
                        "but disabled (the zero-cost contract)",
            baseline=replay("none"),
            optimized=replay("off"),
            verify=identical),
        Scenario(
            name="profile_on_overhead",
            layer="observability",
            description="serving replay: bare vs profiler enabled "
                        "(full sim;run / serve;* / control;* "
                        "attribution)",
            baseline=replay("none"),
            optimized=replay("on"),
            verify=identical),
    ]


def build_scenarios(quick: bool = False) -> list[Scenario]:
    """The BENCH_core scenario set (smaller workloads when ``quick``)."""
    from repro.models.functional import init_vit_weights, vit_forward
    from repro.models.vit import VIT_CONFIGS
    from repro.models.workspace import WeightPack
    from repro.preprocessing.ops import (ground_plane_homography,
                                         resize_bilinear,
                                         warp_perspective)
    from repro.serving.events import Simulator
    from repro.serving.observability import MetricsRegistry

    n_events = 20_000 if quick else 120_000
    n_requests = 400 if quick else 4_000
    batch = 2 if quick else 8
    n_frames = 4 if quick else 24

    def counts_equal(a, b) -> None:
        assert a == b, f"baseline/optimized diverged: {a} != {b}"

    scenarios = [
        Scenario(
            name="simulator_core",
            layer="simulator",
            description=(f"{n_events} events with ties, cancels and "
                         "daemon peeks"),
            baseline=lambda: _simulator_churn(legacy.LegacySimulator(),
                                              n_events),
            optimized=lambda: _simulator_churn(Simulator(), n_events),
            verify=counts_equal,
        ),
        Scenario(
            name="instrumented_serving",
            layer="instrumentation",
            description=(f"{n_requests}-request open-loop replay through "
                         "the instrumented serving stack"),
            baseline=lambda: _serving_replay(
                legacy.LegacySimulator, legacy.LegacyMetricsRegistry,
                n_requests),
            optimized=lambda: _serving_replay(
                Simulator, MetricsRegistry, n_requests),
            verify=counts_equal,
        ),
    ]

    cfg = VIT_CONFIGS["vit_tiny"]
    weights = init_vit_weights(cfg, seed=0)
    pack = WeightPack(weights)
    x = np.random.default_rng(11).standard_normal(
        (batch, cfg.in_channels, cfg.img_size, cfg.img_size)
    ).astype(np.float32)

    def logits_close(a, b) -> None:
        assert np.allclose(a, b, rtol=1e-4, atol=1e-5), \
            "packed forward diverged from the seed forward"

    scenarios.append(Scenario(
        name="vit_tiny_forward",
        layer="kernels",
        description=f"ViT-Tiny batch-{batch} forward pass",
        baseline=lambda: legacy.legacy_vit_forward(cfg, weights, x),
        optimized=lambda: vit_forward(cfg, weights, x, pack=pack),
        verify=logits_close,
    ))

    frame_rng = np.random.default_rng(5)
    frames = [frame_rng.integers(0, 255, size=(240, 320, 3))
              .astype(np.uint8) for _ in range(n_frames)]
    hom = ground_plane_homography(320, 240)

    def preprocess_loop(resize, warp) -> np.ndarray:
        acc = 0.0
        for frame in frames:
            warped = warp(frame, hom, 240, 320)
            acc += float(resize(warped, 224, 224).sum())
        return acc

    def sums_close(a, b) -> None:
        assert np.isclose(a, b, rtol=1e-6), \
            f"preprocess outputs diverged: {a} != {b}"

    scenarios.append(Scenario(
        name="preprocess_warp",
        layer="kernels",
        description=(f"{n_frames}-frame CRSA warp + resize loop "
                     "(320x240 -> 224x224)"),
        baseline=lambda: preprocess_loop(legacy.legacy_resize_bilinear,
                                         legacy.legacy_warp_perspective),
        optimized=lambda: preprocess_loop(resize_bilinear,
                                          warp_perspective),
        verify=sums_close,
    ))
    return scenarios


#: Relative tail-quantile tolerance of the fluid parity contract:
#: throughput must match exactly; p95/p99/mean may differ by this
#: fraction (the recursion prices in-batch residency with one constant
#: offset instead of per-batch timing).
FLUID_PARITY_RTOL = 0.12

#: Looser band for the median: on mixed traces p50 sits right at the
#: cliff between unsaturated and backlogged arrivals, where a small
#: horizontal shift in the latency CDF is a large relative error.
FLUID_PARITY_P50_RTOL = 0.30


def _fluid_summary(server, completed: int, latencies) -> dict:
    """The comparable outcome of one replay (either engine)."""
    values = np.asarray(latencies, dtype=float)
    p50, p95, p99 = np.quantile(values, [0.5, 0.95, 0.99])
    return {"completed": completed, "mean": float(values.mean()),
            "p50": float(p50), "p95": float(p95), "p99": float(p99)}


def _fluid_server():
    """Single-instance server a peak-30/s diurnal trace saturates."""
    from repro.serving.batcher import BatcherConfig
    from repro.serving.server import ModelConfig, TritonLikeServer

    server = TritonLikeServer()
    server.register(ModelConfig(
        "harvest", service_time=lambda n: 0.01 + 0.05 * n,
        batcher=BatcherConfig(max_batch_size=64, max_queue_delay=0.1),
        instances=1))  # capacity: 64 img / 3.21 s = ~19.9 req/s
    return server


def _fluid_parity(base: dict, opt: dict) -> None:
    """The parity contract: exact throughput, quantiles in tolerance."""
    assert base["completed"] == opt["completed"], (
        f"throughput diverged: exact {base['completed']} vs hybrid "
        f"{opt['completed']}")
    bands = (("p95", FLUID_PARITY_RTOL), ("p99", FLUID_PARITY_RTOL),
             ("mean", FLUID_PARITY_RTOL), ("p50", FLUID_PARITY_P50_RTOL))
    for key, rtol in bands:
        lo = base[key] * (1 - rtol)
        hi = base[key] * (1 + rtol)
        assert lo <= opt[key] <= hi, (
            f"{key} diverged past {rtol:.0%}: exact "
            f"{base[key]:.3f}s vs hybrid {opt[key]:.3f}s")


def build_fluid_scenarios(quick: bool = False) -> list[Scenario]:
    """The BENCH_fluid parity scenario set (smaller when ``quick``).

    Both scenarios keep the exact engine feasible (backlogs bounded to
    a few thousand requests) so baseline and hybrid can be compared
    directly — the parity contract is the verification step.  Full
    mode's burst day is a ~1.25M-arrival survey-upload trace: dozens of
    saturated bursts, each a fluid entry/exit cycle.  The workload the
    exact engine *cannot* replay lives in :func:`run_fluid_frontier`.
    """
    from repro.serving.traces import burst_trace, step_trace

    if quick:
        step = step_trace(duration=300.0, base_rate=5.0,
                          step_rate=120.0, step_start=30.0,
                          step_end=150.0, seed=3)
        burst = burst_trace(duration=3600.0, background_rate=6.0,
                            bursts=4, burst_rate=60.0,
                            burst_seconds=100.0, seed=11)
        burst_desc = "1-hour survey-burst trace, exact vs hybrid"
    else:
        step = step_trace(duration=1200.0, base_rate=5.0,
                          step_rate=120.0, step_start=50.0,
                          step_end=500.0, seed=3)
        burst = burst_trace(duration=86400.0, background_rate=8.0,
                            bursts=40, burst_rate=60.0,
                            burst_seconds=300.0, seed=11)
        burst_desc = ("survey-upload day (~1.25M arrivals, 40 "
                      "saturated bursts), exact vs hybrid")

    def step_server():
        from repro.serving.batcher import BatcherConfig
        from repro.serving.server import ModelConfig, TritonLikeServer

        server = TritonLikeServer()
        server.register(ModelConfig(
            "crop", service_time=lambda n: 0.01 + 0.02 * n,
            batcher=BatcherConfig(max_batch_size=32,
                                  max_queue_delay=0.05),
            instances=2))  # capacity ~98 img/s vs a 120/s step
        return server

    def burst_server():
        from repro.serving.batcher import BatcherConfig
        from repro.serving.server import ModelConfig, TritonLikeServer

        server = TritonLikeServer()
        server.register(ModelConfig(
            "harvest", service_time=lambda n: 0.01 + 0.05 * n,
            batcher=BatcherConfig(max_batch_size=64,
                                  max_queue_delay=0.1),
            instances=2))  # capacity ~39.9 req/s vs 60/s bursts
        return server

    def exact(make_server, model, trace):
        from repro.serving.traces import TraceReplayer

        def run() -> dict:
            server = make_server()
            TraceReplayer(server, model).schedule(trace)
            server.run()
            return _fluid_summary(
                server, len(server.responses),
                [r.latency for r in server.responses if r.ok])
        return run

    def hybrid(make_server, model, trace):
        from repro.serving.fluid import HybridReplayer

        def run() -> dict:
            server = make_server()
            replayer = HybridReplayer(server, model)
            replayer.schedule(trace)
            server.run()
            return _fluid_summary(server, replayer.completed,
                                  replayer.latencies())
        return run

    return [
        Scenario(
            name="fluid_step_parity",
            layer="serving",
            description=(f"{len(step)}-arrival step overload, exact "
                         "vs hybrid"),
            baseline=exact(step_server, "crop", step),
            optimized=hybrid(step_server, "crop", step),
            verify=_fluid_parity,
        ),
        Scenario(
            name="fluid_burst_day",
            layer="serving",
            description=burst_desc,
            baseline=exact(burst_server, "harvest", burst),
            optimized=hybrid(burst_server, "harvest", burst),
            verify=_fluid_parity,
        ),
    ]


def run_fluid_frontier(quick: bool = False) -> dict:
    """Replay the deep-saturation diurnal day the exact engine cannot.

    The 1000x-scaled growing-season day (~1M arrivals against ~20
    req/s of capacity) backlogs hundreds of thousands of requests at
    midday; the exact batcher's per-dispatch full-queue scan makes that
    replay take hours, so this workload times the hybrid engine alone.
    Conservation (completions == arrivals) is asserted in place of
    pairwise parity — the parity contract itself is certified by the
    DES-feasible :func:`build_fluid_scenarios` workloads.  The bench
    gate bounds ``wall_seconds`` by the committed ``max_seconds``.
    """
    import time

    from repro.serving.fluid import HybridReplayer
    from repro.serving.traces import diurnal_trace

    if quick:
        trace = diurnal_trace(duration=21600.0, peak_rate=30.0,
                              base_rate=0.5,
                              daylight=(1800.0, 19800.0), seed=11)
        description = "6-hour deep-saturation diurnal (~250k arrivals)"
        max_seconds = 30.0
    else:
        trace = diurnal_trace(duration=86400.0, peak_rate=30.0,
                              base_rate=0.5, seed=11)
        description = ("1000x-scaled diurnal day (~1M arrivals, hours "
                       "of deep saturation; exact replay infeasible)")
        max_seconds = 90.0

    server = _fluid_server()
    replayer = HybridReplayer(server, "harvest")
    replayer.schedule(trace)
    start = time.perf_counter()
    server.run()
    wall = time.perf_counter() - start
    assert replayer.completed == len(trace), (
        f"conservation violated: {replayer.completed} completions for "
        f"{len(trace)} arrivals")
    summary = replayer.latency_summary()
    return {
        "name": "fluid_diurnal_million",
        "layer": "serving",
        "description": description,
        "arrivals": len(trace),
        "fluid_completed": replayer.fluid_completed,
        "fluid_intervals": len(replayer.intervals),
        "wall_seconds": wall,
        "max_seconds": max_seconds,
        "p95": summary["p95"],
        "p99": summary["p99"],
    }


# ----------------------------------------------------------------------
# BENCH_faas: the serverless execution model priced against provisioned
# ----------------------------------------------------------------------
def _faas_workload(quick: bool):
    """The shared sparse-diurnal workload both execution models replay."""
    from repro.serving.traces import sparse_diurnal_trace

    duration = 600.0 if quick else 2400.0
    return sparse_diurnal_trace(duration=duration, peak_rate=20.0,
                                night_rate=0.05, seed=7)


def _provisioned_replay(trace) -> tuple:
    """Baseline: the same trace through a provisioned replica."""
    from repro.serving.batcher import BatcherConfig
    from repro.serving.events import Simulator
    from repro.serving.observability import MetricsRegistry
    from repro.serving.server import ModelConfig, TritonLikeServer
    from repro.serving.traces import TraceReplayer

    sim = Simulator()
    server = TritonLikeServer(
        sim, registry=MetricsRegistry(clock=lambda: sim.now))
    server.register(ModelConfig(
        "infer", lambda n: 0.002 * n, instances=2,
        batcher=BatcherConfig(max_batch_size=8,
                              max_queue_delay=0.005)))
    TraceReplayer(server, "infer").schedule(trace)
    sim.run()
    ok = sum(1 for r in server.responses if r.status == "ok")
    return ok, 0, 0


def _faas_replay(trace, keep_alive: float) -> tuple:
    """The same trace through the serverless backend."""
    from repro.faas import FaaSBackend, FaaSFunctionConfig
    from repro.faas.platform import FaaSPlatformModel
    from repro.serving.events import Simulator
    from repro.serving.observability import MetricsRegistry
    from repro.serving.traces import TraceReplayer

    platform = FaaSPlatformModel(
        name="bench", cold_start_base_seconds=0.25,
        cold_start_jitter_seconds=0.1, artifact_bytes=100e6,
        artifact_bandwidth_bps=1e9, memory_gb=2.0)
    sim = Simulator()
    backend = FaaSBackend(
        sim, registry=MetricsRegistry(clock=lambda: sim.now), seed=7)
    backend.register(FaaSFunctionConfig(
        "infer", lambda n: 0.002 * n, platform=platform,
        concurrency_limit=32, keep_alive_seconds=keep_alive))
    TraceReplayer(backend, "infer").schedule(trace)
    sim.run()
    stats = backend.function_stats("infer")
    ok = sum(1 for r in backend.responses if r.status == "ok")
    return ok, stats.cold_starts, stats.reaps


def build_faas_scenarios(quick: bool = False) -> list[Scenario]:
    """The BENCH_faas suite: what the serverless model costs to run.

    Like BENCH_profile, these floors bound *overhead*, not gains: the
    serverless backend spawns, tracks, and reaps an instance per
    concurrency slot where the provisioned server batches into a
    static pool, so its replay is allowed to be slower — the floors
    bound how much slower before the gate trips.
    """
    trace = _faas_workload(quick)

    def served_equal(a, b) -> None:
        assert a[0] == b[0], (
            f"served counts diverged: {a[0]} vs {b[0]}")

    def scale_to_zero_works(a, b) -> None:
        assert a[0] == b[0], (
            f"served counts diverged: {a[0]} vs {b[0]}")
        assert b[1] > a[1], (
            f"short keep-alive produced no extra cold starts "
            f"({b[1]} vs {a[1]})")
        assert b[2] > 0, "short keep-alive never reaped an instance"

    return [
        Scenario(
            name="faas_vs_provisioned",
            layer="faas",
            description="sparse diurnal trace: provisioned replica "
                        "vs on-demand serverless instances",
            baseline=lambda: _provisioned_replay(trace),
            optimized=lambda: _faas_replay(trace, keep_alive=60.0),
            verify=served_equal),
        Scenario(
            name="faas_scale_to_zero",
            layer="faas",
            description="serverless replay: never-reap warm pool vs "
                        "scale-to-zero keep-alive reaping",
            baseline=lambda: _faas_replay(trace, keep_alive=1e9),
            optimized=lambda: _faas_replay(trace, keep_alive=15.0),
            verify=scale_to_zero_works),
    ]


def build_sweep_scenarios(quick: bool = False,
                          jobs: int = 4) -> list[Scenario]:
    """The BENCH_sweep suite: the sweep engine against itself.

    One scenario: a seed-replicated sparse-diurnal grid run
    sequentially (baseline) and through a ``jobs``-worker process pool
    (optimized).  The verify step *is* the engine's determinism
    contract — the merged metrics scrape, folded sim-time profile, and
    bucket-re-accumulated summary must be byte-identical across the
    two runs before the wall-clock ratio means anything.  Floors live
    in :func:`repro.perf.bench.sweep_min_speedup` because the honest
    bar depends on the host's core count.
    """
    from repro.serving.exporter import export_registry
    from repro.sweep import (SweepRunner, SweepSpec, merge_profiles,
                             merge_registries, merge_summaries)

    spec = SweepSpec(
        worker="repro.sweep.workloads:replay_sparse_diurnal",
        base_params={
            "duration": 600.0 if quick else 3600.0,
            "peak_rate": 3.0 if quick else 8.0,
            "instances": 2,
        },
        replications=4 if quick else 8,
        base_seed=1234)

    def run_with(n_jobs: int):
        def run() -> dict:
            result = SweepRunner(jobs=n_jobs).run(spec)
            result.raise_on_error()
            values = result.values()
            registry = merge_registries(v["registry"] for v in values)
            profiler = merge_profiles(v["profiler"] for v in values)
            summary = merge_summaries(v["summary"] for v in values)
            return {
                "scrape": export_registry(registry),
                "folded": profiler.render_folded(),
                "summary": summary.as_dict(),
                "completed": sum(v["completed"] for v in values),
            }
        return run

    def merged_identical(base: dict, opt: dict) -> None:
        assert base["completed"] == opt["completed"], (
            f"completion counts diverged: sequential "
            f"{base['completed']} vs pooled {opt['completed']}")
        assert base["scrape"] == opt["scrape"], (
            "merged metrics scrape diverged between sequential and "
            "pooled runs — the merge is order- or process-dependent")
        assert base["folded"] == opt["folded"], (
            "merged folded profile diverged between sequential and "
            "pooled runs")
        assert base["summary"] == opt["summary"], (
            f"merged summary diverged: {base['summary']} vs "
            f"{opt['summary']}")

    return [
        Scenario(
            name="sweep_parallel_replay",
            layer="sweep",
            description=(f"{len(spec.shards())}-shard seeded "
                         f"sparse-diurnal grid, sequential vs "
                         f"{jobs}-worker pool"),
            baseline=run_with(1),
            optimized=run_with(jobs),
            verify=merged_identical),
    ]
