"""Backtesting the predictor against the paper's own measurements.

Leave-one-platform-out: strip a platform of its calibration anchors,
predict its Fig. 5 legend throughputs by transferring MFU structure from
a donor platform, and report the error against the paper's printed
values.  This quantifies what the prediction toolkit's portability
assumption costs — the honest error bar a practitioner should put on
pre-deployment expectations for unmeasured hardware.
"""

from __future__ import annotations

import dataclasses

from repro.engine import calibration
from repro.hardware.platform import get_platform
from repro.models.zoo import MODEL_ZOO
from repro.predict.predictor import PerformancePredictor, _TransferredMFU
from repro.engine.latency import LatencyModel


@dataclasses.dataclass(frozen=True)
class BacktestResult:
    """Predicted vs paper throughput for one (platform, model) anchor."""

    platform: str
    donor: str
    model: str
    batch: int
    paper_images_per_second: float
    predicted_images_per_second: float

    @property
    def relative_error(self) -> float:
        """Prediction error relative to the paper value."""
        return abs(self.predicted_images_per_second
                   - self.paper_images_per_second) \
            / self.paper_images_per_second


def backtest_platform(platform_name: str,
                      donor_name: str) -> list[BacktestResult]:
    """Predict ``platform_name``'s anchors using only ``donor_name``'s
    calibration, and compare against the paper.

    >>> results = backtest_platform("v100", donor="a100")  # doctest: +SKIP
    """
    platform = get_platform(platform_name)
    donor = get_platform(donor_name)
    if platform.name == donor.name:
        raise ValueError("donor must differ from the target platform")
    results = []
    for (plat, model_name), (batch, paper_thr) in sorted(
            calibration.THROUGHPUT_ANCHORS.items()):
        if plat != platform.name.lower():
            continue
        graph = MODEL_ZOO[model_name].graph
        transferred = _TransferredMFU(graph, platform, donor.name)
        model = LatencyModel(graph, platform, mfu_model=transferred)
        results.append(BacktestResult(
            platform=platform.name,
            donor=donor.name,
            model=model_name,
            batch=batch,
            paper_images_per_second=paper_thr,
            predicted_images_per_second=model.throughput(batch),
        ))
    if not results:
        raise KeyError(f"no anchors recorded for {platform_name!r}")
    return results


def backtest_summary() -> dict[str, float]:
    """Mean relative error per (target <- donor) pairing across the zoo."""
    pairs = [("v100", "a100"), ("a100", "v100"),
             ("jetson", "a100"), ("a100", "jetson")]
    out = {}
    for target, donor in pairs:
        results = backtest_platform(target, donor)
        out[f"{target}<-{donor}"] = sum(
            r.relative_error for r in results) / len(results)
    return out
