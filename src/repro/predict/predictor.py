"""The performance predictor.

For *measured* platforms the predictor delegates to the calibrated engine
models.  For an **unmeasured** platform it transfers the MFU structure
from a donor: peak utilization is assumed architecture-portable within a
tier (the paper's A100/V100/Jetson peaks for the same model differ far
less than their absolute FLOPS), and the saturation scale follows the
donor's law.  :mod:`repro.predict.validation` quantifies the error this
assumption costs on the paper's own data.
"""

from __future__ import annotations

import dataclasses
import math

from repro.engine import calibration
from repro.engine.latency import LatencyModel
from repro.engine.mfu import MFUModel, _b_sat_for
from repro.engine.oom import EngineMemoryModel
from repro.hardware.platform import PlatformKind, PlatformSpec
from repro.hardware.power import POWER_PROFILES, PowerProfile, EnergyModel
from repro.models.graph import ModelGraph


@dataclasses.dataclass(frozen=True)
class Prediction:
    """Expected behaviour of one deployment operating point."""

    model: str
    platform: str
    batch_size: int
    throughput: float
    latency_seconds: float
    mfu: float
    engine_memory_bytes: float
    max_batch_size: int
    joules_per_image: float | None
    calibrated: bool    # False when MFU structure was transferred


def _has_anchors(platform: PlatformSpec) -> bool:
    plat = platform.name.lower()
    return any(p == plat for p, _ in calibration.THROUGHPUT_ANCHORS)


def _default_donor(platform: PlatformSpec) -> str:
    """Donor platform for MFU transfer: same continuum tier."""
    return "jetson" if platform.kind is PlatformKind.EDGE else "a100"


class _TransferredMFU:
    """MFUModel-compatible object with a donor's peak utilization.

    Duck-typed to what :class:`~repro.engine.latency.LatencyModel`
    consumes: ``mfu(batch)``, ``mfu_peak``, ``b_sat``,
    ``achieved_tflops``, ``near_saturation_batch``.
    """

    def __init__(self, graph: ModelGraph, platform: PlatformSpec,
                 donor_name: str):
        from repro.hardware.platform import get_platform

        donor = get_platform(donor_name)
        donor_model = MFUModel(graph, donor)
        self.graph = graph
        self.platform = platform
        self.mfu_peak = donor_model.mfu_peak
        # Saturation scale: the donor's law evaluated for this platform
        # tier (fixed scale on edge, FLOPs-inverse on cloud).
        self.b_sat = _b_sat_for(donor.name, graph.reported_gflops())

    def mfu(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.mfu_peak * (1.0 - math.exp(-batch_size / self.b_sat))

    def achieved_tflops(self, batch_size: int) -> float:
        return self.platform.practical_tflops * self.mfu(batch_size)

    def near_saturation_batch(self, fraction: float = 0.9) -> int:
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        return max(1, math.ceil(-self.b_sat * math.log(1.0 - fraction)))


class PerformancePredictor:
    """Predicts deployment behaviour on measured or hypothetical devices.

    Parameters
    ----------
    platform:
        Target device.  A registered platform uses its calibration; an
        unregistered :class:`PlatformSpec` (from
        :func:`repro.predict.whatif.define_platform`) transfers MFU
        structure from ``donor`` (defaults to the same-tier platform).
    donor:
        Override the donor platform name for MFU transfer.
    power_profile:
        Electrical envelope for energy predictions; defaults to the
        registered profile when one exists, else None (energy omitted).
    """

    def __init__(self, platform: PlatformSpec, donor: str | None = None,
                 power_profile: PowerProfile | None = None):
        self.platform = platform
        self.calibrated = _has_anchors(platform)
        if self.calibrated:
            mfu_factory = lambda graph: MFUModel(graph, platform)  # noqa: E731
        else:
            donor_name = donor or _default_donor(platform)
            mfu_factory = lambda graph: _TransferredMFU(  # noqa: E731
                graph, platform, donor_name)
        self._mfu_factory = mfu_factory
        if power_profile is not None:
            self.power_profile = power_profile
        else:
            self.power_profile = POWER_PROFILES.get(platform.name.lower())

    # ------------------------------------------------------------------
    def latency_model(self, graph: ModelGraph) -> LatencyModel:
        """The latency model this predictor prices a graph with."""
        return LatencyModel(graph, self.platform,
                            mfu_model=self._mfu_factory(graph))

    def predict(self, graph: ModelGraph, batch_size: int) -> Prediction:
        """Expected behaviour at one operating point."""
        model = self.latency_model(graph)
        memory = EngineMemoryModel(graph, self.platform)
        max_batch = self._max_batch(graph, memory)
        if batch_size > max_batch:
            raise ValueError(
                f"batch {batch_size} exceeds the predicted OOM limit "
                f"{max_batch} on {self.platform.name}")
        point = model.point(batch_size)
        joules = None
        if self.power_profile is not None:
            energy = EnergyModel(graph, self.platform,
                                 profile=self.power_profile)
            # Reuse this predictor's MFU structure for utilization.
            watts = self.power_profile.watts_at(point.mfu)
            joules = watts / point.throughput
        return Prediction(
            model=graph.name,
            platform=self.platform.name,
            batch_size=batch_size,
            throughput=point.throughput,
            latency_seconds=point.latency_seconds,
            mfu=point.mfu,
            engine_memory_bytes=memory.engine_bytes(batch_size),
            max_batch_size=max_batch,
            joules_per_image=joules,
            calibrated=self.calibrated,
        )

    def _max_batch(self, graph: ModelGraph,
                   memory: EngineMemoryModel) -> int:
        grid = self._grid()
        fitting = [b for b in grid if memory.fits(b)]
        if not fitting:
            memory.require(grid[0])
        return max(fitting)

    def _grid(self) -> tuple[int, ...]:
        try:
            return calibration.batch_grid(self.platform.name)
        except KeyError:
            tier = ("jetson" if self.platform.kind is PlatformKind.EDGE
                    else "a100")
            return calibration.batch_grid(tier)

    # ------------------------------------------------------------------
    def sweep(self, graph: ModelGraph) -> list[Prediction]:
        """Predictions over the feasible batch grid (a Fig. 5 preview)."""
        memory = EngineMemoryModel(graph, self.platform)
        limit = self._max_batch(graph, memory)
        return [self.predict(graph, b) for b in self._grid()
                if b <= limit]

    def expectation_report(self, graph: ModelGraph) -> dict:
        """The practitioner-facing summary: what to expect pre-deploy."""
        sweep = self.sweep(graph)
        best = sweep[-1]
        sat = next((p for p in sweep
                    if p.mfu >= 0.9 * sweep[-1].mfu), best)
        return {
            "model": graph.name,
            "platform": self.platform.name,
            "calibrated": self.calibrated,
            "max_batch": best.max_batch_size,
            "peak_throughput": best.throughput,
            "recommended_batch": sat.batch_size,
            "latency_at_recommended_ms": sat.latency_seconds * 1e3,
            "engine_memory_gb": best.engine_memory_bytes / 1e9,
            "joules_per_image": best.joules_per_image,
        }
