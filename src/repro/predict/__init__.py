"""Performance-prediction toolkit (the paper's stated future work).

Conclusion: "Future work will develop comprehensive quantitative models
for scalable performance prediction and provide deployment toolkits that
enable practitioners to establish performance expectations before
deployment."

This package is that toolkit:

* :mod:`repro.predict.predictor` — predict throughput/latency/memory/
  energy for any (model, platform, batch), including *hypothetical*
  platforms never measured, by transferring the calibrated MFU structure
  from a donor platform;
* :mod:`repro.predict.whatif` — define a candidate device from datasheet
  numbers (:func:`define_platform`) and preview the whole evaluation on
  it before buying hardware;
* :mod:`repro.predict.capacity` — size a deployment: nodes/instances
  needed for a target workload under a latency SLO, with energy totals;
* :mod:`repro.predict.validation` — honesty check: leave-one-platform-
  out backtesting of the predictor against the paper's own anchors.
"""

from repro.predict.predictor import (
    PerformancePredictor,
    Prediction,
)
from repro.predict.whatif import define_platform, preview_platform
from repro.predict.capacity import (
    CapacityPlanner,
    DeploymentPlan,
    WorkloadSpec,
)
from repro.predict.placement import (
    ModelDemand,
    PlacementPlan,
    PlacementPlanner,
)
from repro.predict.validation import (
    backtest_platform,
    BacktestResult,
)

__all__ = [
    "PerformancePredictor",
    "Prediction",
    "define_platform",
    "preview_platform",
    "CapacityPlanner",
    "DeploymentPlan",
    "WorkloadSpec",
    "ModelDemand",
    "PlacementPlan",
    "PlacementPlanner",
    "backtest_platform",
    "BacktestResult",
]
