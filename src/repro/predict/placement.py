"""Multi-model placement: packing engines onto a device fleet.

A research station serves many farms' localized models ("each dedicated
to a specific inference task") from a few GPUs.  Placement is a
two-resource bin-packing problem — engine *memory* is hard (OOM), engine
*compute* is soft (co-located engines share FLOPS).  The planner packs
first-fit-decreasing by memory with a compute-utilization cap per
device, the classical heuristic with a 2-approximation guarantee.
"""

from __future__ import annotations

import dataclasses

from repro.engine.latency import LatencyModel
from repro.engine.oom import EngineMemoryModel
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph


@dataclasses.dataclass(frozen=True)
class ModelDemand:
    """One model to place: its engine shape and offered load."""

    graph: ModelGraph
    batch_size: int
    offered_images_per_second: float

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.offered_images_per_second < 0:
            raise ValueError("offered load must be >= 0")


@dataclasses.dataclass
class DevicePlan:
    """One device's assignment."""

    index: int
    models: list[str]
    memory_bytes: float
    compute_fraction: float


@dataclasses.dataclass(frozen=True)
class PlacementPlan:
    """The fleet assignment."""

    platform: str
    devices: tuple[DevicePlan, ...]
    unplaced: tuple[str, ...]

    @property
    def device_count(self) -> int:
        """Devices used by the plan."""
        return len(self.devices)

    def device_of(self, model: str) -> int | None:
        """Device index hosting a model, or None."""
        for device in self.devices:
            if model in device.models:
                return device.index
        return None


class PlacementPlanner:
    """Packs model engines onto identical devices of one platform.

    Parameters
    ----------
    platform:
        Device type of the fleet.
    max_devices:
        Fleet size cap; demands that don't fit are reported unplaced.
    compute_cap:
        Maximum fraction of a device's practical FLOPS the placed
        models' offered loads may claim together (leave headroom for
        bursts; 0.8 default).
    """

    def __init__(self, platform: PlatformSpec, max_devices: int = 8,
                 compute_cap: float = 0.8):
        if max_devices < 1:
            raise ValueError("need at least one device")
        if not 0 < compute_cap <= 1.0:
            raise ValueError("compute_cap must be in (0, 1]")
        self.platform = platform
        self.max_devices = max_devices
        self.compute_cap = compute_cap

    def _footprint(self, demand: ModelDemand) -> tuple[float, float]:
        """(memory bytes, compute fraction) one demand claims."""
        memory = EngineMemoryModel(demand.graph, self.platform)
        mem = memory.engine_bytes(demand.batch_size)
        latency = LatencyModel(demand.graph, self.platform)
        capacity = latency.throughput(demand.batch_size)
        if capacity <= 0:
            raise ValueError(f"{demand.graph.name}: zero capacity")
        compute = demand.offered_images_per_second / capacity
        return mem, compute

    def place(self, demands: list[ModelDemand]) -> PlacementPlan:
        """First-fit-decreasing by memory, compute-capped."""
        budget = self.platform.usable_gpu_memory_bytes
        sized = []
        for demand in demands:
            mem, compute = self._footprint(demand)
            if mem > budget:
                sized.append((demand, mem, compute, False))
            else:
                sized.append((demand, mem, compute, True))
        sized.sort(key=lambda item: -item[1])

        devices: list[DevicePlan] = []
        unplaced: list[str] = []
        for demand, mem, compute, fits in sized:
            if not fits or compute > self.compute_cap:
                unplaced.append(demand.graph.name)
                continue
            target = None
            for device in devices:
                if (device.memory_bytes + mem <= budget
                        and device.compute_fraction + compute
                        <= self.compute_cap):
                    target = device
                    break
            if target is None:
                if len(devices) >= self.max_devices:
                    unplaced.append(demand.graph.name)
                    continue
                target = DevicePlan(len(devices), [], 0.0, 0.0)
                devices.append(target)
            target.models.append(demand.graph.name)
            target.memory_bytes += mem
            target.compute_fraction += compute
        return PlacementPlan(self.platform.name, tuple(devices),
                             tuple(unplaced))
