"""Capacity planning: size a deployment for a target workload.

Answers the practitioner question behind the paper's guidance sections:
*how many of which device do I need to process my farm's imagery within
my latency budget, and what does it cost in energy?*
"""

from __future__ import annotations

import dataclasses
import math

from repro.data.datasets import DatasetSpec
from repro.engine.oom import EngineMemoryModel
from repro.hardware.platform import PlatformSpec
from repro.models.graph import ModelGraph
from repro.predict.predictor import PerformancePredictor


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """The demand side of the plan."""

    images_per_second: float
    latency_slo_seconds: float
    dataset: DatasetSpec | None = None
    #: Sustained duty cycle (field work is bursty; 1.0 = 24/7).
    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if self.images_per_second <= 0:
            raise ValueError("demand must be positive")
        if self.latency_slo_seconds <= 0:
            raise ValueError("latency SLO must be positive")
        if not 0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class DeploymentPlan:
    """One feasible sizing for (workload, model, platform)."""

    platform: str
    model: str
    batch_size: int
    instances_per_device: int
    devices: int
    throughput_per_device: float
    total_throughput: float
    latency_seconds: float
    meets_slo: bool
    watt_hours_per_day: float | None
    #: The workload demand this plan was sized for (images/second).
    demand_images_per_second: float = 0.0

    @property
    def headroom(self) -> float:
        """Provisioned / demanded throughput (>= 1 when feasible).

        An infeasible plan provisions nothing, so its headroom is 0.0;
        the same holds when the demand is unknown (never sized).
        """
        if self.demand_images_per_second <= 0:
            return 0.0
        return self.total_throughput / self.demand_images_per_second


class CapacityPlanner:
    """Sizes deployments across candidate platforms."""

    def __init__(self, workload: WorkloadSpec):
        self.workload = workload

    def plan(self, graph: ModelGraph,
             platform: PlatformSpec) -> DeploymentPlan:
        """Size one (model, platform) pair for the workload."""
        predictor = PerformancePredictor(platform)
        model = predictor.latency_model(graph)
        grid = predictor._grid()
        memory = EngineMemoryModel(graph, platform)
        max_batch = predictor._max_batch(graph, memory)

        # Largest batch meeting the SLO (throughput-optimal under it).
        feasible = [b for b in grid if b <= max_batch
                    and model.latency(b) <= self.workload.latency_slo_seconds]
        if not feasible:
            return self._infeasible(graph, platform)
        batch = max(feasible)
        per_instance = model.throughput(batch)

        # Instances per device: memory-bounded concurrent engines, with
        # aggregate throughput capped at the device's compute upper
        # bound — co-located instances share the same FLOPS, they only
        # fill each other's utilization gaps.
        budget = platform.usable_gpu_memory_bytes
        instances = max(1, int(budget // memory.engine_bytes(batch)))
        compute_cap = platform.throughput_upper_bound(
            graph.flops_per_image())
        useful = max(1, math.ceil(compute_cap / per_instance))
        instances = min(instances, useful)
        per_device = min(per_instance * instances, compute_cap)
        devices = max(1, math.ceil(self.workload.images_per_second
                                   / per_device))

        energy = self._daily_energy(graph, platform, predictor, batch,
                                    devices)
        return DeploymentPlan(
            platform=platform.name,
            model=graph.name,
            batch_size=batch,
            instances_per_device=instances,
            devices=devices,
            throughput_per_device=per_device,
            total_throughput=per_device * devices,
            latency_seconds=model.latency(batch),
            meets_slo=True,
            watt_hours_per_day=energy,
            demand_images_per_second=self.workload.images_per_second,
        )

    def _infeasible(self, graph: ModelGraph,
                    platform: PlatformSpec) -> DeploymentPlan:
        return DeploymentPlan(
            platform=platform.name, model=graph.name, batch_size=0,
            instances_per_device=0, devices=0,
            throughput_per_device=0.0, total_throughput=0.0,
            latency_seconds=float("inf"), meets_slo=False,
            watt_hours_per_day=None,
            demand_images_per_second=self.workload.images_per_second)

    def _daily_energy(self, graph, platform, predictor, batch,
                      devices) -> float | None:
        """Daily Wh: devices idle 24/7 plus the dynamic cost per image.

        The baseline draw is paid around the clock (the fleet stays
        provisioned); each processed image adds only the *incremental*
        energy above idle at the operating utilization.
        """
        profile = predictor.power_profile
        if profile is None:
            return None
        prediction = predictor.predict(graph, batch)
        dynamic_watts = (profile.watts_at(prediction.mfu)
                         - profile.watts_at(0.0))
        dynamic_j_per_image = dynamic_watts / prediction.throughput
        daily_images = (self.workload.images_per_second * 86400
                        * self.workload.duty_cycle)
        idle_wh = devices * profile.watts_at(0.0) * 24.0
        return idle_wh + daily_images * dynamic_j_per_image / 3600.0

    def compare(self, graph: ModelGraph,
                platforms: list[PlatformSpec]) -> list[DeploymentPlan]:
        """Plans across platforms, feasible-and-cheapest (devices) first."""
        plans = [self.plan(graph, p) for p in platforms]
        return sorted(plans, key=lambda p: (not p.meets_slo, p.devices))
